"""Tracer spans and the Chrome trace / metrics dump exporters."""

from __future__ import annotations

import json

from repro import obs
from repro.obs.export import (
    metrics_dump,
    validate_chrome_trace,
    validate_metrics_dump,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class TestTracer:
    def test_nesting_depths(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        by_name = {s.name: s for s in t.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        # inner closed first
        assert t.spans[0].name == "inner"

    def test_wall_and_model_time(self):
        t = Tracer()
        with t.span("work", cycles=420) as s:
            s.set(p=8)
        (span,) = t.spans
        assert span.dur_ns >= 0
        assert span.cycles == 420
        assert span.args == {"p": 8}
        assert t.total_cycles() == 420
        assert t.total_cycles("work") == 420
        assert t.total_cycles("other") == 0

    def test_leaked_child_spans_closed_with_parent(self):
        t = Tracer()
        outer = t.span("outer")
        t.span("leaked")  # never explicitly closed
        outer.__exit__()
        assert {s.name for s in t.spans} == {"outer", "leaked"}

    def test_instant_events(self):
        t = Tracer()
        t.instant("marker", note="hi")
        assert t.n_events == 1


class TestChromeExport:
    def _session_with_activity(self):
        with obs.session(label="t") as sess:
            with sess.span("outer", cycles=99, p=4):
                with sess.span("inner"):
                    pass
            sess.tracer.instant("tick")
        return sess

    def test_valid_and_round_trips_through_json(self):
        sess = self._session_with_activity()
        doc = json.loads(json.dumps(sess.chrome_trace()))
        assert validate_chrome_trace(doc) == []
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        for e in complete:
            for field in ("name", "ph", "ts", "dur", "pid", "tid"):
                assert field in e
            assert e["ts"] >= 0 and e["dur"] > 0
        outer = next(e for e in complete if e["name"] == "outer")
        assert outer["args"]["cycles"] == 99 and outer["args"]["p"] == 4

    def test_validator_catches_missing_fields(self):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": []}) != []
        bad = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0}]}
        assert any("dur" in p for p in validate_chrome_trace(bad))
        bad2 = {"traceEvents": [{"name": "x", "ph": "?", "pid": 1, "tid": 1, "ts": 0}]}
        assert any("phase" in p for p in validate_chrome_trace(bad2))


class TestMetricsDump:
    def test_valid_dump(self):
        m = MetricsRegistry()
        m.counter("c", level="L1").add(3)
        m.gauge("g").set(1.5)
        m.histogram("h").observe(2)
        doc = json.loads(json.dumps(metrics_dump(m, label="x")))
        assert validate_metrics_dump(doc) == []
        assert doc["schema"] == "repro-obs-metrics/1"
        assert doc["label"] == "x"

    def test_validator_catches_problems(self):
        assert validate_metrics_dump([]) != []
        assert validate_metrics_dump({"schema": "wrong"}) != []
        m = MetricsRegistry()
        doc = metrics_dump(m)
        doc["counters"]["bad"] = "not-a-number"
        assert any("bad" in p for p in validate_metrics_dump(doc))


class TestSession:
    def test_session_activation_and_nesting(self):
        assert obs.active() is None
        with obs.session(label="a") as outer:
            assert obs.active() is outer
            with obs.session(label="b") as inner:
                assert obs.active() is inner
            assert obs.active() is outer
        assert obs.active() is None
        assert not obs.enabled()

    def test_write_artifacts(self, tmp_path):
        with obs.session(label="run", out_dir=tmp_path) as sess:
            with sess.span("s", cycles=1):
                sess.counter("c").inc()
        trace_path = tmp_path / "run.trace.json"
        metrics_path = tmp_path / "run.metrics.json"
        assert trace_path.exists() and metrics_path.exists()
        assert validate_chrome_trace(json.loads(trace_path.read_text())) == []
        assert validate_metrics_dump(json.loads(metrics_path.read_text())) == []

    def test_write_without_out_dir_raises(self):
        import pytest

        with obs.session(label="x") as sess:
            pass
        with pytest.raises(ValueError):
            sess.write()
