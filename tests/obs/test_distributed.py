"""Cross-process telemetry plumbing: snapshots, cursors, span batches,
and the parent-side aggregator (repro.obs.distributed).

Everything here runs in one process — the child side is just a second
Session object — because the wire format is plain JSON-able dicts; the
multi-process integration is covered by tests/serve/test_telemetry.py
and tests/core/test_search.py.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.distributed import (
    ChildTelemetry,
    MetricsSnapshot,
    SnapshotCursor,
    SpanBatch,
    TelemetryAggregator,
)
from repro.obs.export import validate_chrome_trace, validate_metrics_dump


def _child(label: str = "child-1") -> obs.Session:
    return obs.Session(label=label)


class TestSnapshotDeltas:
    def test_counter_ships_delta_not_cumulative(self):
        sess = _child()
        cur = SnapshotCursor()
        sess.metrics.counter("x.total").add(5)
        first = MetricsSnapshot.capture(sess.metrics, cur)
        assert first.counters["x.total"] == 5
        sess.metrics.counter("x.total").add(2)
        second = MetricsSnapshot.capture(sess.metrics, cur)
        assert second.counters["x.total"] == 2

    def test_unchanged_series_omitted(self):
        sess = _child()
        cur = SnapshotCursor()
        sess.metrics.counter("x.total").add(5)
        MetricsSnapshot.capture(sess.metrics, cur)
        again = MetricsSnapshot.capture(sess.metrics, cur)
        assert "x.total" not in again.counters
        assert again.empty()

    def test_without_cursor_ships_cumulative(self):
        sess = _child()
        sess.metrics.counter("x.total").add(5)
        snap = MetricsSnapshot.capture(sess.metrics)
        snap2 = MetricsSnapshot.capture(sess.metrics)
        assert snap.counters["x.total"] == snap2.counters["x.total"] == 5

    def test_gauges_always_shipped(self):
        sess = _child()
        cur = SnapshotCursor()
        sess.metrics.gauge("depth").set(3)
        MetricsSnapshot.capture(sess.metrics, cur)
        again = MetricsSnapshot.capture(sess.metrics, cur)
        assert again.gauges["depth"] == 3  # last-write-wins, never delta'd

    def test_histogram_delta_buckets(self):
        sess = _child()
        cur = SnapshotCursor()
        h = sess.metrics.histogram("lat_ms")
        h.observe(1.0)
        h.observe(4.0)
        first = MetricsSnapshot.capture(sess.metrics, cur)
        assert first.histograms["lat_ms"]["count"] == 2
        h.observe(16.0)
        second = MetricsSnapshot.capture(sess.metrics, cur)
        state = second.histograms["lat_ms"]
        assert state["count"] == 1
        assert state["sum"] == pytest.approx(16.0)
        # min/max stay cumulative so re-merging is idempotent for them
        assert state["min"] == pytest.approx(1.0)
        assert state["max"] == pytest.approx(16.0)


class TestAggregator:
    def test_merge_adds_process_label(self):
        child = _child()
        child.metrics.counter("memo.hits", better="higher", cache="search").add(3)
        snap = MetricsSnapshot.capture(child.metrics, process="shard-0")
        parent = obs.Session(label="parent")
        TelemetryAggregator(parent).merge_metrics(snap)
        dump = parent.metrics_dump()
        assert dump["counters"]["memo.hits{cache=search,process=shard-0}"] == 3
        assert validate_metrics_dump(dump) == []

    def test_merge_preserves_goodness_direction(self):
        child = _child()
        child.metrics.counter("memo.hits", better="higher").add(1)
        child.metrics.counter("memo.misses", better="lower").add(1)
        snap = MetricsSnapshot.capture(child.metrics, process="p")
        parent = obs.Session(label="parent")
        TelemetryAggregator(parent).merge_metrics(snap)
        meta = parent.metrics_dump()["meta"]
        assert meta["memo.hits"]["better"] == "higher"
        assert meta["memo.misses"]["better"] == "lower"

    def test_repeated_flushes_sum_exactly(self):
        child = _child()
        tel = ChildTelemetry(child, process="w-1")
        parent = obs.Session(label="parent")
        agg = TelemetryAggregator(parent)
        for _ in range(3):
            child.metrics.counter("ops").add(2)
            child.metrics.histogram("lat_ms").observe(5.0)
            agg.absorb(tel.flush())
        dump = parent.metrics_dump()
        assert dump["counters"]["ops{process=w-1}"] == 6
        h = dump["histograms"]["lat_ms{process=w-1}"]
        assert h["count"] == 3 and h["sum"] == pytest.approx(15.0)

    def test_payload_survives_json_round_trip(self):
        child = _child()
        tel = ChildTelemetry(child, process="w-1")
        child.metrics.counter("ops").add(4)
        with child.tracer.span("child.work", cat="test"):
            pass
        payload = json.loads(json.dumps(tel.flush()))
        parent = obs.Session(label="parent")
        TelemetryAggregator(parent).absorb(payload)
        assert parent.metrics_dump()["counters"]["ops{process=w-1}"] == 4
        assert len(parent.tracer.foreign["w-1"]) == 1

    def test_absorb_none_is_noop(self):
        parent = obs.Session(label="parent")
        TelemetryAggregator(parent).absorb(None)
        assert parent.metrics_dump()["counters"] == {}


class TestChildTelemetry:
    def test_flush_none_when_idle(self):
        tel = ChildTelemetry(_child(), process="w")
        assert tel.flush() is None
        assert tel.flush() is None

    def test_flush_ships_only_new_spans(self):
        child = _child()
        tel = ChildTelemetry(child, process="w")
        with child.tracer.span("a", cat="t"):
            pass
        first = tel.flush()
        assert [s["name"] for s in first["spans"]] == ["a"]
        with child.tracer.span("b", cat="t"):
            pass
        second = tel.flush()
        assert [s["name"] for s in second["spans"]] == ["b"]


class TestForeignSpanExport:
    def test_child_spans_render_as_extra_process_lanes(self):
        child = _child("shard-0")
        tel = ChildTelemetry(child, process="shard-0")
        with child.tracer.span("shard.request", cat="shard", kind="search"):
            pass
        parent = obs.Session(label="serve")
        with parent.tracer.span("serve.request", cat="serve"):
            pass
        TelemetryAggregator(parent).absorb(tel.flush())
        doc = parent.chrome_trace()
        assert validate_chrome_trace(doc) == []
        events = doc["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert len(pids) == 2  # parent lane + one child lane
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"serve.request", "shard.request"} <= names

    def test_span_batch_capture_respects_cursor(self):
        child = _child()
        cur = SnapshotCursor()
        with child.tracer.span("one", cat="t"):
            pass
        batch = SpanBatch.capture(child.tracer, cur, process="w")
        assert len(batch.spans) == 1
        assert SpanBatch.capture(child.tracer, cur, process="w").empty()
