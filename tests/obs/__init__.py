"""Tests for repro.obs — the unified telemetry layer."""
