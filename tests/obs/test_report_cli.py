"""The `python -m repro.obs.report` CLI: summary, diff, self-test."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import METRICS_SCHEMA
from repro.obs.report import diff_dumps, main, self_test


def _dump(counters: dict, meta: dict | None = None) -> dict:
    return {
        "schema": METRICS_SCHEMA,
        "label": "t",
        "counters": counters,
        "gauges": {},
        "histograms": {},
        "meta": meta
        or {k.split("{", 1)[0]: {"kind": "counter", "better": "lower", "help": ""}
            for k in counters},
    }


def _write(tmp_path, name, doc):
    p = tmp_path / name
    p.write_text(json.dumps(doc))
    return str(p)


class TestDiffDumps:
    def test_regression_detected(self):
        base = _dump({"misses": 100})
        new = _dump({"misses": 150})
        (entry,) = diff_dumps(base, new, tolerance=0.02)
        assert entry.regressed and entry.worsening == pytest.approx(0.5)

    def test_within_tolerance_ok(self):
        base = _dump({"misses": 100})
        new = _dump({"misses": 101})
        (entry,) = diff_dumps(base, new, tolerance=0.02)
        assert not entry.regressed

    def test_higher_is_better_direction(self):
        meta = {"hits": {"kind": "counter", "better": "higher", "help": ""}}
        base = _dump({"hits": 100}, meta)
        worse = _dump({"hits": 50}, meta)
        better = _dump({"hits": 200}, meta)
        assert diff_dumps(base, worse)[0].regressed
        assert not diff_dumps(base, better)[0].regressed
        assert diff_dumps(base, better)[0].improved

    def test_new_series_appearing_is_reported_not_gated(self):
        base = _dump({})
        new = _dump({"misses": 10})
        (entry,) = diff_dumps(base, new)
        assert entry.base is None and entry.one_sided
        assert entry.status == "new-only"
        assert not entry.regressed and not entry.improved

    def test_asymmetric_dumps_one_sided_both_ways(self):
        # Series unique to either side surface with a distinct status and
        # zero worsening; the shared series still gates normally.
        base = _dump({"misses": 100, "old.counter": 5})
        new = _dump({"misses": 150, "fresh.counter": 7})
        entries = {e.key: e for e in diff_dumps(base, new)}
        assert entries["old.counter"].status == "base-only"
        assert entries["old.counter"].new is None
        assert entries["fresh.counter"].status == "new-only"
        assert entries["fresh.counter"].worsening == 0.0
        assert not entries["old.counter"].regressed
        assert not entries["fresh.counter"].regressed
        assert entries["misses"].regressed  # shared series still gated

    def test_per_metric_tolerance_strips_labels(self):
        base = _dump({"steals{scheduler=ws}": 10})
        new = _dump({"steals{scheduler=ws}": 15})
        assert diff_dumps(base, new)[0].regressed
        assert not diff_dumps(base, new, per_metric={"steals": 1.0})[0].regressed


class TestCli:
    def test_summary_exit_zero(self, tmp_path, capsys):
        path = _write(tmp_path, "a.json", _dump({"misses": 3}))
        assert main(["summary", path]) == 0
        out = capsys.readouterr().out
        assert "misses" in out
        assert "per-process" not in out  # single-process dump: no breakdown

    def test_summary_renders_multi_process_breakdown(self, tmp_path, capsys):
        doc = _dump(
            {
                "cost.cycles{process=shard-0}": 5,
                "cost.cycles{process=shard-1}": 3,
                "serve.served": 2,
            }
        )
        path = _write(tmp_path, "agg.json", doc)
        assert main(["summary", path]) == 0
        out = capsys.readouterr().out
        assert "per-process" in out
        assert "shard-0" in out and "shard-1" in out

    def test_diff_asymmetric_keys_exit_zero(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json", _dump({"misses": 3}))
        b = _write(tmp_path, "b.json", _dump({"other.counter": 9}))
        assert main(["diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "base-only" in out and "new-only" in out

    def test_diff_identical_exit_zero(self, tmp_path):
        a = _write(tmp_path, "a.json", _dump({"misses": 3}))
        b = _write(tmp_path, "b.json", _dump({"misses": 3}))
        assert main(["diff", a, b]) == 0

    def test_diff_regression_exit_nonzero_and_prints(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json", _dump({"misses": 100}))
        b = _write(tmp_path, "b.json", _dump({"misses": 200}))
        assert main(["diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "misses" in out

    def test_diff_tolerance_flag(self, tmp_path):
        a = _write(tmp_path, "a.json", _dump({"misses": 100}))
        b = _write(tmp_path, "b.json", _dump({"misses": 110}))
        assert main(["diff", a, b]) == 1
        assert main(["diff", a, b, "--tolerance", "0.5"]) == 0

    def test_diff_per_metric_tol_flag(self, tmp_path):
        a = _write(tmp_path, "a.json", _dump({"misses": 100, "cycles": 100}))
        b = _write(tmp_path, "b.json", _dump({"misses": 150, "cycles": 100}))
        assert main(["diff", a, b, "--tol", "misses=0.9"]) == 0

    def test_rejects_invalid_dump(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(SystemExit):
            main(["summary", str(bad)])

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_self_test_passes(self, capsys):
        assert self_test() == 0
        assert "ok" in capsys.readouterr().out

    def test_self_test_flag(self):
        assert main(["--self-test"]) == 0
