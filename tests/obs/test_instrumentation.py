"""The acceptance tests for the instrumented simulators.

Covers the telemetry layer end to end: the paper's worked example produces
a schema-valid Chrome trace; cache counters in the metrics dump exactly
equal the simulator's internal counters; schedulers publish their
statistics; and — the overhead guarantee — with observability disabled an
instrumented simulator performs exactly one active-session check per call
and touches no metric objects at all.
"""

from __future__ import annotations

import contextlib
import io
import json
import pathlib
import runpy

import pytest

from repro import obs
from repro.algorithms.reduce_ import reduce_fork_join
from repro.machines.cachesim import CacheHierarchy, LRUCache, ideal_cache, run_trace
from repro.obs.export import validate_chrome_trace, validate_metrics_dump

ROOT = pathlib.Path(__file__).resolve().parents[2]


def _reduce_dag(n=64):
    return reduce_fork_join(list(range(n))).dag


class TestWorkedExampleTrace:
    """Acceptance: a full run of examples/paper_worked_example.py under
    obs.session produces a valid Chrome trace_event JSON and metrics."""

    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("obs")
        with obs.session(label="worked", out_dir=out) as sess:
            with contextlib.redirect_stdout(io.StringIO()):
                runpy.run_path(
                    str(ROOT / "examples" / "paper_worked_example.py"),
                    run_name="__main__",
                )
        return sess, out

    def test_chrome_trace_schema(self, artifacts):
        _, out = artifacts
        doc = json.loads((out / "worked.trace.json").read_text())
        assert validate_chrome_trace(doc) == []
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete, "no spans recorded"
        for e in complete:
            assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0
            assert isinstance(e["dur"], (int, float)) and e["dur"] > 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        names = {e["name"] for e in complete}
        assert {"grid.run", "grid.legality", "grid.execute", "grid.verify"} <= names

    def test_model_time_attribution(self, artifacts):
        sess, _ = artifacts
        (run_span,) = sess.tracer.find("grid.run")
        assert run_span.cycles == sess.metrics.get_value("grid.cycles")
        assert run_span.args.get("verified") is True

    def test_metrics_dump_valid(self, artifacts):
        _, out = artifacts
        doc = json.loads((out / "worked.metrics.json").read_text())
        assert validate_metrics_dump(doc) == []
        assert doc["counters"]["grid.runs"] == 1
        assert doc["counters"]["grid.verified_runs"] == 1


class TestCacheCountersExact:
    """Acceptance: metrics counters exactly equal CacheSim internals."""

    def test_single_cache_exact_match(self):
        trace = [("r", i % 40) for i in range(400)] + [("w", i) for i in range(64)]
        with obs.session(label="c") as sess:
            cache = ideal_cache(16, 2, name="L1")
            run_trace(cache, trace)
        st = cache.stats
        for field in ("accesses", "hits", "misses", "writebacks",
                      "read_misses", "write_misses"):
            want = getattr(st, field)
            got = sess.metrics.get_value(f"cache.{field}", level="L1") or 0
            assert got == want, f"cache.{field}: metrics {got} != stats {want}"

    def test_hierarchy_exact_match(self):
        hier = CacheHierarchy(
            [LRUCache(8, 2, name="L1"), LRUCache(32, 2, name="L2")]
        )
        trace = [("r", (7 * i) % 100) for i in range(500)] + [
            ("w", i % 50) for i in range(200)
        ]
        with obs.session(label="h") as sess:
            run_trace(hier, trace)
        for lvl in hier.levels:
            for field in ("accesses", "hits", "misses"):
                want = getattr(lvl.stats, field)
                got = sess.metrics.get_value(f"cache.{field}", level=lvl.name) or 0
                assert got == want, f"{lvl.name} {field}: {got} != {want}"
        assert sess.metrics.get_value("cache.mem_accesses", level="mem") == (
            hier.mem_accesses or None
        )

    def test_repeated_publish_never_double_counts(self):
        trace = [("r", i % 10) for i in range(100)]
        with obs.session(label="c") as sess:
            cache = ideal_cache(8, 1, name="L1")
            run_trace(cache, trace)
            cache.publish_metrics()
            cache.publish_metrics()
            run_trace(cache, trace)
        assert sess.metrics.get_value("cache.accesses", level="L1") == cache.stats.accesses

    def test_no_session_no_effect(self):
        cache = ideal_cache(8, 1, name="L1")
        run_trace(cache, [("r", i) for i in range(20)])
        cache.publish_metrics()  # no active session: must be a no-op
        assert cache.stats.accesses == 20


class TestSchedulerTelemetry:
    def test_counters_match_schedule(self):
        from repro.runtime.scheduler import work_stealing_schedule

        dag = _reduce_dag()
        with obs.session(label="s") as sess:
            sched = work_stealing_schedule(dag, 4, seed=3)
        m = sess.metrics
        kind = {"scheduler": "work_stealing"}
        assert m.get_value("scheduler.busy_steps", **kind) == sched.busy_steps
        assert m.get_value("scheduler.tasks", **kind) == dag.n_nodes
        assert m.get_value("scheduler.steal_attempts", **kind) == sched.steal_attempts
        assert m.get_value("scheduler.steal_successes", **kind) == sched.successful_steals
        assert m.get_value("scheduler.utilization", **kind) == pytest.approx(
            sched.utilization
        )
        (span,) = sess.tracer.find("schedule.work_stealing")
        assert span.cycles == sched.length

    def test_counters_accumulate_across_runs(self):
        from repro.runtime.scheduler import greedy_schedule

        dag = _reduce_dag()
        with obs.session(label="s") as sess:
            s1 = greedy_schedule(dag, 2)
            s2 = greedy_schedule(dag, 8)
        m = sess.metrics
        assert m.get_value("scheduler.runs", scheduler="greedy") == 2
        assert (
            m.get_value("scheduler.busy_steps", scheduler="greedy")
            == s1.busy_steps + s2.busy_steps
        )
        qd = sess.metrics.histogram("scheduler.queue_depth", scheduler="greedy")
        assert qd.count > 0


class TestDisabledOverhead:
    """The opt-in guarantee: no session -> one active() probe per call,
    zero metric traffic.  (The structural form of the '< 5% scheduler
    microbenchmark overhead' acceptance criterion: a single predictable
    branch per scheduler invocation cannot cost 5% of a DAG simulation.)"""

    def test_scheduler_probes_once_and_publishes_nothing(self, monkeypatch):
        import repro.runtime.scheduler as sched_mod

        calls = []
        monkeypatch.setattr(
            sched_mod, "_obs_active", lambda: calls.append(1) or None
        )
        dag = _reduce_dag()
        sched = sched_mod.greedy_schedule(dag, 4)
        assert len(calls) == 1, "disabled path must probe the session exactly once"
        assert sched.busy_steps == dag.work()

    def test_run_trace_probes_once(self, monkeypatch):
        import repro.machines.cachesim as cs

        calls = []
        monkeypatch.setattr(cs, "_obs_active", lambda: calls.append(1) or None)
        run_trace(ideal_cache(8, 1), [("r", i % 4) for i in range(100)])
        assert len(calls) == 1


class TestSearchAndMachines:
    def test_sweep_counts_candidates(self):
        from repro.algorithms.edit_distance import edit_distance_graph
        from repro.core.mapping import GridSpec
        from repro.core.search import sweep_placements

        g = edit_distance_graph(6, 6, cell="lev")
        with obs.session(label="srch") as sess:
            results = sweep_placements(g, GridSpec(4, 1))
        assert sess.metrics.get_value("search.candidates") == len(results)
        assert len(sess.tracer.find("search.candidate")) == len(results)
        assert len(sess.tracer.find("search.sweep")) == 1
        h = sess.metrics.histogram("search.candidate_fom")
        assert h.count == len(results)
        assert h.min == pytest.approx(min(r.fom for r in results))

    def test_xmt_spawn_counters(self):
        from repro.machines.xmt import XmtMachine, ps

        def kernel(tid):
            yield ps(0, 1)

        with obs.session(label="x") as sess:
            m = XmtMachine(16)
            m.spawn(10, kernel)
        assert sess.metrics.get_value("xmt.spawn_blocks") == 1
        assert sess.metrics.get_value("xmt.ps_ops") == m.result.ps_ops == 10
        assert sess.metrics.get_value("xmt.cycles") == m.result.cycles
        (span,) = sess.tracer.find("xmt.spawn")
        assert span.cycles == m.result.cycles

    def test_noc_counters(self):
        from repro.machines.noc import Message, Noc

        msgs = [Message(mid=i, src=(0, 0), dst=(3, 0)) for i in range(5)]
        with obs.session(label="n") as sess:
            report = Noc(4, 1).simulate(msgs)
        assert sess.metrics.get_value("noc.messages", mesh="4x1") == 5
        assert (
            sess.metrics.get_value("noc.total_latency_cycles", mesh="4x1")
            == report.total_latency
        )
        (span,) = sess.tracer.find("noc.simulate")
        assert span.cycles == report.makespan
