"""MetricsRegistry: labeled series, kinds, snapshots."""

from __future__ import annotations

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry, series_key


class TestSeriesKey:
    def test_no_labels(self):
        assert series_key("cache.hits", {}) == "cache.hits"

    def test_labels_sorted(self):
        assert (
            series_key("cache.hits", {"level": "L1", "core": 3})
            == "cache.hits{core=3,level=L1}"
        )


class TestCounters:
    def test_accumulates(self):
        m = MetricsRegistry()
        m.counter("x").add(3)
        m.counter("x").add(4)
        assert m.get_value("x") == 7

    def test_labels_separate_series(self):
        m = MetricsRegistry()
        m.counter("cache.hits", level="L1").add(5)
        m.counter("cache.hits", level="L2").add(9)
        assert m.get_value("cache.hits", level="L1") == 5
        assert m.get_value("cache.hits", level="L2") == 9

    def test_counters_cannot_decrease(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.counter("x").add(-1)

    def test_kind_conflict_raises(self):
        m = MetricsRegistry()
        m.counter("x").inc()
        with pytest.raises(TypeError):
            m.gauge("x")

    def test_bad_direction_rejected(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.counter("x", better="sideways")


class TestGaugesAndHistograms:
    def test_gauge_last_write_wins(self):
        m = MetricsRegistry()
        m.gauge("u").set(0.5)
        m.gauge("u").set(0.75)
        assert m.get_value("u") == 0.75

    def test_histogram_summary(self):
        m = MetricsRegistry()
        h = m.histogram("depth")
        for v in (1, 5, 3):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3 and s["min"] == 1 and s["max"] == 5
        assert s["mean"] == pytest.approx(3.0)

    def test_empty_histogram_summary(self):
        assert Histogram("h", {}).summary()["count"] == 0


class TestSnapshot:
    def test_sections_and_meta(self):
        m = MetricsRegistry()
        m.counter("misses", level="L1").add(2)
        m.counter("hits", better="higher", level="L1").add(8)
        m.gauge("util").set(0.9)
        m.histogram("q").observe(4)
        snap = m.snapshot()
        assert snap["counters"]["misses{level=L1}"] == 2
        assert snap["gauges"]["util"] == 0.9
        assert snap["histograms"]["q"]["count"] == 1
        assert snap["meta"]["hits"]["better"] == "higher"
        assert snap["meta"]["misses"]["better"] == "lower"
        assert snap["meta"]["q"]["kind"] == "histogram"

    def test_get_value_missing_is_none(self):
        assert MetricsRegistry().get_value("nope") is None
