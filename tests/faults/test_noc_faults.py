"""NoC under link faults: deterministic detours with honest accounting,
and partitioned meshes surfacing undelivered messages."""

import pytest

from repro.faults import FaultPlan, FaultSpec, injection
from repro.machines.noc import Message, Noc, route_avoiding, xy_route


class TestDetour:
    def test_detour_pays_honest_extra_cost(self):
        # (0,0) -> (2,0): XY route uses (0,0)--(1,0); kill it
        dead = [((0, 0), (1, 0))]
        msg = [Message(0, (0, 0), (2, 0))]
        golden = Noc(3, 2).simulate(msg)
        rep = Noc(3, 2, dead_links=dead).simulate(msg)
        assert rep.rerouted == 1
        assert rep.extra_hops == 2  # around via row 1: 4 hops vs 2
        assert rep.extra_energy_fj > 0.0
        assert rep.latency[0] > golden.latency[0]
        assert rep.undelivered == []

    def test_unaffected_messages_unchanged(self):
        dead = [((0, 0), (1, 0))]
        msg = [Message(0, (0, 1), (2, 1))]  # row 1 traffic never sees it
        golden = Noc(3, 2).simulate(msg)
        rep = Noc(3, 2, dead_links=dead).simulate(msg)
        assert rep.rerouted == 0
        assert rep.latency == golden.latency

    def test_partitioned_mesh_surfaces_undelivered(self):
        # 2x1 mesh has exactly one link; killing it partitions the mesh
        rep = Noc(2, 1, dead_links=[((0, 0), (1, 0))]).simulate(
            [Message(0, (0, 0), (1, 0))]
        )
        assert rep.undelivered == [0]
        assert 0 not in rep.delivery_cycle

    def test_detour_deterministic(self):
        dead = {((1, 0), (1, 1))}
        a = route_avoiding((1, 0), (1, 2), 3, 3, dead)
        b = route_avoiding((1, 0), (1, 2), 3, 3, dead)
        assert a == b
        assert a is not None and len(a) == 4  # 2 XY hops + 2 detour hops

    def test_route_avoiding_matches_xy_length_when_clear(self):
        hops = route_avoiding((0, 0), (2, 2), 4, 4, set())
        assert hops is not None
        assert len(hops) == len(xy_route((0, 0), (2, 2)))

    def test_plan_links_merge_with_constructor_links(self):
        spec = FaultSpec(link_down=1.0)  # every link dead
        with injection(FaultPlan(0, spec)) as inj:
            rep = Noc(2, 2).simulate([Message(0, (0, 0), (1, 1))])
        assert rep.undelivered == [0]
        assert inj.n_injected == 1
        assert inj.n_unrecovered == 1

    def test_recovered_ledger_entries(self):
        spec = FaultSpec(link_down=0.3)
        # find a seed whose failures detour (not partition) this message
        for seed in range(300):
            plan = FaultPlan(seed, spec)
            dead = plan.dead_links(3, 3)
            route = xy_route((0, 0), (2, 2))
            from repro.faults.plan import canonical_link

            if not any(canonical_link(a, b) in dead for a, b in route):
                continue
            if route_avoiding((0, 0), (2, 2), 3, 3, dead) is None:
                continue
            with injection(plan) as inj:
                rep = Noc(3, 3).simulate([Message(0, (0, 0), (2, 2))])
            assert rep.rerouted == 1
            assert inj.n_recovered == 1
            return
        raise AssertionError("no seed under 300 produced a detourable fault")


class TestMessageValidation:
    def test_src_equals_dst_rejected(self):
        with pytest.raises(ValueError, match="src == dst"):
            Message(0, (1, 1), (1, 1))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="size_bytes"):
            Message(0, (0, 0), (1, 0), size_bytes=-4)
        with pytest.raises(ValueError, match="size_bytes"):
            Message(0, (0, 0), (1, 0), size_bytes=0)

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Message(0, (-1, 0), (1, 0))

    def test_malformed_endpoint_rejected(self):
        with pytest.raises(ValueError, match="tuple"):
            Message(0, (0, 0, 0), (1, 0))
        with pytest.raises(ValueError, match="tuple"):
            Message(0, (0, 0), (True, 0))

    def test_negative_inject_cycle_rejected(self):
        with pytest.raises(ValueError, match="inject_cycle"):
            Message(0, (0, 0), (1, 0), inject_cycle=-1)

    def test_out_of_bounds_endpoint_rejected_at_simulate(self):
        noc = Noc(2, 2)
        with pytest.raises(ValueError, match="outside"):
            noc.simulate([Message(0, (0, 0), (5, 0))])

    def test_multi_flit_serialization(self):
        # 32 bytes = 4 flits: tail trails head by 3 cycles
        one = Noc(3, 1).simulate([Message(0, (0, 0), (2, 0))])
        big = Noc(3, 1).simulate([Message(0, (0, 0), (2, 0), size_bytes=32)])
        assert big.latency[0] == one.latency[0] + 3


class TestNocConstruction:
    def test_dead_link_must_join_neighbours(self):
        with pytest.raises(ValueError, match="neighbours"):
            Noc(3, 3, dead_links=[((0, 0), (2, 0))])

    def test_dead_link_must_be_in_bounds(self):
        with pytest.raises(ValueError, match="outside"):
            Noc(2, 2, dead_links=[((1, 1), (1, 2))])
