"""FaultPlan: determinism, validation, and probability edge cases."""

import pytest

from repro.faults import FaultPlan, FaultSpec, canonical_link, iter_mesh_links

SPEC = FaultSpec(
    pe_fail=0.3,
    link_down=0.2,
    bitflip=0.15,
    worker_crash=0.2,
    worker_hang=0.1,
    worker_poison=0.1,
    executor_fail=0.8,
)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(42, SPEC).schedule(6, 4, 50, 16, 100)
        b = FaultPlan(42, SPEC).schedule(6, 4, 50, 16, 100)
        assert a == b

    def test_different_seed_different_schedule(self):
        a = FaultPlan(0, SPEC).schedule(6, 4, 50, 16, 100)
        b = FaultPlan(1, SPEC).schedule(6, 4, 50, 16, 100)
        assert a != b

    def test_queries_order_independent(self):
        """Per-site queries are pure: asking in any order, any number of
        times, gives the same answers (no hidden RNG stream)."""
        plan = FaultPlan(7, SPEC)
        forward = [plan.bitflip(i) for i in range(40)]
        backward = [plan.bitflip(i) for i in reversed(range(40))]
        assert forward == list(reversed(backward))
        assert plan.dead_pes(6, 4) == plan.dead_pes(6, 4)

    def test_schedule_matches_lazy_queries(self):
        """The materialized schedule is exactly what the lazy predicates
        report — the two views can never disagree."""
        plan = FaultPlan(11, SPEC)
        events = plan.schedule(4, 3, 20, 8, 50)
        pe_targets = {e.target for e in events if e.kind == "pe_fail"}
        assert pe_targets == plan.dead_pes(4, 3)
        flip_targets = {e.target for e in events if e.kind == "bitflip"}
        assert flip_targets == {(n,) for n in range(20) if plan.bitflip(n)}

    def test_link_queries_undirected(self):
        plan = FaultPlan(5, SPEC)
        for a, b in iter_mesh_links(4, 4):
            assert plan.link_dead(a, b) == plan.link_dead(b, a)


class TestProbabilityEdges:
    def test_zero_probability_never_fires(self):
        plan = FaultPlan(3, FaultSpec())
        assert plan.dead_pes(8, 8) == set()
        assert plan.dead_links(8, 8) == set()
        assert not any(plan.bitflip(n) for n in range(100))
        assert plan.executor_fault_step(1000) is None
        assert plan.worker_fault(0, 0) is None

    def test_probability_one_always_fires(self):
        plan = FaultPlan(3, FaultSpec(pe_fail=1.0, link_down=1.0, bitflip=1.0))
        assert plan.dead_pes(4, 4) == {(x, y) for x in range(4) for y in range(4)}
        assert plan.dead_links(4, 4) == set(iter_mesh_links(4, 4))
        assert all(plan.bitflip(n) for n in range(50))

    def test_worker_fault_gated_by_attempts(self):
        plan = FaultPlan(1, FaultSpec(worker_crash=1.0))
        assert plan.worker_fault(0, 0) == "crash"
        # beyond worker_faulty_attempts (default 1) the task runs clean
        assert plan.worker_fault(0, 1) is None

    def test_worker_fault_kind_split(self):
        plan = FaultPlan(
            9,
            FaultSpec(worker_crash=0.3, worker_hang=0.3, worker_poison=0.3,
                      worker_faulty_attempts=1),
        )
        kinds = {plan.worker_fault(i, 0) for i in range(200)}
        assert kinds == {None, "crash", "hang", "poison"}

    def test_executor_fault_step_in_range(self):
        plan = FaultPlan(2, FaultSpec(executor_fail=1.0))
        for length in (1, 5, 100):
            step = plan.executor_fault_step(length)
            assert step is not None and 1 <= step <= length
        assert plan.executor_fault_step(0) is None


class TestValidation:
    def test_probability_out_of_range(self):
        with pytest.raises(ValueError, match="pe_fail"):
            FaultSpec(pe_fail=1.5)
        with pytest.raises(ValueError, match="bitflip"):
            FaultSpec(bitflip=-0.1)

    def test_worker_probs_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum"):
            FaultSpec(worker_crash=0.6, worker_hang=0.6)

    def test_attempts_at_least_one(self):
        with pytest.raises(ValueError, match="worker_faulty_attempts"):
            FaultSpec(worker_faulty_attempts=0)

    def test_seed_must_be_int(self):
        with pytest.raises(TypeError):
            FaultPlan("7", SPEC)
        with pytest.raises(TypeError):
            FaultPlan(True, SPEC)


def test_canonical_link_sorted():
    assert canonical_link((1, 0), (0, 0)) == ((0, 0), (1, 0))
    assert canonical_link((0, 0), (1, 0)) == ((0, 0), (1, 0))
