"""Search under worker faults: crash / hang / poison recovered by retry or
in-process fallback, with results bit-identical to the reference engine."""

import pytest

from repro import obs
from repro.algorithms.edit_distance import edit_distance_graph
from repro.core.mapping import GridSpec
from repro.core.search import SearchEngine, _pool_map, sweep_placements
from repro.faults import FaultPlan, FaultSpec, injection
from repro.testing import assert_search_equivalent

GRAPH = edit_distance_graph(3)
GRID = GridSpec(2, 1)


def _square(x):
    return x * x


def _chaos_engine(**kw):
    return SearchEngine(
        parallel=True,
        n_workers=2,
        task_timeout_s=kw.pop("task_timeout_s", 30.0),
        max_retries=kw.pop("max_retries", 2),
        retry_backoff_s=0.01,
        **kw,
    )


class TestPoolMapGuards:
    def test_empty_payloads_short_circuit(self):
        assert _pool_map(_square, [], 4) == []

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError, match="positive worker count"):
            _pool_map(_square, [1, 2], 0)
        with pytest.raises(ValueError, match="positive worker count"):
            _pool_map(_square, [1, 2], -3)

    def test_plain_map_matches_serial(self):
        assert _pool_map(_square, list(range(20)), 2) == [
            x * x for x in range(20)
        ]


class TestWorkerFaults:
    REFERENCE = sweep_placements(GRAPH, GRID)

    def _sweep_under(self, spec, seed=0, **engine_kw):
        with injection(FaultPlan(seed, spec)) as inj:
            rows = sweep_placements(GRAPH, GRID, engine=_chaos_engine(**engine_kw))
        return rows, inj

    def test_crash_recovered_bit_identical(self):
        rows, inj = self._sweep_under(FaultSpec(worker_crash=1.0))
        assert_search_equivalent(rows, self.REFERENCE, context="crash chaos")
        assert inj.n_injected > 0
        assert inj.n_recovered == inj.n_injected

    def test_poison_recovered_bit_identical(self):
        rows, inj = self._sweep_under(FaultSpec(worker_poison=1.0))
        assert_search_equivalent(rows, self.REFERENCE, context="poison chaos")
        assert inj.n_recovered == inj.n_injected > 0

    def test_hang_recovered_by_timeout(self):
        rows, inj = self._sweep_under(
            FaultSpec(worker_hang=1.0), task_timeout_s=1.0
        )
        assert_search_equivalent(rows, self.REFERENCE, context="hang chaos")
        assert inj.n_recovered == inj.n_injected > 0

    def test_persistent_crash_falls_back_in_process(self):
        # every attempt of every task crashes: only the in-process
        # fallback can finish, and it must still be bit-identical
        spec = FaultSpec(worker_crash=1.0, worker_faulty_attempts=99)
        with obs.session(label="fallback", write_on_exit=False) as sess:
            rows, inj = self._sweep_under(spec, max_retries=1)
        assert_search_equivalent(rows, self.REFERENCE, context="fallback chaos")
        assert inj.n_recovered == inj.n_injected > 0
        assert (sess.metrics.get_value("search.pool_fallbacks") or 0) > 0

    def test_fault_free_plan_identical_results(self):
        rows, inj = self._sweep_under(FaultSpec())
        assert_search_equivalent(rows, self.REFERENCE, context="no chaos")
        assert inj.n_injected == 0
