"""Checkpoint/replay scheduling under injected executor faults."""

from repro.faults import FaultPlan, FaultSpec, injection
from repro.models.workdepth import Dag
from repro.runtime.scheduler import (
    checkpointed_schedule,
    greedy_schedule,
    work_stealing_schedule,
)


def _dag(seed=0):
    return Dag.random_dag(40, 0.1, seed=seed, max_duration=3)


class TestNoFault:
    def test_pass_through_without_injection(self):
        dag = _dag()
        run = checkpointed_schedule(dag, p=4)
        base = greedy_schedule(dag, 4)
        assert not run.faulted
        assert run.fault_step is None
        assert run.replayed_tasks == 0
        assert run.overhead_steps == 0
        assert run.schedule.length == base.length
        run.schedule.validate_against(dag)

    def test_pass_through_with_zero_probability(self):
        dag = _dag()
        with injection(FaultPlan(3, FaultSpec())):
            run = checkpointed_schedule(dag, p=4)
        assert not run.faulted
        run.schedule.validate_against(dag)


class TestFaulted:
    SPEC = FaultSpec(executor_fail=1.0)

    def test_replay_valid_and_recovered(self):
        dag = _dag()
        with injection(FaultPlan(5, self.SPEC)) as inj:
            run = checkpointed_schedule(dag, p=4, checkpoint_every=8)
        assert run.faulted
        assert run.recovered
        assert run.fault_step is not None
        assert run.checkpoint_step == (run.fault_step // 8) * 8
        assert run.checkpoint_step <= run.fault_step
        run.schedule.validate_against(dag)
        assert inj.n_injected == 1
        assert inj.n_recovered == 1

    def test_busy_steps_conserved(self):
        """Replay re-executes lost work but never loses or invents any:
        total busy steps equal the DAG's total work plus the re-executed
        in-flight portion, and are at least the fault-free total."""
        dag = _dag(seed=2)
        base = greedy_schedule(dag, 4)
        with injection(FaultPlan(1, self.SPEC)):
            run = checkpointed_schedule(dag, p=4, checkpoint_every=8)
        assert run.schedule.busy_steps >= base.busy_steps

    def test_seed_determinism(self):
        dag = _dag(seed=4)
        def once(seed):
            with injection(FaultPlan(seed, self.SPEC)):
                return checkpointed_schedule(dag, p=3, checkpoint_every=16)
        a, b = once(9), once(9)
        assert a.fault_step == b.fault_step
        assert a.schedule.start_times == b.schedule.start_times
        assert a.schedule.assignments == b.schedule.assignments

    def test_checkpoint_every_one_replays_least(self):
        """Denser checkpoints can only shrink the replayed-task count."""
        dag = _dag(seed=6)
        def replayed(every):
            with injection(FaultPlan(7, self.SPEC)):
                return checkpointed_schedule(
                    dag, p=4, checkpoint_every=every
                ).replayed_tasks
        assert replayed(1) <= replayed(64)

    def test_works_with_other_schedulers(self):
        dag = _dag(seed=8)
        with injection(FaultPlan(2, self.SPEC)):
            run = checkpointed_schedule(
                dag, p=4, scheduler=work_stealing_schedule,
                checkpoint_every=8, seed=1,
            )
        assert run.faulted
        run.schedule.validate_against(dag)
