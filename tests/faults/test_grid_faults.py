"""Grid machine under injected faults: PE fail-stop remap, bitflip replay,
and graceful degradation in non-strict mode."""

import pytest

from repro.algorithms.edit_distance import edit_distance_graph
from repro.core.default_mapper import default_mapping
from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec
from repro.faults import FaultPlan, FaultSpec, injection
from repro.machines.grid import GridExecutionError, GridMachine

INPUTS = {"R": lambda i: (i * 7 + 3) % 5, "Q": lambda j: (j * 3 + 1) % 5}


def _find_seed(pred, spec, limit=300):
    """First seed whose plan satisfies ``pred`` — deterministic scan, so
    the test never depends on luck at a magic constant."""
    for seed in range(limit):
        if pred(FaultPlan(seed, spec)):
            return seed
    raise AssertionError(f"no seed below {limit} satisfies the predicate")


class TestPeFailRemap:
    SPEC = FaultSpec(pe_fail=0.3)
    GRID = GridSpec(4, 2)

    def _partial_failure_seed(self, mapping):
        used = mapping.places_used()
        return _find_seed(
            lambda plan: 0
            < len(plan.dead_pes(4, 2) & used)
            < self.GRID.n_places
            and len(plan.dead_pes(4, 2)) < self.GRID.n_places,
            self.SPEC,
        )

    def test_remap_recovers_bit_identical(self):
        g = edit_distance_graph(4)
        mapping = default_mapping(g, self.GRID)
        machine = GridMachine(self.GRID)
        golden = machine.run(g, mapping, INPUTS)
        seed = self._partial_failure_seed(mapping)
        with injection(FaultPlan(seed, self.SPEC)) as inj:
            res = machine.run(g, mapping, INPUTS)
        assert res.remapped
        assert res.verified
        assert res.outputs == golden.outputs
        assert inj.n_injected > 0
        assert inj.n_recovered == inj.n_injected
        # the remapped schedule avoids every dead PE
        plan = FaultPlan(seed, self.SPEC)
        assert not (plan.dead_pes(4, 2) & mapping.places_used()) or res.remapped

    def test_all_pes_dead_strict_raises(self):
        g = edit_distance_graph(3)
        grid = GridSpec(2, 1)
        mapping = default_mapping(g, grid)
        with injection(FaultPlan(0, FaultSpec(pe_fail=1.0))):
            with pytest.raises(GridExecutionError, match="fail-stopped"):
                GridMachine(grid, strict=True).run(g, mapping, INPUTS)

    def test_all_pes_dead_nonstrict_degrades(self):
        g = edit_distance_graph(3)
        grid = GridSpec(2, 1)
        mapping = default_mapping(g, grid)
        with injection(FaultPlan(0, FaultSpec(pe_fail=1.0))) as inj:
            res = GridMachine(grid, strict=False).run(g, mapping, INPUTS)
        assert not res.remapped
        assert inj.n_injected > 0
        assert inj.n_unrecovered == inj.n_injected
        assert inj.all_handled  # surfaced, not silently lost

    def test_unused_dead_pes_are_free(self):
        """Dead PEs the mapping never touches inject nothing."""
        g = edit_distance_graph(3)
        grid = GridSpec(4, 2)
        mapping = default_mapping(g, grid)
        used = mapping.places_used()
        spec = FaultSpec(pe_fail=0.3)
        seed = _find_seed(
            lambda plan: plan.dead_pes(4, 2)
            and not plan.dead_pes(4, 2) & used,
            spec,
        )
        with injection(FaultPlan(seed, spec)) as inj:
            res = GridMachine(grid).run(g, mapping, INPUTS)
        assert not res.remapped
        assert inj.n_injected == 0


class TestBitflip:
    def test_flip_detected_and_replayed(self):
        g = edit_distance_graph(4)
        grid = GridSpec(4, 1)
        mapping = default_mapping(g, grid)
        machine = GridMachine(grid)
        golden = machine.run(g, mapping, INPUTS)
        with injection(FaultPlan(1, FaultSpec(bitflip=1.0))) as inj:
            res = machine.run(g, mapping, INPUTS)
        assert res.retries == 1
        assert res.verified
        assert res.outputs == golden.outputs
        assert inj.n_injected == len(g.compute_nodes())
        assert inj.n_recovered == inj.n_injected

    def test_masked_flip_counts_recovered_without_replay(self):
        # min(a, -5) == -5 whatever happens to a: a flip on `a` is masked
        g = DataflowGraph()
        x = g.input("X", (0,))
        zero = g.const(0)
        a = g.op("+", x, zero)        # node 2: flip target
        floor = g.const(-5)
        m = g.op("min", a, floor)     # node 4: must stay clean
        g.mark_output(m, ("out",))
        grid = GridSpec(2, 1)
        mapping = default_mapping(g, grid)
        spec = FaultSpec(bitflip=0.5)
        seed = _find_seed(
            lambda plan: plan.bitflip(a) and not plan.bitflip(m), spec
        )
        with injection(FaultPlan(seed, spec)) as inj:
            res = GridMachine(grid).run(g, mapping, {"X": lambda i: 4})
        assert res.verified
        assert res.retries == 0
        assert res.outputs == {("out",): -5}
        assert inj.n_injected == 1
        assert inj.n_recovered == 1
        assert any("masked" in r.target for r in inj.records
                   if r.action == "recovered")
