"""The perf-regression gate over bench metrics JSONs (tools/bench_gate.py)."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_gate",
    pathlib.Path(__file__).resolve().parents[2] / "tools" / "bench_gate.py",
)
bench_gate = importlib.util.module_from_spec(_SPEC)
# register before exec: the GateEntry dataclass resolves its (stringified)
# annotations through sys.modules at class-creation time
sys.modules["bench_gate"] = bench_gate
_SPEC.loader.exec_module(bench_gate)

#: a realistic c21-style metrics doc
BASE = {
    "mode": "smoke",
    "seed": 1,
    "campaign": {"t_reference_s": 2.0, "t_compiled_s": 1.0, "speedup": 2.0},
    "disk_restart": {"t_cold_s": 1.0, "t_warm_s": 0.5, "speedup": 2.0},
    "ok": True,
}


def _with(path: str, value: float) -> dict:
    doc = json.loads(json.dumps(BASE))
    section, leaf = path.split(".")
    doc[section][leaf] = value
    return doc


def _write(tmp_path, name, doc):
    p = tmp_path / name
    p.write_text(json.dumps(doc))
    return str(p)


class TestDirections:
    def test_speedup_is_higher_better(self):
        assert bench_gate.direction_of("campaign.speedup") == "higher"

    def test_timings_are_lower_better(self):
        assert bench_gate.direction_of("campaign.t_compiled_s") == "lower"
        assert bench_gate.direction_of("serve.wait_ms") == "lower"

    def test_counts_are_informational(self):
        assert bench_gate.direction_of("seed") is None
        assert bench_gate.direction_of("disk_restart.entries") is None


class TestCompare:
    def test_twenty_percent_speedup_drop_is_flagged(self):
        """The PR's pinned scenario: a synthetic 20% regression on a
        higher-is-better key fails the default-ish gate."""
        new = _with("campaign.speedup", 1.6)  # 2.0 -> 1.6 = -20%
        entries = bench_gate.compare(BASE, new, tolerance=0.15)
        by_key = {e.key: e for e in entries}
        e = by_key["campaign.speedup"]
        assert e.regressed and e.status == "REGRESSED"
        assert e.worsening == pytest.approx(0.2)

    def test_within_tolerance_passes(self):
        new = _with("campaign.t_compiled_s", 1.1)  # +10% < 25% default
        entries = bench_gate.compare(BASE, new)
        assert not any(e.regressed for e in entries)

    def test_improvement_is_not_a_regression(self):
        new = _with("campaign.t_compiled_s", 0.5)
        by_key = {e.key: e for e in bench_gate.compare(BASE, new)}
        e = by_key["campaign.t_compiled_s"]
        assert not e.regressed and e.status == "improved"

    def test_one_sided_keys_reported_never_gated(self):
        new = json.loads(json.dumps(BASE))
        del new["disk_restart"]
        new["cache_replay"] = {"t_compiled_s": 9999.0}
        by_key = {e.key: e for e in bench_gate.compare(BASE, new)}
        assert by_key["disk_restart.speedup"].status == "baseline-only"
        assert by_key["cache_replay.t_compiled_s"].status == "new-only"
        assert not any(e.regressed for e in by_key.values() if e.one_sided)

    def test_informational_keys_never_gate(self):
        new = json.loads(json.dumps(BASE))
        new["seed"] = 999
        by_key = {e.key: e for e in bench_gate.compare(BASE, new)}
        assert by_key["seed"].status == "info" and not by_key["seed"].regressed

    def test_per_key_tolerance_and_ignore(self):
        new = _with("campaign.speedup", 1.6)
        loose = bench_gate.compare(BASE, new, per_key={"campaign.speedup": 0.5})
        assert not any(e.regressed for e in loose)
        ignored = bench_gate.compare(BASE, new, ignore={"campaign.speedup"})
        assert "campaign.speedup" not in {e.key for e in ignored}

    def test_booleans_are_not_metrics(self):
        flat = bench_gate.flatten_metrics(BASE)
        assert "ok" not in flat
        assert flat["campaign.speedup"] == 2.0


class TestCli:
    def test_regression_exits_one(self, tmp_path, capsys):
        b = _write(tmp_path, "b.json", BASE)
        n = _write(tmp_path, "n.json", _with("campaign.speedup", 1.6))
        assert bench_gate.main([b, n, "--tolerance", "0.15"]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_warn_only_exits_zero(self, tmp_path):
        b = _write(tmp_path, "b.json", BASE)
        n = _write(tmp_path, "n.json", _with("campaign.speedup", 1.6))
        assert bench_gate.main([b, n, "--tolerance", "0.15", "--warn-only"]) == 0

    def test_missing_baseline_exits_zero(self, tmp_path, capsys):
        n = _write(tmp_path, "n.json", BASE)
        assert bench_gate.main([str(tmp_path / "absent.json"), n]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_bad_json_exits_two(self, tmp_path):
        b = _write(tmp_path, "b.json", BASE)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert bench_gate.main([b, str(bad)]) == 2

    def test_identical_inputs_exit_zero(self, tmp_path):
        b = _write(tmp_path, "b.json", BASE)
        assert bench_gate.main([b, b]) == 0
