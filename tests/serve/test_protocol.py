"""Protocol layer: request validation, JSON round trips, and the one
executor's bit-identity with direct facade calls."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.core.memo import MemoCache
from repro.core.search import SearchEngine
from repro.serve.protocol import (
    KINDS,
    OK,
    REJECTION_CODES,
    ProtocolError,
    Request,
    Response,
    cost_report_from_jsonable,
    execute_request,
    mapping_from_jsonable,
    mapping_to_jsonable,
    search_results_from_rows,
)
from repro.testing.golden import cost_report_to_jsonable
from repro.testing.oracle import assert_search_equivalent


def test_request_rejects_unknown_kind_and_fields():
    with pytest.raises(ProtocolError):
        Request("transmogrify", {})
    with pytest.raises(ProtocolError):
        Request.from_jsonable({"kind": "search", "bogus": 1})
    with pytest.raises(ProtocolError):
        Request.from_jsonable(["not", "a", "dict"])


def test_request_roundtrip():
    req = Request("search", {"workload": "fft", "machine": [4, 1]}, "r9", 2.5)
    back = Request.from_jsonable(json.loads(json.dumps(req.as_jsonable())))
    assert back == req


def test_response_flags():
    ok = Response(id="a", kind="search", code=OK, result={})
    assert ok.ok and not ok.shed
    for code in REJECTION_CODES:
        r = Response(id="a", kind="search", code=code, detail="x")
        assert r.shed and not r.ok
    doc = json.loads(json.dumps(ok.as_jsonable()))
    assert Response.from_jsonable(doc).ok


def test_mapping_roundtrip_is_exact():
    res = api.evaluate("stencil", (4, 1), n=8)
    back = mapping_from_jsonable(
        json.loads(json.dumps(mapping_to_jsonable(res.mapping)))
    )
    assert (back.x == res.mapping.x).all()
    assert (back.y == res.mapping.y).all()
    assert (back.time == res.mapping.time).all()
    assert (back.offchip == res.mapping.offchip).all()


def test_cost_report_roundtrip_is_bit_identical():
    res = api.evaluate("fft", (4, 1), n=16)
    doc = json.loads(json.dumps(cost_report_to_jsonable(res.cost)))
    back = cost_report_from_jsonable(doc)
    assert back.cycles == res.cost.cycles
    assert back.time_ps == res.cost.time_ps
    assert back.energy_total_fj == res.cost.energy_total_fj
    assert back.energy_offchip_fj == res.cost.energy_offchip_fj


@pytest.mark.parametrize("kind", KINDS)
def test_execute_request_needs_required_fields(kind):
    with pytest.raises(ProtocolError):
        execute_request(Request(kind, {}))


def test_executor_matches_direct_search_bit_for_bit():
    req = Request(
        "search",
        {"workload": {"name": "stencil", "params": {"n": 12}}, "machine": [4, 1]},
    )
    # reference path (no warm state) and warm-engine path must both match
    direct = api.search("stencil", (4, 1), n=12)
    for engine in (
        None,
        SearchEngine(memoize=True, incremental=True, cache=MemoCache("t")),
    ):
        out = execute_request(req, engine=engine)
        served = search_results_from_rows(
            json.loads(json.dumps(out))["rows"]
        )
        assert_search_equivalent(served, direct, context="protocol-executor")


def test_executor_evaluate_matches_direct():
    out = execute_request(
        Request("evaluate", {"workload": "matmul", "machine": [2, 2]})
    )
    direct = api.evaluate("matmul", (2, 2))
    assert out["cost"] == cost_report_to_jsonable(direct.cost)


def test_executor_simulate_and_score():
    trace = [["r", a] for a in range(64)] * 2
    out = execute_request(
        Request("simulate", {"levels": [[32, 4, None, "L1"]], "trace": trace})
    )
    assert out["L1"]["accesses"] == 128
    placement = [[0, 0]] * 12
    score_out = execute_request(
        Request(
            "score",
            {
                "workload": {"name": "matmul", "params": {"n": 2}},
                "machine": [2, 1],
                "placement": placement,
            },
        )
    )
    direct = api.score("matmul", (2, 1), placement, n=2)
    assert score_out["cost"] == cost_report_to_jsonable(direct.cost)
    assert score_out["fom"] == direct.fom
