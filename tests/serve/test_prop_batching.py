"""Property: batching is invisible in the results.

However requests are interleaved, ordered, or split into batches, every
request gets the same answer it would get alone — batch formation changes
throughput, never results.  Also: formation itself partitions tickets
(no loss, no duplication) and respects the size cap.
"""

from __future__ import annotations

import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.batcher import Ticket, batch_key, form_batches, route
from repro.serve.protocol import Request, execute_request

# small, fast workloads; params chosen so several distinct keys exist
_JOBS = [
    ("stencil", {"n": 6}, [2, 1]),
    ("stencil", {"n": 6}, [3, 1]),
    ("sum_squares", {"n": 6}, [2, 1]),
    ("matmul", {"n": 2}, [2, 1]),
]


def _request(job_index: int, seed: int) -> Request:
    name, params, machine = _JOBS[job_index % len(_JOBS)]
    return Request(
        "evaluate",
        {"workload": {"name": name, "params": params}, "machine": machine,
         "mapper": "serial" if seed % 2 else "default"},
    )


def _ticket(req: Request) -> Ticket:
    return Ticket(req, accepted_ns=time.perf_counter_ns(), deadline_ns=None)


@given(
    jobs=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=10
    ),
    max_batch=st.integers(1, 4),
)
@settings(max_examples=10, deadline=None)
def test_formation_partitions_tickets(jobs, max_batch):
    tickets = [_ticket(_request(j, s)) for j, s in jobs]
    batches, next_id = form_batches(tickets, max_batch, 0)
    seen = [t for b in batches for t in b.tickets]
    assert sorted(map(id, seen)) == sorted(map(id, tickets))  # exact partition
    assert next_id == len(batches)
    for b in batches:
        assert 1 <= len(b) <= max_batch
        assert all(batch_key(t.request) == b.key for t in b.tickets)
        assert 0 <= route(b.key, 3) < 3


@given(
    jobs=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=6
    ),
    max_batch=st.integers(1, 3),
)
@settings(max_examples=10, deadline=None)
def test_batched_execution_equals_solo_execution(jobs, max_batch):
    """Executing requests grouped by the batcher gives byte-identical
    JSON results to executing each alone, in any grouping."""
    requests = [_request(j, s) for j, s in jobs]
    solo = [execute_request(r) for r in requests]
    batches, _ = form_batches([_ticket(r) for r in requests], max_batch, 0)
    by_req: dict[int, object] = {}
    for b in batches:
        for t in b.tickets:
            by_req[id(t.request)] = execute_request(t.request)
    for req, expect in zip(requests, solo):
        assert by_req[id(req)] == expect
