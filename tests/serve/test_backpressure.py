"""Backpressure and load shedding answer with explicit rejection codes —
never a silent drop, never an unbounded queue."""

from __future__ import annotations

import time

import pytest

from repro.serve import (
    DEADLINE_EXCEEDED,
    QUEUE_FULL,
    REJECTION_CODES,
    SHUTTING_DOWN,
    EvaluationServer,
    Request,
)
from repro.serve.batcher import PendingQueue, Ticket


def _search_request(seed=0):
    return Request(
        "search",
        {"workload": {"name": "stencil", "params": {"n": 16}},
         "machine": [4, 1], "seed": seed},
    )


def test_queue_full_rejects_instantly():
    # a tiny queue and a tick loop that cannot drain: hold the tick thread
    # hostage by not starting the server at all -- use the queue directly
    q = PendingQueue(2)
    now = time.perf_counter_ns()
    t1, t2, t3 = (
        Ticket(_search_request(i), accepted_ns=now, deadline_ns=None)
        for i in range(3)
    )
    assert q.admit(t1) and q.admit(t2)
    assert not q.admit(t3)  # third one bounces


def test_server_sheds_with_queue_full_code():
    srv = EvaluationServer(
        n_shards=1, max_queue=2, max_batch=1, tick_s=0.05,
        max_inflight_per_shard=1,
    ).start()
    try:
        # submit a burst far beyond queue + in-flight capacity in one tick
        tickets = [srv.submit(_search_request(i)) for i in range(12)]
        rejected_now = [
            t.response.code for t in tickets if t.response is not None
        ]
        assert QUEUE_FULL in rejected_now, "burst must bounce off the bounded queue"
        # every accepted request still resolves (served, or shed explicitly)
        resps = [t.wait(120) for t in tickets]
        assert all(r is not None for r in resps)
        codes = {r.code for r in resps}
        assert codes <= {"OK"} | set(REJECTION_CODES)
    finally:
        srv.stop()


def test_deadline_exceeded_is_explicit():
    srv = EvaluationServer(n_shards=1, tick_s=0.02).start()
    try:
        # a deadline that expires before the next tick can dispatch it
        t = srv.submit(
            Request("search", _search_request().payload, deadline_s=1e-9)
        )
        resp = t.wait(30)
        assert resp is not None
        assert resp.code == DEADLINE_EXCEEDED
        assert "deadline" in resp.detail
    finally:
        srv.stop()


def test_shutting_down_rejects_new_work():
    srv = EvaluationServer(n_shards=1, tick_s=0.002).start()
    srv.stop()
    resp = srv.submit(_search_request()).wait(5)
    assert resp is not None and resp.code == SHUTTING_DOWN


def test_rejections_counted_in_stats():
    srv = EvaluationServer(n_shards=1, tick_s=0.02).start()
    try:
        t = srv.submit(
            Request("search", _search_request().payload, deadline_s=1e-9)
        )
        assert t.wait(30).code == DEADLINE_EXCEEDED
        assert srv.stats()["rejected"] >= 1
    finally:
        srv.stop()
