"""Distributed telemetry through the serving stack: shard-side counters
and spans merge into the parent session (with ``process`` labels and one
Chrome trace), trace ids ride requests end to end, and the live
``/metrics`` + ``/healthz`` endpoints expose it all over HTTP.

This file carries the PR's acceptance test: one client call through a
2-shard server must produce a single merged trace whose parent and child
spans share a ``trace_id``, and ``/metrics`` must report shard-process
counters labeled ``process=shard-N``.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro import obs
from repro.obs.export import validate_chrome_trace, validate_metrics_dump
from repro.obs.metrics import parse_series_key
from repro.serve import EvaluationServer, HttpClient, LocalClient, Request
from repro.serve.server import serve_http

#: distinct batch keys (SHA-256 routed) that demonstrably cover both
#: shards of a 2-shard pool — routing is deterministic, so this is a
#: stable property, not a probabilistic one
JOBS = [
    ("stencil", {"n": 10}, (4, 1)),
    ("stencil", {"n": 12}, (4, 1)),
    ("fft", {"n": 16}, (4, 1)),
    ("fft", {"n": 8}, (2, 2)),
    ("matmul", {"n": 2}, (2, 2)),
    ("sum_squares", {"n": 16}, (4, 1)),
]


def _eval_request(name: str, params: dict, machine=(2, 2), **kw) -> Request:
    return Request(
        "evaluate",
        {
            "workload": {"name": name, "params": params},
            "machine": list(machine),
            "mapper": "default",
        },
        **kw,
    )


def _process_labels(counters: dict) -> set[str]:
    return {
        parse_series_key(k)[1].get("process")
        for k in counters
        if "process=" in k
    } - {None}


class TestMergedTelemetry:
    def test_requests_through_two_shards_merge_into_one_trace(self):
        """Acceptance: counters gain process labels from both shards and
        parent + child spans land in one valid Chrome trace, linked by
        trace_id."""
        with obs.session(label="acceptance") as sess:
            with EvaluationServer(n_shards=2, tick_s=0.002) as srv:
                client = LocalClient(srv)
                for name, params, machine in JOBS:
                    client.search(name, machine, **params)
        dump = sess.metrics_dump()
        assert validate_metrics_dump(dump) == []

        # shard-side work surfaced in the parent registry, per process
        procs = _process_labels(dump["counters"])
        assert {"shard-0", "shard-1"} <= procs

        # child spans adopted from both shard processes
        assert {"shard-0", "shard-1"} <= set(sess.tracer.foreign)

        # one merged Chrome trace: parent lane + one lane per shard
        doc = sess.chrome_trace()
        assert validate_chrome_trace(doc) == []
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(pids) == 3

        # every parent request span shares its trace_id with a shard span
        parent_ids = {
            s.args["trace_id"]
            for s in sess.tracer.find("serve.request")
            if "trace_id" in s.args
        }
        child_ids = {
            d.get("args", {}).get("trace_id")
            for spans in sess.tracer.foreign.values()
            for d in spans
            if d.get("name") == "shard.request"
        } - {None}
        assert parent_ids and parent_ids <= child_ids

    def test_shutdown_flush_collects_final_deltas(self):
        """Telemetry produced right before shutdown still reaches the
        parent: the stop path flushes every shard."""
        with obs.session(label="flush") as sess:
            with EvaluationServer(n_shards=2, tick_s=0.002) as srv:
                LocalClient(srv).evaluate("matmul", (2, 2), n=2)
        # the per-request span arrived even though the server is gone
        names = {
            d.get("name")
            for spans in sess.tracer.foreign.values()
            for d in spans
        }
        assert "shard.request" in names


class TestTraceIdPropagation:
    def test_caller_supplied_trace_id_round_trips(self):
        with EvaluationServer(n_shards=1, tick_s=0.002) as srv:
            resp = srv.submit(
                _eval_request("matmul", {"n": 2}, trace_id="trace-abc")
            ).wait(60)
        assert resp.ok and resp.trace_id == "trace-abc"

    def test_trace_id_assigned_when_absent_and_unique(self):
        with EvaluationServer(n_shards=1, tick_s=0.002) as srv:
            resps = [
                srv.submit(_eval_request(name, params)).wait(60)
                for name, params, _ in JOBS[:3]
            ]
        ids = [r.trace_id for r in resps]
        assert all(ids) and len(set(ids)) == len(ids)


class TestLoadGauges:
    def test_queue_depth_and_inflight_gauges_move(self):
        """With one shard throttled to one in-flight batch, a burst of
        distinct-key requests must back up the queue — and the per-tick
        sampler must see it (satellite: serve.queue_depth + per-shard
        in-flight gauges sampled every tick)."""
        with obs.session(label="load") as sess:
            with EvaluationServer(
                n_shards=1, tick_s=0.002, max_inflight_per_shard=1
            ) as srv:
                tickets = [
                    srv.submit(_eval_request(name, params, machine))
                    for name, params, machine in JOBS
                ]
                for t in tickets:
                    assert t.wait(60).ok
        dump = sess.metrics_dump()
        hist = dump["histograms"]["serve.queue_depth_sampled"]
        assert hist["count"] > 0  # sampled at least once per tick
        assert hist["max"] >= 1  # ...and actually saw a backed-up queue
        assert "serve.queue_depth" in dump["gauges"]
        assert any(
            parse_series_key(k)[0] == "serve.shard_inflight"
            for k in dump["gauges"]
        )


class TestHttpIntrospection:
    @pytest.fixture()
    def http_server(self):
        with EvaluationServer(n_shards=2, tick_s=0.002) as srv:
            httpd = serve_http(srv, port=0)
            port = httpd.server_address[1]
            t = threading.Thread(target=httpd.serve_forever, daemon=True)
            t.start()
            try:
                yield f"http://127.0.0.1:{port}"
            finally:
                httpd.shutdown()
                httpd.server_close()

    def _get(self, base: str, path: str) -> dict:
        with urllib.request.urlopen(f"{base}{path}", timeout=30) as r:
            return json.loads(r.read())

    def test_metrics_endpoint_reports_shard_counters(self, http_server):
        client = HttpClient(http_server)
        for name, params, machine in JOBS[:3]:
            client.evaluate(name, machine, **params)
        doc = self._get(http_server, "/metrics")
        assert doc["enabled"] is True
        assert doc["counters"]["serve.served"] >= 3
        assert _process_labels(doc["counters"])  # shard-side series merged
        lat = doc["latency_ms"]
        assert {"p50", "p95", "p99"} <= set(lat["wait"])
        assert {"p50", "p95", "p99"} <= set(lat["service"])

    def test_client_metrics_helper(self, http_server):
        client = HttpClient(http_server)
        client.evaluate("matmul", (2, 2), n=2)
        doc = client.metrics()
        assert doc["enabled"] is True and "counters" in doc

    def test_healthz_reports_shard_liveness_and_disk(self, http_server):
        doc = self._get(http_server, "/healthz")
        assert doc["ok"] is True
        assert doc["shards_alive"] == 2
        assert [s["shard"] for s in doc["shards"]] == [0, 1]
        assert all(s["alive"] for s in doc["shards"])
        assert "enabled" in doc["disk_store"]
