"""The served path returns bit-identical results to direct facade calls —
under concurrency, through batching, and over HTTP."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import api, obs
from repro.serve import (
    EvaluationServer,
    HttpClient,
    LocalClient,
    Request,
)
from repro.serve.protocol import search_results_from_rows
from repro.serve.server import serve_http
from repro.testing.golden import cost_report_to_jsonable
from repro.testing.oracle import assert_search_equivalent


@pytest.fixture(scope="module")
def server():
    with EvaluationServer(n_shards=2, tick_s=0.002) as srv:
        yield srv


def test_concurrent_clients_bit_identical_to_direct_api(server):
    """Many threads, mixed workloads: every served search equals the
    direct library call, row for row, float for float."""
    jobs = [
        ("stencil", {"n": 10}, (4, 1)),
        ("stencil", {"n": 12}, (4, 1)),
        ("fft", {"n": 16}, (4, 1)),
        ("fft", {"n": 8}, (2, 2)),
        ("matmul", {"n": 2}, (2, 2)),
        ("sum_squares", {"n": 16}, (4, 1)),
    ] * 2
    results: dict[int, object] = {}

    def run(i, name, params, machine):
        c = LocalClient(server)
        results[i] = c.search(name, machine, **params)

    threads = [
        threading.Thread(target=run, args=(i, *job)) for i, job in enumerate(jobs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert len(results) == len(jobs)
    for i, (name, params, machine) in enumerate(jobs):
        served = search_results_from_rows(results[i]["rows"])
        direct = api.search(name, machine, **params)
        assert_search_equivalent(served, direct, context=f"served/{name}{params}")


def test_batching_actually_happens(server):
    """Same-key requests submitted together share a batch id."""
    reqs = [
        Request("evaluate", {"workload": {"name": "stencil", "params": {"n": 8}},
                             "machine": [4, 1], "mapper": m})
        for m in ("default", "serial", "default", "serial")
    ]
    tickets = [server.submit(r) for r in reqs]
    resps = [t.wait(60) for t in tickets]
    assert all(r.ok for r in resps)
    assert len({r.batch for r in resps}) == 1  # one batch served them all
    assert len({r.id for r in resps}) == len(resps)  # distinct ids


def test_server_records_obs_metrics():
    with obs.session(label="serve-test") as sess:
        with EvaluationServer(n_shards=1, tick_s=0.002) as srv:
            LocalClient(srv).evaluate("matmul", (2, 2), n=2)
        dump = sess.metrics_dump()
    assert dump["counters"]["serve.requests{kind=evaluate}"] == 1
    assert dump["counters"]["serve.served"] == 1
    spans = sess.tracer.find("serve.request")
    assert len(spans) == 1 and spans[0].args["code"] == "OK"


def test_http_front_end_to_end():
    with EvaluationServer(n_shards=1, tick_s=0.002) as srv:
        httpd = serve_http(srv, port=0)
        port = httpd.server_address[1]
        t = threading.Thread(target=httpd.serve_forever, daemon=True)
        t.start()
        try:
            client = HttpClient(f"http://127.0.0.1:{port}")
            assert client.healthz()["ok"]
            out = client.search("stencil", (4, 1), n=10)
            served = search_results_from_rows(out["rows"])
            direct = api.search("stencil", (4, 1), n=10)
            assert_search_equivalent(served, direct, context="http")
            ev = client.evaluate("matmul", (2, 2), n=2)
            assert ev["cost"] == cost_report_to_jsonable(
                api.evaluate("matmul", (2, 2), n=2).cost
            )
            # malformed request -> HTTP 400 with INVALID_REQUEST body
            req = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/requests",
                data=json.dumps({"kind": "nope"}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=30)
            assert err.value.code == 400
            assert json.loads(err.value.read())["code"] == "INVALID_REQUEST"
        finally:
            httpd.shutdown()
            httpd.server_close()


def test_invalid_workload_is_a_per_request_error(server):
    resp = server.request(
        Request("search", {"workload": "no_such_thing", "machine": [2, 1]})
    )
    assert resp.code == "INVALID_REQUEST"
    assert "no_such_thing" in resp.detail
