"""A crashed shard never loses an accepted request: the in-flight ledger
re-dispatches (bounded) and falls back in-process, bit-identically."""

from __future__ import annotations

import time

import pytest

from repro import api
from repro.faults.inject import injection
from repro.faults.plan import FaultPlan, FaultSpec
from repro.serve import EvaluationServer, LocalClient, Request
from repro.serve.protocol import search_results_from_rows
from repro.serve.shards import IN_PROCESS_SHARD, ShardPool
from repro.testing.oracle import assert_search_equivalent


def _search_request(seed):
    return Request(
        "search",
        {"workload": {"name": "stencil", "params": {"n": 12}},
         "machine": [4, 1], "seed": seed},
    )


def test_killed_shards_lose_zero_accepted_requests():
    srv = EvaluationServer(
        n_shards=2, tick_s=0.002, batch_timeout_s=0.5, max_retries=2
    ).start()
    try:
        # warm the pool, then kill every shard with work in flight
        assert LocalClient(srv).evaluate("matmul", (2, 2), n=2)["cost"]
        tickets = [srv.submit(_search_request(s)) for s in range(6)]
        time.sleep(0.01)
        srv.pool.kill_shard(0)
        srv.pool.kill_shard(1)
        resps = [t.wait(90) for t in tickets]
        assert all(r is not None and r.ok for r in resps), [
            (r.code, r.detail) for r in resps if r is not None
        ]
        # recovery actually happened: the tick loop respawns killed shards
        # (whether or not the kill caught a batch mid-flight)
        deadline = time.monotonic() + 10
        while srv.pool.restarts_total < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert srv.pool.restarts_total >= 1
        # recovered results are bit-identical to the direct library call
        for t, r in zip(tickets, resps):
            direct = api.search(
                "stencil", (4, 1), seed=t.request.payload["seed"], n=12
            )
            assert_search_equivalent(
                search_results_from_rows(r.result["rows"]),
                direct,
                context="post-crash",
            )
    finally:
        srv.stop()


def test_exhausted_retries_fall_back_in_process():
    """A batch that dies on every attempt completes via the in-process
    reference path (shard == IN_PROCESS_SHARD), not an error."""
    pool = ShardPool(1, batch_timeout_s=0.3, max_retries=1)
    try:
        reqs = [
            Request("evaluate", {"workload": "matmul", "machine": [2, 2]}).as_jsonable()
        ]
        pool.dispatch(0, 0, reqs)
        done = []
        deadline = time.monotonic() + 30
        # never poll(): kill the worker on every attempt, so completion can
        # only come from check()'s retry-exhausted in-process fallback
        while not done and time.monotonic() < deadline:
            pool.kill_shard(0)
            time.sleep(0.02)
            done = pool.check()
        assert done, "batch never completed"
        assert done[0].shard == IN_PROCESS_SHARD
        assert pool.inproc_fallbacks == 1
        code, result = done[0].outs[0]
        assert code == "OK"
        from repro.testing.golden import cost_report_to_jsonable

        assert result["cost"] == cost_report_to_jsonable(
            api.evaluate("matmul", (2, 2)).cost
        )
    finally:
        pool.stop()


def test_fault_plan_injects_shard_crashes_with_ledger():
    """PR-3 chaos plans apply to the serving layer: injected shard crashes
    are recorded, recovered, and invisible in the results."""
    plan = FaultPlan(
        seed=7, spec=FaultSpec(worker_crash=1.0, worker_faulty_attempts=2)
    )
    with injection(plan) as inj:
        srv = EvaluationServer(
            n_shards=1, tick_s=0.002, batch_timeout_s=0.5, max_retries=2
        ).start()
        try:
            resp = srv.request(_search_request(3), timeout_s=90)
            assert resp.ok, (resp.code, resp.detail)
            direct = api.search("stencil", (4, 1), seed=3, n=12)
            assert_search_equivalent(
                search_results_from_rows(resp.result["rows"]),
                direct,
                context="chaos-serve",
            )
        finally:
            srv.stop()
    assert inj.n_injected > 0, "the plan must actually have fired"
    assert "shard_crash" in inj.by_kind()
    assert inj.all_handled, "\n".join(inj.summary_lines())
