"""Every example script must actually run to completion.

Compiled-only checks (see test_repo_consistency) catch syntax rot; this
runs each example end to end with stdout swallowed, so a refactor that
breaks an example's behaviour fails the suite, not the first user.
"""

from __future__ import annotations

import contextlib
import io
import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        runpy.run_path(str(path), run_name="__main__")
    # every example prints something substantive
    assert len(buf.getvalue()) > 100
