"""Integration tests: full stacks crossing several subsystems."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs_serial, bfs_xmt, level_work_profile
from repro.algorithms.edit_distance import (
    edit_distance_graph,
    levenshtein,
    wavefront_mapping,
)
from repro.algorithms.fft import fft_graph
from repro.algorithms.graphs import random_gnp
from repro.algorithms.matmul import trace_naive, trace_recursive
from repro.core.composition import DataLayout, compose
from repro.core.default_mapper import serial_mapping
from repro.core.idioms import build_map, build_reduce, build_scan
from repro.core.lowering import lower
from repro.core.mapping import GridSpec
from repro.core.recompute import auto_rematerialize
from repro.core.search import FigureOfMerit, sweep_placements
from repro.machines.grid import GridMachine
from repro.machines.multicore import MulticoreMachine
from repro.machines.xmt import XmtConfig, XmtMachine
from repro.models.cache import multilevel_misses, HierarchySpec
from repro.models.ram import RAM, sum_program


class TestPipelineComposition:
    def test_map_then_reduce_aligned(self):
        """map -> reduce with matching blocked layouts composes for free,
        and the fused pipeline computes the right value."""
        n, p = 32, 8
        grid = GridSpec(8, 1)
        m = build_map(n, p, grid, "+", 1)
        r = build_reduce(n, p, grid)
        boundary = compose(
            DataLayout.blocked(n, p, grid, "map.out"),
            DataLayout.blocked(n, p, grid, "reduce.in"),
            grid,
        )
        assert boundary.aligned

        mach = GridMachine(grid)
        vals = list(range(n))
        mapped = mach.run(m.graph, m.mapping, {"A": {(i,): v for i, v in enumerate(vals)}})
        intermediate = [mapped.outputs[("out", i)] for i in range(n)]
        reduced = mach.run(
            r.graph, r.mapping, {"A": {(i,): v for i, v in enumerate(intermediate)}}
        )
        assert reduced.outputs["reduce"] == sum(v + 1 for v in vals)

    def test_scan_to_cyclic_needs_remap_and_its_cost_is_real(self):
        n, p = 32, 8
        grid = GridSpec(8, 1)
        boundary = compose(
            DataLayout.blocked(n, p, grid, "scan.out"),
            DataLayout.cyclic(n, p, grid, "next.in"),
            grid,
        )
        assert not boundary.aligned
        assert boundary.remap_energy_fj > 0
        # moving most of 32 words at least one hop
        assert boundary.remap.moved >= n // 2


class TestSearchLowerExecute:
    def test_search_then_lower_then_run(self):
        """The full F&M story: search mappings, lower the winner to
        hardware, execute and verify."""
        grid = GridSpec(8, 1)
        idiom = build_reduce(64, 8, grid)
        results = sweep_placements(idiom.graph, grid, FigureOfMerit.edp())
        best = results[0]
        spec = lower(idiom.graph, best.mapping, grid)
        assert spec.total_rom_entries == idiom.graph.work()
        res = GridMachine(grid).run(
            idiom.graph, best.mapping, {"A": {(i,): 2 for i in range(64)}}
        )
        assert res.outputs["reduce"] == 128

    def test_remat_on_swept_mapping_never_hurts(self):
        grid = GridSpec(8, 1)
        idiom = build_scan(16, 4, grid)
        res = auto_rematerialize(idiom.graph, idiom.mapping, grid)
        assert res.energy_after_fj <= res.energy_before_fj + 1e-9


class TestRamToCacheStack:
    def test_ram_trace_feeds_cache_model(self):
        """RAM -> trace -> multilevel cache: the Section 2 pipeline."""
        ram = RAM(trace_memory=True)
        ram.memory.store_array(0, [1] * 256)
        ram.run(sum_program(), {1: 0, 2: 256})
        misses = multilevel_misses(
            ram.memory.trace,
            (HierarchySpec(32, 8, name="L1"), HierarchySpec(128, 8, name="L2")),
        )
        # sequential scan of 256 words in 8-word blocks: ~32 cold misses
        assert misses[0] == pytest.approx(32, abs=2)
        assert misses[1] <= misses[0]

    def test_matmul_traces_rank_as_theory_predicts(self):
        n = 16
        q_naive = multilevel_misses(
            trace_naive(n), (HierarchySpec(128, 4, name="L1"),)
        )[0]
        q_rec = multilevel_misses(
            trace_recursive(n, 2), (HierarchySpec(128, 4, name="L1"),)
        )[0]
        assert q_rec < q_naive


class TestXmtVsMulticoreOnIrregularWork:
    def test_bfs_both_machines_same_graph(self):
        """The C13 comparison in miniature: XMT runs BFS with cheap spawns;
        the multicore pays a barrier per level."""
        g = random_gnp(120, 0.04, seed=8)
        ref = bfs_serial(g, 0)

        _, xm = bfs_xmt(g, 0, XmtMachine(4 * g.n + 1, XmtConfig(n_tcus=64)))
        mc = MulticoreMachine()
        phases = level_work_profile(g, 0)
        mc_res = mc.run_phases(phases, instructions_per_item=8)

        assert xm.result.spawn_blocks == ref.levels
        assert mc_res.barriers == ref.levels
        # the deep-frontier structure makes barrier costs dominate: XMT's
        # spawn overhead per level is orders of magnitude below a barrier
        xmt_sync = xm.result.spawn_blocks * xm.config.spawn_overhead_cycles
        mc_sync = mc_res.barriers * mc.config.barrier_cycles
        assert mc_sync > 20 * xmt_sync


class TestFftEndToEnd:
    def test_fft_dit_vs_dif_same_results_different_wires(self, rng):
        n = 32
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        want = np.fft.fft(x)
        grid = GridSpec(4, 1)
        mach = GridMachine(grid)
        costs = {}
        for var in ("dit", "dif"):
            g = fft_graph(n, var)
            m = serial_mapping(g, grid)
            res = mach.run(g, m, {"x": {(i,): complex(x[i]) for i in range(n)}})
            for k in range(n):
                assert abs(res.outputs[("X", k)] - want[k]) < 1e-9
            costs[var] = res.cost
        # identical op mix -> identical compute energy...
        assert costs["dit"].energy_compute_fj == pytest.approx(
            costs["dif"].energy_compute_fj
        )
        # ...but different memory-boundary behaviour: DIF's first stage reads
        # every off-chip input twice, DIT's reads half of them twice — a
        # constant-factor difference invisible to O(N log N), visible here
        assert costs["dif"].energy_offchip_fj > costs["dit"].energy_offchip_fj


class TestEditDistanceFullStack:
    def test_graph_mapping_machine_agree_with_dp(self, rng):
        n, p = 32, 4
        grid = GridSpec(p, 1)
        R = rng.integers(0, 4, size=n).tolist()
        Q = rng.integers(0, 4, size=n).tolist()
        g = edit_distance_graph(n, n, cell="lev")
        m = wavefront_mapping(g, n, p, grid)
        res = GridMachine(grid).run(
            g, m,
            {"R": {(i,): R[i] for i in range(n)},
             "Q": {(j,): Q[j] for j in range(n)}},
        )
        d, table = levenshtein(R, Q)
        assert res.outputs[("H", n - 1, n - 1)] == d
        # spot-check interior cells too
        for i, j in ((0, 0), (5, 7), (n // 2, n // 2)):
            assert res.outputs[("H", i, j)] == table[i, j]
