"""Communication primitive sets: one-sided vs two-sided cost models."""

import pytest

from repro.machines.primitives import (
    CommConfig,
    OneSidedMachine,
    Traffic,
    TwoSidedMachine,
    halo_exchange,
    random_updates,
    transpose,
    tree_reduce_traffic,
)


class TestTraffic:
    def test_validates_endpoints(self):
        with pytest.raises(ValueError):
            Traffic(2, ((0, 5, 1),))
        with pytest.raises(ValueError):
            Traffic(2, ((0, 0, 1),))
        with pytest.raises(ValueError):
            Traffic(2, ((0, 1, 0),))

    def test_totals(self):
        t = Traffic(4, ((0, 1, 5), (2, 3, 7)))
        assert t.total_words == 12 and t.n_messages == 2


class TestWorkloadGenerators:
    def test_halo_shape(self):
        phases = halo_exchange(4, 8, steps=3)
        assert len(phases) == 3
        assert phases[0].n_messages == 2 * 3  # both directions, 3 boundaries
        assert phases[0].total_words == 6 * 8

    def test_transpose_all_pairs(self):
        (t,) = transpose(4, 2)
        assert t.n_messages == 12  # 4*3 ordered pairs

    def test_random_updates_reproducible(self):
        a = random_updates(8, 100, seed=1)[0]
        b = random_updates(8, 100, seed=1)[0]
        assert a.transfers == b.transfers

    def test_tree_reduce_phases(self):
        phases = tree_reduce_traffic(8, 4)
        assert len(phases) == 3
        assert [p.n_messages for p in phases] == [4, 2, 1]

    def test_tree_reduce_pow2_only(self):
        with pytest.raises(ValueError):
            tree_reduce_traffic(6, 1)


class TestMachines:
    def test_one_sided_cheaper_per_message(self):
        t = Traffic(2, ((0, 1, 10),))
        one = OneSidedMachine().phase(t)
        two = TwoSidedMachine().phase(t)
        assert one.time_cycles < two.time_cycles
        assert one.buffer_words_peak == 0

    def test_barrier_dominates_sparse_phases(self):
        """A phase with one tiny message still pays the full barrier on the
        two-sided machine (default cost points: MPI-ish vs RMA-ish)."""
        t = Traffic(64, ((0, 1, 1),))
        two = TwoSidedMachine().phase(t)
        one = OneSidedMachine().phase(t)
        assert two.time_cycles > 10 * one.time_cycles

    def test_per_proc_load_not_total(self):
        """Time reflects the busiest processor, not the sum."""
        cfg = CommConfig(alpha=10, beta=1)
        balanced = Traffic(4, ((0, 1, 10), (2, 3, 10)))
        skewed = Traffic(4, ((0, 1, 10), (0, 2, 10)))
        m = OneSidedMachine(cfg)
        assert m.phase(skewed).time_cycles > m.phase(balanced).time_cycles

    def test_sync_events_pairwise_vs_global(self):
        t = transpose(8, 1)[0]
        one = OneSidedMachine().phase(t)
        two = TwoSidedMachine().phase(t)
        assert two.sync_events == 1  # one global barrier
        assert one.sync_events == t.n_messages  # one signal per pair

    def test_run_accumulates_phases(self):
        phases = halo_exchange(4, 8, steps=5)
        rep = OneSidedMachine().run(phases)
        single = OneSidedMachine().phase(phases[0])
        assert rep.time_cycles == pytest.approx(5 * single.time_cycles)
        assert rep.messages == 5 * single.messages


class TestAggregation:
    def test_aggregation_cuts_messages_but_buys_buffers(self):
        t = random_updates(8, 400, seed=0)[0]
        plain = TwoSidedMachine().phase(t)
        agg = TwoSidedMachine(aggregate=64).phase(t)
        assert agg.messages < plain.messages
        assert agg.time_cycles < plain.time_cycles
        assert agg.buffer_words_peak > 0  # the fast-memory cost
        assert plain.buffer_words_peak == 0

    def test_aggregation_preserves_words(self):
        t = random_updates(8, 200, seed=2)[0]
        plain = TwoSidedMachine().phase(t)
        agg = TwoSidedMachine(aggregate=32).phase(t)
        assert agg.words == plain.words

    def test_even_aggregated_two_sided_loses_to_one_sided_on_irregular(self):
        """Yelick's thesis on the canonical irregular pattern."""
        t = random_updates(16, 1000, seed=3)[0]
        one = OneSidedMachine().phase(t)
        agg = TwoSidedMachine(aggregate=128).phase(t)
        assert one.time_cycles < agg.time_cycles
