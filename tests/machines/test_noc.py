"""Network-on-chip: routing, latency, contention."""

import pytest

from repro.machines.noc import Message, Noc, xy_route
from repro.machines.technology import TECH_5NM


class TestRouting:
    def test_xy_route_shape(self):
        hops = xy_route((0, 0), (2, 1))
        assert hops == [(((0, 0)), (1, 0)), ((1, 0), (2, 0)), ((2, 0), (2, 1))]

    def test_x_before_y(self):
        hops = xy_route((1, 1), (0, 3))
        assert hops[0] == ((1, 1), (0, 1))  # x first, decreasing

    def test_empty_route(self):
        assert xy_route((2, 2), (2, 2)) == []


class TestLatency:
    def test_uncontended_latency_is_distance(self):
        noc = Noc(8, 8)
        rep = noc.simulate([Message(0, (0, 0), (3, 2), 0)])
        assert rep.latency[0] == 5 * TECH_5NM.hop_cycles()

    def test_contention_serializes_shared_link(self):
        """Four messages from the same source over the same first link
        leave one per cycle."""
        noc = Noc(8, 1)
        msgs = [Message(i, (0, 0), (4, 0), 0) for i in range(4)]
        rep = noc.simulate(msgs)
        lats = sorted(rep.latency.values())
        base = 4 * TECH_5NM.hop_cycles()
        assert lats == [base, base + 1, base + 2, base + 3]

    def test_disjoint_paths_no_interference(self):
        noc = Noc(8, 2)
        msgs = [
            Message(0, (0, 0), (7, 0), 0),
            Message(1, (0, 1), (7, 1), 0),
        ]
        rep = noc.simulate(msgs)
        assert rep.latency[0] == rep.latency[1] == 7 * TECH_5NM.hop_cycles()

    def test_order_independence(self):
        noc = Noc(4, 4)
        msgs = [
            Message(0, (0, 0), (3, 3), 0),
            Message(1, (1, 0), (3, 3), 2),
            Message(2, (0, 1), (3, 3), 1),
        ]
        a = noc.simulate(msgs)
        b = noc.simulate(list(reversed(msgs)))
        assert a.delivery_cycle == b.delivery_cycle

    def test_inject_cycle_respected(self):
        noc = Noc(4, 1)
        rep = noc.simulate([Message(0, (0, 0), (1, 0), 100)])
        assert rep.delivery_cycle[0] == 100 + TECH_5NM.hop_cycles()


class TestStats:
    def test_makespan_and_totals(self):
        noc = Noc(4, 1)
        msgs = [Message(i, (0, 0), (2, 0), 0) for i in range(3)]
        rep = noc.simulate(msgs)
        assert rep.makespan == max(rep.delivery_cycle.values())
        assert rep.total_latency == sum(rep.latency.values())
        assert rep.max_latency == max(rep.latency.values())

    def test_busiest_link(self):
        noc = Noc(4, 1)
        msgs = [Message(i, (0, 0), (3, 0), 0) for i in range(5)]
        rep = noc.simulate(msgs)
        assert rep.busiest_link_messages == 5

    def test_waiting_counted(self):
        noc = Noc(4, 1)
        msgs = [Message(i, (0, 0), (3, 0), 0) for i in range(5)]
        rep = noc.simulate(msgs)
        assert rep.max_link_waiting >= 1

    def test_out_of_mesh_rejected(self):
        noc = Noc(2, 2)
        with pytest.raises(ValueError):
            noc.simulate([Message(0, (0, 0), (5, 0), 0)])

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            Noc(0, 4)
