"""Trace-driven cache simulators: LRU, set-associative, hierarchies."""

import pytest

from repro.machines.cachesim import CacheHierarchy, LRUCache, ideal_cache, run_trace
from repro.machines.technology import TECH_5NM


class TestLRUBasics:
    def test_cold_miss_then_hit(self):
        c = LRUCache(4, 1)
        assert c.access(0) == (False, False)
        assert c.access(0) == (True, False)
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_block_granularity(self):
        c = LRUCache(16, 4)
        c.access(0)
        assert c.access(3)[0]  # same block
        assert not c.access(4)[0]  # next block

    def test_lru_evicts_oldest(self):
        c = LRUCache(2, 1)
        c.access(0)
        c.access(1)
        c.access(0)  # refresh 0; LRU is now 1
        c.access(2)  # evicts 1
        assert c.contains(0) and c.contains(2) and not c.contains(1)

    def test_dirty_eviction_counts_writeback(self):
        c = LRUCache(1, 1)
        c.access(0, write=True)
        _, wb = c.access(1)
        assert wb and c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = LRUCache(1, 1)
        c.access(0)
        _, wb = c.access(1)
        assert not wb and c.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        c = LRUCache(1, 1)
        c.access(0)          # clean fill
        c.access(0, write=True)  # dirty on hit
        _, wb = c.access(1)
        assert wb

    def test_read_write_miss_breakdown(self):
        c = LRUCache(8, 1)
        c.access(0)
        c.access(1, write=True)
        assert c.stats.read_misses == 1 and c.stats.write_misses == 1

    def test_miss_rate(self):
        c = LRUCache(8, 1)
        for a in (0, 0, 0, 1):
            c.access(a)
        assert c.stats.miss_rate == pytest.approx(0.5)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(4, 1).access(-1)


class TestGeometry:
    def test_capacity_must_be_multiple_of_block(self):
        with pytest.raises(ValueError):
            LRUCache(10, 4)

    def test_assoc_must_divide(self):
        with pytest.raises(ValueError):
            LRUCache(16, 1, assoc=3)

    def test_fully_associative_default(self):
        c = LRUCache(16, 1)
        assert c.assoc == 16 and c.n_sets == 1

    def test_direct_mapped_conflicts(self):
        """Direct-mapped: two blocks mapping to the same set thrash even
        though capacity would hold both."""
        dm = LRUCache(4, 1, assoc=1)
        fa = LRUCache(4, 1)
        for _ in range(10):
            for a in (0, 4):  # same set in the 4-set direct-mapped cache
                dm.access(a)
                fa.access(a)
        assert dm.stats.misses == 20
        assert fa.stats.misses == 2

    def test_resident_blocks(self):
        c = LRUCache(8, 2)
        c.access(0)
        c.access(5)
        assert c.resident_blocks() == {0, 2}


class TestInclusionProperty:
    def test_bigger_lru_never_misses_more(self):
        """The LRU inclusion property — the theoretical basis for claim C11's
        'works on any cache size' story."""
        import numpy as np

        rng = np.random.default_rng(0)
        trace = [("r", int(a)) for a in rng.integers(0, 128, size=2000)]
        small = ideal_cache(16, 1)
        big = ideal_cache(64, 1)
        run_trace(small, trace)
        run_trace(big, trace)
        assert big.stats.misses <= small.stats.misses

    def test_resident_set_nested(self):
        import numpy as np

        rng = np.random.default_rng(1)
        small = ideal_cache(8, 1)
        big = ideal_cache(32, 1)
        for a in rng.integers(0, 64, size=500):
            small.access(int(a))
            big.access(int(a))
            assert small.resident_blocks() <= big.resident_blocks()


class TestHierarchy:
    def _hier(self):
        return CacheHierarchy(
            [LRUCache(4, 1, name="L1"), LRUCache(16, 1, name="L2")]
        )

    def test_hit_levels(self):
        h = self._hier()
        assert h.access(0) == 2  # memory
        assert h.access(0) == 0  # L1
        # push 0 out of L1 (cap 4) but not out of L2 (cap 16)
        for a in range(1, 5):
            h.access(a)
        assert h.access(0) == 1  # L2 hit

    def test_mem_access_count(self):
        h = self._hier()
        for a in range(8):
            h.access(a)
        assert h.mem_accesses == 8

    def test_install_on_all_levels(self):
        h = self._hier()
        h.access(7)
        assert h.levels[0].contains(7) and h.levels[1].contains(7)

    def test_miss_counts_vector(self):
        h = self._hier()
        for a in range(6):
            h.access(a)
        m = h.miss_counts()
        assert m[0] == 6 and m[1] == 6

    def test_energy_positive_and_memory_dominated(self):
        h = self._hier()
        for a in range(32):
            h.access(a)
        e = h.energy_fj(TECH_5NM)
        # 32 memory accesses at 800k fJ each dominate everything
        assert e > 32 * TECH_5NM.offchip_energy_word_fj() * 0.9

    def test_needs_a_level(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    def test_run_trace_on_hierarchy(self):
        h = self._hier()
        run_trace(h, [("r", 0), ("w", 1), ("r", 0)])
        assert h.levels[0].stats.accesses == 3


class TestRecordedTraceStatsPinned:
    """Golden micro-test: exact stats of a recorded trace.

    The LRU update (an ``OrderedDict.move_to_end`` on hit) and the
    eviction order it implies are pinned by exact counter values — any
    change to recency handling, set indexing, or writeback accounting
    shows up here as a concrete number, on both backends.
    """

    # a recorded mixed trace: two hot blocks, a cold sweep that evicts
    # them, then a return to the (now cold-again) hot set
    TRACE = (
        [("r", 0), ("w", 8), ("r", 0), ("r", 8), ("w", 0)]
        + [("r", a) for a in range(16, 80, 8)]
        + [("r", 0), ("r", 8)]
    )

    @pytest.mark.parametrize("backend", ["reference", "compiled"])
    def test_exact_stats(self, backend):
        c = LRUCache(32, 8, None, "L1")  # 4 fully-associative frames
        run_trace(c, self.TRACE, backend=backend)
        s = c.stats
        assert (s.accesses, s.hits, s.misses) == (15, 3, 12)
        assert (s.read_misses, s.write_misses) == (11, 1)
        # both hot blocks were dirty when the cold sweep evicted them
        assert s.writebacks == 2
        assert s.hits / s.accesses == 3 / 15

    @pytest.mark.parametrize("backend", ["reference", "compiled"])
    def test_exact_hierarchy_stats(self, backend):
        h = CacheHierarchy([LRUCache(32, 8, None, "L1"),
                            LRUCache(128, 8, None, "L2")])
        run_trace(h, self.TRACE, backend=backend)
        l1, l2 = h.levels
        assert (l1.stats.hits, l1.stats.misses) == (3, 12)
        # L2 sees only L1's misses; the final two re-reads hit there
        assert l2.stats.accesses == 12
        assert (l2.stats.hits, l2.stats.misses) == (2, 10)
        assert h.mem_accesses == 10
