"""GridMachine: mapped execution, verification, strictness."""

import pytest

from repro.core.default_mapper import default_mapping, serial_mapping
from repro.core.function import DataflowGraph
from repro.core.idioms import build_reduce
from repro.core.mapping import GridSpec, Mapping
from repro.machines.grid import GridExecutionError, GridMachine


def adder_graph():
    g = DataflowGraph()
    a = g.input("A", (0,))
    b = g.input("A", (1,))
    s = g.op("+", a, b, index=(0,))
    g.mark_output(s, "sum")
    return g


class TestExecution:
    def test_runs_and_verifies(self, grid8):
        g = adder_graph()
        m = default_mapping(g, grid8)
        res = GridMachine(grid8).run(g, m, {"A": {(0,): 2, (1,): 3}})
        assert res.outputs["sum"] == 5
        assert res.verified
        assert res.legality.ok
        assert res.cycles == res.cost.cycles

    def test_callable_inputs(self, grid8):
        g = adder_graph()
        m = default_mapping(g, grid8)
        res = GridMachine(grid8).run(g, m, {"A": lambda i: i + 10})
        assert res.outputs["sum"] == 21

    def test_missing_input_raises(self, grid8):
        g = adder_graph()
        m = default_mapping(g, grid8)
        with pytest.raises(GridExecutionError, match="no binding"):
            GridMachine(grid8).run(g, m, {})

    def test_illegal_mapping_rejected_when_strict(self, grid8):
        g = adder_graph()
        m = Mapping(g.n_nodes)  # all t=0: sum reads inputs with no transit time
        m.offchip[0] = m.offchip[1] = True
        with pytest.raises(Exception):
            GridMachine(grid8, strict=True).run(g, m, {"A": lambda i: i})

    def test_non_strict_records_violations(self, grid8):
        g = adder_graph()
        m = Mapping(g.n_nodes)
        m.offchip[0] = m.offchip[1] = True
        # non-strict: legality recorded; execution still enforces causality,
        # so this must raise at the execution layer instead
        with pytest.raises(GridExecutionError):
            GridMachine(grid8, strict=False).run(g, m, {"A": lambda i: i})

    def test_execution_rechecks_causality_independently(self, grid8):
        """Belt and braces: even a mapping the checker would pass through
        (non-strict) cannot read values before they arrive."""
        g = DataflowGraph()
        a = g.const(1)
        b = g.op("copy", a)
        g.mark_output(b, "o")
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 0)
        m.set(b, (5, 0), 1)  # 5 hops away, 1 cycle later: impossible
        with pytest.raises(GridExecutionError, match="arriv"):
            GridMachine(grid8, strict=False).run(g, m, {})

    def test_complex_arithmetic_verified(self, grid8):
        g = DataflowGraph()
        a = g.const(1 + 1j)
        b = g.op("*", a, a)
        g.mark_output(b, "z")
        m = serial_mapping(g, grid8)
        res = GridMachine(grid8).run(g, m, {})
        assert res.outputs["z"] == pytest.approx(2j)


class TestErrorReporting:
    """GridExecutionError messages must name the offending node and PE so
    a failing mapped run is debuggable without re-running under a tracer."""

    def _causality_graph(self):
        g = DataflowGraph()
        a = g.const(1)
        b = g.op("copy", a)
        g.mark_output(b, "o")
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 0)
        m.set(b, (5, 0), 1)  # 5 hops away, 1 cycle later: impossible
        return g, m, a, b

    def test_strict_rejects_at_legality_naming_node(self, grid8):
        # strict mode trips the legality checker before execution starts
        g, m, a, b = self._causality_graph()
        with pytest.raises(ValueError, match=rf"node {b}.*operand {a}"):
            GridMachine(grid8, strict=True).run(g, m, {})

    def test_arrival_error_names_node_and_pe(self, grid8):
        # non-strict skips the legality raise; the execution layer still
        # enforces causality and must name the node and both PEs
        g, m, a, b = self._causality_graph()
        with pytest.raises(
            GridExecutionError,
            match=rf"node {b} at PE \(5, 0\).*operand {a}.*PE \(0, 0\)",
        ):
            GridMachine(grid8, strict=False).run(g, m, {})

    def test_unproduced_operand_names_node_and_pe(self, grid8):
        g = DataflowGraph()
        a = g.const(1)
        b = g.op("copy", a)
        g.mark_output(b, "o")
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 5)
        m.set(b, (1, 0), 2)  # reads a before a is even computed
        with pytest.raises(
            GridExecutionError,
            match=rf"node {b} at PE \(1, 0\).*operand {a}",
        ):
            GridMachine(grid8, strict=False).run(g, m, {})

    def test_strict_verification_mismatch_names_output_node_and_pe(self, grid8):
        """A graph whose op table result disagrees with the pure evaluation
        cannot be built directly, so drive the mismatch via a bitflip."""
        from repro.faults import FaultPlan, FaultSpec, injection

        g = adder_graph()
        m = default_mapping(g, grid8)
        # the flip corrupts first execution AND the replay re-runs clean,
        # so force an always-flipping plan to exercise replay, then check
        # the non-strict result still reports honestly when unrecoverable.
        with injection(FaultPlan(0, FaultSpec(bitflip=1.0))):
            res = GridMachine(grid8, strict=False).run(
                g, m, {"A": lambda i: i}
            )
        assert res.verified  # replay recovered
        assert res.retries == 1

    def test_strictness_toggle_on_unverified_run(self, grid8):
        """strict=True raises on an output mismatch; strict=False returns
        the result with verified=False (here: no mismatch, sanity check
        both modes agree on a clean run)."""
        g = adder_graph()
        m = default_mapping(g, grid8)
        for strict in (True, False):
            res = GridMachine(grid8, strict=strict).run(
                g, m, {"A": lambda i: i}
            )
            assert res.verified


class TestNocMode:
    def test_noc_extra_nonnegative(self, grid8):
        idiom = build_reduce(32, 8, grid8)
        res = GridMachine(grid8).run(
            idiom.graph,
            idiom.mapping,
            {"A": {(i,): 1 for i in range(32)}},
            with_noc=True,
        )
        assert res.noc_extra_cycles >= 0

    def test_same_source_burst_pays_queueing(self, grid8):
        """Six values leaving one PE at the same cycle serialize on its
        egress link: the idealized cost model sees none of that, the NoC
        mode reports it."""
        g = DataflowGraph()
        srcs = [g.const(i) for i in range(6)]
        copies = [g.op("copy", s) for s in srcs]
        m = Mapping(g.n_nodes)
        for k, (s, c) in enumerate(zip(srcs, copies)):
            m.set(s, (1, 0), 0)         # all depart PE (1,0) at cycle 0
            m.set(c, (4, 0), 200 + k)   # plenty of slack for legality
        for k, c in enumerate(copies):
            g.mark_output(c, ("o", k))
        res = GridMachine(grid8).run(g, m, {}, with_noc=True)
        # egress link admits one message per cycle: 1+2+...+5 extra cycles
        assert res.noc_extra_cycles == 15
