"""XMT PRAM-on-chip: spawn blocks, prefix-sum primitive, cost model."""

import numpy as np
import pytest

from repro.machines.technology import TECH_5NM
from repro.machines.xmt import (
    XmtConfig,
    XmtMachine,
    compute,
    ps,
    read,
    write,
)


class TestSerialSection:
    def test_serial_charges_cycles(self):
        xm = XmtMachine(16)
        xm.serial(100)
        assert xm.result.cycles == 100
        assert xm.result.serial_instructions == 100

    def test_master_memory_ops(self):
        xm = XmtMachine(16)
        xm.swrite(3, 42)
        assert xm.sread(3) == 42
        assert xm.result.cycles == 2 * xm.config.mem_latency_cycles

    def test_negative_serial_rejected(self):
        with pytest.raises(ValueError):
            XmtMachine(4).serial(-1)


class TestSpawn:
    def test_parallel_doubling(self):
        xm = XmtMachine(128, XmtConfig(n_tcus=16))
        xm.memory[:32] = np.arange(32)

        def k(tid):
            v = yield read(tid)
            yield write(32 + tid, 2 * v)

        xm.spawn(32, k)
        assert (xm.memory[32:64] == 2 * np.arange(32)).all()
        assert xm.result.spawn_blocks == 1
        assert xm.result.parallel_effects == 64  # 32 reads + 32 writes

    def test_ps_returns_distinct_slots(self):
        xm = XmtMachine(64)

        def k(tid):
            slot = yield ps(0, 1)
            yield write(1 + slot, tid)

        xm.spawn(8, k)
        assert xm.memory[0] == 8
        assert sorted(xm.memory[1:9].tolist()) == list(range(8))
        assert xm.result.ps_ops == 8

    def test_ps_is_deterministic_in_tid_order(self):
        xm = XmtMachine(64)
        slots = {}

        def k(tid):
            s = yield ps(0, 1)
            slots[tid] = s

        xm.spawn(4, k)
        assert slots == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_write_collision_lowest_tid_wins(self):
        xm = XmtMachine(8)

        def k(tid):
            yield write(0, tid + 50)

        xm.spawn(4, k)
        assert xm.memory[0] == 50

    def test_rounds_scale_with_tcu_pressure(self):
        """More virtual threads than TCUs: each round takes multiple TCU
        cycles, so cycles grow when TCUs shrink."""
        def work(n_tcus):
            xm = XmtMachine(1024, XmtConfig(n_tcus=n_tcus))

            def k(tid):
                yield compute()
                yield compute()

            xm.spawn(256, k)
            return xm.result.cycles

        assert work(4) > work(64)

    def test_spawn_zero_threads(self):
        xm = XmtMachine(4)
        xm.spawn(0, lambda tid: iter(()))
        assert xm.result.spawn_blocks == 1

    def test_bad_effect_rejected(self):
        xm = XmtMachine(4)

        def k(tid):
            yield "junk"

        with pytest.raises(TypeError):
            xm.spawn(1, k)

    def test_compute_only_rounds_skip_memory_latency(self):
        cfg = XmtConfig(n_tcus=8, mem_latency_cycles=100)
        xm_mem = XmtMachine(16, cfg)
        xm_cpu = XmtMachine(16, cfg)

        def k_mem(tid):
            yield read(0)

        def k_cpu(tid):
            yield compute()

        xm_mem.spawn(4, k_mem)
        xm_cpu.spawn(4, k_cpu)
        assert xm_mem.result.cycles > xm_cpu.result.cycles


class TestEnergy:
    def test_lighter_than_multicore_per_op(self):
        """XMT TCU decode overhead is 1/overhead_reduction of the OoO
        core's — the architecture's whole premise."""
        xm = XmtMachine(16)

        def k(tid):
            yield compute()

        xm.spawn(8, k)
        e = xm.result.energy_total_fj(TECH_5NM, xm.config)
        per_op = e / xm.result.parallel_effects
        ooo_per_op = TECH_5NM.instruction_energy_word_fj()
        assert per_op < ooo_per_op / 50
