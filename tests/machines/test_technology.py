"""Technology parameters: the paper's constants and derived ratios."""

import math

import pytest

from repro.machines.technology import TECH_16NM, TECH_5NM, Technology


class TestPaperConstants:
    """Claim C4: the raw 5 nm numbers quoted in Section 3."""

    def test_add_energy_per_bit(self):
        assert TECH_5NM.add_energy_fj_per_bit == 0.5

    def test_add_latency(self):
        assert TECH_5NM.add_latency_ps == 200.0

    def test_wire_energy(self):
        assert TECH_5NM.wire_energy_fj_per_bit_mm == 80.0

    def test_wire_latency(self):
        assert TECH_5NM.wire_latency_ps_per_mm == 800.0

    def test_gpu_area(self):
        assert TECH_5NM.chip_area_mm2 == 800.0


class TestPaperRatios:
    """Claims C1-C3b: the ratios the panel statement derives."""

    def test_c1_one_mm_transport_is_160x(self):
        assert TECH_5NM.transport_vs_add_ratio(1.0) == pytest.approx(160.0)

    def test_c2_diagonal_transport_is_about_4500x(self):
        assert TECH_5NM.diagonal_vs_add_ratio() == pytest.approx(4500.0, rel=0.05)

    def test_c3_offchip_is_50000x_an_add(self):
        assert TECH_5NM.offchip_vs_add_ratio() == pytest.approx(50_000.0)

    def test_c3b_offchip_is_order_of_magnitude_over_diagonal(self):
        assert TECH_5NM.offchip_vs_diagonal_ratio() == pytest.approx(10.0, rel=0.5)

    def test_c5_instruction_overhead(self):
        ratio = TECH_5NM.instruction_energy_word_fj() / TECH_5NM.add_energy_word_fj()
        assert ratio == pytest.approx(10_001.0)


class TestDerivedGeometry:
    def test_diagonal_is_sqrt_area(self):
        assert TECH_5NM.chip_diagonal_mm == pytest.approx(math.sqrt(800.0))

    def test_cycle_is_add_latency(self):
        assert TECH_5NM.cycle_ps == TECH_5NM.add_latency_ps

    def test_wire_speed(self):
        # 200 ps cycle / 800 ps-per-mm = 0.25 mm per cycle
        assert TECH_5NM.wire_mm_per_cycle == pytest.approx(0.25)

    def test_hop_cycles(self):
        # 1 mm pitch at 0.25 mm/cycle = 4 cycles
        assert TECH_5NM.hop_cycles() == 4


class TestEnergyHelpers:
    def test_add_energy_word(self):
        assert TECH_5NM.add_energy_word_fj() == pytest.approx(16.0)

    def test_transport_energy_scales_linearly(self):
        e1 = TECH_5NM.transport_energy_fj(1.0)
        e5 = TECH_5NM.transport_energy_fj(5.0)
        assert e5 == pytest.approx(5 * e1)

    def test_transport_energy_custom_bits(self):
        assert TECH_5NM.transport_energy_fj(2.0, bits=1) == pytest.approx(160.0)

    def test_transport_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            TECH_5NM.transport_energy_fj(-1.0)

    def test_offchip_energy_word(self):
        assert TECH_5NM.offchip_energy_word_fj() == pytest.approx(25_000.0 * 32)


class TestLatencyHelpers:
    def test_zero_distance_zero_cycles(self):
        assert TECH_5NM.transport_cycles(0.0) == 0

    def test_short_distance_at_least_one_cycle(self):
        assert TECH_5NM.transport_cycles(0.01) == 1

    def test_transport_cycles_rounds_up(self):
        # 1.1 mm -> 880 ps -> ceil(4.4) = 5 cycles
        assert TECH_5NM.transport_cycles(1.1) == 5

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            TECH_5NM.transport_cycles(-0.5)

    def test_offchip_cycles_positive(self):
        assert TECH_5NM.offchip_cycles() >= 1


class TestVariants:
    def test_with_returns_modified_copy(self):
        t2 = TECH_5NM.with_(grid_pitch_mm=0.25)
        assert t2.grid_pitch_mm == 0.25
        assert TECH_5NM.grid_pitch_mm == 1.0  # original untouched

    def test_finer_pitch_single_cycle_hop(self):
        t2 = TECH_5NM.with_(grid_pitch_mm=0.25)
        assert t2.hop_cycles() == 1

    def test_16nm_point_differs(self):
        assert TECH_16NM.add_energy_fj_per_bit > TECH_5NM.add_energy_fj_per_bit

    def test_frozen(self):
        with pytest.raises(Exception):
            TECH_5NM.word_bits = 64  # type: ignore[misc]
