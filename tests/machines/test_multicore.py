"""Multicore accounting model: the 10,000x overhead story, measured."""

import pytest

from repro.machines.multicore import MulticoreConfig, MulticoreMachine
from repro.machines.technology import TECH_5NM
from repro.models.ram import assemble, sum_program


class TestSingleCore:
    def test_runs_programs_correctly(self):
        mc = MulticoreMachine()
        res, ram = mc.run_single(
            sum_program(), {1: 1000, 2: 32}, {1000: list(range(32))}
        )
        assert ram.registers[0] == sum(range(32))
        assert res.instructions == res.counts.total

    def test_overhead_ratio_at_least_the_papers_factor(self):
        """Claim C5: total energy per useful ALU energy >= 10,000x.

        The per-instruction overhead alone is 10,000x; loads, branches and
        memory traffic push the whole-program ratio higher, never lower.
        """
        mc = MulticoreMachine()
        res, _ = mc.run_single(
            sum_program(), {1: 1000, 2: 64}, {1000: [1] * 64}
        )
        assert res.overhead_ratio >= TECH_5NM.instruction_overhead_factor

    def test_energy_breakdown_positive(self):
        mc = MulticoreMachine()
        res, _ = mc.run_single(sum_program(), {1: 0, 2: 8}, {0: [1] * 8})
        assert res.energy_instruction_overhead_fj > 0
        assert res.energy_useful_alu_fj > 0
        assert res.energy_memory_fj > 0
        assert res.energy_total_fj == pytest.approx(
            res.energy_instruction_overhead_fj
            + res.energy_useful_alu_fj
            + res.energy_memory_fj
        )

    def test_cache_locality_reduces_cycles(self):
        """Summing the same small array twice: second pass hits in cache."""
        src = """
            li r0, 0
            li r3, 0
        loop: bge r3, r2, done
            add r4, r1, r3
            ld r5, (r4)
            add r0, r0, r5
            addi r3, r3, 1
            jmp loop
        done: halt
        """
        prog = assemble(src)
        mc = MulticoreMachine()
        res1, _ = mc.run_single(prog, {1: 0, 2: 64}, {0: [1] * 64})

        # strided access: each load a new block -> more memory stalls
        src_strided = src.replace("addi r3, r3, 1", "addi r3, r3, 8")
        prog_s = assemble(src_strided)
        res2, _ = mc.run_single(prog_s, {1: 0, 2: 512}, {0: [1] * 512})
        # same number of loads (64), strided version misses more
        assert res2.mem_accesses > res1.mem_accesses

    def test_zero_alu_program_infinite_ratio(self):
        mc = MulticoreMachine()
        res, _ = mc.run_single(assemble("li r0, 1\nhalt"), {}, {})
        assert res.overhead_ratio == float("inf")


class TestPhases:
    def test_balanced_phase(self):
        mc = MulticoreMachine(MulticoreConfig(n_cores=4, issue_width=1,
                                              barrier_cycles=100))
        res = mc.run_phases([[10] * 4])
        assert res.cycles == 10 + 100
        assert res.barriers == 1

    def test_imbalance_costs(self):
        cfg = MulticoreConfig(n_cores=4, issue_width=1, barrier_cycles=0)
        mc = MulticoreMachine(cfg)
        balanced = mc.run_phases([[10, 10, 10, 10]])
        skewed = mc.run_phases([[40, 0, 0, 0]])
        assert skewed.cycles > balanced.cycles
        assert skewed.instructions == balanced.instructions

    def test_barrier_dominates_tiny_phases(self):
        """Many small levels: the barrier cost swamps the work — Yelick's
        heavyweight-synchronization point."""
        cfg = MulticoreConfig(n_cores=8, issue_width=1, barrier_cycles=2000)
        mc = MulticoreMachine(cfg)
        res = mc.run_phases([[1]] * 50)
        assert res.cycles >= 50 * 2000

    def test_empty_phase_costs_barrier(self):
        cfg = MulticoreConfig(barrier_cycles=77)
        mc = MulticoreMachine(cfg)
        res = mc.run_phases([[]])
        assert res.cycles == 77

    def test_energy_charged_per_instruction(self):
        cfg = MulticoreConfig(n_cores=2, issue_width=1, barrier_cycles=0)
        mc = MulticoreMachine(cfg)
        res = mc.run_phases([[5, 5]], instructions_per_item=3)
        assert res.instructions == 30
        add = TECH_5NM.add_energy_word_fj()
        assert res.energy_instruction_overhead_fj == pytest.approx(
            30 * add * TECH_5NM.instruction_overhead_factor
        )
