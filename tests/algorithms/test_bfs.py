"""BFS: all formulations, non-determinism, validation."""

import numpy as np
import pytest

from repro.algorithms.bfs import (
    UNREACHED,
    bfs_level_sync,
    bfs_pram,
    bfs_serial,
    bfs_xmt,
    level_work_profile,
    validate_bfs_tree,
)
from repro.algorithms.graphs import (
    grid_graph,
    path_graph,
    random_gnp,
    star_graph,
)


class TestSerial:
    def test_path_distances(self):
        g = path_graph(6)
        r = bfs_serial(g, 0)
        assert r.dist.tolist() == [0, 1, 2, 3, 4, 5]
        assert r.levels == 6

    def test_star_two_levels(self):
        g = star_graph(10)
        r = bfs_serial(g, 0)
        assert r.frontier_sizes == [1, 9]

    def test_disconnected_unreached(self):
        from repro.algorithms.graphs import from_edges

        g = from_edges(4, [(0, 1)])
        r = bfs_serial(g, 0)
        assert r.dist[2] == UNREACHED and r.dist[3] == UNREACHED

    def test_edge_inspections_bounded_by_2m(self):
        g = random_gnp(40, 0.2, seed=1)
        r = bfs_serial(g, 0)
        assert r.edge_inspections <= 2 * g.m

    def test_bad_source(self):
        with pytest.raises(ValueError):
            bfs_serial(path_graph(3), 9)


class TestLevelSync:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_bfs_tree_both_rules(self, seed):
        g = random_gnp(60, 0.07, seed=seed)
        for rule in ("priority", "arbitrary"):
            r = bfs_level_sync(g, 0, rule, seed=seed)
            validate_bfs_tree(g, 0, r)

    def test_distances_deterministic_across_rules(self):
        g = random_gnp(50, 0.1, seed=2)
        d1 = bfs_level_sync(g, 0, "priority").dist
        d2 = bfs_level_sync(g, 0, "arbitrary", seed=1).dist
        d3 = bfs_level_sync(g, 0, "arbitrary", seed=99).dist
        assert np.array_equal(d1, d2) and np.array_equal(d1, d3)

    def test_parents_can_differ_between_rules(self):
        """The 'limited non-determinism' the panel mentions: valid trees
        may differ in parent choice."""
        g = grid_graph(6, 6)
        p_pri = bfs_level_sync(g, 0, "priority").parent
        differs = False
        for seed in range(10):
            p_arb = bfs_level_sync(g, 0, "arbitrary", seed=seed).parent
            if not np.array_equal(p_pri, p_arb):
                differs = True
                break
        assert differs

    def test_priority_rule_picks_lowest_parent(self):
        g = grid_graph(3, 3)
        r = bfs_level_sync(g, 0, "priority")
        # vertex 4 (center) reachable from 1 and 3 at level 1: parent = 1
        assert r.parent[4] == 1

    def test_frontier_profile_matches_serial(self):
        g = random_gnp(50, 0.08, seed=5)
        assert bfs_level_sync(g, 0).frontier_sizes == bfs_serial(g, 0).frontier_sizes

    def test_bad_rule(self):
        with pytest.raises(ValueError):
            bfs_level_sync(path_graph(3), 0, "quantum")


class TestPram:
    @pytest.mark.parametrize("seed", range(3))
    def test_valid_tree(self, seed):
        g = random_gnp(50, 0.08, seed=seed)
        r, _ = bfs_pram(g, 0)
        validate_bfs_tree(g, 0, r)

    def test_counters_populated(self):
        g = random_gnp(50, 0.1, seed=0)
        _, pram = bfs_pram(g, 0, n_processors=16)
        assert pram.steps > 0 and pram.work > 0
        assert pram.p == 16

    def test_work_scales_with_edges(self):
        sparse = random_gnp(60, 0.03, seed=1)
        dense = random_gnp(60, 0.3, seed=1)
        _, p1 = bfs_pram(sparse, 0)
        _, p2 = bfs_pram(dense, 0)
        assert p2.work > p1.work


class TestXmt:
    @pytest.mark.parametrize("maker,args", [
        (random_gnp, (40, 0.1, 3)),
        (grid_graph, (5, 5)),
        (star_graph, (20,)),
        (path_graph, (15,)),
    ])
    def test_valid_tree_on_varied_graphs(self, maker, args):
        g = maker(*args)
        r, _ = bfs_xmt(g, 0)
        validate_bfs_tree(g, 0, r)

    def test_ps_used_for_queue_building(self):
        g = random_gnp(40, 0.1, seed=3)
        _, xm = bfs_xmt(g, 0)
        assert xm.result.ps_ops > 0
        assert xm.result.spawn_blocks == bfs_serial(g, 0).levels

    def test_more_tcus_fewer_cycles(self):
        from repro.machines.xmt import XmtConfig, XmtMachine

        g = random_gnp(80, 0.08, seed=4)
        cyc = {}
        for tcus in (4, 64):
            xm = XmtMachine(4 * g.n + 1, XmtConfig(n_tcus=tcus))
            _, xm = bfs_xmt(g, 0, xm)
            cyc[tcus] = xm.result.cycles
        assert cyc[64] < cyc[4]


class TestLevelWorkProfile:
    def test_profile_shape(self):
        g = star_graph(8)
        prof = level_work_profile(g, 0)
        assert len(prof) == 2
        assert prof[0] == [7]           # hub degree
        assert sorted(prof[1]) == [1] * 7

    def test_total_degree_conserved(self):
        g = random_gnp(40, 0.1, seed=7)
        prof = level_work_profile(g, 0)
        reached_deg = sum(sum(level) for level in prof)
        r = bfs_serial(g, 0)
        want = sum(g.degree(v) for v in range(g.n) if r.dist[v] != UNREACHED)
        assert reached_deg == want
