"""F&M matmul: broadcast vs systolic dataflows on the grid machine."""

import numpy as np
import pytest

from repro.algorithms.matmul_fm import matmul_graph, owner_mapping, verify_against
from repro.core.cost import evaluate_cost
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec
from repro.machines.grid import GridMachine


def mats(rng, n):
    return rng.integers(0, 9, size=(n, n)), rng.integers(0, 9, size=(n, n))


class TestGraphs:
    @pytest.mark.parametrize("systolic", [False, True])
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_evaluates_to_product(self, rng, systolic, n):
        a, b = mats(rng, n)
        g = matmul_graph(n, systolic=systolic)
        assert verify_against(g, a, b)

    def test_mac_count_identical(self):
        n = 4
        plain = matmul_graph(n, systolic=False)
        syst = matmul_graph(n, systolic=True)
        count = lambda g, grp: sum(1 for x in g.group if x == grp)
        assert count(plain, "mac") == count(syst, "mac") == n**3
        assert count(syst, "fwdA") == count(syst, "fwdB") == n**3
        assert count(plain, "fwdA") == 0

    def test_bad_n(self):
        with pytest.raises(ValueError):
            matmul_graph(0)


class TestOwnerMapping:
    @pytest.mark.parametrize("systolic", [False, True])
    def test_legal_and_correct_on_machine(self, rng, systolic):
        n = 4
        a, b = mats(rng, n)
        grid = GridSpec(n, n)
        g = matmul_graph(n, systolic=systolic)
        m = owner_mapping(g, n, grid)
        assert check_legality(g, m, grid).ok
        res = GridMachine(grid).run(
            g, m,
            {"A": {(i, k): int(a[i, k]) for i in range(n) for k in range(n)},
             "B": {(k, j): int(b[k, j]) for k in range(n) for j in range(n)}},
        )
        want = a @ b
        for i in range(n):
            for j in range(n):
                assert res.outputs[("C", i, j)] == want[i, j]

    def test_grid_too_small(self):
        g = matmul_graph(4)
        with pytest.raises(ValueError, match="too small"):
            owner_mapping(g, 4, GridSpec(2, 2))

    def test_inputs_at_array_edges(self):
        n = 3
        g = matmul_graph(n, systolic=True)
        m = owner_mapping(g, n, GridSpec(n, n))
        for nid in g.input_nodes():
            name, idx = g.payload[nid]
            x, y = m.place_of(nid)
            if name == "A":
                assert x == 0 and y == idx[0]  # west edge of its row
            else:
                assert y == 0 and x == idx[1]  # north edge of its column


class TestSystolicTradeoff:
    def test_forwarding_cuts_wire_energy(self, rng):
        n = 6
        grid = GridSpec(n, n)
        energies = {}
        for systolic in (False, True):
            g = matmul_graph(n, systolic=systolic)
            m = owner_mapping(g, n, grid)
            energies[systolic] = evaluate_cost(g, m, grid).energy_onchip_fj
        assert energies[True] < energies[False] / 2

    def test_wire_advantage_grows_with_n(self):
        ratios = []
        for n in (3, 6):
            grid = GridSpec(n, n)
            e = {}
            for systolic in (False, True):
                g = matmul_graph(n, systolic=systolic)
                m = owner_mapping(g, n, grid)
                e[systolic] = evaluate_cost(g, m, grid).energy_onchip_fj
            ratios.append(e[False] / e[True])
        assert ratios[1] > ratios[0]

    def test_compute_energy_gap_is_zero(self, rng):
        """copy forwarding is free arithmetic; only wires differ."""
        n = 4
        grid = GridSpec(n, n)
        costs = {}
        for systolic in (False, True):
            g = matmul_graph(n, systolic=systolic)
            m = owner_mapping(g, n, grid)
            costs[systolic] = evaluate_cost(g, m, grid)
        assert costs[True].energy_compute_fj == pytest.approx(
            costs[False].energy_compute_fj
        )
