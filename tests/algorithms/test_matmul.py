"""Matmul: numeric kernels, trace generators, distributed comm volumes."""

import numpy as np
import pytest

from repro.algorithms.matmul import (
    cannon,
    comm_volume_bound,
    matmul_25d,
    matmul_blocked,
    matmul_naive,
    matmul_recursive,
    summa,
    trace_blocked,
    trace_naive,
    trace_recursive,
)
from repro.models.cache import ideal_cache_misses


def mats(rng, n):
    return (
        rng.integers(0, 10, size=(n, n)).astype(np.int64),
        rng.integers(0, 10, size=(n, n)).astype(np.int64),
    )


class TestNumericKernels:
    @pytest.mark.parametrize("n", [1, 4, 8, 16])
    def test_naive(self, rng, n):
        a, b = mats(rng, n)
        assert np.array_equal(matmul_naive(a, b), a @ b)

    @pytest.mark.parametrize("bs", [1, 3, 4, 16])
    def test_blocked_any_block_size(self, rng, bs):
        a, b = mats(rng, 12)
        assert np.array_equal(matmul_blocked(a, b, bs), a @ b)

    @pytest.mark.parametrize("cutoff", [1, 2, 8])
    def test_recursive(self, rng, cutoff):
        a, b = mats(rng, 16)
        assert np.array_equal(matmul_recursive(a, b, cutoff), a @ b)

    def test_recursive_needs_pow2(self, rng):
        a, b = mats(rng, 12)
        with pytest.raises(ValueError):
            matmul_recursive(a, b)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            matmul_naive(np.zeros((2, 3)), np.zeros((2, 3)))


class TestTraces:
    def test_trace_lengths(self):
        n = 8
        assert len(list(trace_naive(n))) == 2 * n**3 + n**2
        blocked = list(trace_blocked(n, 4))
        recur = list(trace_recursive(n, 4))
        # 2n^3 operand reads, plus C writes/rereads per k-block
        assert len(blocked) >= 2 * n**3
        assert len(recur) >= 2 * n**3

    def test_all_traces_touch_same_operand_cells(self):
        """Every variant must read exactly the same multiset of A and B
        cells — same function, different order."""
        n = 8
        def reads(tr):
            from collections import Counter

            return Counter(a for k, a in tr if k == "r" and a < (2 << 20))

        rn = reads(trace_naive(n))
        rb = reads(trace_blocked(n, 4))
        rr = reads(trace_recursive(n, 4))
        assert rn == rb == rr

    def test_blocking_reduces_misses(self):
        """The locality ladder: naive > blocked on a small cache."""
        n, m_words, b_words = 16, 128, 4
        q_naive = ideal_cache_misses(trace_naive(n), m_words, b_words)
        q_blk = ideal_cache_misses(trace_blocked(n, 4), m_words, b_words)
        assert q_blk < q_naive

    def test_recursive_close_to_blocked_without_knowing_m(self):
        n, m_words, b_words = 16, 128, 4
        q_blk = ideal_cache_misses(trace_blocked(n, 4), m_words, b_words)
        q_rec = ideal_cache_misses(trace_recursive(n, 2), m_words, b_words)
        assert q_rec <= 3 * q_blk  # oblivious within a small factor of aware

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            list(trace_blocked(8, 0))


class TestDistributed:
    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_summa_correct(self, rng, p):
        a, b = mats(rng, 16)
        c, stats = summa(a.astype(float), b.astype(float), p)
        assert np.allclose(c, a @ b)
        assert stats.p == p

    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_cannon_correct(self, rng, p):
        a, b = mats(rng, 16)
        c, stats = cannon(a.astype(float), b.astype(float), p)
        assert np.allclose(c, a @ b)

    @pytest.mark.parametrize("p,c", [(4, 1), (16, 4), (8, 2)])
    def test_25d_correct(self, rng, p, c):
        a, b = mats(rng, 16)
        got, stats = matmul_25d(a.astype(float), b.astype(float), p, c)
        assert np.allclose(got, a @ b)

    def test_replication_cuts_shift_traffic(self, rng):
        """2.5D with c=4 on p=16 moves fewer shift words than Cannon on
        p=16 for big enough n (replication amortizes)."""
        n = 32
        a, b = mats(rng, n)
        af, bf = a.astype(float), b.astype(float)
        _, s_cannon = cannon(af, bf, 16)
        _, s_25d = matmul_25d(af, bf, 16, 4)
        assert s_25d.words_total < s_cannon.words_total

    def test_volume_scales_with_sqrt_p(self, rng):
        n = 32
        a, b = mats(rng, n)
        af, bf = a.astype(float), b.astype(float)
        _, s4 = cannon(af, bf, 4)
        _, s16 = cannon(af, bf, 16)
        ratio = s16.words_total / max(1, s4.words_total)
        want = comm_volume_bound(n, 16) / comm_volume_bound(n, 4)
        assert ratio == pytest.approx(want, rel=0.5)

    def test_bad_grid(self, rng):
        a, b = mats(rng, 16)
        with pytest.raises(ValueError):
            summa(a, b, 5)  # not a perfect square
        with pytest.raises(ValueError):
            matmul_25d(a, b, 16, 3)  # c does not divide p

    def test_messages_counted(self, rng):
        a, b = mats(rng, 16)
        _, stats = summa(a.astype(float), b.astype(float), 16)
        assert stats.messages > 0
        assert stats.words_per_proc_avg > 0
