"""Random-order incremental algorithms: correctness + depth scaling."""

import numpy as np
import pytest

from repro.algorithms.graphs import grid_graph, path_graph, random_gnp
from repro.algorithms.incremental import (
    bst_depth,
    greedy_coloring,
    greedy_mis,
    random_order,
)


class TestGreedyColoring:
    @pytest.mark.parametrize("seed", range(3))
    def test_coloring_valid(self, seed):
        g = random_gnp(60, 0.1, seed=seed)
        res = greedy_coloring(g, random_order(g.n, seed))
        colors = res.result
        src = np.repeat(np.arange(g.n), np.diff(g.indptr))
        assert (colors[src] != colors[g.indices]).all()
        assert colors.min() >= 0

    def test_color_count_bounded_by_degree(self):
        g = grid_graph(6, 6)  # max degree 4
        res = greedy_coloring(g, random_order(g.n, 1))
        assert res.result.max() <= 4  # first-fit uses <= maxdeg+1 colors

    def test_sorted_order_on_path_is_serial(self):
        """Identity order on a path: every vertex waits for its
        predecessor — depth n, the hidden-parallelism-free case."""
        n = 128
        g = path_graph(n)
        res = greedy_coloring(g, np.arange(n))
        assert res.depth == n

    def test_random_order_on_path_is_shallow(self):
        """Random order: depth O(log n) w.h.p. — the paper's 'sequential
        algorithms are actually parallel' claim, measured."""
        n = 1024
        g = path_graph(n)
        depths = [
            greedy_coloring(g, random_order(n, seed)).depth
            for seed in range(5)
        ]
        assert max(depths) <= 6 * np.log2(n)

    def test_bad_order_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError, match="permutation"):
            greedy_coloring(g, np.array([0, 0, 1, 2]))

    def test_parallelism_metric(self):
        g = path_graph(64)
        res = greedy_coloring(g, random_order(64, 0))
        assert res.parallelism == pytest.approx(res.work / res.depth)


class TestGreedyMis:
    @pytest.mark.parametrize("seed", range(3))
    def test_independent_and_maximal(self, seed):
        g = random_gnp(50, 0.1, seed=seed)
        res = greedy_mis(g, random_order(g.n, seed))
        mis = res.result
        src = np.repeat(np.arange(g.n), np.diff(g.indptr))
        # independent: no edge inside the set
        assert not ((mis[src] == 1) & (mis[g.indices] == 1)).any()
        # maximal: every non-member has a member neighbour
        for v in range(g.n):
            if mis[v] == 0:
                assert any(mis[u] for u in g.neighbors(v))

    def test_depth_gap_between_orders(self):
        n = 512
        g = path_graph(n)
        serial = greedy_mis(g, np.arange(n)).depth
        rand = greedy_mis(g, random_order(n, 3)).depth
        assert serial == n
        assert rand < serial / 10


class TestBstDepth:
    def test_inorder_is_sorted(self, rng):
        keys = rng.choice(10_000, size=200, replace=False)
        res = bst_depth(keys)
        assert np.array_equal(res.result, np.sort(keys))

    def test_sorted_insertion_linear_depth(self):
        res = bst_depth(np.arange(128))
        assert res.depth == 128

    def test_random_insertion_log_depth(self, rng):
        n = 1024
        keys = rng.permutation(n)
        res = bst_depth(keys)
        # expected height ~ 3 log2 n; allow slack
        assert res.depth <= 6 * np.log2(n)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            bst_depth(np.array([1, 1, 2]))

    def test_singleton(self):
        res = bst_depth(np.array([5]))
        assert res.depth == 1 and res.result.tolist() == [5]
