"""FFT: every function agrees with numpy; graphs verify on the machine."""

import numpy as np
import pytest

from repro.algorithms.fft import (
    OpCount,
    bit_reverse,
    fft_graph,
    fft_iterative,
    fft_radix4,
    fft_recursive_dif,
    fft_recursive_dit,
)
from repro.core.default_mapper import serial_mapping
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec
from repro.core.search import sweep_placements
from repro.machines.grid import GridMachine


def signal(rng, n):
    return rng.normal(size=n) + 1j * rng.normal(size=n)


class TestBitReverse:
    def test_known_values(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011

    def test_involution(self):
        for i in range(16):
            assert bit_reverse(bit_reverse(i, 4), 4) == i


class TestReferenceImplementations:
    @pytest.mark.parametrize(
        "fn", [fft_recursive_dit, fft_recursive_dif, fft_iterative]
    )
    @pytest.mark.parametrize("n", [1, 2, 8, 64, 128])
    def test_matches_numpy(self, rng, fn, n):
        x = signal(rng, n)
        assert np.allclose(fn(x), np.fft.fft(x))

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_radix4_matches_numpy(self, rng, n):
        x = signal(rng, n)
        assert np.allclose(fft_radix4(x), np.fft.fft(x))

    def test_radix4_rejects_non_power_of_4(self, rng):
        with pytest.raises(ValueError):
            fft_radix4(signal(rng, 8))

    def test_non_power_of_two_rejected(self, rng):
        with pytest.raises(ValueError):
            fft_iterative(signal(rng, 12))

    def test_op_counts_nlogn(self, rng):
        n = 64
        c = OpCount()
        fft_recursive_dit(signal(rng, n), c)
        assert c.mul == (n // 2) * 6  # n/2 muls per stage, log2(64)=6 stages
        assert c.add == n * 6

    def test_radix4_fewer_multiplies(self, rng):
        n = 64
        c2, c4 = OpCount(), OpCount()
        fft_recursive_dit(signal(rng, n), c2)
        fft_radix4(signal(rng, n), c4)
        assert c4.mul < c2.mul  # the "different radix" constant factor

    def test_dit_dif_same_counts(self, rng):
        n = 32
        cd, cf = OpCount(), OpCount()
        fft_recursive_dit(signal(rng, n), cd)
        fft_recursive_dif(signal(rng, n), cf)
        assert (cd.mul, cd.add) == (cf.mul, cf.add)

    def test_weighted_ops(self):
        c = OpCount(mul=2, add=3)
        assert c.total == 5
        assert c.weighted(4.0, 1.0) == 11.0


class TestGraphs:
    @pytest.mark.parametrize("variant", ["dit", "dif"])
    @pytest.mark.parametrize("n", [2, 8, 32])
    def test_graph_verifies_on_machine(self, rng, variant, n):
        x = signal(rng, n)
        g = fft_graph(n, variant)
        grid = GridSpec(4, 1)
        m = serial_mapping(g, grid)
        res = GridMachine(grid).run(
            g, m, {"x": {(i,): complex(x[i]) for i in range(n)}}
        )
        want = np.fft.fft(x)
        for k in range(n):
            assert abs(res.outputs[("X", k)] - want[k]) < 1e-9

    def test_graph_work_nlogn(self):
        n = 32
        g = fft_graph(n, "dit")
        # 3 compute nodes per butterfly, n/2 log n butterflies
        assert g.work() == 3 * (n // 2) * 5

    def test_graph_depth_logarithmic(self):
        g = fft_graph(64, "dit")
        assert g.depth() <= 3 * 6  # 3 ops per stage chain

    def test_bad_variant(self):
        with pytest.raises(ValueError):
            fft_graph(8, "radix-16")

    def test_placement_sweep_all_legal_and_correct(self, rng):
        """Every swept mapping of the DIT graph is legal and produces the
        right answer — the 'many possible mappings' claim, verified."""
        n = 16
        x = signal(rng, n)
        g = fft_graph(n, "dit")
        grid = GridSpec(4, 1)
        mach = GridMachine(grid)
        want = np.fft.fft(x)
        for r in sweep_placements(g, grid)[:5]:
            assert check_legality(g, r.mapping, grid).ok, r.label
            res = mach.run(g, r.mapping, {"x": {(i,): complex(x[i]) for i in range(n)}})
            for k in range(n):
                assert abs(res.outputs[("X", k)] - want[k]) < 1e-9

    def test_dit_dif_communication_profiles_differ(self):
        """DIT's late stages span the array; DIF's early ones do.  Under a
        blocked distribution the two accumulate different wire energy over
        time even though totals are symmetric — check stage-0 locality."""
        n, p = 32, 4
        grid = GridSpec(p, 1)
        from repro.core.search import _owner_place_fn
        from repro.core.default_mapper import schedule_asap
        from repro.core.cost import evaluate_cost

        costs = {}
        for var in ("dit", "dif"):
            g = fft_graph(n, var)
            m = schedule_asap(g, grid, _owner_place_fn(g, grid, p, False))
            costs[var] = evaluate_cost(g, m, grid)
        # both pay some on-chip transport under a blocked layout
        assert costs["dit"].energy_onchip_fj > 0
        assert costs["dif"].energy_onchip_fj > 0
