"""Scan algorithms: correctness, work-efficiency, conflict behaviour."""

import numpy as np
import pytest

from repro.algorithms.scan import (
    blelloch_scan_pram,
    hillis_steele_scan_pram,
    scan_fork_join,
    segmented_scan,
    sequential_scan,
)
from repro.models.pram import ConcurrencyMode, ConflictError


@pytest.fixture
def data(rng):
    return rng.integers(-50, 50, size=64)


class TestSequential:
    def test_matches_numpy(self, data):
        assert np.array_equal(sequential_scan(data), np.cumsum(data))

    def test_singleton(self):
        assert sequential_scan([7]).tolist() == [7]


class TestBlelloch:
    @pytest.mark.parametrize("n", [1, 2, 8, 64, 256])
    def test_correct(self, rng, n):
        a = rng.integers(-10, 10, size=n)
        inc, _ = blelloch_scan_pram(a)
        assert np.array_equal(inc, np.cumsum(a))

    def test_erew_suffices(self, data):
        inc, pram = blelloch_scan_pram(data, mode=ConcurrencyMode.EREW)
        assert np.array_equal(inc, np.cumsum(data))
        assert pram.mode is ConcurrencyMode.EREW

    def test_work_efficient(self, rng):
        """Blelloch scan does O(n) work: measure the constant."""
        n = 256
        a = rng.integers(0, 5, size=n)
        _, pram = blelloch_scan_pram(a)
        assert pram.work <= 8 * n  # reads+writes of up/down sweeps ~ 6n

    def test_steps_logarithmic(self, rng):
        steps = []
        for n in (64, 256):
            _, pram = blelloch_scan_pram(rng.integers(0, 5, size=n))
            steps.append(pram.steps)
        # 4x the data, only ~+6 steps (2 sweeps x log4 levels x 3 ops)
        assert steps[1] - steps[0] <= 14

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            blelloch_scan_pram([1, 2, 3])

    def test_limited_processors_same_answer(self, data):
        inc, pram = blelloch_scan_pram(data, n_processors=4)
        assert np.array_equal(inc, np.cumsum(data))
        assert pram.p == 4


class TestHillisSteele:
    @pytest.mark.parametrize("n", [2, 16, 128])
    def test_correct(self, rng, n):
        a = rng.integers(-10, 10, size=n)
        out, _ = hillis_steele_scan_pram(a)
        assert np.array_equal(out, np.cumsum(a))

    def test_requires_concurrent_reads(self, data):
        with pytest.raises(ConflictError):
            hillis_steele_scan_pram(data, mode=ConcurrencyMode.EREW)

    def test_work_inefficient_vs_blelloch(self, rng):
        """The canonical lesson: same answer, Theta(n log n) vs Theta(n)."""
        n = 256
        a = rng.integers(0, 5, size=n)
        _, hs = hillis_steele_scan_pram(a)
        _, bl = blelloch_scan_pram(a)
        assert hs.work > 2 * bl.work

    def test_fewer_steps_than_blelloch(self, rng):
        """...but Hillis-Steele wins on depth (single sweep)."""
        a = rng.integers(0, 5, size=256)
        _, hs = hillis_steele_scan_pram(a)
        _, bl = blelloch_scan_pram(a)
        assert hs.steps < bl.steps


class TestForkJoinScan:
    @pytest.mark.parametrize("n", [1, 2, 10, 64, 100])
    def test_correct_any_length(self, rng, n):
        vals = rng.integers(-5, 5, size=n).tolist()
        res = scan_fork_join(vals)
        assert res.value == np.cumsum(vals).tolist()

    def test_span_polylog(self):
        res = scan_fork_join([1] * 256)
        assert res.span <= 200  # << n, the serial span
        assert res.work >= 256

    def test_grain_tradeoff(self):
        fine = scan_fork_join([1] * 128, grain=1)
        coarse = scan_fork_join([1] * 128, grain=32)
        assert coarse.dag.n_nodes < fine.dag.n_nodes
        assert coarse.span >= fine.span // 4  # coarse grain trades span


class TestSegmented:
    def test_restarts_at_flags(self):
        out = segmented_scan([1, 2, 3, 4, 5], [1, 0, 1, 0, 0])
        assert out.tolist() == [1, 3, 3, 7, 12]

    def test_all_flags_identity(self):
        vals = [4, 5, 6]
        assert segmented_scan(vals, [1, 1, 1]).tolist() == vals

    def test_no_flags_is_plain_scan(self, rng):
        vals = rng.integers(0, 9, size=32)
        flags = np.zeros(32, dtype=int)
        flags[0] = 1
        assert np.array_equal(segmented_scan(vals, flags), np.cumsum(vals))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            segmented_scan([1, 2], [1])
