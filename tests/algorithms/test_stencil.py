"""Stencils: reference, graph, mappings, halo accounting."""

import numpy as np
import pytest

from repro.algorithms.stencil import (
    halo_words,
    owner_computes_mapping,
    stencil_graph,
    stencil_reference,
    time_multiplexed_mapping,
)
from repro.core.cost import evaluate_cost
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec
from repro.machines.grid import GridMachine


class TestReference:
    def test_single_step_weights(self):
        out = stencil_reference(np.array([0, 1, 0]), 1, (1, 2, 1))
        assert out.tolist() == [1, 2, 1]

    def test_zero_steps_identity(self):
        x = np.arange(5)
        assert np.array_equal(stencil_reference(x, 0), x)

    def test_mass_grows_with_weight_sum(self):
        x = np.ones(8, dtype=int)
        out = stencil_reference(x, 1, (1, 1, 1))
        assert out[3] == 3  # interior: three ones


class TestGraph:
    @pytest.mark.parametrize("n,steps", [(4, 1), (8, 3), (12, 2)])
    def test_matches_reference(self, rng, n, steps):
        x = rng.integers(-3, 4, size=n)
        g = stencil_graph(n, steps)
        out = g.evaluate({"x": {(i,): int(x[i]) for i in range(n)}})
        want = stencil_reference(x, steps)
        assert [out[("y", i)] for i in range(n)] == want.tolist()

    def test_zero_steps_copies_inputs(self, rng):
        x = rng.integers(0, 5, size=4)
        g = stencil_graph(4, 0)
        out = g.evaluate({"x": {(i,): int(x[i]) for i in range(4)}})
        assert [out[("y", i)] for i in range(4)] == x.tolist()

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            stencil_graph(0, 1)


class TestMappings:
    def test_owner_computes_legal_and_correct(self, rng):
        n, steps, p = 16, 3, 4
        grid = GridSpec(p, 1)
        x = rng.integers(0, 5, size=n)
        g = stencil_graph(n, steps)
        m = owner_computes_mapping(g, n, p, grid)
        assert check_legality(g, m, grid).ok
        res = GridMachine(grid).run(g, m, {"x": {(i,): int(x[i]) for i in range(n)}})
        want = stencil_reference(x, steps)
        assert [res.outputs[("y", i)] for i in range(n)] == want.tolist()

    def test_time_multiplexed_no_wires(self, rng):
        n, steps = 8, 2
        grid = GridSpec(4, 1)
        g = stencil_graph(n, steps)
        m = time_multiplexed_mapping(g, grid)
        cost = evaluate_cost(g, m, grid)
        assert cost.energy_onchip_fj == 0
        assert cost.places_used == 1

    def test_owner_computes_faster_but_pays_wires(self, rng):
        n, steps, p = 32, 2, 8
        grid = GridSpec(p, 1)
        g = stencil_graph(n, steps)
        own = evaluate_cost(g, owner_computes_mapping(g, n, p, grid), grid)
        tm = evaluate_cost(g, time_multiplexed_mapping(g, grid), grid)
        assert own.cycles < tm.cycles
        assert own.energy_onchip_fj > tm.energy_onchip_fj

    def test_halo_traffic_matches_analytic_count(self):
        """Cross-PE words in the mapped graph equal the halo formula."""
        n, steps, p = 16, 3, 4
        grid = GridSpec(p, 1)
        g = stencil_graph(n, steps)
        # pre-staged inputs: every step (including the first) crosses on chip
        m = owner_computes_mapping(g, n, p, grid, inputs_offchip=False)
        cross = sum(
            1
            for u, v in g.edges()
            if not m.offchip[u]
            and not m.offchip[v]
            and m.place_of(u) != m.place_of(v)
        )
        assert cross == halo_words(p, steps)

    def test_halo_words_formula(self):
        assert halo_words(1, 10) == 0
        assert halo_words(4, 3) == 18
        with pytest.raises(ValueError):
            halo_words(0, 1)
