"""Connected components: serial, label propagation, XMT."""

import numpy as np
import pytest

from repro.algorithms.connectivity import (
    cc_label_propagation,
    cc_serial,
    cc_xmt,
    labels_equivalent,
)
from repro.algorithms.graphs import (
    from_edges,
    grid_graph,
    path_graph,
    random_gnp,
    star_graph,
)


class TestSerial:
    def test_two_components(self):
        g = from_edges(5, [(0, 1), (2, 3)])
        labels = cc_serial(g)
        assert labels.tolist() == [0, 0, 2, 2, 4]

    def test_connected_single_label(self):
        g = star_graph(10)
        assert (cc_serial(g) == 0).all()

    def test_isolated_vertices(self):
        g = from_edges(3, [])
        assert cc_serial(g).tolist() == [0, 1, 2]


class TestLabelPropagation:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_serial_partition(self, seed):
        g = random_gnp(60, 0.04, seed=seed)
        ser = cc_serial(g)
        lp, _ = cc_label_propagation(g)
        assert labels_equivalent(ser, lp)
        assert np.array_equal(ser, lp)  # both canonicalize to min-id

    def test_rounds_scale_with_diameter(self):
        short = star_graph(64)   # diameter 2
        long = path_graph(64)    # diameter 63
        _, r_short = cc_label_propagation(short)
        _, r_long = cc_label_propagation(long)
        assert len(r_long) > len(r_short)

    def test_round_profile_monotone_total(self):
        g = grid_graph(8, 8)
        _, rounds = cc_label_propagation(g)
        assert all(r > 0 for r in rounds)  # converged round dropped


class TestXmt:
    @pytest.mark.parametrize(
        "maker,args",
        [
            (random_gnp, (40, 0.05, 1)),
            (grid_graph, (5, 4)),
            (path_graph, (20,)),
        ],
    )
    def test_matches_serial(self, maker, args):
        g = maker(*args)
        ser = cc_serial(g)
        labels, _ = cc_xmt(g)
        assert labels_equivalent(ser, labels)

    def test_counts_cycles_and_ps(self):
        g = grid_graph(4, 4)
        _, xm = cc_xmt(g)
        assert xm.result.cycles > 0
        assert xm.result.ps_ops > 0


class TestLabelsEquivalent:
    def test_relabeling_ok(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([5, 5, 9, 9])
        assert labels_equivalent(a, b)

    def test_merge_not_ok(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([5, 5, 5, 5])
        assert not labels_equivalent(a, b)

    def test_split_not_ok(self):
        a = np.array([0, 0, 0])
        b = np.array([1, 2, 1])
        assert not labels_equivalent(a, b)

    def test_shape_mismatch(self):
        assert not labels_equivalent(np.array([0]), np.array([0, 1]))
