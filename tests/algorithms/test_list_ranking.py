"""List ranking: pointer jumping vs the serial chase."""

import numpy as np
import pytest

from repro.algorithms.list_ranking import (
    pointer_jumping_pram,
    random_list,
    rank_serial,
    ruling_set_pram,
)
from repro.models.pram import ConcurrencyMode, ConflictError


class TestRandomList:
    def test_visits_every_node(self):
        nxt, head = random_list(20, seed=1)
        seen = set()
        node = head
        while node not in seen:
            seen.add(node)
            node = int(nxt[node])
        assert seen == set(range(20))

    def test_reproducible(self):
        a, _ = random_list(16, seed=4)
        b, _ = random_list(16, seed=4)
        assert np.array_equal(a, b)


class TestSerial:
    def test_straight_list(self):
        nxt = np.array([1, 2, 3, 3])
        assert rank_serial(nxt).tolist() == [3, 2, 1, 0]

    def test_singleton(self):
        assert rank_serial(np.array([0])).tolist() == [0]

    def test_rejects_two_tails(self):
        with pytest.raises(ValueError):
            rank_serial(np.array([0, 1]))

    def test_rejects_shared_successor(self):
        with pytest.raises(ValueError):
            rank_serial(np.array([2, 2, 2]))


class TestPointerJumping:
    @pytest.mark.parametrize("n", [1, 2, 3, 17, 64, 100])
    def test_matches_serial(self, n):
        nxt, _ = random_list(n, seed=n)
        ranks, _ = pointer_jumping_pram(nxt)
        assert np.array_equal(ranks, rank_serial(nxt))

    def test_logarithmic_steps(self):
        nxt, _ = random_list(256, seed=0)
        _, pram = pointer_jumping_pram(nxt)
        # ceil(log2 256) = 8 rounds x 6 sweeps (each 1 step at p = n)
        assert pram.steps <= 8 * 6

    def test_not_work_efficient(self):
        """Wyllie does Theta(n log n) work; serial does Theta(n) — the
        work-efficiency gap Vishkin's program is about."""
        n = 256
        nxt, _ = random_list(n, seed=2)
        _, pram = pointer_jumping_pram(nxt)
        assert pram.work > 4 * n  # well above any linear-work constant here
        assert pram.work <= 8 * n * np.log2(n)

    def test_needs_concurrent_reads(self):
        nxt, _ = random_list(32, seed=3)
        with pytest.raises(ConflictError):
            pointer_jumping_pram(nxt, mode=ConcurrencyMode.EREW)

    def test_straight_vs_random_same_ranks_multiset(self):
        """Ranks are always a permutation of 0..n-1 regardless of order."""
        for seed in range(3):
            nxt, _ = random_list(40, seed=seed)
            ranks, _ = pointer_jumping_pram(nxt)
            assert sorted(ranks.tolist()) == list(range(40))


class TestRulingSets:
    @pytest.mark.parametrize("n", [1, 2, 3, 17, 64, 300])
    def test_matches_serial(self, n):
        nxt, _ = random_list(n, seed=n)
        ranks, _ = ruling_set_pram(nxt, seed=1)
        assert np.array_equal(ranks, rank_serial(nxt))

    @pytest.mark.parametrize("seed", range(4))
    def test_seed_independent_results(self, seed):
        nxt, _ = random_list(100, seed=7)
        ranks, _ = ruling_set_pram(nxt, seed=seed)
        assert np.array_equal(ranks, rank_serial(nxt))

    def test_work_efficient_vs_wyllie(self):
        """The point of the whole construction: ruling-set work per element
        stays flat as n grows while Wyllie's grows like log n."""
        per_elem = {}
        for n in (64, 1024):
            nxt, _ = random_list(n, seed=n)
            _, rs = ruling_set_pram(nxt, seed=0)
            _, wy = pointer_jumping_pram(nxt)
            per_elem[n] = (rs.work / n, wy.work / n)
        # ruling sets: bounded constant (allow slack for small-n noise)
        assert per_elem[1024][0] <= per_elem[64][0] * 1.5
        assert per_elem[1024][0] < 20
        # Wyllie: grows by ~6 work per element per 4 doublings
        assert per_elem[1024][1] - per_elem[64][1] >= 12

    def test_beats_wyllie_on_total_work_at_scale(self):
        n = 1024
        nxt, _ = random_list(n, seed=3)
        _, rs = ruling_set_pram(nxt, seed=0)
        _, wy = pointer_jumping_pram(nxt)
        assert rs.work < wy.work / 3

    def test_rejects_malformed_lists(self):
        with pytest.raises(ValueError):
            ruling_set_pram(np.array([0, 1]))  # two tails
