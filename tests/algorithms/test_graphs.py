"""Graph generators and CSR structure."""

import numpy as np
import pytest

from repro.algorithms.graphs import (
    complete_graph,
    from_edges,
    grid_graph,
    path_graph,
    random_gnp,
    star_graph,
)


class TestFromEdges:
    def test_symmetric_and_valid(self):
        g = from_edges(4, [(0, 1), (1, 2)])
        g.validate()
        assert g.m == 2
        assert set(g.neighbors(1).tolist()) == {0, 2}

    def test_self_loops_removed(self):
        g = from_edges(3, [(0, 0), (0, 1)])
        assert g.m == 1

    def test_duplicates_removed(self):
        g = from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            from_edges(2, [(0, 5)])

    def test_degrees(self):
        g = star_graph(5)
        assert g.degree(0) == 4
        assert g.degrees().tolist() == [4, 1, 1, 1, 1]

    def test_empty_graph(self):
        g = from_edges(3, [])
        g.validate()
        assert g.m == 0


class TestGenerators:
    def test_gnp_reproducible(self):
        a = random_gnp(30, 0.2, seed=5)
        b = random_gnp(30, 0.2, seed=5)
        assert np.array_equal(a.indices, b.indices)

    def test_gnp_density_scales(self):
        sparse = random_gnp(60, 0.02, seed=1)
        dense = random_gnp(60, 0.4, seed=1)
        assert dense.m > sparse.m

    def test_gnp_probability_bounds(self):
        with pytest.raises(ValueError):
            random_gnp(10, 1.5)

    def test_grid_degrees(self):
        g = grid_graph(3, 3)
        g.validate()
        assert g.degree(4) == 4  # center
        assert g.degree(0) == 2  # corner
        assert g.m == 12

    def test_path_and_star(self):
        path_graph(10).validate()
        star_graph(10).validate()
        assert path_graph(10).m == 9
        assert star_graph(10).m == 9

    def test_complete(self):
        g = complete_graph(6)
        g.validate()
        assert g.m == 15
        assert all(g.degree(v) == 5 for v in range(6))
