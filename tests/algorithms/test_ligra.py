"""Mini-Ligra: edge_map/vertex_map and the applications on top."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs_serial, validate_bfs_tree, BfsResult
from repro.algorithms.graphs import grid_graph, path_graph, random_gnp, star_graph
from repro.algorithms.ligra import (
    EdgeMapStats,
    Frontier,
    bellman_ford,
    bfs,
    edge_map,
    vertex_map,
)


class TestFrontier:
    def test_of_dedups_and_sorts(self):
        f = Frontier.of(3, 1, 3, 2)
        assert f.vertices.tolist() == [1, 2, 3]
        assert f.size == 3 and not f.empty

    def test_empty(self):
        assert Frontier(np.array([], dtype=np.int64)).empty


class TestEdgeMap:
    def test_sparse_mode_for_small_frontier(self):
        g = random_gnp(100, 0.05, seed=0)
        stats = EdgeMapStats()
        hits = []
        edge_map(g, Frontier.of(0), lambda s, d: hits.append(d) or True,
                 stats=stats)
        assert stats.modes == ["sparse"]
        assert sorted(hits) == sorted(g.neighbors(0).tolist())

    def test_dense_mode_for_big_frontier(self):
        g = random_gnp(60, 0.2, seed=1)
        stats = EdgeMapStats()
        big = Frontier(np.arange(g.n, dtype=np.int64))
        edge_map(g, big, lambda s, d: False, stats=stats)
        assert stats.modes == ["dense"]

    def test_output_frontier_unique(self):
        g = star_graph(10)
        out = edge_map(g, Frontier.of(1, 2, 3), lambda s, d: True)
        assert out.vertices.tolist() == sorted(set(out.vertices.tolist()))

    def test_cond_gates_destinations(self):
        g = path_graph(5)
        out = edge_map(g, Frontier.of(2), lambda s, d: True,
                       cond=lambda v: v > 2)
        assert out.vertices.tolist() == [3]

    def test_threshold_controls_switch(self):
        g = random_gnp(60, 0.2, seed=1)
        f = Frontier.of(*range(10))
        s_low = EdgeMapStats()
        edge_map(g, f, lambda s, d: False, stats=s_low,
                 threshold_fraction=0.0001)
        s_high = EdgeMapStats()
        edge_map(g, f, lambda s, d: False, stats=s_high,
                 threshold_fraction=0.99)
        assert s_low.modes == ["dense"] and s_high.modes == ["sparse"]


class TestVertexMap:
    def test_filters_and_side_effects(self):
        marked = []
        f = Frontier.of(1, 2, 3, 4)
        out = vertex_map(f, lambda v: (marked.append(v), v % 2 == 0)[1])
        assert out.vertices.tolist() == [2, 4]
        assert marked == [1, 2, 3, 4]


class TestBfsApplication:
    @pytest.mark.parametrize(
        "maker,args",
        [(random_gnp, (80, 0.06, 2)), (grid_graph, (7, 5)), (star_graph, (30,))],
    )
    def test_matches_standalone_bfs(self, maker, args):
        g = maker(*args)
        dist, parent, stats = bfs(g, 0)
        ref = bfs_serial(g, 0)
        assert np.array_equal(dist, ref.dist)
        res = BfsResult(dist, parent, ref.frontier_sizes)
        validate_bfs_tree(g, 0, res)

    def test_direction_switching_happens(self):
        """On a dense-ish graph the middle frontier is big enough to flip
        edge_map into dense mode at least once."""
        g = random_gnp(200, 0.08, seed=4)
        _d, _p, stats = bfs(g, 0)
        assert stats.dense_calls >= 1 and stats.sparse_calls >= 1

    def test_dense_early_exit_saves_edges(self):
        g = random_gnp(200, 0.08, seed=4)
        _d, _p, stats = bfs(g, 0)
        # with early exit the dense scans examine fewer than all 2m edges
        # per dense call on average
        assert stats.edges_examined < (stats.dense_calls + 1) * 2 * g.m


class TestBellmanFord:
    def test_unit_weights_match_bfs(self):
        g = random_gnp(80, 0.06, seed=5)
        dist, _ = bellman_ford(g, 0)
        ref = bfs_serial(g, 0)
        reached = ref.dist >= 0
        assert np.array_equal(dist[reached], ref.dist[reached])

    def test_weighted_shortest_path(self):
        # path 0-1-2 plus a heavy shortcut 0-2
        from repro.algorithms.graphs import from_edges

        g = from_edges(3, [(0, 1), (1, 2), (0, 2)])

        def w(u, v):
            return 5 if {u, v} == {0, 2} else 1

        dist, _ = bellman_ford(g, 0, weight=w)
        assert dist.tolist() == [0, 1, 2]  # via the two cheap hops

    def test_weighted_vs_networkx_oracle(self, rng):
        import networkx as nx

        from repro.algorithms.graphs import from_edges

        n = 40
        edges = [
            (int(a), int(b))
            for a, b in rng.integers(0, n, size=(120, 2))
            if a != b
        ]
        g = from_edges(n, edges)
        weights = {}

        def w(u, v):
            key = (min(u, v), max(u, v))
            if key not in weights:
                weights[key] = (key[0] * 7 + key[1] * 13) % 9 + 1
            return weights[key]

        dist, _ = bellman_ford(g, 0)
        # unit-weight check against networkx shortest paths
        G = nx.Graph()
        G.add_nodes_from(range(n))
        src = np.repeat(np.arange(g.n), np.diff(g.indptr))
        G.add_edges_from(zip(src.tolist(), g.indices.tolist()))
        lengths = nx.single_source_shortest_path_length(G, 0)
        for v in range(n):
            want = lengths.get(v)
            got = int(dist[v])
            if want is None:
                assert got >= 2**61  # unreachable sentinel
            else:
                assert got == want
