"""Edit distance: the paper's worked example end to end."""

import numpy as np
import pytest

from repro.algorithms.edit_distance import (
    edit_distance_graph,
    levenshtein,
    min_length_for_wavefront,
    paper_mapping_literal,
    paper_table,
    wavefront_mapping,
    wavefront_pram,
)
from repro.core.default_mapper import serial_mapping
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec
from repro.machines.grid import GridMachine


class TestSerialOracles:
    @pytest.mark.parametrize(
        "r,q,d",
        [
            ("kitten", "sitting", 3),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("a", "b", 1),
            ("ab", "ba", 2),
            ("abcdef", "azced", 3),
        ],
    )
    def test_levenshtein_known_distances(self, r, q, d):
        assert levenshtein(r, q)[0] == d

    def test_levenshtein_symmetry(self, rng):
        a = rng.integers(0, 3, size=12).tolist()
        b = rng.integers(0, 3, size=9).tolist()
        assert levenshtein(a, b)[0] == levenshtein(b, a)[0]

    def test_paper_recurrence_nonpositive(self, rng):
        """The formula as printed (min with 0, non-negative costs) can never
        exceed zero — we reproduce it verbatim and say so."""
        a = rng.integers(0, 3, size=10).tolist()
        b = rng.integers(0, 3, size=10).tolist()
        assert paper_table(a, b).max() <= 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            levenshtein("", "a")


class TestWavefrontPram:
    @pytest.mark.parametrize(
        "r,q", [("kitten", "sitting"), ("aaaa", "aaaa"), ("abcde", "vwxyz")]
    )
    def test_matches_serial(self, r, q):
        d, pram = wavefront_pram(r, q)
        assert d == levenshtein(r, q)[0]

    def test_steps_linear_in_diagonals(self):
        n = 16
        a = "a" * n
        _, pram = wavefront_pram(a, a)
        # 2n-1 diagonals, constant PRAM steps each
        assert pram.steps <= 8 * (2 * n - 1)

    def test_random_strings(self, rng):
        for _ in range(5):
            a = rng.integers(0, 4, size=int(rng.integers(2, 15))).tolist()
            b = rng.integers(0, 4, size=int(rng.integers(2, 15))).tolist()
            assert wavefront_pram(a, b)[0] == levenshtein(a, b)[0]


class TestGraph:
    def test_graph_evaluates_to_serial_table(self, rng):
        n = 8
        R = rng.integers(0, 3, size=n).tolist()
        Q = rng.integers(0, 3, size=n).tolist()
        g = edit_distance_graph(n, n, cell="lev")
        out = g.evaluate(
            {"R": {(i,): R[i] for i in range(n)}, "Q": {(j,): Q[j] for j in range(n)}}
        )
        _, table = levenshtein(R, Q)
        for i in range(n):
            for j in range(n):
                assert out[("H", i, j)] == table[i, j]

    def test_paper_cell_graph_evaluates(self, rng):
        n = 6
        R = rng.integers(0, 2, size=n).tolist()
        Q = rng.integers(0, 2, size=n).tolist()
        g = edit_distance_graph(n, n, cell="paper")
        out = g.evaluate(
            {"R": {(i,): R[i] for i in range(n)}, "Q": {(j,): Q[j] for j in range(n)}}
        )
        table = paper_table(R, Q)
        assert out[("H", n - 1, n - 1)] == table[n - 1, n - 1]

    def test_one_op_per_cell(self):
        n = 5
        g = edit_distance_graph(n, n)
        assert g.work() == n * n  # the paper's one-element-one-op granularity

    def test_bad_cell_kind(self):
        with pytest.raises(ValueError):
            edit_distance_graph(4, 4, cell="smith")


class TestMappings:
    def test_literal_paper_mapping_is_illegal(self):
        """`time floor(i/P)*N + j` gives dependent rows identical schedules;
        the checker must reject it — the model catching an over-eager
        schedule, exactly as Section 3 says it should."""
        n, p = 16, 4
        g = edit_distance_graph(n, n)
        m = paper_mapping_literal(g, n, p)
        rep = check_legality(g, m, GridSpec(p, 1))
        assert not rep.ok
        assert rep.by_kind("causality")

    def test_wavefront_legal_above_threshold(self):
        p = 4
        grid = GridSpec(p, 1)
        n = min_length_for_wavefront(p, grid)
        g = edit_distance_graph(n, n)
        m = wavefront_mapping(g, n, p, grid)
        assert check_legality(g, m, grid).ok

    def test_wavefront_illegal_below_threshold(self):
        p = 4
        grid = GridSpec(p, 1)
        n = min_length_for_wavefront(p, grid) - 4
        g = edit_distance_graph(n, n)
        m = wavefront_mapping(g, n, p, grid)
        assert not check_legality(g, m, grid).ok

    def test_wavefront_executes_correctly(self, rng):
        n, p = 32, 4
        grid = GridSpec(p, 1)
        R = rng.integers(0, 4, size=n).tolist()
        Q = rng.integers(0, 4, size=n).tolist()
        g = edit_distance_graph(n, n, cell="lev")
        m = wavefront_mapping(g, n, p, grid)
        res = GridMachine(grid).run(
            g,
            m,
            {"R": {(i,): R[i] for i in range(n)}, "Q": {(j,): Q[j] for j in range(n)}},
        )
        assert res.outputs[("H", n - 1, n - 1)] == levenshtein(R, Q)[0]

    def test_speedup_approaches_p(self):
        n, p = 40, 4
        grid = GridSpec(p, 1)
        g = edit_distance_graph(n, n)
        wf = wavefront_mapping(g, n, p, grid)
        ser = serial_mapping(g, grid)
        speedup = ser.makespan(g) / wf.makespan(g)
        assert speedup > 0.75 * p
