"""Sorting: fork-join mergesort and sample sort."""

import numpy as np
import pytest

from repro.algorithms.sort import mergesort_fork_join, sample_sort


class TestMergesort:
    @pytest.mark.parametrize("n", [0, 1, 2, 13, 64, 200])
    def test_sorts(self, rng, n):
        vals = rng.integers(-100, 100, size=n).tolist()
        res = mergesort_fork_join(vals)
        assert res.value == sorted(vals)

    def test_duplicates_preserved(self):
        vals = [3, 1, 3, 1, 3]
        assert mergesort_fork_join(vals).value == [1, 1, 3, 3, 3]

    def test_work_nlogn_ish(self, rng):
        n = 256
        res = mergesort_fork_join(rng.integers(0, 999, size=n).tolist())
        assert res.work <= 6 * n * np.log2(n)
        assert res.work >= n

    def test_parallel_merge_shrinks_span(self, rng):
        vals = rng.integers(0, 999, size=256).tolist()
        par = mergesort_fork_join(vals, parallel_merge=True)
        ser = mergesort_fork_join(vals, parallel_merge=False)
        assert par.value == ser.value == sorted(vals)
        assert par.span < ser.span

    def test_serial_merge_span_linear(self, rng):
        n = 128
        res = mergesort_fork_join(
            rng.integers(0, 999, size=n).tolist(), parallel_merge=False
        )
        assert res.span >= n  # the top-level serial merge alone is ~n


class TestSampleSort:
    @pytest.mark.parametrize("n,p", [(0, 4), (1, 1), (50, 4), (500, 8), (100, 1)])
    def test_sorts(self, rng, n, p):
        vals = rng.integers(-1000, 1000, size=n)
        out, stats = sample_sort(vals, p)
        assert np.array_equal(out, np.sort(vals))
        assert len(stats.bucket_sizes) == p

    def test_buckets_partition_everything(self, rng):
        vals = rng.integers(0, 9999, size=300)
        _, stats = sample_sort(vals, 8)
        assert sum(stats.bucket_sizes) == 300

    def test_oversampling_improves_balance(self, rng):
        vals = rng.integers(0, 10**6, size=4096)
        _, light = sample_sort(vals, 16, oversample=1, seed=0)
        _, heavy = sample_sort(vals, 16, oversample=64, seed=0)
        assert heavy.imbalance <= light.imbalance + 0.25

    def test_exchange_volume_less_than_n(self, rng):
        vals = rng.integers(0, 10**6, size=1000)
        _, stats = sample_sort(vals, 8)
        assert 0 <= stats.words_exchanged <= 1000

    def test_presorted_input_exchanges_little(self):
        """Already-sorted data mostly stays home under blocked ownership."""
        vals = np.arange(1000)
        _, stats = sample_sort(vals, 8, oversample=64)
        assert stats.words_exchanged < 500

    def test_bad_p(self):
        with pytest.raises(ValueError):
            sample_sort([1, 2], 0)
