"""Reduction algorithms."""

import numpy as np
import pytest

from repro.algorithms.reduce_ import (
    reduce_fork_join,
    sequential_reduce,
    tree_reduce_pram,
)


class TestSequential:
    def test_sum(self, rng):
        a = rng.integers(-100, 100, size=50)
        assert sequential_reduce(a) == a.sum()


class TestTreePram:
    @pytest.mark.parametrize("n", [1, 2, 16, 128])
    def test_correct(self, rng, n):
        a = rng.integers(-10, 10, size=n)
        s, _ = tree_reduce_pram(a)
        assert s == a.sum()

    def test_logarithmic_steps(self, rng):
        a = rng.integers(0, 9, size=256)
        _, pram = tree_reduce_pram(a)
        # log2(256) = 8 levels x 3 ops (2 reads + write)
        assert pram.steps <= 3 * 8

    def test_linear_work(self, rng):
        a = rng.integers(0, 9, size=256)
        _, pram = tree_reduce_pram(a)
        assert pram.work <= 4 * 256

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            tree_reduce_pram([1, 2, 3])


class TestForkJoin:
    @pytest.mark.parametrize("n", [1, 3, 17, 64])
    def test_correct_any_length(self, rng, n):
        vals = rng.integers(-9, 9, size=n).tolist()
        res = reduce_fork_join(vals)
        assert res.value == sum(vals)

    def test_custom_combine(self):
        res = reduce_fork_join([3, 1, 4, 1, 5], combine=max)
        assert res.value == 5

    def test_work_linear_span_log(self):
        res = reduce_fork_join([1] * 128)
        assert res.work <= 4 * 128
        assert res.span <= 40

    def test_grain_sweep_preserves_value(self, rng):
        vals = rng.integers(0, 99, size=70).tolist()
        answers = {reduce_fork_join(vals, grain=g).value for g in (1, 4, 16, 70)}
        assert answers == {sum(vals)}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            reduce_fork_join([])
