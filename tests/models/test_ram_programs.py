"""RAM program library: semantics and measured complexity classes."""

import numpy as np
import pytest

from repro.models.ram import RAM
from repro.models.ram_programs import (
    binary_search_program,
    bubble_sort_program,
    dot_product_program,
    fibonacci_program,
    memcpy_program,
    strided_sum_program,
)


def run(prog, regs, mem=None):
    ram = RAM()
    if mem:
        for base, vals in mem.items():
            ram.memory.store_array(base, vals)
    counts = ram.run(prog, regs)
    return ram, counts


class TestMemcpy:
    def test_copies(self):
        ram, _ = run(memcpy_program(), {1: 0, 2: 100, 3: 5},
                     {0: [9, 8, 7, 6, 5]})
        assert ram.memory.load_array(100, 5) == [9, 8, 7, 6, 5]

    def test_zero_length(self):
        ram, c = run(memcpy_program(), {1: 0, 2: 100, 3: 0})
        assert c.loads == 0 and c.stores == 0

    def test_linear_counts(self):
        _, c1 = run(memcpy_program(), {1: 0, 2: 100, 3: 10}, {0: [1] * 10})
        _, c2 = run(memcpy_program(), {1: 0, 2: 100, 3: 40}, {0: [1] * 40})
        assert c2.total == pytest.approx(4 * c1.total, rel=0.2)


class TestBinarySearch:
    @pytest.mark.parametrize("key,idx", [(2, 0), (11, 3), (29, 7), (15, -1)])
    def test_finds_or_reports_absent(self, key, idx):
        arr = [2, 5, 7, 11, 13, 17, 23, 29]
        ram, _ = run(binary_search_program(), {1: 0, 2: len(arr), 3: key},
                     {0: arr})
        assert ram.registers[0] == idx

    def test_logarithmic_loads(self):
        loads = []
        for n in (64, 4096):
            arr = list(range(0, 2 * n, 2))
            _, c = run(binary_search_program(), {1: 0, 2: n, 3: -5}, {0: arr})
            loads.append(c.loads)
        # absent key: full descent; 4096/64 = 64x data, +6 probes
        assert loads[1] - loads[0] == 6

    def test_every_element_findable(self):
        rng = np.random.default_rng(0)
        arr = sorted(rng.choice(1000, size=32, replace=False).tolist())
        for i, v in enumerate(arr):
            ram, _ = run(binary_search_program(), {1: 0, 2: 32, 3: int(v)},
                         {0: arr})
            assert ram.registers[0] == i


class TestFibonacci:
    @pytest.mark.parametrize("n,f", [(0, 0), (1, 1), (2, 1), (10, 55), (20, 6765)])
    def test_values(self, n, f):
        ram, _ = run(fibonacci_program(), {1: n})
        assert ram.registers[0] == f


class TestBubbleSort:
    @pytest.mark.parametrize("seed", range(3))
    def test_sorts(self, seed):
        rng = np.random.default_rng(seed)
        arr = rng.integers(-50, 50, size=16).tolist()
        ram, _ = run(bubble_sort_program(), {1: 0, 2: 16}, {0: arr})
        assert ram.memory.load_array(0, 16) == sorted(arr)

    def test_quadratic_counts(self):
        counts = []
        for n in (8, 32):
            arr = list(range(n, 0, -1))  # worst case
            _, c = run(bubble_sort_program(), {1: 0, 2: n}, {0: arr})
            counts.append(c.total)
        assert counts[1] > 12 * counts[0]  # ~16x for 4x data

    def test_already_sorted_fewer_stores(self):
        _, c_sorted = run(bubble_sort_program(), {1: 0, 2: 16},
                          {0: list(range(16))})
        _, c_rev = run(bubble_sort_program(), {1: 0, 2: 16},
                       {0: list(range(16, 0, -1))})
        assert c_sorted.stores == 0
        assert c_rev.stores > 0


class TestStridedSum:
    def test_matches_contiguous_total(self):
        arr = list(range(32))
        ram, _ = run(strided_sum_program(), {1: 0, 2: 32, 3: 1}, {0: arr})
        assert ram.registers[0] == sum(arr)

    def test_stride_skips(self):
        arr = list(range(32))
        ram, _ = run(strided_sum_program(), {1: 0, 2: 32, 3: 4}, {0: arr})
        assert ram.registers[0] == sum(arr[::4])

    def test_same_loads_different_locality(self):
        """Same load count; the cache hierarchy tells them apart."""
        from repro.machines.multicore import MulticoreMachine

        mc = MulticoreMachine()
        dense, _ = mc.run_single(strided_sum_program(), {1: 0, 2: 64, 3: 1},
                                 {0: [1] * 64})
        sparse, _ = mc.run_single(strided_sum_program(), {1: 0, 2: 512, 3: 8},
                                  {0: [1] * 512})
        assert dense.counts.loads == sparse.counts.loads == 64
        assert sparse.mem_accesses > dense.mem_accesses


class TestDotProduct:
    def test_value(self, rng):
        a = rng.integers(-9, 9, size=12).tolist()
        b = rng.integers(-9, 9, size=12).tolist()
        ram, _ = run(dot_product_program(), {1: 0, 2: 100, 3: 12},
                     {0: a, 100: b})
        assert ram.registers[0] == int(np.dot(a, b))

    def test_mul_count(self, rng):
        _, c = run(dot_product_program(), {1: 0, 2: 100, 3: 20},
                   {0: [1] * 20, 100: [2] * 20})
        # alu ops: add addr x2, mul, add acc, addi per iter = 5
        assert c.alu == 5 * 20
