"""RAM model: assembler, interpreter, counters."""

import pytest

from repro.models.ram import (
    RAM,
    RAMError,
    assemble,
    sum_program,
)


class TestAssembler:
    def test_assembles_sum_program(self):
        prog = sum_program()
        assert len(prog) == 9
        assert "loop" in prog.labels and "done" in prog.labels

    def test_comments_and_blank_lines_ignored(self):
        prog = assemble("""
        ; leading comment

            li r0, 5   ; trailing comment
            halt
        """)
        assert len(prog) == 2

    def test_unknown_opcode_rejected(self):
        with pytest.raises(RAMError, match="unknown opcode"):
            assemble("frob r1, r2")

    def test_undefined_label_rejected(self):
        with pytest.raises(RAMError, match="undefined label"):
            assemble("jmp nowhere")

    def test_duplicate_label_rejected(self):
        with pytest.raises(RAMError, match="duplicate label"):
            assemble("a: li r0, 1\na: halt")

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(RAMError):
            assemble("add r1, r2")

    def test_wrong_operand_kind_rejected(self):
        with pytest.raises(RAMError):
            assemble("ld r1, r2")  # ld needs (r2) memory operand

    def test_negative_immediate(self):
        prog = assemble("li r0, -7\nhalt")
        ram = RAM()
        ram.run(prog)
        assert ram.registers[0] == -7

    def test_numeric_branch_target(self):
        prog = assemble("li r0, 1\njmp 3\nli r0, 99\nhalt")
        ram = RAM()
        ram.run(prog)
        assert ram.registers[0] == 1


class TestInterpreter:
    def test_paper_sum_example(self):
        """Section 2's example: load, add, increment, compare, jump."""
        ram = RAM()
        ram.memory.store_array(100, [3, 1, 4, 1, 5])
        ram.run(sum_program(), registers={1: 100, 2: 5})
        assert ram.registers[0] == 14

    def test_sum_counts_scale_linearly(self):
        counts = []
        for n in (10, 20):
            ram = RAM()
            ram.memory.store_array(0, range(n))
            c = ram.run(sum_program(), registers={1: 0, 2: n})
            counts.append(c.total)
        # per-iteration cost is constant: doubling n roughly doubles total
        assert counts[1] == pytest.approx(2 * counts[0], rel=0.15)

    @pytest.mark.parametrize(
        "op,a,b,expect",
        [
            ("add", 3, 4, 7),
            ("sub", 3, 4, -1),
            ("mul", 3, 4, 12),
            ("div", 9, 2, 4),
            ("div", -9, 2, -4),  # truncation toward zero
            ("mod", 9, 2, 1),
            ("mod", -9, 2, -1),
            ("min", 3, 4, 3),
            ("max", 3, 4, 4),
        ],
    )
    def test_alu_ops(self, op, a, b, expect):
        ram = RAM()
        ram.run(assemble(f"li r1, {a}\nli r2, {b}\n{op} r0, r1, r2\nhalt"))
        assert ram.registers[0] == expect

    def test_division_by_zero(self):
        ram = RAM()
        with pytest.raises(RAMError, match="division by zero"):
            ram.run(assemble("li r1, 1\nli r2, 0\ndiv r0, r1, r2\nhalt"))

    @pytest.mark.parametrize(
        "br,a,b,taken",
        [
            ("beq", 2, 2, True),
            ("beq", 2, 3, False),
            ("bne", 2, 3, True),
            ("blt", 2, 3, True),
            ("blt", 3, 2, False),
            ("bge", 3, 2, True),
            ("bge", 2, 2, True),
        ],
    )
    def test_branches(self, br, a, b, taken):
        src = f"""
            li r1, {a}
            li r2, {b}
            {br} r1, r2, yes
            li r0, 0
            halt
        yes: li r0, 1
            halt
        """
        ram = RAM()
        ram.run(assemble(src))
        assert ram.registers[0] == (1 if taken else 0)

    def test_load_store_roundtrip(self):
        src = """
            li r1, 500
            li r2, 42
            st (r1), r2
            ld r3, (r1)
            halt
        """
        ram = RAM()
        ram.run(assemble(src))
        assert ram.registers[3] == 42
        assert ram.counts.loads == 1 and ram.counts.stores == 1

    def test_uninitialized_memory_reads_zero(self):
        ram = RAM()
        ram.run(assemble("li r1, 999\nld r0, (r1)\nhalt"))
        assert ram.registers[0] == 0

    def test_negative_address_faults(self):
        ram = RAM()
        with pytest.raises(RAMError, match="negative address"):
            ram.run(assemble("li r1, -1\nld r0, (r1)\nhalt"))

    def test_max_steps_guard(self):
        ram = RAM(max_steps=100)
        with pytest.raises(RAMError, match="max_steps"):
            ram.run(assemble("loop: jmp loop"))

    def test_falls_off_end_without_halt(self):
        ram = RAM()
        ram.run(assemble("li r0, 7"))
        assert ram.registers[0] == 7


class TestCounters:
    def test_classes_counted_separately(self):
        src = """
            li r1, 10
            li r2, 20
            add r3, r1, r2
            st (r1), r3
            ld r4, (r1)
            jmp end
        end: halt
        """
        ram = RAM()
        c = ram.run(assemble(src))
        assert c.moves == 2
        assert c.alu == 1
        assert c.stores == 1
        assert c.loads == 1
        assert c.branches == 1
        assert c.total == 6
        assert c.memory_ops == 2

    def test_as_dict_keys(self):
        ram = RAM()
        ram.run(assemble("halt"))
        d = ram.counts.as_dict()
        assert set(d) == {"loads", "stores", "alu", "branches", "moves", "total"}


class TestMemoryTrace:
    def test_trace_records_accesses_in_order(self):
        ram = RAM(trace_memory=True)
        ram.run(
            assemble("li r1, 7\nli r2, 1\nst (r1), r2\nld r0, (r1)\nhalt")
        )
        assert ram.memory.trace == [("w", 7), ("r", 7)]

    def test_bulk_init_not_traced(self):
        ram = RAM(trace_memory=True)
        ram.memory.store_array(0, [1, 2, 3])
        assert ram.memory.trace == []
        assert ram.memory.load_array(0, 3) == [1, 2, 3]
