"""PRAM model separations: CRCW vs EREW, measured in steps."""

import numpy as np
import pytest

from repro.models.pram import ConcurrencyMode, ConflictError, PRAM
from repro.models.pram_kernels import (
    broadcast_crew,
    broadcast_erew,
    max_crcw_quadratic,
    or_crcw,
    or_erew,
)


class TestOr:
    @pytest.mark.parametrize("n", [1, 8, 64, 256])
    def test_crcw_correct(self, rng, n):
        bits = rng.integers(0, 2, size=n)
        got, _ = or_crcw(bits)
        assert got == int(bits.any())

    @pytest.mark.parametrize("n", [1, 8, 64, 256])
    def test_erew_correct(self, rng, n):
        bits = rng.integers(0, 2, size=n)
        got, _ = or_erew(bits)
        assert got == int(bits.any())

    def test_all_zero_and_all_one(self):
        assert or_crcw(np.zeros(16, dtype=int))[0] == 0
        assert or_crcw(np.ones(16, dtype=int))[0] == 1

    def test_separation_crcw_constant_erew_log(self, rng):
        """The model-theoretic gap, as measured step counts."""
        steps = {}
        for n in (64, 1024):
            bits = rng.integers(0, 2, size=n)
            _, p_crcw = or_crcw(bits)
            _, p_erew = or_erew(bits)
            steps[n] = (p_crcw.steps, p_erew.steps)
        # CRCW: constant regardless of n
        assert steps[64][0] == steps[1024][0] <= 2
        # EREW: grows by ~3 steps per doubling (log-tree levels)
        assert steps[1024][1] - steps[64][1] == pytest.approx(
            3 * 4, abs=2
        )

    def test_crcw_trick_illegal_on_common_with_disagreement(self):
        """Sanity: common-CRCW only works because writers agree; writers
        disagreeing is a conflict (checked via the raw machine)."""
        pram = PRAM(2, 2, mode=ConcurrencyMode.CRCW_COMMON)
        with pytest.raises(ConflictError):
            pram.par_write([0, 1], [0, 0], [1, 2])


class TestBroadcast:
    @pytest.mark.parametrize("n", [1, 4, 32])
    def test_crew_constant_steps(self, n):
        out, pram = broadcast_crew(7, n)
        assert (out == 7).all()
        assert pram.steps <= 3

    @pytest.mark.parametrize("n", [1, 4, 32, 128])
    def test_erew_correct(self, n):
        out, pram = broadcast_erew(9, n)
        assert (out == 9).all()

    def test_erew_log_steps(self):
        _, p32 = broadcast_erew(1, 32)
        _, p256 = broadcast_erew(1, 256)
        # doubling rounds: 2 steps per round, 3 extra rounds
        assert p256.steps - p32.steps == 6

    def test_erew_no_concurrent_reads_needed(self):
        out, pram = broadcast_erew(5, 64)
        assert pram.mode is ConcurrencyMode.EREW  # ran clean under EREW


class TestMaxQuadratic:
    @pytest.mark.parametrize("seed", range(4))
    def test_finds_max(self, seed):
        rng = np.random.default_rng(seed)
        vals = rng.integers(-100, 100, size=12)
        got, _ = max_crcw_quadratic(vals)
        assert got == vals.max()

    def test_handles_ties(self):
        got, _ = max_crcw_quadratic(np.array([3, 7, 7, 1]))
        assert got == 7

    def test_constant_steps_quadratic_work(self):
        steps = {}
        work = {}
        for n in (8, 16):
            vals = np.arange(n)
            _, pram = max_crcw_quadratic(vals)
            steps[n], work[n] = pram.steps, pram.work
        assert steps[8] == steps[16] <= 4
        assert work[16] > 3 * work[8]  # ~4x for 2x data

    def test_singleton(self):
        got, _ = max_crcw_quadratic(np.array([42]))
        assert got == 42
