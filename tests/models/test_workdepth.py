"""Work-depth model: DAG analysis and Brent's bounds."""

import pytest

from repro.models.workdepth import Dag, DagError, brent_bounds, greedy_schedule_length


class TestDagConstruction:
    def test_add_node_returns_dense_ids(self):
        d = Dag()
        assert [d.add_node() for _ in range(3)] == [0, 1, 2]

    def test_edge_to_unknown_node(self):
        d = Dag()
        d.add_node()
        with pytest.raises(DagError):
            d.add_edge(0, 5)

    def test_self_loop_rejected(self):
        d = Dag()
        d.add_node()
        with pytest.raises(DagError):
            d.add_edge(0, 0)

    def test_negative_duration_rejected(self):
        with pytest.raises(DagError):
            Dag().add_node(-1)

    def test_cycle_detected(self):
        d = Dag()
        a, b = d.add_node(), d.add_node()
        d.add_edge(a, b)
        d.add_edge(b, a)
        with pytest.raises(DagError, match="cycle"):
            d.topological_order()


class TestAnalysis:
    def test_chain_work_equals_span(self):
        d = Dag.chain(10)
        assert d.work() == 10 and d.span() == 10
        assert d.parallelism() == 1.0

    def test_independent_span_is_one(self):
        d = Dag.independent(16)
        assert d.work() == 16 and d.span() == 1
        assert d.parallelism() == 16.0

    def test_reduction_tree_span_logarithmic(self):
        d = Dag.binary_tree_reduction(16)
        assert d.work() == 31  # 16 leaves + 15 internal
        assert d.span() == 5   # leaf + 4 tree levels

    def test_weighted_span(self):
        d = Dag()
        a = d.add_node(5)
        b = d.add_node(1)
        c = d.add_node(2)
        d.add_edge(a, c)
        d.add_edge(b, c)
        assert d.span() == 7  # 5 + 2 path
        assert d.work() == 8

    def test_critical_path_is_heaviest(self):
        d = Dag()
        a = d.add_node(5)
        b = d.add_node(1)
        c = d.add_node(2)
        d.add_edge(a, c)
        d.add_edge(b, c)
        assert d.critical_path() == [a, c]

    def test_empty_dag(self):
        d = Dag()
        assert d.work() == 0 and d.span() == 0
        assert d.critical_path() == []
        assert d.parallelism() == float("inf")

    def test_random_dag_reproducible(self):
        d1 = Dag.random_dag(20, 0.2, seed=3)
        d2 = Dag.random_dag(20, 0.2, seed=3)
        assert d1.successors == d2.successors
        assert d1.durations == d2.durations

    def test_edges_counted(self):
        d = Dag.binary_tree_reduction(8)
        assert d.n_edges == 2 * 7  # each internal node has 2 in-edges


class TestBrentBounds:
    def test_chain(self):
        lo, hi = brent_bounds(10, 10, 4)
        assert lo == hi == 10  # serial: no speedup possible

    def test_independent(self):
        lo, hi = brent_bounds(16, 1, 4)
        assert lo == 4
        assert hi == (16 - 1) // 4 + 1  # 4 (floor) form

    def test_single_processor(self):
        lo, hi = brent_bounds(100, 7, 1)
        assert lo == 100 and hi == 100

    def test_more_processors_than_work(self):
        lo, hi = brent_bounds(5, 2, 100)
        assert lo == 2
        assert hi == 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            brent_bounds(10, 11, 2)  # span > work
        with pytest.raises(ValueError):
            brent_bounds(10, 5, 0)

    @pytest.mark.parametrize("p", [1, 2, 3, 7, 16])
    def test_greedy_lands_inside_bounds(self, p):
        for seed in range(3):
            d = Dag.random_dag(40, 0.1, seed=seed, max_duration=3)
            lo, hi = brent_bounds(d.work(), d.span(), p)
            t = greedy_schedule_length(d, p)
            assert lo <= t <= hi, f"T_{p}={t} outside [{lo}, {hi}] (seed {seed})"
