"""Ideal-cache model and multilevel analysis."""

import pytest

from repro.models.cache import (
    DEFAULT_HIERARCHY,
    HierarchySpec,
    bound_matmul_naive,
    bound_matmul_oblivious,
    bound_scan,
    ideal_cache_misses,
    multilevel_misses,
)


def stream_trace(n, stride=1, base=0):
    return [("r", base + i * stride) for i in range(n)]


class TestIdealCacheMisses:
    def test_streaming_misses_once_per_block(self):
        q = ideal_cache_misses(stream_trace(64), capacity_words=16, block_words=8)
        assert q == 64 // 8

    def test_stride_defeats_blocking(self):
        q = ideal_cache_misses(
            stream_trace(64, stride=8), capacity_words=16, block_words=8
        )
        assert q == 64  # every access a new block

    def test_working_set_fits_no_capacity_misses(self):
        trace = stream_trace(16) * 10
        q = ideal_cache_misses(trace, capacity_words=32, block_words=1)
        assert q == 16  # cold only

    def test_working_set_exceeds_lru_thrashes(self):
        # cyclic scan of M+1 blocks under LRU misses every time
        trace = stream_trace(17) * 10
        q = ideal_cache_misses(trace, capacity_words=16, block_words=1)
        assert q == 170

    def test_larger_cache_never_misses_more(self):
        trace = [("r", (7 * i) % 40) for i in range(400)]
        q_small = ideal_cache_misses(trace, 8, 1)
        q_big = ideal_cache_misses(trace, 32, 1)
        assert q_big <= q_small


class TestMultilevel:
    def test_levels_filter_monotonically(self):
        trace = [("r", (13 * i) % 3000) for i in range(5000)]
        misses = multilevel_misses(
            trace,
            (
                HierarchySpec(64, 1, name="L1"),
                HierarchySpec(512, 1, name="L2"),
                HierarchySpec(4096, 1, name="L3"),
            ),
        )
        assert misses[0] >= misses[1] >= misses[2]

    def test_default_hierarchy_shape(self):
        assert len(DEFAULT_HIERARCHY) == 3
        caps = [s.capacity_words for s in DEFAULT_HIERARCHY]
        assert caps == sorted(caps)

    def test_spec_build(self):
        c = HierarchySpec(64, 8, 1.5, "LX").build()
        assert c.capacity_words == 64 and c.block_words == 8
        assert c.name == "LX" and c.distance_mm == 1.5


class TestBoundShapes:
    def test_oblivious_beats_naive_for_large_n(self):
        m, b = 4096, 8
        n = 256
        assert bound_matmul_oblivious(n, m, b) < bound_matmul_naive(n, m, b)

    def test_oblivious_improves_with_cache_size(self):
        assert bound_matmul_oblivious(128, 16384, 8) < bound_matmul_oblivious(
            128, 1024, 8
        )

    def test_scan_bound(self):
        assert bound_scan(64, 8) == pytest.approx(8.0)

    def test_zero_sizes(self):
        assert bound_matmul_naive(0, 64, 8) == 0
        assert bound_matmul_oblivious(0, 64, 8) == 0
        assert bound_scan(0, 8) == 0
