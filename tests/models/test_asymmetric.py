"""Asymmetric read/write cost model."""

import pytest

from repro.models.asymmetric import (
    AsymmetricCounts,
    asymmetric_cache_cost,
    asymmetric_cost,
)


class TestRawTraceCost:
    def test_counts_and_cost(self):
        trace = [("r", 0), ("w", 1), ("w", 2), ("r", 3)]
        c = asymmetric_cost(trace, omega=5.0)
        assert c.reads == 2 and c.writes == 2
        assert c.cost == 2 + 5.0 * 2
        assert c.symmetric_cost == 4

    def test_omega_one_matches_symmetric(self):
        trace = [("r", 0), ("w", 1)]
        c = asymmetric_cost(trace, omega=1.0)
        assert c.cost == c.symmetric_cost

    def test_omega_below_one_rejected(self):
        with pytest.raises(ValueError):
            asymmetric_cost([], omega=0.5)

    def test_bad_record_kind(self):
        with pytest.raises(ValueError):
            asymmetric_cost([("x", 0)])


class TestCacheFilteredCost:
    def test_cached_writes_coalesce(self):
        """Writing one cell many times costs one block write, not many."""
        trace = [("w", 0)] * 100
        c = asymmetric_cache_cost(trace, capacity_words=8, block_words=1, omega=10)
        assert c.writes == 1  # final flush only
        assert c.reads == 1   # the initial write-allocate miss

    def test_final_flush_counts_dirty_residents(self):
        trace = [("w", i) for i in range(4)]
        c = asymmetric_cache_cost(trace, capacity_words=8, block_words=1, omega=2)
        assert c.writes == 4  # all dirty, all flushed at end

    def test_read_only_trace_has_no_writes(self):
        trace = [("r", i) for i in range(20)]
        c = asymmetric_cache_cost(trace, capacity_words=4, block_words=1, omega=9)
        assert c.writes == 0
        assert c.reads == 20  # capacity misses

    def test_write_heavy_vs_read_heavy_ordering(self):
        """With omega >> 1 a write-heavy trace must cost more than a
        read-heavy one of the same length and locality."""
        wheavy = [("w", i % 64) for i in range(256)]
        rheavy = [("r", i % 64) for i in range(256)]
        cw = asymmetric_cache_cost(wheavy, 16, 1, omega=50)
        cr = asymmetric_cache_cost(rheavy, 16, 1, omega=50)
        assert cw.cost > cr.cost

    def test_counts_dataclass(self):
        c = AsymmetricCounts(reads=3, writes=2, omega=4.0)
        assert c.cost == 11.0
