"""PRAM: conflict semantics, accounting, SPMD engine."""

import numpy as np
import pytest

from repro.models.pram import (
    PRAM,
    ConcurrencyMode,
    ConflictError,
    compute,
    read,
    write,
)


class TestVectorizedReads:
    def test_distinct_reads_ok_everywhere(self):
        for mode in ConcurrencyMode:
            p = PRAM(4, 8, mode)
            p.memory[:4] = [10, 20, 30, 40]
            vals = p.par_read([0, 1, 2, 3], [0, 1, 2, 3])
            assert vals.tolist() == [10, 20, 30, 40]

    def test_concurrent_read_rejected_on_erew(self):
        p = PRAM(4, 8, ConcurrencyMode.EREW)
        with pytest.raises(ConflictError) as ei:
            p.par_read([0, 1], [5, 5])
        assert ei.value.kind == "read"
        assert ei.value.address == 5
        assert set(ei.value.processors) == {0, 1}

    def test_concurrent_read_allowed_on_crew(self):
        p = PRAM(4, 8, ConcurrencyMode.CREW)
        p.memory[5] = 7
        vals = p.par_read([0, 1, 2], [5, 5, 5])
        assert vals.tolist() == [7, 7, 7]

    def test_out_of_range_address(self):
        p = PRAM(2, 4)
        with pytest.raises(IndexError):
            p.par_read([0], [4])

    def test_bad_pid_rejected(self):
        p = PRAM(2, 4)
        with pytest.raises(ValueError):
            p.par_read([2], [0])

    def test_duplicate_pid_rejected(self):
        p = PRAM(4, 4)
        with pytest.raises(ValueError, match="duplicate processor"):
            p.par_read([1, 1], [0, 1])

    def test_length_mismatch(self):
        p = PRAM(4, 4)
        with pytest.raises(ValueError, match="equal length"):
            p.par_read([0, 1], [0])


class TestVectorizedWrites:
    def test_exclusive_writes(self):
        p = PRAM(4, 8, ConcurrencyMode.EREW)
        p.par_write([0, 1], [2, 3], [7, 8])
        assert p.memory[2] == 7 and p.memory[3] == 8

    @pytest.mark.parametrize("mode", [ConcurrencyMode.EREW, ConcurrencyMode.CREW])
    def test_write_collision_rejected(self, mode):
        p = PRAM(4, 8, mode)
        with pytest.raises(ConflictError) as ei:
            p.par_write([0, 1], [3, 3], [1, 2])
        assert ei.value.kind == "write"

    def test_common_requires_agreement(self):
        p = PRAM(4, 8, ConcurrencyMode.CRCW_COMMON)
        p.par_write([0, 1, 2], [3, 3, 3], [9, 9, 9])
        assert p.memory[3] == 9
        with pytest.raises(ConflictError):
            p.par_write([0, 1], [4, 4], [1, 2])

    def test_priority_lowest_pid_wins(self):
        p = PRAM(4, 8, ConcurrencyMode.CRCW_PRIORITY)
        p.par_write([3, 1, 2], [5, 5, 5], [30, 10, 20])
        assert p.memory[5] == 10

    def test_arbitrary_picks_one_of_the_writers(self):
        p = PRAM(4, 8, ConcurrencyMode.CRCW_ARBITRARY, seed=7)
        p.par_write([0, 1, 2], [5, 5, 5], [100, 200, 300])
        assert int(p.memory[5]) in (100, 200, 300)

    def test_arbitrary_is_reproducible_for_fixed_seed(self):
        outcomes = []
        for _ in range(2):
            p = PRAM(8, 4, ConcurrencyMode.CRCW_ARBITRARY, seed=42)
            p.par_write(range(8), [0] * 8, list(range(8)))
            outcomes.append(int(p.memory[0]))
        assert outcomes[0] == outcomes[1]

    def test_arbitrary_varies_across_seeds(self):
        seen = set()
        for seed in range(20):
            p = PRAM(8, 4, ConcurrencyMode.CRCW_ARBITRARY, seed=seed)
            p.par_write(range(8), [0] * 8, list(range(8)))
            seen.add(int(p.memory[0]))
        assert len(seen) > 1  # genuinely non-deterministic across seeds


class TestAccounting:
    def test_each_call_is_one_step(self):
        p = PRAM(4, 8)
        p.par_read([0, 1], [0, 1])
        p.par_write([0], [0], [1])
        p.par_compute(3)
        assert p.steps == 3

    def test_work_counts_active_processors(self):
        p = PRAM(8, 8)
        p.par_read([0, 1, 2], [0, 1, 2])
        p.par_compute(5, amount=2)
        assert p.work == 3 + 10

    def test_empty_step_is_free(self):
        p = PRAM(4, 8)
        p.par_read([], [])
        assert p.steps == 0 and p.work == 0

    def test_max_active_tracked(self):
        p = PRAM(8, 8)
        p.par_read([0], [0])
        p.par_read([0, 1, 2, 3], [0, 1, 2, 3])
        assert p.max_active == 4

    def test_counters_dict(self):
        p = PRAM(2, 2)
        assert p.counters() == {
            "steps": 0,
            "work": 0,
            "processors": 2,
            "max_active": 0,
        }


class TestSpmd:
    def test_parallel_increment(self):
        p = PRAM(8, 16)
        p.memory[:8] = np.arange(8)

        def kernel(pid):
            v = yield read(pid)
            yield write(8 + pid, v + 1)

        p.run_spmd(kernel)
        assert p.memory[8:16].tolist() == list(range(1, 9))

    def test_lockstep_reads_before_writes(self):
        """Classic swap test: all processors read, then write — in lock step
        the reads all see the pre-step values."""
        p = PRAM(2, 2)
        p.memory[:2] = [1, 2]

        def kernel(pid):
            v = yield read(1 - pid)
            yield write(pid, v)

        p.run_spmd(kernel)
        assert p.memory[:2].tolist() == [2, 1]

    def test_erew_detects_spmd_read_conflicts(self):
        p = PRAM(2, 4, ConcurrencyMode.EREW)

        def kernel(pid):
            yield read(0)

        with pytest.raises(ConflictError):
            p.run_spmd(kernel)

    def test_priority_spmd_write(self):
        p = PRAM(4, 4, ConcurrencyMode.CRCW_PRIORITY)

        def kernel(pid):
            yield write(0, pid + 100)

        p.run_spmd(kernel)
        assert p.memory[0] == 100

    def test_threads_of_different_lengths(self):
        p = PRAM(4, 8)

        def kernel(pid):
            for k in range(pid + 1):
                yield compute()
            yield write(pid, pid)

        p.run_spmd(kernel)
        assert p.memory[:4].tolist() == [0, 1, 2, 3]
        # longest thread: 4 computes + 1 write = 5 steps
        assert p.steps == 5

    def test_subset_of_processors(self):
        p = PRAM(8, 8)

        def kernel(pid):
            yield write(pid, 1)

        p.run_spmd(kernel, n_threads=3)
        assert p.memory[:8].tolist() == [1, 1, 1, 0, 0, 0, 0, 0]

    def test_bad_yield_type(self):
        p = PRAM(1, 1)

        def kernel(pid):
            yield "nonsense"

        with pytest.raises(TypeError):
            p.run_spmd(kernel)


class TestConstruction:
    def test_bad_processor_count(self):
        with pytest.raises(ValueError):
            PRAM(0, 8)

    def test_mode_properties(self):
        assert not ConcurrencyMode.EREW.allows_concurrent_reads
        assert ConcurrencyMode.CREW.allows_concurrent_reads
        assert not ConcurrencyMode.CREW.allows_concurrent_writes
        assert ConcurrencyMode.CRCW_COMMON.allows_concurrent_writes
