"""Repo-consistency meta-tests: the documentation and code agree.

These catch the drift that plagues research repos: claims without benches,
benches without DESIGN.md entries, examples that no longer import, public
APIs that moved out from under their __init__ exports.
"""

from __future__ import annotations

import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestClaimsHaveBenches:
    def test_every_registry_claim_appears_in_a_bench(self):
        from repro.analysis.claims import CLAIMS

        bench_files = list((ROOT / "benchmarks").glob("bench_*.py"))
        bench_text = "\n".join(p.read_text() for p in bench_files)
        bench_names = " ".join(p.name for p in bench_files)
        for cid in CLAIMS:
            base = cid.rstrip("ab")  # C17a/C17b live in the C17 bench
            num = base[1:].zfill(2)  # C5 -> bench_c05_...
            assert (
                f'"{cid}"' in bench_text
                or f"'{cid}'" in bench_text
                or f"bench_c{num}_" in bench_names
            ), f"claim {cid} has no benchmark reference"

    def test_design_md_indexes_every_bench_file(self):
        design = (ROOT / "DESIGN.md").read_text()
        for p in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert p.name in design or p.stem.split("_")[1] in design.lower(), (
                f"{p.name} not indexed in DESIGN.md"
            )

    def test_experiments_generator_covers_every_bench(self):
        gen = (ROOT / "tools" / "gen_experiments.py").read_text()
        for p in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert p.name in gen, f"{p.name} missing from gen_experiments.py"


class TestExamplesImportable:
    @pytest.mark.parametrize(
        "path", sorted((ROOT / "examples").glob("*.py")), ids=lambda p: p.stem
    )
    def test_example_compiles(self, path):
        compile(path.read_text(), str(path), "exec")

    def test_readme_lists_every_example(self):
        readme = (ROOT / "README.md").read_text()
        for p in sorted((ROOT / "examples").glob("*.py")):
            assert p.name in readme, f"{p.name} not mentioned in README"


class TestPublicApi:
    @pytest.mark.parametrize(
        "module",
        [
            "repro",
            "repro.core",
            "repro.models",
            "repro.machines",
            "repro.runtime",
            "repro.algorithms",
            "repro.analysis",
        ],
    )
    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name}"

    def test_every_src_module_has_a_docstring(self):
        for p in sorted((ROOT / "src" / "repro").rglob("*.py")):
            text = p.read_text()
            assert text.lstrip().startswith('"""'), f"{p} lacks a module docstring"

    def test_version_consistent(self):
        import repro

        pyproject = (ROOT / "pyproject.toml").read_text()
        m = re.search(r'version = "([^"]+)"', pyproject)
        assert m and m.group(1) == repro.__version__


class TestPaperQuotesPresent:
    """The reproduction is organized around the paper's text; the key
    quotes must stay greppable next to the code that implements them."""

    @pytest.mark.parametrize(
        "fragment,module",
        [
            ("160x", "machines/technology.py"),
            ("10,000x", "machines/multicore.py"),
            ("marching anti-diagonals", "algorithms/edit_distance.py"),
            ("cache oblivious", "models/cache.py"),  # hyphen-insensitive below
            ("prefix-sum", "machines/xmt.py"),
            ("legal mapping is one that preserves causality", "core/legality.py"),
            ("default mapper", "core/default_mapper.py"),
            ("systolic arrays", "algorithms/stencil.py"),
            ("full-stack verification", "core/verify.py"),
        ],
    )
    def test_quote_anchors(self, fragment, module):
        text = (ROOT / "src" / "repro" / module).read_text()
        normalized = text.replace("-", " ")
        assert fragment in text or fragment in normalized, (
            f"{module} lost its anchor quote {fragment!r}"
        )
