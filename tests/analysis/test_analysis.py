"""Analysis utilities: claims registry, Brent checks, Pareto, tables."""

import pytest

from repro.analysis.brent import check_schedule
from repro.analysis.claims import CLAIMS, Claim, check_at_least
from repro.analysis.pareto import dominates, pareto_front
from repro.analysis.report import Table, fmt_num
from repro.machines.technology import TECH_5NM
from repro.models.workdepth import Dag
from repro.runtime.scheduler import greedy_schedule, work_stealing_schedule


class TestClaims:
    def test_registry_covers_energy_claims(self):
        for cid in ("C1", "C2", "C3", "C3b", "C4a", "C5", "C6", "C13",
                    "C17a", "C17b"):
            assert cid in CLAIMS

    def test_claims_check_against_the_model(self):
        assert CLAIMS["C1"].check(TECH_5NM.transport_vs_add_ratio(1.0))
        assert CLAIMS["C2"].check(TECH_5NM.diagonal_vs_add_ratio())
        assert CLAIMS["C3"].check(TECH_5NM.offchip_vs_add_ratio())
        assert CLAIMS["C3b"].check(TECH_5NM.offchip_vs_diagonal_ratio())

    def test_tolerance_boundaries(self):
        c = Claim("T", "0", "test", 100.0, 0.1)
        assert c.check(105.0)
        assert not c.check(115.0)
        assert c.ratio(50.0) == 0.5

    def test_at_least(self):
        assert check_at_least("C6", 3200.0)
        assert not check_at_least("C6", 10.0)

    def test_quotes_preserved(self):
        assert "160x" in CLAIMS["C1"].quote


class TestBrentCheck:
    def test_greedy_within_bounds(self):
        d = Dag.random_dag(40, 0.1, seed=0)
        s = greedy_schedule(d, 4)
        chk = check_schedule(d, s)
        assert chk.within_greedy_bounds
        assert chk.speedup >= 1.0
        assert 0 < chk.efficiency <= 1.0

    def test_stealing_slack_reported(self):
        d = Dag.random_dag(60, 0.08, seed=1)
        s = work_stealing_schedule(d, 4, seed=0)
        chk = check_schedule(d, s)
        assert chk.slack_vs_upper >= -chk.upper  # computable, finite
        assert "P=4" in chk.describe()


class TestPareto:
    def test_dominates(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 2), (2, 1))
        assert not dominates((1, 1), (1, 1))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))

    def test_front_extraction(self):
        pts = [(1, 5), (2, 2), (5, 1), (3, 3), (6, 6)]
        front = pareto_front(pts, lambda p: p)
        assert front == [(1, 5), (2, 2), (5, 1)]

    def test_duplicates_kept(self):
        pts = [(1, 1), (1, 1), (2, 2)]
        assert pareto_front(pts, lambda p: p) == [(1, 1), (1, 1)]

    def test_single_point(self):
        assert pareto_front([(3, 3)], lambda p: p) == [(3, 3)]


class TestTable:
    def test_render_alignment(self):
        t = Table("demo", ["name", "value"])
        t.add_row("x", 1)
        t.add_row("longer", 123456)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "123,456" in text
        assert all(len(l) == len(lines[2]) for l in lines[2:])

    def test_row_arity_checked(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table("t", [])

    @pytest.mark.parametrize(
        "value,expect",
        [
            (True, "yes"),
            (12345, "12,345"),
            (0.0, "0"),
            (1.5, "1.5"),
            (123456.789, "1.235e+05"),
            ("txt", "txt"),
        ],
    )
    def test_fmt_num(self, value, expect):
        assert fmt_num(value) == expect
