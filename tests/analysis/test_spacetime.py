"""Space-time diagram rendering."""

import pytest

from repro.algorithms.edit_distance import edit_distance_graph, wavefront_mapping
from repro.analysis.spacetime import occupancy_grid, render_spacetime
from repro.core.default_mapper import serial_mapping
from repro.core.function import DataflowGraph
from repro.core.idioms import build_reduce
from repro.core.mapping import GridSpec, Mapping


class TestOccupancyGrid:
    def test_maps_compute_only(self):
        g = DataflowGraph()
        a = g.const(1)
        b = g.op("copy", a)
        grid = GridSpec(2, 1)
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 0)
        m.set(b, (1, 0), 5)
        occ = occupancy_grid(g, m, grid)
        assert (1, 0) in occ and occ[(1, 0)] == {5: b}
        assert (0, 0) not in occ  # const is not compute

    def test_offchip_excluded(self):
        g = DataflowGraph()
        x = g.input("X", (0,))
        y = g.op("copy", x)
        m = Mapping(g.n_nodes)
        m.set(x, (0, 0), 0, offchip=True)
        m.set(y, (0, 0), 60)
        occ = occupancy_grid(g, m, GridSpec(1, 1))
        assert list(occ) == [(0, 0)]


class TestRender:
    def test_wavefront_shape(self):
        """Each PE's first busy cycle lags its neighbour by hop+1."""
        n, p = 16, 4
        grid = GridSpec(p, 1)
        g = edit_distance_graph(n, n)
        m = wavefront_mapping(g, n, p, grid)
        occ = occupancy_grid(g, m, grid)
        starts = [min(occ[(k, 0)]) for k in range(p)]
        skew = grid.tech.hop_cycles() + 1
        assert starts == [k * skew for k in range(p)]
        text = render_spacetime(g, m, grid, width=40)
        assert "H" in text and "(3, 0)" in text

    def test_serial_mapping_single_row(self):
        idiom = build_reduce(8, 4, GridSpec(4, 1))
        m = serial_mapping(idiom.graph, GridSpec(4, 1))
        text = render_spacetime(idiom.graph, m, GridSpec(4, 1), width=30)
        pe_rows = [l for l in text.splitlines() if l.strip().startswith("(")]
        assert len(pe_rows) == 1

    def test_window_bounds(self):
        idiom = build_reduce(8, 4, GridSpec(4, 1))
        text = render_spacetime(idiom.graph, idiom.mapping, GridSpec(4, 1),
                                t_start=50, width=10)
        rows = [l for l in text.splitlines() if "|" in l]
        body = rows[1].split("|", 1)[1]
        assert len(body) == 10

    def test_legend_lists_groups(self):
        idiom = build_reduce(8, 4, GridSpec(4, 1))
        text = render_spacetime(idiom.graph, idiom.mapping, GridSpec(4, 1),
                                width=120)
        assert "legend:" in text
        assert "partial" in text or "tree" in text

    def test_empty_graph(self):
        g = DataflowGraph()
        assert "no on-chip compute" in render_spacetime(
            g, Mapping(0), GridSpec(1, 1)
        )

    def test_bad_width(self):
        g = DataflowGraph()
        with pytest.raises(ValueError):
            render_spacetime(g, Mapping(0), GridSpec(1, 1), width=0)

    def test_glyph_collisions_disambiguated(self):
        g = DataflowGraph()
        a = g.const(1)
        x = g.op("copy", a, group="tree")
        y = g.op("copy", x, group="Trunk")
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 0)
        m.set(x, (0, 0), 1)
        m.set(y, (0, 0), 2)
        text = render_spacetime(g, m, GridSpec(1, 1), width=5)
        # two distinct glyphs assigned
        assert "t=tree" in text or "t=Trunk" in text
        assert "T=" in text
