"""Schedule-aware locality: replaying schedules through private caches."""

import pytest

from repro.analysis.schedule_locality import (
    LocalityReport,
    chain_workload,
    replay_schedule,
)
from repro.runtime.scheduler import greedy_schedule, work_stealing_schedule


class TestChainWorkload:
    def test_shape(self):
        dag, addrs = chain_workload(4, 8, block_words_per_chain=10)
        assert dag.n_nodes == 32 and len(addrs) == 32
        assert dag.span() == 8 * 4  # one chain's duration
        assert all(len(a) == 10 for a in addrs)

    def test_chains_are_independent(self):
        dag, _ = chain_workload(3, 5)
        # three sources, three sinks
        sources = [v for v in range(dag.n_nodes) if not dag.predecessors[v]]
        assert len(sources) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            chain_workload(0, 4)


class TestReplay:
    def test_needs_matching_addr_lists(self):
        dag, addrs = chain_workload(2, 2)
        s = greedy_schedule(dag, 2)
        with pytest.raises(ValueError, match="address list"):
            replay_schedule(dag, s, addrs[:-1])

    def test_single_chain_one_worker_cold_only(self):
        dag, addrs = chain_workload(1, 10, block_words_per_chain=8)
        s = greedy_schedule(dag, 1)
        rep = replay_schedule(dag, s, addrs, cache_words=32)
        assert rep.misses == 8  # one cold working set
        assert rep.accesses == 10 * 8
        assert rep.miss_rate == pytest.approx(8 / 80)

    def test_tiny_cache_always_misses(self):
        dag, addrs = chain_workload(1, 4, block_words_per_chain=8)
        s = greedy_schedule(dag, 1)
        rep = replay_schedule(dag, s, addrs, cache_words=4)
        assert rep.misses == 4 * 8  # working set never fits

    def test_per_worker_misses_sum(self):
        dag, addrs = chain_workload(4, 6)
        s = greedy_schedule(dag, 4)
        rep = replay_schedule(dag, s, addrs)
        assert sum(rep.per_worker_misses) == rep.misses
        assert len(rep.per_worker_misses) == 4


class TestSchedulerLocalityGap:
    def test_brent_identical_locality_different(self):
        """The point of the extension: two schedules with the SAME makespan
        (Brent cannot tell them apart) can differ by an order of magnitude
        in cache misses."""
        dag, addrs = chain_workload(8, 16, block_words_per_chain=16)
        g = greedy_schedule(dag, 1)        # FIFO = breadth-first interleave
        ws = work_stealing_schedule(dag, 1, seed=0)  # depth-first chains
        assert g.length == ws.length       # identical work-depth cost
        rg = replay_schedule(dag, g, addrs, cache_words=64)
        rw = replay_schedule(dag, ws, addrs, cache_words=64)
        assert rw.misses * 8 <= rg.misses  # stealing is >= 8x better here

    def test_depth_first_pays_once_per_chain(self):
        dag, addrs = chain_workload(8, 16, block_words_per_chain=16)
        ws = work_stealing_schedule(dag, 4, seed=1)
        rep = replay_schedule(dag, ws, addrs, cache_words=64)
        # lower bound: every chain's working set is cold once
        assert rep.misses >= 8 * 16
        # and stays within 4x of that (occasional migrations)
        assert rep.misses <= 4 * 8 * 16
