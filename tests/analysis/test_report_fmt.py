"""fmt_num: significant figures, signs, and non-finite values."""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.report import fmt_num


class TestMidRangeBranch:
    """100 <= |v| < 10_000: decimals derived from magnitude so the total
    significant figures stay at ``sig`` — and the sign never changes them."""

    def test_three_digit_floats_get_one_decimal(self):
        assert fmt_num(123.456) == "123.5"

    def test_negative_matches_positive_width(self):
        # regression: the old code always used one decimal, so -1234.5
        # rendered as "-1,234.5" (5 sig figs) while 123.456 got 4
        assert fmt_num(-123.456) == "-123.5"
        assert fmt_num(-123.456) == "-" + fmt_num(123.456)

    def test_four_digit_floats_get_no_decimals(self):
        assert fmt_num(1234.5) == "1,234"
        assert fmt_num(-1234.5) == "-1,234"

    def test_sig_parameter_respected(self):
        assert fmt_num(123.456, sig=5) == "123.46"
        assert fmt_num(1234.56, sig=6) == "1,234.56"


class TestNonFinite:
    def test_nan(self):
        assert fmt_num(float("nan")) == "nan"

    def test_infinities(self):
        assert fmt_num(float("inf")) == "inf"
        assert fmt_num(float("-inf")) == "-inf"


class TestOtherBranchesUnchanged:
    def test_ints_and_bools(self):
        assert fmt_num(1234567) == "1,234,567"
        assert fmt_num(True) == "yes"
        assert fmt_num(False) == "no"

    def test_zero_and_small(self):
        assert fmt_num(0.0) == "0"
        assert fmt_num(0.12345) == "0.1235"
        assert fmt_num(1e-5) == "1.000e-05"

    def test_large_goes_exponential(self):
        assert fmt_num(123456.0) == "1.235e+05"

    def test_strings_pass_through(self):
        assert fmt_num("hello") == "hello"


class TestProperties:
    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_sign_symmetry(self, v):
        """Negating a float only ever prepends '-' (alignment invariant)."""
        if v == 0:
            return
        pos, neg = fmt_num(abs(v)), fmt_num(-abs(v))
        assert neg == "-" + pos

    @given(st.floats(allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12))
    def test_round_trips_to_within_a_percent(self, v):
        """The rendering stays numerically faithful (4 sig figs ~ 0.1%)."""
        if v == 0 or abs(v) < 1e-3:
            return
        parsed = float(fmt_num(v).replace(",", ""))
        assert math.isclose(parsed, v, rel_tol=5e-3)
