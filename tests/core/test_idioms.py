"""Idioms: map/reduce/scan/gather/scatter/shuffle (function + mapping)."""

import itertools

import numpy as np
import pytest

from repro.core.idioms import (
    block_owner,
    build_gather,
    build_map,
    build_reduce,
    build_scan,
    build_scan_tree,
    build_scatter,
    build_shuffle,
)
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec
from repro.machines.grid import GridMachine


@pytest.fixture
def grid():
    return GridSpec(8, 1)


def run(idiom, grid, inputs):
    return GridMachine(grid).run(idiom.graph, idiom.mapping, inputs)


def arr_input(values):
    return {"A": {(i,): int(v) for i, v in enumerate(values)}}


class TestBlockOwner:
    def test_contiguous_blocks(self, grid):
        owner = block_owner(16, 4, grid)
        assert owner(0) == owner(3) == (0, 0)
        assert owner(4) == (1, 0)
        assert owner(15) == (3, 0)

    def test_uneven_n(self, grid):
        owner = block_owner(10, 4, grid)
        places = {owner(i) for i in range(10)}
        assert len(places) == 4  # all PEs used

    def test_p_out_of_range(self, grid):
        with pytest.raises(ValueError):
            block_owner(8, 9, grid)


class TestMapIdiom:
    @pytest.mark.parametrize("n,p", [(8, 2), (16, 8), (7, 3)])
    def test_values_and_legality(self, grid, n, p):
        vals = list(range(n))
        idiom = build_map(n, p, grid, "+", 100)
        assert check_legality(idiom.graph, idiom.mapping, grid).ok
        res = run(idiom, grid, arr_input(vals))
        assert all(res.outputs[("out", i)] == i + 100 for i in range(n))

    def test_map_has_no_cross_pe_wires(self, grid):
        idiom = build_map(16, 4, grid)
        res = run(idiom, grid, arr_input(range(16)))
        assert res.cost.energy_onchip_fj == 0  # owner computes: local only


class TestReduceIdiom:
    @pytest.mark.parametrize("n,p", [(16, 4), (32, 8), (5, 2)])
    def test_sum(self, grid, n, p):
        vals = [3 * i + 1 for i in range(n)]
        idiom = build_reduce(n, p, grid, "+")
        assert check_legality(idiom.graph, idiom.mapping, grid).ok
        res = run(idiom, grid, arr_input(vals))
        assert res.outputs["reduce"] == sum(vals)

    def test_max_reduce(self, grid):
        vals = [5, 2, 9, 1, 7, 7, 0, 3]
        idiom = build_reduce(8, 4, grid, "max")
        res = run(idiom, grid, arr_input(vals))
        assert res.outputs["reduce"] == 9

    def test_more_pes_shorter_critical_path(self, grid):
        # n large enough that local work dominates the off-chip load latency
        t = {}
        for p in (1, 8):
            idiom = build_reduce(128, p, grid)
            t[p] = idiom.mapping.makespan(idiom.graph)
        assert t[8] < t[1]

    def test_empty_rejected(self, grid):
        with pytest.raises(ValueError):
            build_reduce(0, 2, grid)


class TestScanIdiom:
    @pytest.mark.parametrize("n,p", [(16, 4), (24, 8), (9, 3)])
    def test_inclusive_scan(self, grid, n, p):
        vals = [(i * 7) % 5 + 1 for i in range(n)]
        idiom = build_scan(n, p, grid, "+")
        assert check_legality(idiom.graph, idiom.mapping, grid).ok
        res = run(idiom, grid, arr_input(vals))
        want = list(itertools.accumulate(vals))
        got = [res.outputs[("scan", i)] for i in range(n)]
        assert got == want

    def test_scan_on_2d_grid_block_order(self):
        """Regression: block offsets must follow linear PE order on
        multi-row grids."""
        grid = GridSpec(2, 2)
        n, p = 16, 4
        vals = list(range(1, n + 1))
        idiom = build_scan(n, p, grid)
        res = run(idiom, grid, arr_input(vals))
        want = list(itertools.accumulate(vals))
        assert [res.outputs[("scan", i)] for i in range(n)] == want


class TestScanTreeIdiom:
    @pytest.mark.parametrize("n,p", [(8, 8), (32, 8), (64, 4), (17, 4)])
    def test_correct_and_legal(self, grid, n, p):
        vals = [(i * 3) % 7 + 1 for i in range(n)]
        idiom = build_scan_tree(n, p, grid)
        assert check_legality(idiom.graph, idiom.mapping, grid).ok
        res = run(idiom, grid, arr_input(vals))
        want = list(itertools.accumulate(vals))
        assert [res.outputs[("scan", i)] for i in range(n)] == want

    def test_requires_pow2_p_and_n_ge_p(self, grid):
        with pytest.raises(ValueError, match="power-of-two"):
            build_scan_tree(16, 3, grid)
        with pytest.raises(ValueError, match="n >= p"):
            build_scan_tree(4, 8, grid)

    def test_tree_wins_on_2d_grids(self):
        """The geometry lesson: on a 2-D grid (diameter ~ sqrt(p)) the
        log-depth tree beats the serial offset chain decisively..."""
        grid = GridSpec(8, 8)
        n, p = 256, 64
        chain = build_scan(n, p, grid)
        tree = build_scan_tree(n, p, grid)
        t_chain = chain.mapping.makespan(chain.graph)
        t_tree = tree.mapping.makespan(tree.graph)
        assert t_tree < t_chain / 2

    def test_chain_holds_its_own_on_1d(self):
        """...but on a 1-D row both need information to travel distance ~p,
        so the PRAM's log-p advantage evaporates — Dally's physics point,
        measured."""
        grid = GridSpec(16, 1)
        n, p = 64, 16
        chain = build_scan(n, p, grid)
        tree = build_scan_tree(n, p, grid)
        t_chain = chain.mapping.makespan(chain.graph)
        t_tree = tree.mapping.makespan(tree.graph)
        assert t_tree > 0.75 * t_chain  # no decisive tree win in 1-D


class TestMovementIdioms:
    def test_gather(self, grid):
        indices = [7, 0, 0, 3, 5, 2, 6, 1]
        idiom = build_gather(8, 4, grid, indices)
        res = run(idiom, grid, arr_input([10 * i for i in range(8)]))
        assert [res.outputs[("gather", j)] for j in range(8)] == [
            10 * indices[j] for j in range(8)
        ]

    def test_gather_index_out_of_range(self, grid):
        with pytest.raises(ValueError):
            build_gather(4, 2, grid, [0, 1, 9, 2])

    def test_scatter_permutation(self, grid):
        dest = [3, 1, 0, 2]
        idiom = build_scatter(4, 2, grid, dest)
        res = run(idiom, grid, arr_input([10, 20, 30, 40]))
        out = [res.outputs[("scatter", d)] for d in range(4)]
        # out[dest[i]] = in[i]
        want = [0] * 4
        for i, d in enumerate(dest):
            want[d] = [10, 20, 30, 40][i]
        assert out == want

    def test_scatter_requires_permutation(self, grid):
        with pytest.raises(ValueError, match="permutation"):
            build_scatter(4, 2, grid, [0, 0, 1, 2])

    def test_shuffle_is_perfect_shuffle(self, grid):
        n = 8
        idiom = build_shuffle(n, 4, grid)
        res = run(idiom, grid, arr_input(range(n)))
        for i in range(n - 1):
            assert res.outputs[("shuffle", (2 * i) % (n - 1))] == i
        assert res.outputs[("shuffle", n - 1)] == n - 1

    def test_shuffle_needs_even_n(self, grid):
        with pytest.raises(ValueError):
            build_shuffle(7, 2, grid)

    def test_movement_costs_scale_with_displacement(self, grid):
        """A full reversal moves data farther than a cyclic shift by one."""
        n = 16
        rev = build_gather(n, 8, grid, list(reversed(range(n))))
        shift = build_gather(n, 8, grid, [(i + 1) % n for i in range(n)])
        e_rev = run(rev, grid, arr_input(range(n))).cost.energy_onchip_fj
        e_shift = run(shift, grid, arr_input(range(n))).cost.energy_onchip_fj
        assert e_rev > e_shift
