"""Default mapper: legal-by-construction ASAP schedules."""

import pytest

from repro.core.default_mapper import (
    block_place_fn,
    default_mapping,
    schedule_asap,
    serial_mapping,
)
from repro.core.function import DataflowGraph
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec


def chain_graph(n=12):
    g = DataflowGraph()
    acc = g.input("A", (0,))
    for i in range(n):
        acc = g.op("+", acc, g.const(1, index=(i,)), index=(i,))
    g.mark_output(acc, "out")
    return g


def wide_graph(n=16):
    g = DataflowGraph()
    for i in range(n):
        a = g.input("A", (i,))
        r = g.op("+", a, g.const(i, index=(i,)), index=(i,))
        g.mark_output(r, ("o", i))
    return g


class TestLegalByConstruction:
    @pytest.mark.parametrize("builder", [chain_graph, wide_graph])
    @pytest.mark.parametrize("shape", [(1, 1), (4, 1), (2, 2), (8, 1)])
    def test_default_mapping_always_legal(self, builder, shape):
        g = builder()
        grid = GridSpec(*shape)
        m = default_mapping(g, grid)
        rep = check_legality(g, m, grid)
        assert rep.ok, [str(v) for v in rep.violations[:5]]

    def test_serial_mapping_legal(self):
        g = wide_graph()
        grid = GridSpec(4, 1)
        m = serial_mapping(g, grid)
        assert check_legality(g, m, grid).ok
        assert m.places_used() <= {(0, 0)}

    def test_inputs_onchip_mode(self):
        g = wide_graph(4)
        grid = GridSpec(2, 1)
        m = default_mapping(g, grid, inputs_offchip=False)
        assert not m.offchip.any()
        assert check_legality(g, m, grid).ok


class TestScheduleQuality:
    def test_wide_graph_parallelizes(self):
        g = wide_graph(16)
        grid1 = GridSpec(1, 1)
        grid8 = GridSpec(8, 1)
        t1 = default_mapping(g, grid1).makespan(g)
        t8 = default_mapping(g, grid8).makespan(g)
        assert t8 < t1

    def test_serial_packs_back_to_back(self):
        """On one PE the compute nodes occupy consecutive cycles."""
        g = wide_graph(8)
        grid = GridSpec(1, 1)
        m = serial_mapping(g, grid, inputs_offchip=False)
        times = sorted(
            int(m.time[nid]) for nid in range(g.n_nodes) if g.is_compute(nid)
        )
        assert times == list(range(times[0], times[0] + len(times)))

    def test_offchip_latency_delays_start(self):
        g = wide_graph(2)
        grid = GridSpec(1, 1)
        m = default_mapping(g, grid)  # inputs offchip
        first = min(
            int(m.time[nid]) for nid in range(g.n_nodes) if g.is_compute(nid)
        )
        assert first >= grid.tech.offchip_cycles()


class TestBlockPlacement:
    def test_blocks_balanced(self):
        g = wide_graph(16)
        grid = GridSpec(4, 1)
        place = block_place_fn(g, grid)
        # each of the 4 PEs owns 4 consecutive indices
        seen = {}
        for nid in range(g.n_nodes):
            idx = g.index[nid]
            if idx:
                seen.setdefault(place(nid), set()).add(idx[0])
        assert len(seen) == 4
        for owned in seen.values():
            assert len(owned) == 4

    def test_off_grid_placement_rejected(self):
        g = wide_graph(4)
        grid = GridSpec(2, 1)
        with pytest.raises(ValueError, match="off-grid"):
            schedule_asap(g, grid, lambda nid: (5, 0))
