"""Differential tests: the fast search engine must equal the reference.

Every searcher runs twice on every seed workload — once on
``REFERENCE_ENGINE`` (plain loops) and once on a fast configuration
(memoized / incremental / parallel) — and ``assert_search_equivalent``
demands identical output: same labels, same best mappings, and
bit-identical CostReport floats.  This is the contract that lets the fast
path exist at all.
"""

import pytest

from repro.algorithms.edit_distance import edit_distance_graph
from repro.algorithms.fft import fft_graph
from repro.algorithms.matmul_fm import matmul_graph
from repro.algorithms.stencil import stencil_graph
from repro.core.mapping import GridSpec
from repro.core.memo import MemoCache, clear_global_caches
from repro.core.search import (
    FAST_ENGINE,
    REFERENCE_ENGINE,
    FigureOfMerit,
    SearchEngine,
    anneal,
    exhaustive_search,
    sweep_placements,
)
from repro.testing import assert_search_equivalent
from tests.core.test_search import tiny_graph, wide_graph


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_global_caches()
    yield
    clear_global_caches()


# (name, graph builder, grid) — one entry per DataflowGraph-producing
# algorithm family, sized to keep the reference sweep under a second.
WORKLOADS = [
    ("wide", lambda: wide_graph(12), GridSpec(4, 1)),
    ("stencil", lambda: stencil_graph(6, 2), GridSpec(4, 1)),
    ("fft", lambda: fft_graph(8), GridSpec(4, 1)),
    ("matmul-broadcast", lambda: matmul_graph(3, systolic=False), GridSpec(3, 3)),
    ("matmul-systolic", lambda: matmul_graph(3, systolic=True), GridSpec(3, 3)),
    ("edit-distance", lambda: edit_distance_graph(5, cell="paper"), GridSpec(4, 1)),
    ("edit-distance-lev", lambda: edit_distance_graph(4, cell="lev"), GridSpec(2, 2)),
]

FOMS = [FigureOfMerit.fastest(), FigureOfMerit.edp(), FigureOfMerit(1.0, 1.0, 0.5)]


@pytest.mark.parametrize("name,build,grid", WORKLOADS, ids=[w[0] for w in WORKLOADS])
class TestSweepDifferential:
    def test_memoized_serial_equals_reference(self, name, build, grid):
        g = build()
        engine = SearchEngine(memoize=True, incremental=True, cache=MemoCache())
        for fom in FOMS:
            ref = sweep_placements(g, grid, fom)
            fast = sweep_placements(g, grid, fom, engine=engine)
            assert_search_equivalent(fast, ref, context=f"{name} sweep")

    def test_memo_hits_are_still_equal(self, name, build, grid):
        # second sweep over the same graph is answered from cache — the
        # cached rows must still satisfy the oracle.
        g = build()
        engine = SearchEngine(memoize=True, cache=MemoCache())
        ref = sweep_placements(g, grid)
        sweep_placements(g, grid, engine=engine)
        fast = sweep_placements(g, grid, engine=engine)
        assert engine.cache.stats.hits > 0
        assert_search_equivalent(fast, ref, context=f"{name} memoized sweep")


def test_sweep_parallel_workers_equal_reference():
    # one real multiprocessing run (kept small: pool startup dominates)
    g = stencil_graph(6, 2)
    grid = GridSpec(4, 1)
    ref = sweep_placements(g, grid)
    fast = sweep_placements(
        g, grid, engine=SearchEngine(parallel=True, n_workers=2)
    )
    assert_search_equivalent(fast, ref, context="parallel sweep")


def test_sweep_parallel_custom_op_energies_survive_workers():
    # edit-distance cells register custom OP_ENERGY_FACTOR entries at
    # import; workers must charge them identically or energies drift.
    g = edit_distance_graph(5, cell="paper")
    grid = GridSpec(4, 1)
    ref = sweep_placements(g, grid, FigureOfMerit.lowest_energy())
    fast = sweep_placements(
        g, grid, FigureOfMerit.lowest_energy(),
        engine=SearchEngine(parallel=True, n_workers=2),
    )
    assert_search_equivalent(fast, ref, context="parallel sweep custom ops")


class TestExhaustiveDifferential:
    def test_fast_serial_equals_reference(self):
        g = tiny_graph()
        grid = GridSpec(2, 2)
        ref = exhaustive_search(g, grid)
        fast = exhaustive_search(g, grid, engine=SearchEngine(memoize=True))
        assert_search_equivalent(fast, ref, context="exhaustive serial")

    def test_parallel_chunks_equal_reference(self):
        g = tiny_graph()
        grid = GridSpec(2, 2)
        for fom in (FigureOfMerit.fastest(), FigureOfMerit.edp()):
            ref = exhaustive_search(g, grid, fom)
            fast = exhaustive_search(
                g, grid, fom, engine=SearchEngine(parallel=True, n_workers=2)
            )
            assert_search_equivalent(fast, ref, context="exhaustive parallel")


class TestAnnealDifferential:
    @pytest.mark.parametrize(
        "name,build,grid", WORKLOADS[:5], ids=[w[0] for w in WORKLOADS[:5]]
    )
    def test_incremental_equals_reference(self, name, build, grid):
        g = build()
        ref = anneal(g, grid, steps=120, seed=7)
        fast = anneal(g, grid, steps=120, seed=7, engine=FAST_ENGINE)
        assert_search_equivalent(fast, ref, context=f"{name} anneal")

    def test_memoized_walk_equals_reference(self):
        g = wide_graph(10)
        grid = GridSpec(4, 1)
        engine = SearchEngine(memoize=True, incremental=True, cache=MemoCache())
        ref = anneal(g, grid, steps=200, seed=3)
        fast = anneal(g, grid, steps=200, seed=3, engine=engine)
        assert engine.cache.stats.hits > 0  # annealers revisit placements
        assert_search_equivalent(fast, ref, context="memoized anneal")

    def test_energy_fom_incremental(self):
        g = stencil_graph(6, 2)
        grid = GridSpec(4, 1)
        fom = FigureOfMerit.edp()
        ref = anneal(g, grid, fom, steps=120, seed=11)
        fast = anneal(g, grid, fom, steps=120, seed=11, engine=FAST_ENGINE)
        assert_search_equivalent(fast, ref, context="edp anneal")

    def test_footprint_fom_falls_back_soundly(self):
        # footprint weight != 0 disables the liveness-skipping fast path;
        # the engine must still match the reference.
        g = wide_graph(8)
        grid = GridSpec(4, 1)
        fom = FigureOfMerit(1.0, 0.0, 1.0)
        ref = anneal(g, grid, fom, steps=80, seed=5)
        fast = anneal(g, grid, fom, steps=80, seed=5, engine=FAST_ENGINE)
        assert_search_equivalent(fast, ref, context="footprint anneal")


def test_reference_engine_is_all_knobs_off():
    assert REFERENCE_ENGINE == SearchEngine()
    assert FAST_ENGINE.memoize and FAST_ENGINE.incremental and FAST_ENGINE.parallel
