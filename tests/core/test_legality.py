"""Legality checking: causality, transit, occupancy, storage."""

import pytest

from repro.core.function import DataflowGraph
from repro.core.legality import check_legality, compute_liveness
from repro.core.mapping import GridSpec, Mapping


def two_node_graph():
    g = DataflowGraph()
    a = g.const(1)
    b = g.op("copy", a)
    g.mark_output(b, "out")
    return g, a, b


class TestCausality:
    def test_same_place_needs_one_cycle_gap_from_compute(self):
        g = DataflowGraph()
        a = g.const(1)
        b = g.op("copy", a)
        c = g.op("copy", b)
        grid = GridSpec(2, 1)
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 0)
        m.set(b, (0, 0), 0)
        m.set(c, (0, 0), 0)  # reads b in the cycle b executes: illegal
        rep = check_legality(g, m, grid)
        assert not rep.ok
        assert any(v.kind == "causality" and v.node == c for v in rep.violations)

        m.set(c, (0, 0), 1)  # b available at 1
        assert check_legality(g, m, grid).ok

    def test_transit_time_enforced(self):
        g, a, b = two_node_graph()
        grid = GridSpec(4, 1)  # hop = 4 cycles
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 0)
        m.set(b, (3, 0), 5)  # 3 hops = 12 cycles; too early
        rep = check_legality(g, m, grid)
        assert rep.by_kind("causality")
        m.set(b, (3, 0), 12)
        assert check_legality(g, m, grid).ok

    def test_offchip_latency_enforced(self):
        g = DataflowGraph()
        a = g.input("A", (0,))
        b = g.op("copy", a)
        grid = GridSpec(2, 1)
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 0, offchip=True)
        m.set(b, (0, 0), 1)
        rep = check_legality(g, m, grid)
        assert not rep.ok
        m.set(b, (0, 0), grid.tech.offchip_cycles())
        assert check_legality(g, m, grid).ok


class TestBoundsAndOccupancy:
    def test_out_of_grid_flagged(self):
        g, a, b = two_node_graph()
        grid = GridSpec(2, 1)
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 0)
        m.set(b, (5, 0), 10)
        rep = check_legality(g, m, grid)
        assert rep.by_kind("bounds")

    def test_two_computes_same_pe_same_cycle(self):
        g = DataflowGraph()
        a, b = g.const(1), g.const(2)
        x = g.op("copy", a)
        y = g.op("copy", b)
        grid = GridSpec(2, 1)
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 0)
        m.set(b, (0, 0), 0)
        m.set(x, (0, 0), 1)
        m.set(y, (0, 0), 1)  # same PE, same cycle
        rep = check_legality(g, m, grid)
        assert rep.by_kind("occupancy")
        # move y one hop away, late enough for b's value to arrive (4 cycles)
        m.set(y, (1, 0), 4)
        assert check_legality(g, m, grid).ok

    def test_consts_do_not_occupy(self):
        g = DataflowGraph()
        a, b = g.const(1), g.const(2)
        grid = GridSpec(1, 1)
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 0)
        m.set(b, (0, 0), 0)
        assert check_legality(g, m, grid).ok


class TestStorage:
    def test_pe_memory_bound(self):
        # 4 values resident at one PE forever, bound of 2
        g = DataflowGraph()
        consts = [g.const(i) for i in range(4)]
        acc = consts[0]
        for c in consts[1:]:
            acc = g.op("+", acc, c)
        g.mark_output(acc, "s")
        grid = GridSpec(1, 1, pe_memory_words=2)
        m = Mapping(g.n_nodes)
        for i, c in enumerate(consts):
            m.set(c, (0, 0), 0)
        t = 1
        for nid in range(g.n_nodes):
            if g.is_compute(nid):
                m.set(nid, (0, 0), t)
                t += 1
        rep = check_legality(g, m, grid)
        assert rep.by_kind("storage")
        # loosen the bound: legal
        grid2 = GridSpec(1, 1, pe_memory_words=16)
        assert check_legality(g, m, grid2).ok

    def test_in_flight_bound(self):
        g = DataflowGraph()
        srcs = [g.const(i) for i in range(4)]
        sinks = [g.op("copy", s) for s in srcs]
        grid = GridSpec(4, 1, max_in_flight=2)
        m = Mapping(g.n_nodes)
        for k, (s, d) in enumerate(zip(srcs, sinks)):
            m.set(s, (0, 0), 0)
            m.set(d, (3, 0), 12 + k)  # all four in flight together
        rep = check_legality(g, m, grid)
        assert rep.by_kind("transit")

    def test_liveness_summary(self):
        g = DataflowGraph()
        a = g.const(1)
        b = g.op("copy", a)
        g.mark_output(b, "o")
        grid = GridSpec(2, 1)
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 0)
        m.set(b, (1, 0), 4)
        live = compute_liveness(g, m, grid)
        assert live.max_live_per_place[(0, 0)] == 1
        assert live.max_in_flight == 1
        assert live.footprint_words == 2  # a at PE0, b at PE1

    def test_offchip_values_not_counted(self):
        g = DataflowGraph()
        a = g.input("A", (0,))
        b = g.op("copy", a)
        grid = GridSpec(1, 1, pe_memory_words=1)
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 0, offchip=True)
        m.set(b, (0, 0), 100)
        rep = check_legality(g, m, grid)
        assert rep.ok


class TestReportMechanics:
    def test_mismatched_sizes(self):
        g, *_ = two_node_graph()
        with pytest.raises(ValueError, match="mapping covers"):
            check_legality(g, Mapping(1), GridSpec(1, 1))

    def test_truncation(self):
        g = DataflowGraph()
        prev = g.const(0)
        for _ in range(50):
            prev = g.op("copy", prev)
        m = Mapping(g.n_nodes)  # everything at t=0: mass causality violation
        rep = check_legality(g, m, GridSpec(1, 1), max_violations=5)
        assert any(v.kind == "truncated" for v in rep.violations)

    def test_raise_if_illegal_message(self):
        g, a, b = two_node_graph()
        m = Mapping(g.n_nodes)
        m.set(b, (5, 0), 0)  # off a 1x1 grid
        rep = check_legality(g, m, GridSpec(1, 1))
        with pytest.raises(ValueError, match="illegal mapping"):
            rep.raise_if_illegal()
