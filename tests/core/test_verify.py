"""Full-stack verification: translation validation and mutation testing."""

import pytest

from repro.algorithms.stencil import stencil_graph
from repro.core.default_mapper import default_mapping
from repro.core.idioms import build_reduce, build_scan
from repro.core.lowering import lower
from repro.core.mapping import GridSpec
from repro.core.verify import (
    MUTATION_KINDS,
    mutate_spec,
    verify_lowering,
)

GRID = GridSpec(4, 1)


def lowered(workload: str):
    if workload == "reduce":
        idiom = build_reduce(16, 4, GRID)
        g, m = idiom.graph, idiom.mapping
    elif workload == "scan":
        idiom = build_scan(12, 4, GRID)
        g, m = idiom.graph, idiom.mapping
    else:
        g = stencil_graph(12, 2)
        m = default_mapping(g, GRID)
    return g, m, lower(g, m, GRID)


class TestCleanDesignsVerify:
    @pytest.mark.parametrize("workload", ["reduce", "scan", "stencil"])
    def test_all_checks_pass(self, workload):
        g, m, spec = lowered(workload)
        res = verify_lowering(g, m, spec, GRID)
        assert res.ok, res.describe()
        assert res.outputs  # hardware-level outputs produced

    def test_hardware_outputs_match_reference(self):
        g, m, spec = lowered("reduce")
        inputs = {"A": {(i,): i + 1 for i in range(16)}}
        res = verify_lowering(g, m, spec, GRID, inputs)
        assert res.ok
        assert res.outputs["reduce"] == sum(range(1, 17))

    def test_order_independence_is_checked(self):
        g, m, spec = lowered("stencil")
        res = verify_lowering(g, m, spec, GRID,
                              orders=("id", "reverse", "shuffle-7"))
        assert res.ok


class TestMutationsCaught:
    @pytest.mark.parametrize("kind", MUTATION_KINDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_single_faults_detected(self, kind, seed):
        g, m, spec = lowered("reduce")
        try:
            mutant = mutate_spec(spec, kind, seed=seed)
        except ValueError:
            pytest.skip(f"no site for {kind} in this spec")
        res = verify_lowering(g, m, mutant, GRID)
        assert not res.ok, f"{kind} seed={seed} slipped through"

    def test_failed_checks_named(self):
        g, m, spec = lowered("reduce")
        mutant = mutate_spec(spec, "drop_wire", seed=0)
        res = verify_lowering(g, m, mutant, GRID)
        names = {c.name for c in res.failed()}
        assert "wiring" in names

    def test_corrupt_op_caught_functionally(self):
        g, m, spec = lowered("reduce")
        mutant = mutate_spec(spec, "corrupt_op", seed=0)
        res = verify_lowering(g, m, mutant, GRID)
        names = {c.name for c in res.failed()}
        assert "functional" in names

    def test_unknown_mutation_kind(self):
        g, m, spec = lowered("reduce")
        with pytest.raises(ValueError, match="unknown mutation"):
            mutate_spec(spec, "bitflip")

    def test_describe_is_readable(self):
        g, m, spec = lowered("reduce")
        res = verify_lowering(g, m, spec, GRID)
        text = res.describe()
        assert "coverage" in text and "functional" in text
