"""GridSpec and Mapping."""

import pytest

from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping, affine_by_index
from repro.machines.technology import TECH_5NM


class TestGridSpec:
    def test_places_enumeration(self):
        g = GridSpec(2, 2)
        assert list(g.places()) == [(0, 0), (1, 0), (0, 1), (1, 1)]
        assert g.n_places == 4

    def test_bounds(self):
        g = GridSpec(3, 2)
        assert g.in_bounds(2, 1)
        assert not g.in_bounds(3, 0)
        assert not g.in_bounds(0, -1)

    def test_manhattan_distance(self):
        g = GridSpec(8, 8)
        assert g.distance_mm((0, 0), (3, 4)) == pytest.approx(7.0)

    def test_distance_scales_with_pitch(self):
        g = GridSpec(8, 1, tech=TECH_5NM.with_(grid_pitch_mm=0.5))
        assert g.distance_mm((0, 0), (4, 0)) == pytest.approx(2.0)

    def test_transit_cycles(self):
        g = GridSpec(8, 1)
        assert g.transit_cycles((0, 0), (0, 0)) == 0
        assert g.transit_cycles((0, 0), (1, 0)) == 4  # 1mm at 0.25mm/cycle

    def test_positive_extent_required(self):
        with pytest.raises(ValueError):
            GridSpec(0, 4)


class TestMapping:
    def test_set_and_get(self):
        m = Mapping(3)
        m.set(1, (2, 3), 17)
        assert m.place_of(1) == (2, 3)
        assert m.time_of(1) == 17
        assert not m.offchip[1]

    def test_offchip_flag(self):
        m = Mapping(2)
        m.set(0, (0, 0), 0, offchip=True)
        assert m.offchip[0]

    def test_copy_is_deep(self):
        m = Mapping(2)
        m.set(0, (1, 1), 5)
        m2 = m.copy()
        m2.set(0, (2, 2), 9)
        assert m.place_of(0) == (1, 1) and m.time_of(0) == 5

    def test_places_used_excludes_offchip(self):
        m = Mapping(3)
        m.set(0, (0, 0), 0)
        m.set(1, (1, 0), 0)
        m.set(2, (5, 5), 0, offchip=True)
        assert m.places_used() == {(0, 0), (1, 0)}

    def test_makespan_counts_compute_duration(self):
        g = DataflowGraph()
        a = g.input("A", (0,))
        s = g.op("copy", a)
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 0)
        m.set(s, (0, 0), 10)
        assert m.makespan(g) == 11  # compute occupies cycle 10, done at 11


class TestAffineByIndex:
    def test_paper_notation(self):
        """Map by the paper's `at i % P, time (i // P) * N + j` rule."""
        g = DataflowGraph()
        nodes = {}
        for i in range(4):
            for j in range(3):
                nodes[(i, j)] = g.const(0, index=(i, j))
        P, N = 2, 3
        m = affine_by_index(
            g,
            place_fn=lambda idx: (idx[0] % P, 0),
            time_fn=lambda idx: (idx[0] // P) * N + idx[1],
        )
        assert m.place_of(nodes[(3, 1)]) == (1, 0)
        assert m.time_of(nodes[(3, 1)]) == 1 * 3 + 1

    def test_inputs_go_offchip(self):
        g = DataflowGraph()
        a = g.input("A", (0,))
        c = g.op("copy", a, index=(0,))
        m = affine_by_index(g, lambda i: (0, 0), lambda i: 5)
        assert m.offchip[a]
        assert not m.offchip[c]
        assert m.time_of(c) == 5

    def test_indexless_fallback(self):
        g = DataflowGraph()
        k = g.const(3)
        m = affine_by_index(
            g, lambda i: (1, 0), lambda i: 9, fallback_place=(2, 0)
        )
        assert m.place_of(k) == (2, 0)
        assert m.time_of(k) == 0
