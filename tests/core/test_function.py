"""DataflowGraph: construction, evaluation, analysis."""

import pytest

from repro.core.function import DataflowGraph, FunctionError, forall


class TestConstruction:
    def test_ids_dense_in_order(self):
        g = DataflowGraph()
        a = g.input("A", (0,))
        c = g.const(5)
        s = g.op("+", a, c)
        assert (a, c, s) == (0, 1, 2)

    def test_forward_reference_rejected(self):
        g = DataflowGraph()
        a = g.input("A", (0,))
        with pytest.raises(FunctionError):
            g.op("+", a, 5)  # node 5 doesn't exist

    def test_unknown_op(self):
        g = DataflowGraph()
        a = g.const(1)
        with pytest.raises(FunctionError, match="unknown op"):
            g.op("frobnicate", a)

    def test_arity_checked(self):
        g = DataflowGraph()
        a = g.const(1)
        with pytest.raises(FunctionError, match="takes 2 operands"):
            g.op("+", a)

    def test_duplicate_output_label(self):
        g = DataflowGraph()
        a = g.const(1)
        g.mark_output(a, "x")
        with pytest.raises(FunctionError, match="duplicate"):
            g.mark_output(a, "x")

    def test_int_index_normalized(self):
        g = DataflowGraph()
        a = g.input("A", 3)
        assert g.index[a] == (3,)

    def test_forall_row_major(self):
        assert list(forall(2, 2)) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_forall_negative_extent(self):
        with pytest.raises(ValueError):
            forall(-1)


class TestEvaluation:
    def test_arithmetic(self):
        g = DataflowGraph()
        a = g.input("A", (0,))
        b = g.input("B", (0,))
        s = g.op("+", a, b)
        p = g.op("*", s, s)
        g.mark_output(p, "out")
        out = g.evaluate({"A": {(0,): 2}, "B": {(0,): 3}})
        assert out["out"] == 25

    def test_callable_inputs(self):
        g = DataflowGraph()
        nodes = [g.input("A", (i,)) for i in range(4)]
        acc = nodes[0]
        for n in nodes[1:]:
            acc = g.op("+", acc, n)
        g.mark_output(acc, "sum")
        out = g.evaluate({"A": lambda i: i * 10})
        assert out["sum"] == 60

    def test_missing_input_binding(self):
        g = DataflowGraph()
        a = g.input("A", (0,))
        g.mark_output(a, "x")
        with pytest.raises(FunctionError, match="no binding"):
            g.evaluate({})

    def test_missing_index(self):
        g = DataflowGraph()
        a = g.input("A", (5,))
        g.mark_output(a, "x")
        with pytest.raises(FunctionError, match="missing index"):
            g.evaluate({"A": {(0,): 1}})

    def test_select_and_compare(self):
        g = DataflowGraph()
        a = g.input("A", (0,))
        b = g.input("B", (0,))
        lt = g.op("lt", a, b)
        m = g.op("select", lt, a, b)  # min via select
        g.mark_output(m, "min")
        assert g.evaluate({"A": {(0,): 3}, "B": {(0,): 7}})["min"] == 3
        assert g.evaluate({"A": {(0,): 9}, "B": {(0,): 7}})["min"] == 7

    def test_division_by_zero_caught(self):
        g = DataflowGraph()
        a = g.const(1)
        z = g.const(0)
        d = g.op("/", a, z)
        g.mark_output(d, "q")
        with pytest.raises(FunctionError, match="division by zero"):
            g.evaluate({})

    def test_complex_values_flow(self):
        g = DataflowGraph()
        a = g.const(1 + 2j)
        b = g.const(3 - 1j)
        m = g.op("*", a, b)
        g.mark_output(m, "z")
        assert g.evaluate({})["z"] == (1 + 2j) * (3 - 1j)


class TestAnalysis:
    def test_work_counts_compute_only(self):
        g = DataflowGraph()
        a = g.input("A", (0,))
        c = g.const(1)
        g.op("+", a, c)
        assert g.work() == 1 and g.n_nodes == 3

    def test_depth_of_chain_vs_tree(self):
        # chain of 4 adds
        g = DataflowGraph()
        acc = g.const(0)
        for _ in range(4):
            acc = g.op("+", acc, g.const(1))
        assert g.depth() == 4

        # balanced tree of 4 leaves: depth 2
        t = DataflowGraph()
        leaves = [t.const(1) for _ in range(4)]
        l1 = t.op("+", leaves[0], leaves[1])
        l2 = t.op("+", leaves[2], leaves[3])
        t.op("+", l1, l2)
        assert t.depth() == 2

    def test_consumers_cache_invalidation(self):
        g = DataflowGraph()
        a = g.const(1)
        assert g.consumers()[a] == []
        b = g.op("copy", a)
        assert g.consumers()[a] == [b]

    def test_edges_iteration(self):
        g = DataflowGraph()
        a, b = g.const(1), g.const(2)
        s = g.op("+", a, b)
        assert sorted(g.edges()) == [(a, s), (b, s)]
        assert g.n_edges == 2

    def test_repr(self):
        g = DataflowGraph()
        g.const(1)
        assert "DataflowGraph" in repr(g)
