"""The repro.api facade: typed specs, the four verbs, equivalence with
the underlying library calls, and the top-level deprecation shims."""

from __future__ import annotations

import json
import warnings

import pytest

import repro
from repro import api
from repro.core.cost import evaluate_cost
from repro.core.default_mapper import default_mapping, serial_mapping
from repro.core.mapping import GridSpec
from repro.core.search import FigureOfMerit, sweep_placements
from repro.testing.oracle import assert_search_equivalent


# ---------------------------------------------------------------------- #
# specs


def test_workload_spec_is_canonical_and_jsonable():
    a = api.WorkloadSpec.of("stencil", steps=2, n=8)
    b = api.WorkloadSpec.of("stencil", n=8, steps=2)
    assert a == b  # param order never matters
    doc = json.loads(json.dumps(a.as_jsonable()))
    assert api.WorkloadSpec.from_jsonable(doc) == a
    assert api.WorkloadSpec.from_jsonable("fft") == api.WorkloadSpec.of("fft")


def test_machine_spec_accepts_common_shapes():
    for form in ([4, 2], (4, 2), {"width": 4, "height": 2}):
        spec = api.MachineSpec.from_jsonable(form)
        assert (spec.width, spec.height) == (4, 2)
        assert spec.grid() == GridSpec(4, 2)
    with pytest.raises(api.ApiError):
        api.MachineSpec.from_jsonable([0, 2])


def test_fom_spec_weights_are_exact():
    assert api.FomSpec.from_jsonable({"time": 1}).fom() == FigureOfMerit.fastest()
    assert (
        api.FomSpec.from_jsonable({"energy": 1}).fom()
        == FigureOfMerit.lowest_energy()
    )
    assert (
        api.FomSpec.from_jsonable({"time": 1, "energy": 1}).fom()
        == FigureOfMerit.edp()
    )
    with pytest.raises(api.ApiError):
        api.FomSpec.from_jsonable({"speed": 1})
    with pytest.raises(api.ApiError):
        api.FomSpec.from_jsonable({})


# ---------------------------------------------------------------------- #
# the verbs


def test_compile_memoizes_and_validates():
    g1 = api.compile("stencil", n=8)
    g2 = api.compile(api.WorkloadSpec.of("stencil", n=8))
    assert g1 is g2  # same spec -> same compiled graph object
    with pytest.raises(api.ApiError):
        api.compile("no_such_workload")
    with pytest.raises(api.ApiError):
        api.compile("stencil", bogus=1)


def test_evaluate_equals_library_calls():
    g = api.compile("fft", n=16)
    grid = GridSpec(4, 1)
    for mapper, build in (("default", default_mapping), ("serial", serial_mapping)):
        res = api.evaluate("fft", (4, 1), mapper=mapper, check=True, n=16)
        direct = evaluate_cost(g, build(g, grid), grid)
        assert res.cost.cycles == direct.cycles
        assert res.cost.energy_total_fj == direct.energy_total_fj
        assert res.legality is not None and res.legality.ok
    with pytest.raises(api.ApiError):
        api.evaluate("fft", (4, 1), mapper="random", n=16)


def test_search_equals_library_sweep():
    served = api.search("stencil", (4, 1), fom={"time": 1, "energy": 1}, n=10)
    direct = sweep_placements(
        api.compile("stencil", n=10), GridSpec(4, 1), FigureOfMerit.edp()
    )
    assert_search_equivalent(served, direct, context="facade-sweep")
    # anneal and exhaustive return one-row lists
    assert len(api.search("stencil", (2, 1), method="anneal", steps=50, n=6)) == 1
    with pytest.raises(api.ApiError):
        api.search("stencil", (2, 1), method="bogosearch", n=6)


def test_simulate_validates_and_runs():
    stats = api.simulate([[32, 4, None, "L1"]], [("r", a) for a in range(64)])
    assert stats["L1"]["accesses"] == 64
    with pytest.raises(api.ApiError):
        api.simulate([], [("r", 0)])
    with pytest.raises(api.ApiError):
        api.simulate([[32, 4, None, "L1"]], [("x", 0)])


def test_score_accepts_list_and_dict_placements():
    by_list = api.score("matmul", (2, 1), [(0, 0)] * 12, n=2)
    nodes = api.compile("matmul", n=2).compute_nodes()
    by_dict = api.score(
        "matmul", (2, 1), {nid: (0, 0) for nid in nodes}, n=2
    )
    assert by_list.fom == by_dict.fom
    with pytest.raises(api.ApiError):
        api.score("matmul", (2, 1), [(0, 0)], n=2)  # wrong length


def test_register_workload_round_trips():
    api.register_workload("tiny_test_wl", lambda n=2: api.compile("matmul", n=n))
    try:
        assert "tiny_test_wl" in api.workload_names()
        assert api.compile("tiny_test_wl", n=2) is api.compile("matmul", n=2)
    finally:
        api.unregister_workload("tiny_test_wl")
    assert "tiny_test_wl" not in api.workload_names()


# ---------------------------------------------------------------------- #
# the top level


def test_explicit_all_and_version():
    assert repro.__version__ == "1.3.0"
    assert "api" in repro.__all__
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_deprecated_shims_warn_and_still_work():
    for name in ("check_legality", "evaluate_cost", "default_mapping",
                 "serial_mapping"):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            obj = getattr(repro, name)
        assert callable(obj)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught), name
        assert any("repro.api" in str(w.message) for w in caught), name
    # canonical submodule imports never warn
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        from repro.core.cost import evaluate_cost as _ec  # noqa: F401
    assert not caught
    with pytest.raises(AttributeError):
        repro.definitely_not_a_symbol
    assert "check_legality" in dir(repro)
