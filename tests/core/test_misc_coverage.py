"""Coverage for smaller API surfaces not exercised elsewhere."""

import pytest

from repro.core.composition import DataLayout
from repro.core.cost import evaluate_cost
from repro.core.default_mapper import default_mapping
from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec
from repro.core.search import FigureOfMerit, anneal, sweep_placements
from repro.machines.technology import TECH_16NM, TECH_45NM, TECH_5NM, TECH_7NM, TECH_NODES


class TestTechnologyNodes:
    def test_series_ordering(self):
        assert [t.name for t in TECH_NODES] == ["45nm", "16nm", "7nm", "5nm"]

    def test_logic_scales_faster_than_wires(self):
        """The physical trend the series encodes: compute energy falls
        faster than wire energy node over node."""
        for older, newer in zip(TECH_NODES, TECH_NODES[1:]):
            logic_gain = older.add_energy_fj_per_bit / newer.add_energy_fj_per_bit
            wire_gain = (
                older.wire_energy_fj_per_bit_mm / newer.wire_energy_fj_per_bit_mm
            )
            assert logic_gain > wire_gain

    def test_ratio_monotone_across_nodes(self):
        ratios = [t.transport_vs_add_ratio(1.0) for t in TECH_NODES]
        assert ratios == sorted(ratios)

    def test_each_node_self_consistent(self):
        for t in (TECH_45NM, TECH_16NM, TECH_7NM, TECH_5NM):
            assert t.hop_cycles() >= 1
            assert t.offchip_vs_add_ratio() > t.diagonal_vs_add_ratio()


class TestCostOnOtherNodes:
    def test_same_mapping_cheaper_on_newer_node(self):
        """Evaluate one mapped program at two technology points: the newer
        node lowers absolute energy but raises the communication share."""
        g = DataflowGraph()
        a = g.const(1)
        b = g.op("+", a, a)
        c = g.op("copy", b)
        g.mark_output(c, "o")
        costs = {}
        for tech in (TECH_45NM, TECH_5NM):
            grid = GridSpec(4, 1, tech=tech)
            from repro.core.mapping import Mapping

            m = Mapping(g.n_nodes)
            m.set(a, (0, 0), 0)
            m.set(b, (0, 0), 1)
            m.set(c, (3, 0), 2 + grid.transit_cycles((0, 0), (3, 0)))
            costs[tech.name] = evaluate_cost(g, m, grid)
        assert costs["5nm"].energy_total_fj < costs["45nm"].energy_total_fj
        assert (
            costs["5nm"].communication_fraction
            > costs["45nm"].communication_fraction
        )


class TestSearchExtras:
    def _graph(self):
        g = DataflowGraph()
        for i in range(8):
            x = g.input("A", (i,))
            g.mark_output(g.op("*", x, x, index=(i,)), ("o", i))
        return g

    def test_footprint_weighted_fom(self):
        g = self._graph()
        results = sweep_placements(
            g, GridSpec(4, 1), FigureOfMerit(0.0, 0.0, 1.0)
        )
        foms = [r.fom for r in results]
        assert foms == sorted(foms)
        # the footprint-optimal point has the smallest summed footprint
        best = results[0]
        assert best.cost.footprint_words == min(
            r.cost.footprint_words for r in results
        )

    def test_anneal_accepts_initial_mapping(self):
        g = self._graph()
        grid = GridSpec(4, 1)
        start = default_mapping(g, grid)
        res = anneal(g, grid, steps=50, seed=2, initial=start)
        from repro.core.legality import check_legality

        assert check_legality(g, res.mapping, grid).ok

    def test_fom_factories(self):
        assert FigureOfMerit.fastest().time == 1.0
        assert FigureOfMerit.lowest_energy().energy == 1.0
        edp = FigureOfMerit.edp()
        assert edp.time == edp.energy == 1.0


class TestDataLayoutExtras:
    def test_places_materializes(self):
        grid = GridSpec(4, 1)
        lay = DataLayout.blocked(8, 4, grid)
        places = lay.places()
        assert len(places) == 8
        assert places[0] == (0, 0) and places[-1] == (3, 0)

    def test_cyclic_rejects_bad_p(self):
        with pytest.raises(ValueError):
            DataLayout.cyclic(8, 9, GridSpec(4, 1))
