"""Function-level composition: DataflowGraph.splice."""

import pytest

from repro.core.default_mapper import default_mapping
from repro.core.function import DataflowGraph, FunctionError
from repro.core.idioms import build_map, build_reduce
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec
from repro.machines.grid import GridMachine


def square_graph(n):
    g = DataflowGraph()
    for i in range(n):
        x = g.input("x", (i,))
        g.mark_output(g.op("*", x, x, index=(i,)), ("sq", i))
    return g


class TestSplice:
    def test_bound_inputs_wire_through(self):
        # stage 1: y = x + 1; stage 2 (spliced): z = y * y
        g = DataflowGraph()
        x = g.input("x", (0,))
        y = g.op("+", x, g.const(1))
        stage2 = DataflowGraph()
        yin = stage2.input("y", (0,))
        stage2.mark_output(stage2.op("*", yin, yin), "z")
        g.splice(stage2, {("y", (0,)): y})
        out = g.evaluate({"x": {(0,): 4}})
        assert out["z"] == 25

    def test_unbound_inputs_imported(self):
        g = DataflowGraph()
        a = g.input("a", (0,))
        stage2 = DataflowGraph()
        p = stage2.input("a2", (0,))
        q = stage2.input("b", (0,))
        stage2.mark_output(stage2.op("+", p, q), "s")
        g.splice(stage2, {("a2", (0,)): a})
        out = g.evaluate({"a": {(0,): 3}, "b": {(0,): 4}})
        assert out["s"] == 7

    def test_output_prefix_avoids_clashes(self):
        g = square_graph(2)
        g2 = square_graph(2)
        g.splice(g2, {}, output_prefix="second")
        labels = set(g.outputs)
        assert ("sq", 0) in labels and ("second", ("sq", 0)) in labels

    def test_clashing_labels_rejected_without_prefix(self):
        g = square_graph(2)
        with pytest.raises(FunctionError, match="duplicate"):
            g.splice(square_graph(2), {})

    def test_bad_binding_rejected(self):
        g = DataflowGraph()
        s2 = DataflowGraph()
        s2.input("y", (0,))
        with pytest.raises(FunctionError, match="unknown node"):
            g.splice(s2, {("y", (0,)): 99})

    def test_idmap_covers_all_nodes(self):
        g = DataflowGraph()
        s2 = square_graph(3)
        idmap = g.splice(s2, {})
        assert set(idmap) == set(range(s2.n_nodes))


class TestFusedPipeline:
    def test_map_then_reduce_single_graph_on_machine(self):
        """Fuse the map and reduce idioms into ONE graph via splice and run
        the composite end to end — true function composition, then one
        mapping for the whole pipeline."""
        n, p = 16, 4
        grid = GridSpec(4, 1)
        m_idiom = build_map(n, p, grid, "+", 10)
        r_idiom = build_reduce(n, p, grid)

        fused = DataflowGraph()
        idmap1 = fused.splice(m_idiom.graph, {})
        bindings = {
            ("A", (i,)): idmap1[m_idiom.graph.outputs[("out", i)]]
            for i in range(n)
        }
        fused.splice(r_idiom.graph, bindings, output_prefix="stage2")

        mapping = default_mapping(fused, grid)
        assert check_legality(fused, mapping, grid).ok
        res = GridMachine(grid).run(
            fused, mapping, {"A": {(i,): i for i in range(n)}}
        )
        assert res.outputs[("stage2", "reduce")] == sum(i + 10 for i in range(n))
