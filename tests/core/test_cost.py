"""Cost model: energy charging rules and figures of merit."""

import pytest

from repro.core.cost import evaluate_cost
from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping
from repro.machines.technology import TECH_5NM


def mapped_pair(distance_pes: int, grid_width: int = 8):
    """const -> copy with the copy `distance_pes` hops away."""
    g = DataflowGraph()
    a = g.const(1)
    b = g.op("+", a, a)
    g.mark_output(b, "o")
    grid = GridSpec(grid_width, 1)
    m = Mapping(g.n_nodes)
    m.set(a, (0, 0), 0)
    m.set(b, (distance_pes, 0), max(1, grid.transit_cycles((0, 0), (distance_pes, 0))))
    return g, m, grid


class TestEnergyCharging:
    def test_local_use_charges_sram(self):
        g, m, grid = mapped_pair(0)
        c = evaluate_cost(g, m, grid)
        # two operand reads of the same local value
        assert c.energy_local_fj == pytest.approx(2 * TECH_5NM.sram_energy_word_fj())
        assert c.energy_onchip_fj == 0

    def test_remote_use_charges_wire(self):
        g, m, grid = mapped_pair(3)
        c = evaluate_cost(g, m, grid)
        assert c.energy_onchip_fj == pytest.approx(
            2 * TECH_5NM.transport_energy_fj(3.0)
        )

    def test_energy_grows_with_distance(self):
        e = []
        for d in (1, 2, 4):
            g, m, grid = mapped_pair(d)
            e.append(evaluate_cost(g, m, grid).energy_onchip_fj)
        assert e[0] < e[1] < e[2]
        assert e[2] == pytest.approx(4 * e[0])

    def test_offchip_input_charged(self):
        g = DataflowGraph()
        a = g.input("A", (0,))
        b = g.op("copy", a)
        grid = GridSpec(2, 1)
        m = Mapping(g.n_nodes)
        m.set(a, (0, 0), 0, offchip=True)
        m.set(b, (0, 0), grid.tech.offchip_cycles())
        c = evaluate_cost(g, m, grid)
        assert c.energy_offchip_fj == pytest.approx(TECH_5NM.offchip_energy_word_fj())

    def test_compute_energy_by_op_class(self):
        g = DataflowGraph()
        a, b = g.const(2), g.const(3)
        g.op("+", a, b)
        g.op("*", a, b)
        grid = GridSpec(1, 1)
        m = Mapping(g.n_nodes)
        m.set(2, (0, 0), 1)
        m.set(3, (0, 0), 2)
        c = evaluate_cost(g, m, grid)
        add = TECH_5NM.add_energy_word_fj()
        assert c.energy_compute_fj == pytest.approx(add + 4 * add)

    def test_inputs_consts_cost_nothing_to_compute(self):
        g = DataflowGraph()
        g.const(1)
        g.input("A", (0,))
        grid = GridSpec(1, 1)
        c = evaluate_cost(g, Mapping(g.n_nodes), grid)
        assert c.energy_compute_fj == 0
        assert c.n_compute == 0


class TestAggregates:
    def test_cycles_is_makespan(self):
        g, m, grid = mapped_pair(2)
        c = evaluate_cost(g, m, grid)
        assert c.cycles == m.makespan(g)
        assert c.time_ps == pytest.approx(c.cycles * TECH_5NM.cycle_ps)

    def test_communication_fraction(self):
        g, m, grid = mapped_pair(4)
        c = evaluate_cost(g, m, grid)
        assert 0.9 < c.communication_fraction < 1.0  # wire >> one add

    def test_fom_weighted_product(self):
        g, m, grid = mapped_pair(1)
        c = evaluate_cost(g, m, grid)
        assert c.figure_of_merit(1, 0, 0) == pytest.approx(float(c.cycles))
        assert c.figure_of_merit(0, 1, 0) == pytest.approx(c.energy_total_fj)
        assert c.figure_of_merit(1, 1, 0) == pytest.approx(
            c.cycles * c.energy_total_fj
        )

    def test_edp(self):
        g, m, grid = mapped_pair(1)
        c = evaluate_cost(g, m, grid)
        assert c.edp == pytest.approx(c.energy_total_fj * c.time_ps)

    def test_as_dict_complete(self):
        g, m, grid = mapped_pair(1)
        d = evaluate_cost(g, m, grid).as_dict()
        for key in ("cycles", "energy_total_fj", "communication_fraction",
                    "footprint_words", "places_used"):
            assert key in d

    def test_size_mismatch_rejected(self):
        g = DataflowGraph()
        g.const(1)
        with pytest.raises(ValueError):
            evaluate_cost(g, Mapping(5), GridSpec(1, 1))
