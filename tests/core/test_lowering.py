"""Lowering: the mechanical (function, mapping) -> hardware round trip."""

from repro.core.default_mapper import default_mapping, serial_mapping
from repro.core.idioms import build_reduce
from repro.core.lowering import lower
from repro.core.mapping import GridSpec


class TestLowering:
    def _lowered(self, p=4):
        grid = GridSpec(8, 1)
        idiom = build_reduce(16, p, grid)
        return idiom, lower(idiom.graph, idiom.mapping, grid)

    def test_every_compute_node_in_exactly_one_rom(self):
        idiom, spec = self._lowered()
        rom_nodes = [e.node for rom in spec.roms.values() for e in rom]
        assert sorted(rom_nodes) == idiom.graph.compute_nodes()

    def test_rom_entries_time_ordered(self):
        _, spec = self._lowered()
        for rom in spec.roms.values():
            cycles = [e.cycle for e in rom]
            assert cycles == sorted(cycles)

    def test_cross_pe_edges_become_wire_traffic(self):
        idiom, spec = self._lowered()
        cross = sum(
            1
            for u, v in idiom.graph.edges()
            if not idiom.mapping.offchip[u]
            and not idiom.mapping.offchip[v]
            and idiom.mapping.place_of(u) != idiom.mapping.place_of(v)
        )
        assert spec.total_wire_traffic_words == cross

    def test_offchip_words_counted(self):
        idiom, spec = self._lowered()
        offchip_edges = sum(
            1
            for u, v in idiom.graph.edges()
            if idiom.mapping.offchip[u] or idiom.mapping.offchip[v]
        )
        assert spec.offchip_words == offchip_edges

    def test_wire_lengths_match_grid(self):
        _, spec = self._lowered()
        for w in spec.wires:
            assert w.length_mm == abs(w.src[0] - w.dst[0]) + abs(w.src[1] - w.dst[1])

    def test_serial_mapping_uses_one_pe_no_wires(self):
        grid = GridSpec(4, 1)
        idiom = build_reduce(8, 4, grid)
        m = serial_mapping(idiom.graph, grid)
        spec = lower(idiom.graph, m, grid)
        assert spec.n_pes == 1
        assert spec.wires == []

    def test_render_smoke(self):
        _, spec = self._lowered()
        text = spec.render()
        assert "hardware spec" in text
        assert "PE(0, 0)" in text

    def test_json_round_trip(self):
        from repro.core.lowering import HardwareSpec

        _, spec = self._lowered()
        clone = HardwareSpec.from_json(spec.to_json())
        assert clone.roms == spec.roms
        assert clone.wires == spec.wires
        assert clone.offchip_words == spec.offchip_words
        assert clone.grid.tech == spec.grid.tech

    def test_json_round_trip_still_verifies(self):
        """Serialization preserves enough to re-verify the design."""
        from repro.core.lowering import HardwareSpec
        from repro.core.verify import verify_lowering

        idiom, spec = self._lowered()
        clone = HardwareSpec.from_json(spec.to_json())
        res = verify_lowering(idiom.graph, idiom.mapping, clone, clone.grid)
        assert res.ok
