"""Mapping search: sweeps, exhaustive ground truth, annealing."""

import pytest

from repro.core.function import DataflowGraph
from repro.core.idioms import build_reduce
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec
from repro.core.search import (
    FigureOfMerit,
    anneal,
    exhaustive_search,
    sweep_placements,
)


def wide_graph(n=16):
    g = DataflowGraph()
    for i in range(n):
        a = g.input("A", (i,))
        r = g.op("+", a, g.const(1, index=(i,)), index=(i,))
        g.mark_output(r, ("o", i))
    return g


def tiny_graph():
    g = DataflowGraph()
    a = g.input("A", (0,))
    b = g.input("A", (1,))
    s = g.op("+", a, b, index=(0,))
    t = g.op("*", s, s, index=(1,))
    g.mark_output(t, "o")
    return g


class TestSweep:
    def test_all_points_legal(self):
        g = wide_graph()
        grid = GridSpec(8, 1)
        for r in sweep_placements(g, grid):
            assert check_legality(g, r.mapping, grid).ok, r.label

    def test_sorted_by_fom(self):
        g = wide_graph()
        results = sweep_placements(g, GridSpec(8, 1))
        foms = [r.fom for r in results]
        assert foms == sorted(foms)

    def test_covers_serial_and_parallel(self):
        g = wide_graph()
        labels = {r.label for r in sweep_placements(g, GridSpec(8, 1))}
        assert "serial" in labels
        assert "block-p8" in labels and "cyclic-p2" in labels

    def test_parallel_beats_serial_for_wide_graph(self):
        g = wide_graph(32)
        results = sweep_placements(g, GridSpec(8, 1), FigureOfMerit.fastest())
        best = results[0]
        serial = next(r for r in results if r.label == "serial")
        assert best.cost.cycles < serial.cost.cycles

    def test_serial_wins_on_energy_for_local_chain(self):
        """A fully serial dependence chain gains nothing from spreading out,
        and spreading pays wire energy — the energy FoM must prefer fewer
        places."""
        g = DataflowGraph()
        acc = g.input("A", (0,))
        for i in range(12):
            acc = g.op("+", acc, g.const(1, index=(i,)), index=(i,))
        g.mark_output(acc, "o")
        results = sweep_placements(g, GridSpec(8, 1), FigureOfMerit.lowest_energy())
        assert results[0].cost.places_used == 1

    def test_metrics_tuple(self):
        g = wide_graph(4)
        r = sweep_placements(g, GridSpec(2, 1))[0]
        t, e, f = r.metrics()
        assert t == r.cost.cycles and e == r.cost.energy_total_fj

    def test_2d_block_offered_for_2d_graphs(self):
        from repro.algorithms.edit_distance import edit_distance_graph

        g = edit_distance_graph(8, 8)
        labels = {r.label for r in sweep_placements(g, GridSpec(4, 4))}
        assert "block-2d" in labels

    def test_2d_block_absent_without_rows_or_2d_indices(self):
        g = wide_graph(8)  # 1-D indices
        labels = {r.label for r in sweep_placements(g, GridSpec(4, 4))}
        assert "block-2d" not in labels
        from repro.algorithms.edit_distance import edit_distance_graph

        g2 = edit_distance_graph(8, 8)
        labels2 = {r.label for r in sweep_placements(g2, GridSpec(8, 1))}
        assert "block-2d" not in labels2

    def test_2d_block_legal_and_fastest_on_matmul(self):
        """1-D placements of an n x n computation can only use n PEs of an
        n x n grid (they block index[0] alone); the 2-D placement uses all
        n^2 and wins the sweep outright."""
        from repro.algorithms.matmul_fm import matmul_graph
        from repro.core.legality import check_legality

        g = matmul_graph(4, systolic=False)
        grid = GridSpec(4, 4)
        results = sweep_placements(g, grid, FigureOfMerit.fastest())
        assert results[0].label == "block-2d"
        assert check_legality(g, results[0].mapping, grid).ok
        assert results[0].cost.places_used > 4  # beyond any 1-D placement


class TestExhaustive:
    def test_matches_or_beats_sweep_on_tiny_graph(self):
        g = tiny_graph()
        grid = GridSpec(2, 1)
        fom = FigureOfMerit.fastest()
        best = exhaustive_search(g, grid, fom)
        swept = sweep_placements(g, grid, fom)[0]
        assert best.fom <= swept.fom

    def test_refuses_big_spaces(self):
        g = wide_graph(16)
        with pytest.raises(ValueError, match="exceeds"):
            exhaustive_search(g, GridSpec(4, 4), max_points=100)

    def test_result_legal(self):
        g = tiny_graph()
        grid = GridSpec(2, 1)
        best = exhaustive_search(g, grid)
        assert check_legality(g, best.mapping, grid).ok


class TestAnneal:
    def test_legal_and_reproducible(self):
        idiom = build_reduce(16, 4, GridSpec(4, 1))
        grid = GridSpec(4, 1)
        a = anneal(idiom.graph, grid, steps=150, seed=3)
        b = anneal(idiom.graph, grid, steps=150, seed=3)
        assert a.fom == b.fom
        assert check_legality(idiom.graph, a.mapping, grid).ok

    def test_never_worse_than_default_start(self):
        g = wide_graph(8)
        grid = GridSpec(4, 1)
        fom = FigureOfMerit.edp()
        from repro.core.cost import evaluate_cost
        from repro.core.default_mapper import default_mapping

        start = fom(evaluate_cost(g, default_mapping(g, grid), grid))
        best = anneal(g, grid, fom, steps=200, seed=0)
        assert best.fom <= start * 1.05  # annealing keeps the best seen

    def test_empty_graph(self):
        g = DataflowGraph()
        r = anneal(g, GridSpec(2, 1), steps=10)
        assert r.cost.cycles == 0


class TestDeterminism:
    """Search outcomes are properties of the space, never of evaluation
    order: ties break by label (sweep) or lexicographic assignment
    (exhaustive), and annealing is a pure function of its integer seed."""

    def test_exhaustive_tie_break_is_smallest_assignment(self):
        # a single compute node on a 2x1 grid: both placements cost the
        # same under the time FoM, so the tie must go to assignment [0].
        g = DataflowGraph()
        a = g.input("A", (0,))
        r = g.op("+", a, g.const(1, index=(0,)), index=(0,))
        g.mark_output(r, "o")
        best = exhaustive_search(g, GridSpec(2, 1), FigureOfMerit.fastest())
        assert best.label == "exhaustive[0]"

    def test_exhaustive_winner_is_stable_across_runs(self):
        g = tiny_graph()
        grid = GridSpec(2, 2)
        runs = [exhaustive_search(g, grid) for _ in range(3)]
        assert len({r.label for r in runs}) == 1
        assert len({r.fom for r in runs}) == 1

    def test_sweep_order_breaks_fom_ties_by_label(self):
        g = wide_graph(12)
        results = sweep_placements(g, GridSpec(8, 1))
        keys = [(r.fom, r.label) for r in results]
        assert keys == sorted(keys)

    def test_anneal_rejects_non_integer_seeds(self):
        g = tiny_graph()
        for bad in (None, 1.5, "7", True):
            with pytest.raises(TypeError, match="seed"):
                anneal(g, GridSpec(2, 1), steps=5, seed=bad)

    def test_anneal_does_not_touch_global_rng(self):
        import numpy as np

        np.random.seed(1234)
        before = np.random.get_state()[1].copy()
        anneal(tiny_graph(), GridSpec(2, 1), steps=20, seed=9)
        assert (np.random.get_state()[1] == before).all()

    def test_anneal_trajectory_is_seed_function(self):
        g = wide_graph(8)
        grid = GridSpec(4, 1)
        a = anneal(g, grid, steps=100, seed=21)
        b = anneal(g, grid, steps=100, seed=21)
        assert a.fom == b.fom
        assert a.mapping.fingerprint() == b.mapping.fingerprint()
