"""Recomputation instead of communication."""

import pytest

from repro.core.cost import evaluate_cost
from repro.core.default_mapper import schedule_asap
from repro.core.function import DataflowGraph
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec, Mapping
from repro.core.recompute import auto_rematerialize, edge_transport_fj, rematerialize
from repro.machines.grid import GridMachine


def far_consumer_graph():
    """a+b computed at PE0, consumed twice at the far end of the row."""
    g = DataflowGraph()
    a = g.const(5)
    b = g.const(7)
    s = g.op("+", a, b)          # will sit at PE 0
    u1 = g.op("*", s, s)         # far away
    u2 = g.op("+", s, s)         # far away
    g.mark_output(u1, "sq")
    g.mark_output(u2, "dbl")
    return g, (a, b, s, u1, u2)


def far_mapping(g, nodes, grid):
    a, b, s, u1, u2 = nodes
    place = {a: (7, 0), b: (7, 0), s: (0, 0), u1: (7, 0), u2: (7, 0)}
    return schedule_asap(g, grid, lambda nid: place.get(nid, (0, 0)),
                         inputs_offchip=False)


class TestRematerializeOne:
    def test_clone_preserves_semantics(self):
        g, nodes = far_consumer_graph()
        a, b, s, u1, u2 = nodes
        g2, idmap = rematerialize(g, Mapping(g.n_nodes), s, u1)
        assert g2.evaluate({})["sq"] == 144
        assert g2.evaluate({})["dbl"] == 24
        # the original node still feeds the other consumer
        assert s in g2.args[u2]
        assert idmap[s] not in g2.args[u2]

    def test_only_operands_can_be_rematerialized(self):
        g, nodes = far_consumer_graph()
        a, b, s, u1, u2 = nodes
        with pytest.raises(ValueError, match="not an operand"):
            rematerialize(g, Mapping(g.n_nodes), u1, u2)

    def test_inputs_cannot_be_rematerialized(self):
        g = DataflowGraph()
        x = g.input("X", (0,))
        y = g.op("copy", x)
        with pytest.raises(ValueError, match="only computed values"):
            rematerialize(g, Mapping(g.n_nodes), x, y)


class TestAutoRemat:
    def test_moves_computation_to_data(self):
        """The compute-at-the-remote-point transformation (claim C6's
        mechanism): s's operands live at PE7, its consumers live at PE7,
        but s was mapped at PE0 — recomputing s at PE7 kills two 7-hop
        wires."""
        g, nodes = far_consumer_graph()
        grid = GridSpec(8, 1)
        m = far_mapping(g, nodes, grid)
        before = evaluate_cost(g, m, grid).energy_total_fj
        res = auto_rematerialize(g, m, grid)
        assert res.clones_made >= 1
        assert res.energy_after_fj < before
        assert res.energy_saved_fj > 0

    def test_result_legal_and_correct(self):
        g, nodes = far_consumer_graph()
        grid = GridSpec(8, 1)
        m = far_mapping(g, nodes, grid)
        res = auto_rematerialize(g, m, grid)
        assert check_legality(res.graph, res.mapping, grid).ok
        out = GridMachine(grid).run(res.graph, res.mapping, {})
        assert out.outputs["sq"] == 144 and out.outputs["dbl"] == 24

    def test_noop_when_everything_local(self):
        g = DataflowGraph()
        a = g.const(1)
        b = g.op("+", a, a)
        g.mark_output(b, "o")
        grid = GridSpec(2, 1)
        m = schedule_asap(g, grid, lambda nid: (0, 0), inputs_offchip=False)
        res = auto_rematerialize(g, m, grid)
        assert res.clones_made == 0
        assert res.energy_saved_fj == 0

    def test_does_not_chase_offchip_operands(self):
        """Recomputing is pointless when the operands are off-chip: hauling
        them again costs more than the wire it saves."""
        g = DataflowGraph()
        x = g.input("X", (0,))
        s = g.op("+", x, x)
        far = g.op("*", s, s)
        g.mark_output(far, "o")
        grid = GridSpec(8, 1)
        place = {s: (0, 0), far: (2, 0)}
        m = schedule_asap(g, grid, lambda nid: place.get(nid, (0, 0)))
        res = auto_rematerialize(g, m, grid)
        # cloning s at PE2 would haul X off-chip again (800k fJ) to save a
        # 2 mm wire (5k fJ): must not happen
        assert res.clones_made == 0


class TestEdgeTransport:
    def test_matches_cost_model_conventions(self):
        g, nodes = far_consumer_graph()
        grid = GridSpec(8, 1)
        m = far_mapping(g, nodes, grid)
        a, b, s, u1, u2 = nodes
        e = edge_transport_fj(m, grid, s, u1)
        assert e == pytest.approx(grid.tech.transport_energy_fj(7.0))
        e_local = edge_transport_fj(m, grid, a, s)
        assert e_local == pytest.approx(grid.tech.transport_energy_fj(7.0))
