"""The F&M DSL: lexing, parsing, elaboration, mapping clauses."""

import numpy as np
import pytest

from repro.algorithms.edit_distance import paper_table
from repro.core.dsl import (
    PAPER_EXAMPLE,
    DslError,
    compile_program,
    tokenize,
)
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec
from repro.machines.grid import GridMachine


class TestLexer:
    def test_tokens_and_comments(self):
        toks = tokenize("param N = 8  # eight\nforall i in (0:N-1) A(i) = 1")
        kinds = [t.kind for t in toks]
        assert "kw" in kinds and "num" in kinds and "op" in kinds
        assert all(t.text != "# eight" for t in toks)

    def test_keywords_case_insensitive(self):
        toks = tokenize("Forall MAP Param")
        assert [t.kind for t in toks] == ["kw", "kw", "kw"]

    def test_bad_character(self):
        with pytest.raises(DslError, match="cannot tokenize"):
            tokenize("param N = @")

    def test_line_numbers(self):
        toks = tokenize("param N = 1\nparam M = 2")
        assert toks[0].line == 1
        assert toks[-1].line == 2


class TestParserErrors:
    @pytest.mark.parametrize(
        "src,msg",
        [
            ("forall i in (0:3) B(j) = 1", "must match the loop"),
            ("forall i in (0:3, 0:3) A(i) = 1", "loop variables but"),
            ("blah", "expected a declaration"),
            ("param N", "expected"),
            ("forall i in (0:3) A(i) = frob(i)", "undefined tensor"),
            ("map A(i) at i", "unexpected end"),
        ],
    )
    def test_rejects(self, src, msg):
        with pytest.raises(DslError, match=msg):
            compile_program(src)

    def test_duplicate_map(self):
        src = """
        forall i in (0:3) A(i) = 1
        map A(i) at 0 time i
        map A(i) at 1 time i
        """
        with pytest.raises(DslError, match="duplicate map"):
            compile_program(src)

    def test_tensor_redefinition(self):
        src = "forall i in (0:1) A(i) = 1\nforall i in (0:1) A(i) = 2"
        with pytest.raises(DslError, match="redefined"):
            compile_program(src)

    def test_forward_reference_rejected(self):
        src = "forall i in (0:3) A(i) = A(i+1)"
        with pytest.raises(DslError, match="referenced before definition"):
            compile_program(src)

    def test_empty_range(self):
        with pytest.raises(DslError, match="empty range"):
            compile_program("forall i in (3:1) A(i) = 1")


class TestElaboration:
    def test_prefix_sum_program(self):
        src = """
        param N = 8
        input X[N]
        forall i in (0:N-1)  S(i) = S(i-1) + X[i]
        map S(i) at 0 time i
        """
        prog = compile_program(src)
        out = prog.graph.evaluate({"X": lambda i: i + 1})
        assert [out[("S", i)] for i in range(8)] == list(
            np.cumsum(range(1, 9))
        )

    def test_boundary_value(self):
        src = """
        boundary S = 100
        forall i in (0:3) S(i) = min(S(i-1), 7)
        map S(i) at 0 time i
        """
        prog = compile_program(src)
        out = prog.graph.evaluate({})
        assert out[("S", 0)] == 7  # min(100, 7)

    def test_params_overridable(self):
        src = "param N = 4\nforall i in (0:N-1) A(i) = i\nmap A(i) at 0 time i"
        small = compile_program(src)
        big = compile_program(src, {"N": 16})
        assert len(small.elements) == 4
        assert len(big.elements) == 16

    def test_builtins(self):
        src = """
        forall i in (0:5)
          A(i) = select(eq(i % 2, 0), abs(0 - i), max(i, 3))
        map A(i) at 0 time i
        """
        prog = compile_program(src)
        out = prog.graph.evaluate({})
        for i in range(6):
            want = abs(-i) if i % 2 == 0 else max(i, 3)
            assert out[("A", i)] == want

    def test_two_tensors_chain(self):
        src = """
        param N = 4
        input X[N]
        forall i in (0:N-1) A(i) = X[i] * 2
        forall i in (0:N-1) B(i) = A(i) + 1
        map A(i) at 0 time i
        map B(i) at 0 time N + i
        """
        prog = compile_program(src)
        out = prog.graph.evaluate({"X": lambda i: i})
        assert [out[("B", i)] for i in range(4)] == [1, 3, 5, 7]

    def test_matmul_as_3d_recurrence(self, rng):
        """C(i,j) = sum_k A[i,k]*B[k,j] via a k-recurrence — the language
        is not edit-distance-specific."""
        src = """
        param N = 4
        input A[N, N]
        input B[N, N]
        boundary ACC = 0
        forall i, j, k in (0:N-1, 0:N-1, 0:N-1)
          ACC(i, j, k) = ACC(i, j, k-1) + A[i, k] * B[k, j]
        map ACC(i, j, k) at i, j time k
        """
        prog = compile_program(src)
        n = 4
        a = rng.integers(0, 9, size=(n, n))
        b = rng.integers(0, 9, size=(n, n))
        out = prog.graph.evaluate({
            "A": {(i, k): int(a[i, k]) for i in range(n) for k in range(n)},
            "B": {(k, j): int(b[k, j]) for k in range(n) for j in range(n)},
        })
        want = a @ b
        for i in range(n):
            for j in range(n):
                assert out[("ACC", i, j, n - 1)] == want[i, j]

    def test_matmul_mapping_runs_on_grid(self, rng):
        src = """
        param N = 3
        input A[N, N]
        input B[N, N]
        boundary ACC = 0
        forall i, j, k in (0:N-1, 0:N-1, 0:N-1)
          ACC(i, j, k) = ACC(i, j, k-1) + A[i, k] * B[k, j]
        # skew by 2*(i+j): operands staged at the array edge need i+j hops
        # (4 cycles each) to reach PE (i, j); the cell scale is 2 ops
        map ACC(i, j, k) at i, j time k + 2 * (i + j)
        """
        prog = compile_program(src)
        grid = GridSpec(3, 3)
        m = prog.build_mapping(grid, inputs_offchip=False)
        rep = check_legality(prog.graph, m, grid)
        assert rep.ok, [str(v) for v in rep.violations[:3]]
        n = 3
        a = rng.integers(0, 5, size=(n, n))
        b = rng.integers(0, 5, size=(n, n))
        res = GridMachine(grid).run(prog.graph, m, {
            "A": {(i, k): int(a[i, k]) for i in range(n) for k in range(n)},
            "B": {(k, j): int(b[k, j]) for k in range(n) for j in range(n)},
        })
        want = a @ b
        for i in range(n):
            for j in range(n):
                assert res.outputs[("ACC", i, j, n - 1)] == want[i, j]

    def test_input_bounds_checked(self):
        src = "param N = 2\ninput X[N]\nforall i in (0:3) A(i) = X[i]\nmap A(i) at 0 time i"
        with pytest.raises(DslError, match="out of bounds"):
            compile_program(src)

    def test_element_lookup(self):
        prog = compile_program(
            "forall i in (0:3) A(i) = i\nmap A(i) at 0 time i"
        )
        assert prog.element("A", 2) == prog.elements[("A", (2,))]
        with pytest.raises(KeyError):
            prog.element("A", 9)


class TestPaperExample:
    def test_compiles_and_matches_reference(self, rng):
        n = 8
        prog = compile_program(PAPER_EXAMPLE, {"N": n, "P": 4})
        R = rng.integers(0, 3, size=n).tolist()
        Q = rng.integers(0, 3, size=n).tolist()
        out = prog.graph.evaluate(
            {"R": {(i,): R[i] for i in range(n)},
             "Q": {(j,): Q[j] for j in range(n)}}
        )
        tab = paper_table(R, Q)
        assert all(
            out[("H", i, j)] == tab[i, j] for i in range(n) for j in range(n)
        )

    def test_literal_map_clause_rejected(self):
        prog = compile_program(PAPER_EXAMPLE, {"N": 8, "P": 4})
        grid = GridSpec(4, 1)
        m = prog.build_mapping(grid)
        rep = check_legality(prog.graph, m, grid)
        assert not rep.ok
        assert rep.by_kind("causality")

    def test_skewed_clause_legal_and_verified(self, rng):
        n = 32
        skewed = PAPER_EXAMPLE.replace(
            "map H(i, j) at i % P  time floor(i / P) * N + j",
            "map H(i, j) at i % P  time floor(i / P) * N + 2 * (i % P) + j",
        )
        prog = compile_program(skewed, {"N": n, "P": 4})
        grid = GridSpec(4, 1)
        m = prog.build_mapping(grid, inputs_offchip=False)
        assert check_legality(prog.graph, m, grid).ok
        R = rng.integers(0, 3, size=n).tolist()
        Q = rng.integers(0, 3, size=n).tolist()
        res = GridMachine(grid).run(
            prog.graph, m,
            {"R": {(i,): R[i] for i in range(n)},
             "Q": {(j,): Q[j] for j in range(n)}},
        )
        tab = paper_table(R, Q)
        assert res.outputs[("H", n - 1, n - 1)] == tab[n - 1, n - 1]


class TestMappingClauses:
    def test_2d_place(self):
        src = """
        param P = 2
        forall i, j in (0:3, 0:3) A(i, j) = i + j
        map A(i, j) at i % P, j % P time (i / P) * 4 + j
        """
        prog = compile_program(src)
        m = prog.build_mapping(GridSpec(2, 2))
        nid = prog.element("A", 3, 2)
        assert m.place_of(nid) == (1, 0)

    def test_unmapped_tensor_rejected(self):
        prog = compile_program("forall i in (0:3) A(i) = i")
        with pytest.raises(DslError, match="no map clause"):
            prog.build_mapping(GridSpec(1, 1))

    def test_cell_cycles_scaling(self):
        """Multi-op cells scale the time axis so occupancy is legal."""
        src = """
        param N = 8
        input X[N]
        forall i in (0:N-1) A(i) = min(X[i] + 1, X[i] * 2, 9)
        map A(i) at 0 time i
        """
        prog = compile_program(src)
        cc = prog.cell_cycles("A")
        assert cc >= 2  # several primitive ops per element
        grid = GridSpec(1, 1)
        m = prog.build_mapping(grid, inputs_offchip=False)
        rep = check_legality(prog.graph, m, grid)
        assert not rep.by_kind("occupancy")

    def test_mapping_legal_for_local_chain(self):
        src = """
        param N = 16
        input X[N]
        forall i in (0:N-1) S(i) = S(i-1) + X[i]
        map S(i) at 0 time i
        """
        prog = compile_program(src)
        grid = GridSpec(1, 1)
        m = prog.build_mapping(grid, inputs_offchip=False)
        assert check_legality(prog.graph, m, grid).ok
