"""Module composition: layout alignment and remapping cost."""

import pytest

from repro.core.composition import DataLayout, compose, remap_cost
from repro.core.mapping import GridSpec
from repro.machines.technology import TECH_5NM


@pytest.fixture
def grid():
    return GridSpec(8, 1)


class TestLayouts:
    def test_blocked(self, grid):
        lay = DataLayout.blocked(16, 4, grid)
        assert lay.place_of(0) == (0, 0)
        assert lay.place_of(15) == (3, 0)

    def test_cyclic(self, grid):
        lay = DataLayout.cyclic(16, 4, grid)
        assert lay.place_of(0) == (0, 0)
        assert lay.place_of(5) == (1, 0)

    def test_single(self):
        lay = DataLayout.single(8, (2, 0))
        assert all(lay.place_of(i) == (2, 0) for i in range(8))

    def test_alignment(self, grid):
        a = DataLayout.blocked(16, 4, grid)
        b = DataLayout.blocked(16, 4, grid)
        c = DataLayout.cyclic(16, 4, grid)
        assert a.aligned_with(b)
        assert not a.aligned_with(c)

    def test_alignment_needs_same_length(self, grid):
        a = DataLayout.blocked(16, 4, grid)
        b = DataLayout.blocked(8, 4, grid)
        assert not a.aligned_with(b)


class TestRemapCost:
    def test_identity_remap_free(self, grid):
        a = DataLayout.blocked(16, 4, grid)
        r = remap_cost(a, a, grid)
        assert r.is_noop and r.energy_fj == 0 and r.cycles == 0

    def test_blocked_to_cyclic_moves_most_elements(self, grid):
        a = DataLayout.blocked(16, 4, grid)
        b = DataLayout.cyclic(16, 4, grid)
        r = remap_cost(a, b, grid)
        assert r.moved > 8
        assert r.energy_fj > 0

    def test_energy_matches_manhattan_sum(self, grid):
        a = DataLayout.single(4, (0, 0))
        b = DataLayout.single(4, (3, 0))
        r = remap_cost(a, b, grid)
        assert r.energy_fj == pytest.approx(4 * TECH_5NM.transport_energy_fj(3.0))
        assert r.moved == 4

    def test_ingress_serialization_counted(self, grid):
        """Four words converging on one PE serialize on its port."""
        a = DataLayout.cyclic(4, 4, grid)
        b = DataLayout.single(4, (0, 0))
        r = remap_cost(a, b, grid)
        # 3 movers (element 0 already home), flight of farthest = 12 cycles,
        # plus 2 extra serialization cycles
        assert r.cycles >= 12 + 2

    def test_length_mismatch(self, grid):
        with pytest.raises(ValueError):
            remap_cost(DataLayout.single(4), DataLayout.single(5), grid)


class TestCompose:
    def test_aligned_composition_free(self, grid):
        a = DataLayout.blocked(16, 4, grid, "A.out")
        b = DataLayout.blocked(16, 4, grid, "B.in")
        c = compose(a, b, grid)
        assert c.aligned and c.remap is None
        assert c.remap_energy_fj == 0 and c.remap_cycles == 0

    def test_misaligned_inserts_remap(self, grid):
        a = DataLayout.blocked(16, 4, grid, "A.out")
        b = DataLayout.cyclic(16, 4, grid, "B.in")
        c = compose(a, b, grid)
        assert not c.aligned and c.remap is not None
        assert c.remap_energy_fj > 0
        assert c.a_name == "A.out" and c.b_name == "B.in"
