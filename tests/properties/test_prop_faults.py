"""Property tests for the fault-injection subsystem.

Two properties the whole chaos layer stands on:

1. A :class:`FaultPlan` is a pure function of its seed — the same seed
   always yields the identical fault schedule, whatever the query order.
2. Worker faults plus retries never change search results: a faulted
   parallel sweep is bit-identical to ``SearchEngine.reference()``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.edit_distance import edit_distance_graph
from repro.core.mapping import GridSpec
from repro.core.search import SearchEngine, sweep_placements
from repro.faults import FaultPlan, FaultSpec, injection
from repro.testing import assert_search_equivalent

GRAPH = edit_distance_graph(3)
GRID = GridSpec(2, 1)
REFERENCE = sweep_placements(GRAPH, GRID, engine=SearchEngine.reference())

prob = st.floats(0.0, 1.0, allow_nan=False, width=32)


@given(
    seed=st.integers(0, 2**63 - 1),
    pe=prob,
    link=prob,
    flip=prob,
)
@settings(max_examples=50, deadline=None)
def test_same_seed_identical_schedule(seed, pe, link, flip):
    spec = FaultSpec(pe_fail=pe, link_down=link, bitflip=flip,
                     worker_crash=0.5, executor_fail=0.5)
    a = FaultPlan(seed, spec).schedule(5, 3, 30, 10, 60)
    b = FaultPlan(seed, spec).schedule(5, 3, 30, 10, 60)
    assert a == b


@given(seed=st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_plan_queries_are_pure(seed):
    spec = FaultSpec(pe_fail=0.4, link_down=0.3, bitflip=0.2)
    plan = FaultPlan(seed, spec)
    assert plan.dead_pes(4, 4) == plan.dead_pes(4, 4)
    assert plan.dead_links(4, 4) == plan.dead_links(4, 4)
    assert [plan.bitflip(n) for n in range(20)] == [
        plan.bitflip(n) for n in range(20)
    ]


@given(
    seed=st.integers(0, 1000),
    crash=st.floats(0.0, 0.5, allow_nan=False),
    poison=st.floats(0.0, 0.5, allow_nan=False),
)
@settings(max_examples=5, deadline=None)
def test_worker_faults_never_change_results(seed, crash, poison):
    """Crashed/poisoned workers are retried (or run in-process); the
    merged result must stay bit-identical to the reference engine."""
    spec = FaultSpec(worker_crash=crash, worker_poison=poison)
    engine = SearchEngine(
        parallel=True, n_workers=2, task_timeout_s=30.0,
        max_retries=2, retry_backoff_s=0.01,
    )
    with injection(FaultPlan(seed, spec)) as inj:
        rows = sweep_placements(GRAPH, GRID, engine=engine)
    assert_search_equivalent(rows, REFERENCE, context=f"chaos seed={seed}")
    assert inj.n_recovered == inj.n_injected  # every fault recovered
