"""Property-based tests: algorithm correctness against oracles."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.edit_distance import levenshtein, wavefront_pram
from repro.algorithms.fft import fft_iterative, fft_recursive_dif, fft_recursive_dit
from repro.algorithms.matmul import matmul_blocked, matmul_recursive
from repro.algorithms.scan import (
    blelloch_scan_pram,
    hillis_steele_scan_pram,
    scan_fork_join,
    segmented_scan,
)
from repro.algorithms.sort import mergesort_fork_join, sample_sort

ints = st.integers(min_value=-1000, max_value=1000)
pow2_sizes = st.sampled_from([1, 2, 4, 8, 16, 32, 64])


class TestScanProperties:
    @given(st.lists(ints, min_size=1, max_size=64))
    def test_fork_join_scan_matches_cumsum(self, vals):
        assert scan_fork_join(vals).value == np.cumsum(vals).tolist()

    @given(pow2_sizes, st.integers(0, 2**32 - 1))
    def test_pram_scans_agree(self, n, seed):
        vals = np.random.default_rng(seed).integers(-99, 99, size=n)
        a, _ = blelloch_scan_pram(vals)
        if n >= 2:
            b, _ = hillis_steele_scan_pram(vals)
            assert np.array_equal(a, b)
        assert np.array_equal(a, np.cumsum(vals))

    @given(st.lists(st.tuples(ints, st.booleans()), min_size=1, max_size=50))
    def test_segmented_scan_segment_independence(self, pairs):
        """Each segment's scan equals a plain scan of that segment."""
        vals = [p[0] for p in pairs]
        flags = [1 if (i == 0 or p[1]) else 0 for i, p in enumerate(pairs)]
        out = segmented_scan(vals, flags)
        # split manually and compare
        start = 0
        for i in range(1, len(vals) + 1):
            if i == len(vals) or flags[i]:
                seg = vals[start:i]
                assert out[start:i].tolist() == np.cumsum(seg).tolist()
                start = i


class TestSortProperties:
    @given(st.lists(ints, max_size=100))
    def test_mergesort_is_sorted_permutation(self, vals):
        out = mergesort_fork_join(vals).value
        assert out == sorted(vals)

    @given(st.lists(ints, max_size=100), st.integers(1, 8))
    def test_sample_sort_matches_numpy(self, vals, p):
        out, stats = sample_sort(np.array(vals, dtype=np.int64), p)
        assert np.array_equal(out, np.sort(vals))
        assert sum(stats.bucket_sizes) == len(vals)

    @given(st.lists(ints, min_size=2, max_size=64))
    def test_mergesort_span_never_exceeds_work(self, vals):
        res = mergesort_fork_join(vals)
        assert res.span <= res.work


class TestFftProperties:
    @given(pow2_sizes, st.integers(0, 2**32 - 1))
    @settings(max_examples=30)
    def test_all_variants_agree_with_numpy(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        want = np.fft.fft(x)
        assert np.allclose(fft_recursive_dit(x), want)
        assert np.allclose(fft_recursive_dif(x), want)
        assert np.allclose(fft_iterative(x), want)

    @given(pow2_sizes, st.integers(0, 2**32 - 1))
    @settings(max_examples=20)
    def test_linearity(self, n, seed):
        rng = np.random.default_rng(seed)
        x, y = rng.normal(size=n), rng.normal(size=n)
        assert np.allclose(
            fft_iterative(x + 2 * y),
            fft_iterative(x) + 2 * fft_iterative(y),
        )


class TestMatmulProperties:
    @given(
        st.sampled_from([1, 2, 4, 8]),
        st.integers(1, 8),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=25)
    def test_blocked_and_recursive_match(self, n, bs, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-9, 9, size=(n, n))
        b = rng.integers(-9, 9, size=(n, n))
        want = a @ b
        assert np.array_equal(matmul_blocked(a, b, bs), want)
        assert np.array_equal(matmul_recursive(a, b, cutoff=max(1, bs)), want)


class TestEditDistanceProperties:
    @given(
        st.lists(st.integers(0, 3), min_size=1, max_size=12),
        st.lists(st.integers(0, 3), min_size=1, max_size=12),
    )
    @settings(max_examples=40)
    def test_wavefront_matches_serial(self, a, b):
        assert wavefront_pram(a, b)[0] == levenshtein(a, b)[0]

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=12))
    def test_identity_distance_zero(self, a):
        assert levenshtein(a, a)[0] == 0

    @given(
        st.lists(st.integers(0, 3), min_size=1, max_size=10),
        st.lists(st.integers(0, 3), min_size=1, max_size=10),
    )
    @settings(max_examples=40)
    def test_triangle_inequality_with_lengths(self, a, b):
        d = levenshtein(a, b)[0]
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))
