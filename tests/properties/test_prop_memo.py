"""Property tests for the memoization layer's soundness.

A content-addressed cache is only as safe as its keys: the properties
here pin down (1) fingerprints are deterministic functions of content and
change under any mutation, (2) the cached cost path returns exactly what
the uncached path computes, (3) the fast scheduler twin and the
incremental edge-energy accounting are bit-identical to their reference
counterparts under arbitrary random placements and move sequences.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import IncrementalEdgeEnergy, evaluate_cost, evaluate_cost_cached
from repro.core.default_mapper import schedule_asap, schedule_asap_fast
from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping
from repro.core.memo import MemoCache, fingerprint_bytes

GRID = GridSpec(4, 2)


def random_graph(rng: np.random.Generator, n_inputs: int, n_ops: int) -> DataflowGraph:
    """A random DAG: ops draw operands from earlier nodes only."""
    g = DataflowGraph()
    nodes = [g.input("A", (i,)) for i in range(n_inputs)]
    for k in range(n_ops):
        op = ("+", "*", "min", "max")[int(rng.integers(4))]
        a = nodes[int(rng.integers(len(nodes)))]
        b = nodes[int(rng.integers(len(nodes)))]
        nodes.append(g.op(op, a, b, index=(k,)))
    g.mark_output(nodes[-1], "out")
    return g


def random_placement(rng: np.random.Generator, graph: DataflowGraph) -> dict:
    return {
        nid: (int(rng.integers(GRID.width)), int(rng.integers(GRID.height)))
        for nid in graph.compute_nodes()
    }


class TestFingerprintSoundness:
    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_same_construction_same_graph_fingerprint(self, seed, n_in, n_ops):
        g1 = random_graph(np.random.default_rng(seed), n_in, n_ops)
        g2 = random_graph(np.random.default_rng(seed), n_in, n_ops)
        assert g1.fingerprint() == g2.fingerprint()

    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_graph_mutation_changes_fingerprint(self, seed, n_in, n_ops):
        rng = np.random.default_rng(seed)
        g = random_graph(rng, n_in, n_ops)
        before = g.fingerprint()
        extra = g.op("+", 0, 0, index=(99,))
        assert g.fingerprint() != before
        g.mark_output(extra, "extra")
        # outputs are part of the function's identity too
        assert g.fingerprint() != before

    @given(st.integers(0, 10_000), st.integers(2, 20))
    @settings(max_examples=60, deadline=None)
    def test_mapping_mutation_changes_fingerprint(self, seed, n):
        rng = np.random.default_rng(seed)
        m = Mapping(n)
        for nid in range(n):
            m.set(
                nid,
                (int(rng.integers(4)), int(rng.integers(2))),
                int(rng.integers(50)),
                offchip=bool(rng.integers(2)),
            )
        before = m.fingerprint()
        assert m.copy().fingerprint() == before  # content, not identity
        victim = int(rng.integers(n))
        field = ("x", "y", "time", "offchip")[int(rng.integers(4))]
        arr = getattr(m, field)
        arr[victim] = (not arr[victim]) if field == "offchip" else arr[victim] + 1
        assert m.fingerprint() != before

    def test_fingerprint_bytes_separates_chunk_boundaries(self):
        # (b"ab", b"c") must not collide with (b"a", b"bc")
        assert fingerprint_bytes(b"ab", b"c") != fingerprint_bytes(b"a", b"bc")

    def test_grid_key_distinguishes_machines(self):
        keys = {
            GridSpec(4, 2).cache_key(),
            GridSpec(2, 4).cache_key(),
            GridSpec(4, 2, pe_memory_words=64).cache_key(),
            GridSpec(4, 2, max_in_flight=8).cache_key(),
        }
        assert len(keys) == 4
        assert GridSpec(4, 2).cache_key() == GridSpec(4, 2).cache_key()


class TestMemoizedCostEquality:
    @given(st.integers(0, 10_000), st.integers(1, 4), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_cached_equals_uncached_and_hits_return_same(self, seed, n_in, n_ops):
        rng = np.random.default_rng(seed)
        g = random_graph(rng, n_in, n_ops)
        placement = random_placement(rng, g)
        m = schedule_asap(g, GRID, lambda nid: placement.get(nid, (0, 0)))
        cache = MemoCache()
        ref = evaluate_cost(g, m, GRID)
        miss = evaluate_cost_cached(g, m, GRID, cache)
        hit = evaluate_cost_cached(g, m, GRID, cache)
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        for r in (miss, hit):
            assert r.as_dict() == ref.as_dict()
            assert r.liveness.max_live_per_place == ref.liveness.max_live_per_place

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_mutated_mapping_never_aliases_cache(self, seed):
        rng = np.random.default_rng(seed)
        g = random_graph(rng, 2, 6)
        placement = random_placement(rng, g)
        m = schedule_asap(g, GRID, lambda nid: placement.get(nid, (0, 0)))
        cache = MemoCache()
        evaluate_cost_cached(g, m, GRID, cache)
        m2 = m.copy()
        m2.time[g.compute_nodes()] += 5  # later schedule: more cycles
        again = evaluate_cost_cached(g, m2, GRID, cache)
        assert cache.stats.misses == 2  # new content, new key — no stale hit
        assert again.cycles == evaluate_cost(g, m2, GRID).cycles


class TestFastSchedulerTwin:
    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 14))
    @settings(max_examples=40, deadline=None)
    def test_schedule_asap_fast_is_bit_identical(self, seed, n_in, n_ops):
        rng = np.random.default_rng(seed)
        g = random_graph(rng, n_in, n_ops)
        placement = random_placement(rng, g)
        ref = schedule_asap(g, GRID, lambda nid: placement.get(nid, (0, 0)))
        fast = schedule_asap_fast(g, GRID, lambda nid: placement.get(nid, (0, 0)))
        assert ref.fingerprint() == fast.fingerprint()


class TestAnnealDeltaConsistency:
    @given(st.integers(0, 10_000), st.integers(1, 4), st.integers(2, 12),
           st.integers(1, 25))
    @settings(max_examples=30, deadline=None)
    def test_incremental_totals_match_full_recompute(self, seed, n_in, n_ops, n_moves):
        """After any sequence of moves (some rolled back), the incremental
        totals equal a from-scratch recompute of the final placement —
        bit-for-bit, not approximately."""
        rng = np.random.default_rng(seed)
        g = random_graph(rng, n_in, n_ops)
        placement = random_placement(rng, g)
        inc = IncrementalEdgeEnergy(g, GRID)
        inc.set_placement(placement)
        for _ in range(n_moves):
            nid = g.compute_nodes()[int(rng.integers(len(g.compute_nodes())))]
            place = (int(rng.integers(GRID.width)), int(rng.integers(GRID.height)))
            undo = inc.move(nid, place)
            if rng.integers(2):  # rejected move: roll back
                inc.unmove(undo)
            else:
                placement[nid] = place
        fresh = IncrementalEdgeEnergy(g, GRID)
        fresh.set_placement(placement)
        assert inc.totals() == fresh.totals()
        assert inc.energy_total_fj() == fresh.energy_total_fj()

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_incremental_energy_matches_evaluate_cost(self, seed):
        """The incremental model prices edges exactly like evaluate_cost
        for on-chip schedules (inputs off-chip, per the annealer's
        scheduling convention)."""
        rng = np.random.default_rng(seed)
        g = random_graph(rng, 3, 8)
        placement = random_placement(rng, g)
        m = schedule_asap(g, GRID, lambda nid: placement.get(nid, (0, 0)))
        inc = IncrementalEdgeEnergy(g, GRID)
        inc.set_placement(placement)
        ref = evaluate_cost(g, m, GRID)
        local, onchip, offchip = inc.totals()
        assert (local, onchip, offchip) == (
            ref.energy_local_fj, ref.energy_onchip_fj, ref.energy_offchip_fj
        )
        assert inc.energy_total_fj() == ref.energy_total_fj
        assert inc.energy_compute_fj == ref.energy_compute_fj
