"""Property-based tests: model invariants (Brent, LRU, PRAM, legality)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.default_mapper import default_mapping, serial_mapping
from repro.core.function import DataflowGraph
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec
from repro.machines.cachesim import ideal_cache
from repro.machines.grid import GridMachine
from repro.models.pram import PRAM, ConcurrencyMode
from repro.models.workdepth import Dag, brent_bounds
from repro.runtime.scheduler import greedy_schedule, work_stealing_schedule


class TestBrentProperty:
    @given(
        st.integers(2, 40),
        st.floats(0.0, 0.4),
        st.integers(0, 10_000),
        st.integers(1, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_greedy_always_within_bounds(self, n, prob, seed, p):
        d = Dag.random_dag(n, prob, seed=seed, max_duration=3)
        lo, hi = brent_bounds(d.work(), d.span(), p)
        s = greedy_schedule(d, p)
        assert lo <= s.length <= hi
        s.validate_against(d)

    @given(st.integers(2, 30), st.integers(0, 10_000), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_stealing_lower_bound_and_completion(self, n, seed, p):
        d = Dag.random_dag(n, 0.15, seed=seed)
        s = work_stealing_schedule(d, p, seed=seed)
        lo, _hi = brent_bounds(d.work(), d.span(), p)
        assert s.length >= lo  # nothing beats the lower bound
        assert len(s.start_times) == d.n_nodes


class TestLruProperties:
    @given(
        st.lists(st.integers(0, 63), min_size=1, max_size=400),
        st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=40)
    def test_inclusion_property(self, addrs, cap):
        small, big = ideal_cache(cap, 1), ideal_cache(4 * cap, 1)
        for a in addrs:
            small.access(a)
            big.access(a)
            assert small.resident_blocks() <= big.resident_blocks()
        assert big.stats.misses <= small.stats.misses

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=200))
    def test_miss_count_bounded_by_distinct_blocks_when_fitting(self, addrs):
        c = ideal_cache(64, 1)  # everything fits
        for a in addrs:
            c.access(a)
        assert c.stats.misses == len(set(addrs))


class TestPramProperties:
    @given(
        st.lists(st.integers(0, 15), min_size=1, max_size=8, unique=True),
        st.integers(0, 1000),
    )
    def test_crcw_arbitrary_write_picks_a_proposed_value(self, addrs, seed):
        p = PRAM(8, 16, ConcurrencyMode.CRCW_ARBITRARY, seed=seed)
        pids = list(range(len(addrs)))
        vals = [100 + i for i in pids]
        # all write the same cell
        p.par_write(pids, [addrs[0]] * len(pids), vals)
        assert int(p.memory[addrs[0]]) in vals

    @given(st.integers(1, 16), st.integers(1, 64))
    def test_work_conservation_under_emulation(self, p, n):
        """read_all charges exactly n work regardless of p."""
        pram = PRAM(p, max(n, 1))
        pram.read_all(np.arange(n) % pram.memory.size)
        assert pram.work == n
        assert pram.steps == -(-n // p)


class TestMapperProperties:
    @given(
        st.integers(1, 24),
        st.sampled_from([(1, 1), (2, 1), (4, 1), (2, 2), (8, 1)]),
        st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_default_mapping_legal_on_random_graphs(self, n_ops, shape, seed):
        rng = np.random.default_rng(seed)
        g = DataflowGraph()
        nodes = [g.input("A", (0,)), g.const(1)]
        for k in range(n_ops):
            a = nodes[int(rng.integers(len(nodes)))]
            b = nodes[int(rng.integers(len(nodes)))]
            nodes.append(g.op("+", a, b, index=(k,)))
        g.mark_output(nodes[-1], "out")
        grid = GridSpec(*shape)
        for mapping in (default_mapping(g, grid), serial_mapping(g, grid)):
            assert check_legality(g, mapping, grid).ok

    @given(st.integers(2, 16), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_mapped_execution_matches_pure_evaluation(self, n_ops, seed):
        """The grid machine must agree with the mathematical function for
        any random graph under the default mapper."""
        rng = np.random.default_rng(seed)
        g = DataflowGraph()
        nodes = [g.const(int(rng.integers(-5, 6))) for _ in range(3)]
        ops = ["+", "-", "*", "min", "max"]
        for k in range(n_ops):
            a = nodes[int(rng.integers(len(nodes)))]
            b = nodes[int(rng.integers(len(nodes)))]
            nodes.append(
                g.op(ops[int(rng.integers(len(ops)))], a, b, index=(k,))
            )
        g.mark_output(nodes[-1], "out")
        grid = GridSpec(4, 1)
        res = GridMachine(grid).run(g, default_mapping(g, grid), {})
        assert res.verified
        assert res.outputs["out"] == g.evaluate({})["out"]
