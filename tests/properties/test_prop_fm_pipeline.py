"""Property tests over the full F&M pipeline on random idiom compositions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.spacetime import occupancy_grid
from repro.core.cost import evaluate_cost
from repro.core.idioms import build_gather, build_map, build_reduce, build_scan
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec
from repro.core.recompute import auto_rematerialize
from repro.machines.grid import GridMachine


GRID = GridSpec(8, 1)


class TestIdiomPipelineProperties:
    @given(
        st.integers(1, 40),
        st.integers(1, 8),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_reduce_always_legal_correct_costed(self, n, p, seed):
        rng = np.random.default_rng(seed)
        vals = rng.integers(-99, 99, size=n)
        idiom = build_reduce(n, p, GRID)
        assert check_legality(idiom.graph, idiom.mapping, GRID).ok
        res = GridMachine(GRID).run(
            idiom.graph, idiom.mapping,
            {"A": {(i,): int(v) for i, v in enumerate(vals)}},
        )
        assert res.outputs["reduce"] == int(vals.sum())
        cost = evaluate_cost(idiom.graph, idiom.mapping, GRID)
        if n > 1:  # n == 1 reduce is a bare input: nothing to compute
            assert cost.energy_total_fj > 0
        assert cost.cycles == idiom.mapping.makespan(idiom.graph)

    @given(st.integers(1, 32), st.integers(1, 8), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_scan_matches_cumsum(self, n, p, seed):
        rng = np.random.default_rng(seed)
        vals = rng.integers(-50, 50, size=n)
        idiom = build_scan(n, p, GRID)
        res = GridMachine(GRID).run(
            idiom.graph, idiom.mapping,
            {"A": {(i,): int(v) for i, v in enumerate(vals)}},
        )
        want = np.cumsum(vals)
        got = [res.outputs[("scan", i)] for i in range(n)]
        assert got == want.tolist()

    @given(st.integers(1, 24), st.integers(1, 6), st.integers(0, 1_000))
    @settings(max_examples=25, deadline=None)
    def test_gather_of_random_indices(self, n, p, seed):
        rng = np.random.default_rng(seed)
        indices = rng.integers(0, n, size=n).tolist()
        idiom = build_gather(n, p, GRID, indices)
        res = GridMachine(GRID).run(
            idiom.graph, idiom.mapping,
            {"A": {(i,): 100 + i for i in range(n)}},
        )
        for j in range(n):
            assert res.outputs[("gather", j)] == 100 + indices[j]

    @given(st.integers(1, 24), st.integers(1, 8), st.integers(0, 1_000))
    @settings(max_examples=20, deadline=None)
    def test_remat_never_increases_model_energy(self, n, p, seed):
        idiom = build_map(n, p, GRID, "+", int(seed) % 7)
        res = auto_rematerialize(idiom.graph, idiom.mapping, GRID)
        assert res.energy_after_fj <= res.energy_before_fj + 1e-6
        assert check_legality(res.graph, res.mapping, GRID).ok

    @given(st.integers(2, 24), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_occupancy_grid_covers_all_compute(self, n, p):
        idiom = build_reduce(n, p, GRID)
        occ = occupancy_grid(idiom.graph, idiom.mapping, GRID)
        placed = sum(len(cells) for cells in occ.values())
        assert placed == idiom.graph.work()
        # occupancy: no slot double-booked (dict kv pairs are unique by
        # construction, so cross-check against the mapping directly)
        seen = set()
        for place, cells in occ.items():
            for t in cells:
                assert (place, t) not in seen
                seen.add((place, t))
