"""Property-based tests: Schedule instrumentation invariants.

The telemetry layer reports what the scheduler counters say, so the
counters themselves must be trustworthy on *arbitrary* DAGs:

* conservation of work — the utilization trace integrates back to the
  DAG's total work (``busy_steps == W``, i.e. ``utilization * length * p
  == sum(durations)``) for every scheduler;
* ``successful_steals <= steal_attempts`` always;
* all three schedulers execute the *same task set* for the same DAG —
  they may order work differently but may not drop or invent tasks.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.workdepth import Dag
from repro.runtime.scheduler import (
    centralized_queue_schedule,
    greedy_schedule,
    work_stealing_schedule,
)


def random_dag(n: int, edge_frac: float, seed: int, max_dur: int = 3) -> Dag:
    """A random DAG: edges only point forward, so it is acyclic by
    construction; durations in [1, max_dur]."""
    rng = np.random.default_rng(seed)
    dag = Dag()
    for _ in range(n):
        dag.add_node(int(rng.integers(1, max_dur + 1)))
    for v in range(1, n):
        for u in range(v):
            if rng.random() < edge_frac / max(v, 1):
                dag.add_edge(u, v)
    return dag


DAG_PARAMS = st.tuples(
    st.integers(1, 40),          # nodes
    st.floats(0.0, 3.0),         # expected predecessors per node
    st.integers(0, 10_000),      # seed
)
P_VALUES = st.sampled_from([1, 2, 3, 4, 8])


class TestWorkConservation:
    @given(DAG_PARAMS, P_VALUES)
    @settings(max_examples=40, deadline=None)
    def test_busy_steps_equal_work_all_schedulers(self, params, p):
        """sum(utilization) over the run == total work, for every scheduler."""
        dag = random_dag(*params)
        w = dag.work()
        for schedule in (
            greedy_schedule(dag, p),
            work_stealing_schedule(dag, p, seed=params[2]),
            centralized_queue_schedule(dag, p),
        ):
            assert schedule.busy_steps == w
            # same identity expressed through the utilization property
            # (float division inside .utilization, so compare approximately)
            assert math.isclose(
                schedule.utilization * schedule.length * schedule.p,
                w if schedule.length else 0,
                rel_tol=1e-12,
                abs_tol=1e-12,
            )


class TestStealAccounting:
    @given(DAG_PARAMS, P_VALUES, st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_successful_steals_bounded_by_attempts(self, params, p, seed):
        dag = random_dag(*params)
        s = work_stealing_schedule(dag, p, seed=seed)
        assert 0 <= s.successful_steals <= s.steal_attempts

    @given(DAG_PARAMS)
    @settings(max_examples=15, deadline=None)
    def test_non_stealing_schedulers_report_zero_steals(self, params):
        dag = random_dag(*params)
        for s in (greedy_schedule(dag, 4), centralized_queue_schedule(dag, 4)):
            assert s.steal_attempts == 0 and s.successful_steals == 0


class TestIdenticalTaskSets:
    @given(DAG_PARAMS, P_VALUES)
    @settings(max_examples=40, deadline=None)
    def test_all_schedulers_schedule_every_task_exactly_once(self, params, p):
        dag = random_dag(*params)
        expected = set(range(dag.n_nodes))
        task_sets = []
        for s in (
            greedy_schedule(dag, p),
            work_stealing_schedule(dag, p, seed=1),
            centralized_queue_schedule(dag, p),
        ):
            assert set(s.start_times) == expected
            assert set(s.assignments) == expected
            assert all(0 <= w < p for w in s.assignments.values())
            task_sets.append(frozenset(s.start_times))
        assert task_sets[0] == task_sets[1] == task_sets[2]

    @given(DAG_PARAMS)
    @settings(max_examples=20, deadline=None)
    def test_greedy_and_centralized_validate(self, params):
        """The validator cross-checks start times against the DAG."""
        dag = random_dag(*params)
        greedy_schedule(dag, 4).validate_against(dag)
