"""Hypothesis properties: the compiled backend is bit-identical to the
reference on *arbitrary* random graphs, placements, move sequences, and
cache traces — not just the curated workloads of the unit tests.

The contract pinned here is exact equality, never approximate: equal
``CostReport.as_dict()`` floats, equal schedule arrays, equal incremental
energy totals after any (partially rolled-back) move sequence, and equal
cache statistics on random traces.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import IncrementalEdgeEnergy, evaluate_cost
from repro.core.default_mapper import schedule_asap
from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec
from repro.compiled import (
    CompiledAnnealState,
    FlatProgram,
    evaluate_cost_compiled,
    flatten_trace,
    replay_into,
    schedule_compiled,
)
from repro.machines.cachesim import CacheHierarchy, LRUCache, run_trace

GRID = GridSpec(4, 2)


def random_graph(rng: np.random.Generator, n_inputs: int, n_ops: int) -> DataflowGraph:
    """A random DAG: ops draw operands from earlier nodes only."""
    g = DataflowGraph()
    nodes = [g.input("A", (i,)) for i in range(n_inputs)]
    for k in range(n_ops):
        op = ("+", "*", "min", "max")[int(rng.integers(4))]
        a = nodes[int(rng.integers(len(nodes)))]
        b = nodes[int(rng.integers(len(nodes)))]
        nodes.append(g.op(op, a, b, index=(k,)))
    g.mark_output(nodes[-1], "out")
    return g


def random_placement(rng: np.random.Generator, graph: DataflowGraph) -> dict:
    return {
        nid: (int(rng.integers(GRID.width)), int(rng.integers(GRID.height)))
        for nid in graph.compute_nodes()
    }


def placement_arrays(graph: DataflowGraph, placement: dict) -> tuple[list, list]:
    px = [placement.get(nid, (0, 0))[0] for nid in range(graph.n_nodes)]
    py = [placement.get(nid, (0, 0))[1] for nid in range(graph.n_nodes)]
    return px, py


class TestCostAndScheduleParity:
    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 14))
    @settings(max_examples=40, deadline=None)
    def test_cost_report_bit_identical(self, seed, n_in, n_ops):
        rng = np.random.default_rng(seed)
        g = random_graph(rng, n_in, n_ops)
        placement = random_placement(rng, g)
        m = schedule_asap(g, GRID, lambda nid: placement.get(nid, (0, 0)))
        ref = evaluate_cost(g, m, GRID)
        comp = evaluate_cost_compiled(FlatProgram(g, GRID), m)
        assert comp.as_dict() == ref.as_dict()
        assert comp.liveness.max_live_per_place == ref.liveness.max_live_per_place
        assert comp.liveness.max_in_flight == ref.liveness.max_in_flight
        assert (comp.n_compute, comp.n_edges, comp.places_used) == (
            ref.n_compute, ref.n_edges, ref.places_used
        )

    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 14))
    @settings(max_examples=40, deadline=None)
    def test_schedule_arrays_bit_identical(self, seed, n_in, n_ops):
        rng = np.random.default_rng(seed)
        g = random_graph(rng, n_in, n_ops)
        placement = random_placement(rng, g)
        ref = schedule_asap(g, GRID, lambda nid: placement.get(nid, (0, 0)))
        fp = FlatProgram(g, GRID)
        comp = schedule_compiled(fp, *placement_arrays(g, placement))
        for field in ("x", "y", "time", "offchip"):
            assert np.array_equal(getattr(ref, field), getattr(comp, field)), field

    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 14))
    @settings(max_examples=30, deadline=None)
    def test_levels_match_depth_recurrence(self, seed, n_in, n_ops):
        rng = np.random.default_rng(seed)
        g = random_graph(rng, n_in, n_ops)
        fp = FlatProgram(g, GRID)
        levels = fp.asap_levels()
        assert int(levels.max(initial=0)) == g.depth()


class TestIncrementalStateParity:
    @given(st.integers(0, 10_000), st.integers(1, 4), st.integers(2, 12),
           st.integers(1, 25))
    @settings(max_examples=30, deadline=None)
    def test_move_sequences_match_reference_incremental(
        self, seed, n_in, n_ops, n_moves
    ):
        """The compiled anneal state tracks the reference incremental
        model through any move/unmove sequence — equal per-class totals
        and equal total energy, bit-for-bit."""
        rng = np.random.default_rng(seed)
        g = random_graph(rng, n_in, n_ops)
        placement = random_placement(rng, g)
        ref = IncrementalEdgeEnergy(g, GRID)
        ref.set_placement(placement)
        comp = CompiledAnnealState(FlatProgram(g, GRID))
        comp.set_placement(placement)
        compute = g.compute_nodes()
        for _ in range(n_moves):
            nid = compute[int(rng.integers(len(compute)))]
            place = (int(rng.integers(GRID.width)), int(rng.integers(GRID.height)))
            undo_ref = ref.move(nid, place)
            undo_comp = comp.move(nid, place)
            if rng.integers(2):
                ref.unmove(undo_ref)
                comp.unmove(undo_comp)
            assert comp.totals() == ref.totals()
        assert comp.energy_total_fj() == ref.energy_total_fj()


class TestCacheReplayParity:
    @given(
        st.integers(0, 10_000),
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 1023)),
            min_size=0, max_size=300,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_trace_stats_identical(self, seed, raw):
        trace = [("w" if w else "r", a) for w, a in raw]
        rng = np.random.default_rng(seed)
        spec = [
            (int(rng.choice([32, 64])), int(rng.choice([2, 4])),
             int(rng.choice([1, 2])) if rng.integers(2) else None, "L1"),
            (512, 8, None, "L2"),
        ]

        def build():
            return CacheHierarchy([LRUCache(*row) for row in spec])

        ref, comp = build(), build()
        run_trace(ref, trace, backend="reference")
        kinds, addrs = flatten_trace(trace)
        replay_into(comp, kinds, addrs)
        for a, b in zip(ref.levels, comp.levels):
            assert a.stats.as_dict() == b.stats.as_dict()
            assert [list(s.items()) for s in a._sets] == [
                list(s.items()) for s in b._sets
            ]
        assert (ref.mem_accesses, ref.mem_writebacks) == (
            comp.mem_accesses, comp.mem_writebacks
        )
