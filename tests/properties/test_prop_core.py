"""Property-based tests: F&M core invariants (lowering, verify, NoC, DSL)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.default_mapper import default_mapping
from repro.core.function import DataflowGraph
from repro.core.lowering import lower
from repro.core.mapping import GridSpec
from repro.core.verify import verify_lowering
from repro.machines.noc import Message, Noc
from repro.machines.primitives import OneSidedMachine, Traffic, TwoSidedMachine


def random_graph(n_ops: int, seed: int) -> DataflowGraph:
    rng = np.random.default_rng(seed)
    g = DataflowGraph()
    nodes = [g.input("A", (0,)), g.const(2), g.const(3)]
    ops = ["+", "-", "*", "min", "max"]
    for k in range(n_ops):
        a = nodes[int(rng.integers(len(nodes)))]
        b = nodes[int(rng.integers(len(nodes)))]
        nodes.append(g.op(ops[int(rng.integers(len(ops)))], a, b, index=(k,)))
    g.mark_output(nodes[-1], "out")
    return g


class TestLoweringVerifyProperty:
    @given(
        st.integers(1, 20),
        st.integers(0, 500),
        st.sampled_from([(1, 1), (4, 1), (2, 2)]),
    )
    @settings(max_examples=25, deadline=None)
    def test_default_mapped_lowerings_always_verify(self, n_ops, seed, shape):
        """lower(default_mapping(g)) passes full-stack verification for
        arbitrary graphs — the pipeline is closed under its own checker."""
        g = random_graph(n_ops, seed)
        grid = GridSpec(*shape)
        m = default_mapping(g, grid)
        spec = lower(g, m, grid)
        res = verify_lowering(g, m, spec, grid)
        assert res.ok, res.describe()

    @given(st.integers(1, 12), st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_hardware_outputs_equal_functional(self, n_ops, seed):
        g = random_graph(n_ops, seed)
        grid = GridSpec(4, 1)
        m = default_mapping(g, grid)
        spec = lower(g, m, grid)
        inputs = {"A": lambda i: 5}
        res = verify_lowering(g, m, spec, grid, inputs)
        assert res.ok
        assert res.outputs == {"out": g.evaluate(inputs)["out"]}


class TestNocProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3),
                      st.integers(0, 3), st.integers(0, 3),
                      st.integers(0, 20)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30)
    def test_latency_at_least_uncontended(self, raw):
        noc = Noc(4, 4)
        # src == dst is rejected at Message construction; filter first
        msgs = [
            Message(i, (sx, sy), (dx, dy), t)
            for i, (sx, sy, dx, dy, t) in enumerate(raw)
            if (sx, sy) != (dx, dy)
        ]
        if not msgs:
            return
        rep = noc.simulate(msgs)
        hop = noc.tech.hop_cycles()
        for m in msgs:
            dist = abs(m.src[0] - m.dst[0]) + abs(m.src[1] - m.dst[1])
            assert rep.latency[m.mid] >= dist * hop
            assert rep.delivery_cycle[m.mid] >= m.inject_cycle

    @given(st.integers(0, 1000))
    @settings(max_examples=20)
    def test_permutation_invariance(self, seed):
        rng = np.random.default_rng(seed)
        # src == dst is rejected at Message construction; filter first
        raw = [
            ((int(rng.integers(4)), 0), (int(rng.integers(4)), 0),
             int(rng.integers(5)))
            for _ in range(8)
        ]
        msgs = [
            Message(i, src, dst, t)
            for i, (src, dst, t) in enumerate(raw)
            if src != dst
        ]
        if not msgs:
            return
        noc = Noc(4, 1)
        a = noc.simulate(msgs)
        perm = [msgs[i] for i in rng.permutation(len(msgs))]
        b = noc.simulate(perm)
        assert a.delivery_cycle == b.delivery_cycle


class TestPrimitiveProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(1, 50)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=30)
    def test_one_sided_never_slower(self, raw):
        transfers = tuple((s, d, w) for s, d, w in raw if s != d)
        if not transfers:
            return
        t = Traffic(8, transfers)
        one = OneSidedMachine().phase(t)
        two = TwoSidedMachine().phase(t)
        assert one.time_cycles <= two.time_cycles
        assert one.words == two.words

    @given(st.integers(1, 200), st.integers(0, 100), st.integers(1, 256))
    @settings(max_examples=25)
    def test_aggregation_conserves_words(self, n, seed, agg):
        from repro.machines.primitives import random_updates

        t = random_updates(8, n, seed=seed)[0]
        if not t.transfers:
            return
        plain = TwoSidedMachine().phase(t)
        merged = TwoSidedMachine(aggregate=agg).phase(t)
        assert merged.words == plain.words
        assert merged.messages <= plain.messages
