"""Fork-join DSL: values, DAG shape, work/span."""

import math

import pytest

from repro.runtime.fork_join import ForkJoin, analyze


def sum_rec(fj, a):
    if len(a) == 1:
        fj.work(1)
        return a[0]
    mid = len(a) // 2
    left = fj.spawn(sum_rec, a[:mid])
    right = sum_rec(fj, a[mid:])
    fj.sync()
    fj.work(1)
    return left.value + right


class TestValues:
    def test_recursive_sum_value(self):
        res = analyze(sum_rec, list(range(32)))
        assert res.value == sum(range(32))

    def test_spawn_passes_kwargs(self):
        def child(fj, a, b=0):
            fj.work(1)
            return a + b

        def root(fj):
            f = fj.spawn(child, 1, b=2)
            fj.sync()
            return f.value

        assert analyze(root).value == 3

    def test_future_before_sync_raises(self):
        def root(fj):
            f = fj.spawn(lambda fj2: 42)
            return f.value  # no sync!

        with pytest.raises(RuntimeError, match="determinacy race"):
            analyze(root)

    def test_future_after_sync_ok(self):
        def root(fj):
            f = fj.spawn(lambda fj2: 42)
            fj.sync()
            return f.value

        assert analyze(root).value == 42

    def test_run_not_reentrant(self):
        fj = ForkJoin()

        def root(fj2):
            fj2.run(lambda f: None)

        with pytest.raises(RuntimeError, match="not reentrant"):
            fj.run(root)


class TestWorkSpan:
    def test_sum_work_linear_span_logarithmic(self):
        n = 64
        res = analyze(sum_rec, list(range(n)))
        # leaves: n work; internal combines: n-1
        assert res.work == 2 * n - 1
        # span ~ log2(n) levels of (leaf + combine)
        assert res.span <= 4 * math.log2(n) + 4
        assert res.span >= math.log2(n)

    def test_serial_work_only(self):
        def root(fj):
            fj.work(7)

        res = analyze(root)
        assert res.work == 7 and res.span == 7

    def test_two_independent_children_span(self):
        def child(fj):
            fj.work(10)

        def root(fj):
            fj.spawn(child)
            fj.spawn(child)
            fj.sync()

        res = analyze(root)
        assert res.work == 20
        assert res.span == 10  # parallel in the DAG

    def test_nested_spawn_autosyncs(self):
        """A spawned child's own children are joined before the child ends."""

        def grandchild(fj):
            fj.work(5)

        def child(fj):
            fj.spawn(grandchild)
            # no explicit sync — auto-sync on return
            return "done"

        def root(fj):
            f = fj.spawn(child)
            fj.sync()
            return f.value

        res = analyze(root)
        assert res.value == "done"
        assert res.work == 5
        assert res.span == 5  # grandchild is inside the join

    def test_work_rejects_negative(self):
        def root(fj):
            fj.work(-1)

        with pytest.raises(ValueError):
            analyze(root)

    def test_parallelism_property(self):
        res = analyze(sum_rec, list(range(64)))
        assert res.parallelism == pytest.approx(res.work / res.span)


class TestParallelFor:
    def test_executes_all_iterations(self):
        hits = []

        def root(fj):
            fj.parallel_for(10, lambda fj2, i: hits.append(i))

        analyze(root)
        assert sorted(hits) == list(range(10))

    def test_span_logarithmic(self):
        def body(fj, i):
            fj.work(1)

        def root(fj):
            fj.parallel_for(256, body)

        res = analyze(root)
        assert res.work == 256
        assert res.span <= 2 * math.log2(256) + 4

    def test_grain_reduces_dag_size(self):
        def body(fj, i):
            fj.work(1)

        sizes = []
        for grain in (1, 16):
            def root(fj, g=grain):
                fj.parallel_for(64, body, grain=g)

            res = analyze(root)
            sizes.append(res.dag.n_nodes)
        assert sizes[1] < sizes[0]

    def test_zero_iterations(self):
        def root(fj):
            fj.parallel_for(0, lambda fj2, i: None)

        assert analyze(root).work == 0

    def test_invalid_args(self):
        def root_neg(fj):
            fj.parallel_for(-1, lambda fj2, i: None)

        with pytest.raises(ValueError):
            analyze(root_neg)

        def root_grain(fj):
            fj.parallel_for(4, lambda fj2, i: None, grain=0)

        with pytest.raises(ValueError):
            analyze(root_grain)


class TestDagWellFormed:
    def test_dag_is_acyclic_and_connected_enough(self):
        res = analyze(sum_rec, list(range(16)))
        order = res.dag.topological_order()  # raises on a cycle
        assert len(order) == res.dag.n_nodes

    def test_sync_without_spawn_is_noop(self):
        def root(fj):
            fj.sync()
            fj.work(1)
            fj.sync()

        res = analyze(root)
        assert res.work == 1
