"""ReadyTracker: incremental ready-set maintenance."""

import pytest

from repro.models.workdepth import Dag
from repro.runtime.tasks import ReadyTracker


class TestReadyTracker:
    def test_initial_ready_sources_only(self):
        d = Dag.binary_tree_reduction(4)
        t = ReadyTracker(d)
        assert t.initial_ready() == [0, 1, 2, 3]

    def test_completion_enables_successors(self):
        d = Dag()
        a, b, c = d.add_node(), d.add_node(), d.add_node()
        d.add_edge(a, c)
        d.add_edge(b, c)
        t = ReadyTracker(d)
        assert t.complete(a) == []
        assert t.complete(b) == [c]

    def test_double_completion_rejected(self):
        d = Dag.chain(2)
        t = ReadyTracker(d)
        t.complete(0)
        with pytest.raises(ValueError, match="twice"):
            t.complete(0)

    def test_all_done(self):
        d = Dag.chain(3)
        t = ReadyTracker(d)
        for u in (0, 1, 2):
            assert not t.all_done
            t.complete(u)
        assert t.all_done

    def test_complete_many(self):
        d = Dag.binary_tree_reduction(4)
        t = ReadyTracker(d)
        newly = t.complete_many([0, 1, 2, 3])
        assert sorted(newly) == [4, 5]
