"""Schedulers: greedy, work stealing, centralized queue."""

import pytest

from repro.models.workdepth import Dag, brent_bounds
from repro.runtime.scheduler import (
    centralized_queue_schedule,
    greedy_schedule,
    work_stealing_schedule,
)


class TestGreedy:
    def test_independent_tasks_perfectly_packed(self):
        d = Dag.independent(16)
        s = greedy_schedule(d, 4)
        assert s.length == 4
        assert s.utilization == pytest.approx(1.0)

    def test_chain_no_speedup(self):
        d = Dag.chain(10)
        for p in (1, 4):
            assert greedy_schedule(d, p).length == 10

    def test_schedule_is_valid(self):
        for seed in range(5):
            d = Dag.random_dag(30, 0.15, seed=seed, max_duration=4)
            s = greedy_schedule(d, 3)
            s.validate_against(d)

    def test_brent_bounds_hold(self):
        for seed in range(5):
            d = Dag.random_dag(50, 0.08, seed=seed, max_duration=2)
            for p in (1, 2, 4, 8):
                s = greedy_schedule(d, p)
                lo, hi = brent_bounds(d.work(), d.span(), p)
                assert lo <= s.length <= hi

    def test_busy_steps_equal_work(self):
        d = Dag.random_dag(20, 0.2, seed=1, max_duration=5)
        s = greedy_schedule(d, 4)
        assert s.busy_steps == d.work()

    def test_more_processors_never_slower(self):
        d = Dag.random_dag(60, 0.05, seed=2)
        lengths = [greedy_schedule(d, p).length for p in (1, 2, 4, 8, 16)]
        assert lengths == sorted(lengths, reverse=True) or all(
            lengths[i] >= lengths[i + 1] for i in range(len(lengths) - 1)
        )

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            greedy_schedule(Dag.chain(2), 0)

    def test_empty_dag(self):
        s = greedy_schedule(Dag(), 2)
        assert s.length == 0 and s.utilization == 1.0


class TestWorkStealing:
    def test_correct_and_valid(self):
        d = Dag.random_dag(40, 0.1, seed=3)
        s = work_stealing_schedule(d, 4, seed=0)
        assert len(s.start_times) == d.n_nodes
        assert s.busy_steps == d.work()

    def test_within_linear_slack_of_brent(self):
        """T_P <= W/P + O(D): measure the constant, require it modest."""
        for seed in range(4):
            d = Dag.random_dag(80, 0.06, seed=seed)
            for p in (2, 4, 8):
                s = work_stealing_schedule(d, p, seed=seed)
                w, depth = d.work(), d.span()
                assert s.length <= w / p + 12 * depth + 8, (
                    f"T_{p}={s.length} too far above W/P + O(D) "
                    f"(W={w}, D={depth})"
                )

    def test_reproducible_for_fixed_seed(self):
        d = Dag.random_dag(30, 0.1, seed=4)
        a = work_stealing_schedule(d, 4, seed=9)
        b = work_stealing_schedule(d, 4, seed=9)
        assert a.length == b.length and a.assignments == b.assignments

    def test_steal_stats_populated(self):
        d = Dag.binary_tree_reduction(64)
        s = work_stealing_schedule(d, 8, seed=1)
        assert s.steal_attempts >= s.successful_steals >= 0
        # a tree on 8 workers must steal at least once to use >1 worker
        assert s.successful_steals > 0

    def test_single_worker_is_serial(self):
        d = Dag.random_dag(25, 0.1, seed=5, max_duration=3)
        s = work_stealing_schedule(d, 1, seed=0)
        assert s.length >= d.work()  # may idle a step on completion boundaries
        assert s.successful_steals == 0


class TestCentralizedQueue:
    def test_zero_penalty_close_to_greedy(self):
        d = Dag.random_dag(40, 0.1, seed=6)
        g = greedy_schedule(d, 4)
        c = centralized_queue_schedule(d, 4, dequeue_penalty=0)
        assert c.busy_steps == g.busy_steps
        assert c.length >= g.length  # never better than greedy

    def test_penalty_serializes(self):
        """With a big dequeue penalty, adding workers stops helping — the
        'heavyweight mechanism' effect."""
        d = Dag.independent(32)
        fast = centralized_queue_schedule(d, 8, dequeue_penalty=0)
        slow = centralized_queue_schedule(d, 8, dequeue_penalty=10)
        assert slow.length > fast.length
        # queue occupancy ~ 11 cycles per task regardless of p
        assert slow.length >= 32 * 10

    def test_penalty_negative_rejected(self):
        with pytest.raises(ValueError):
            centralized_queue_schedule(Dag.chain(2), 2, dequeue_penalty=-1)

    def test_dependences_respected(self):
        d = Dag.binary_tree_reduction(16)
        s = centralized_queue_schedule(d, 4, dequeue_penalty=2)
        finish = {u: s.start_times[u] + d.durations[u] for u in s.start_times}
        for u in range(d.n_nodes):
            for v in d.successors[u]:
                assert s.start_times[v] >= finish[u]
