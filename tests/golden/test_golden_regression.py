"""Golden-regression tests: the cost model's numbers for the paper's
canonical workloads are pinned as checked-in JSON fixtures.

A failure here means the cost model's output changed.  If intentional,
regenerate (``PYTHONPATH=src python -m repro.testing.golden --regen``)
and review the fixture diff; if not, the readable drift diff in the
failure message says exactly which field moved.
"""

import json
import pathlib

import pytest

from repro.testing import GoldenMismatch, check_golden, golden_scenarios
from repro.testing.golden import DEFAULT_FIXTURE_DIR

FIXTURE_DIR = pathlib.Path(__file__).parent
SCENARIOS = golden_scenarios()


def test_fixture_dir_resolves_here():
    assert DEFAULT_FIXTURE_DIR == FIXTURE_DIR


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_cost_model_matches_golden(name):
    check_golden(name, SCENARIOS[name](), FIXTURE_DIR)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_fixtures_are_checked_in_and_valid_json(name):
    path = FIXTURE_DIR / f"{name}.json"
    assert path.exists(), (
        f"{path} missing — run `PYTHONPATH=src python -m repro.testing.golden --regen`"
    )
    doc = json.loads(path.read_text())
    assert doc["cycles"] > 0 and doc["energy_total_fj"] > 0
    assert "scenario" in doc, "fixtures must record what produced them"


def test_drift_produces_readable_diff(tmp_path):
    name = "matmul_broadcast"
    payload = SCENARIOS[name]()
    fixture = dict(payload)
    fixture["cycles"] = payload["cycles"] + 1
    (tmp_path / f"{name}.json").write_text(json.dumps(fixture))
    with pytest.raises(GoldenMismatch) as exc:
        check_golden(name, payload, tmp_path)
    msg = str(exc.value)
    assert "cycles" in msg and "fixture has" in msg and "--regen" in msg


def test_missing_fixture_names_the_regen_command(tmp_path):
    with pytest.raises(GoldenMismatch, match="--regen"):
        check_golden("no_such_scenario", {}, tmp_path)
