"""The persistent on-disk memo tier: durability, sharing, degradation.

The store's contract is deliberately boring — atomic writes, reads that
never raise, version-keyed invalidation, LRU byte cap — because every
interesting property of the system above it (cross-process warm starts,
shard restarts, chaos survival) reduces to those four.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

from repro import obs
from repro.core.memo import DiskMemoStore, MemoCache


class TestRoundtrip:
    def test_value_survives_across_store_instances(self, tmp_path):
        a = DiskMemoStore("t", root=tmp_path)
        a.put(("sweep", b"\x00fp", ("grid", 4, 2), b"sig"), {"cost": 1.5})
        b = DiskMemoStore("t", root=tmp_path)
        found, value = b.get(("sweep", b"\x00fp", ("grid", 4, 2), b"sig"))
        assert found and value == {"cost": 1.5}
        assert b.stats.hits == 1 and a.stats.writes == 1

    def test_miss_is_a_clean_miss(self, tmp_path):
        store = DiskMemoStore("t", root=tmp_path)
        found, value = store.get(("absent",))
        assert not found and value is None
        assert store.stats.misses == 1 and store.stats.errors == 0

    def test_namespaces_are_disjoint(self, tmp_path):
        a = DiskMemoStore("alpha", root=tmp_path)
        b = DiskMemoStore("beta", root=tmp_path)
        a.put(("k",), 1)
        assert b.get(("k",)) == (False, None)

    def test_version_keys_the_directory(self, tmp_path):
        old = DiskMemoStore("t", root=tmp_path, version="1.0.0")
        old.put(("k",), "stale-model-output")
        new = DiskMemoStore("t", root=tmp_path, version="2.0.0")
        assert new.get(("k",)) == (False, None)  # invalidated by release
        assert DiskMemoStore("t", root=tmp_path, version="1.0.0").get(
            ("k",)
        ) == (True, "stale-model-output")


class TestDurability:
    def test_corrupt_entry_degrades_to_miss_and_is_unlinked(self, tmp_path):
        store = DiskMemoStore("t", root=tmp_path)
        store.put(("k",), [1, 2, 3])
        path = store._path(("k",))
        path.write_bytes(b"\x80\x05garbage")
        found, _ = store.get(("k",))
        assert not found
        assert store.stats.errors == 1
        assert not path.exists()  # dropped: cannot keep costing misses
        ok, corrupt = store.verify()
        assert (ok, corrupt) == (0, 0)

    def test_truncated_entry_degrades_to_miss(self, tmp_path):
        store = DiskMemoStore("t", root=tmp_path)
        store.put(("k",), list(range(1000)))
        path = store._path(("k",))
        path.write_bytes(path.read_bytes()[:10])
        assert store.get(("k",)) == (False, None)

    def test_unusable_root_degrades_to_noop(self, tmp_path):
        # a root that cannot be a directory (its parent is a plain file);
        # chmod tricks don't work here because tests may run as root
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        store = DiskMemoStore("t", root=blocker / "sub")
        assert not store.enabled
        store.put(("k",), 1)  # no raise
        assert store.get(("k",)) == (False, None)
        assert len(store) == 0

    def test_stale_tmp_files_are_collected(self, tmp_path):
        store = DiskMemoStore("t", root=tmp_path)
        store.put(("k",), 1)
        sub = store._path(("k",)).parent
        orphan = sub / ".tmp-orphan"
        orphan.write_bytes(b"partial")
        old = 1_000_000.0
        os.utime(orphan, (old, old))
        store._entries_on_disk()
        assert not orphan.exists()

    def test_sweep_enforces_byte_cap_oldest_first(self, tmp_path):
        store = DiskMemoStore("t", root=tmp_path)
        payload = b"x" * 2048
        for i in range(8):
            store.put(("k", i), payload)
            # distinct mtimes so LRU order is deterministic
            os.utime(store._path(("k", i)), (1_000_000.0 + i, 1_000_000.0 + i))
        removed = store.sweep(max_bytes=3 * 2100)
        assert removed > 0
        assert store.stats.evictions == removed
        # the oldest entries went first; the newest survives
        assert store.get(("k", 7))[0]
        assert not store.get(("k", 0))[0]

    def test_verify_counts_corruption(self, tmp_path):
        store = DiskMemoStore("t", root=tmp_path)
        for i in range(4):
            store.put(("k", i), i)
        store._path(("k", 2)).write_bytes(b"not a pickle")
        ok, corrupt = store.verify()
        assert (ok, corrupt) == (3, 1)

    def test_verify_is_read_only_and_idempotent(self, tmp_path):
        """verify() scans without mutating: the corrupt entry stays on
        disk (only get() drops it) and stats never tick."""
        store = DiskMemoStore("t", root=tmp_path)
        store.put(("k",), 1)
        path = store._path(("k",))
        path.write_bytes(b"not a pickle")
        before = store.stats.as_dict()
        assert store.verify() == store.verify() == (0, 1)
        assert path.exists()
        assert store.stats.as_dict() == before

    def test_corruption_surfaces_in_obs_counters(self, tmp_path):
        """The full corrupted-entry story under an obs session: verify()
        reports it, the degrading get() ticks error+miss stats, and
        publish_metrics() exports them as memo.disk_* counter series."""
        store = DiskMemoStore("t", root=tmp_path)
        for i in range(3):
            store.put(("k", i), i)
        store._path(("k", 1)).write_bytes(b"\x80\x05garbage")
        assert store.verify() == (2, 1)
        with obs.session(label="t", write_on_exit=False) as sess:
            assert store.get(("k", 1)) == (False, None)  # degrade + unlink
            assert store.get(("k", 0)) == (True, 0)
            store.publish_metrics()
            counters = sess.metrics_dump()["counters"]
        assert counters["memo.disk_errors{store=t}"] == 1
        assert counters["memo.disk_misses{store=t}"] == 1
        assert counters["memo.disk_hits{store=t}"] == 1
        assert counters["memo.disk_writes{store=t}"] == 3
        # the bad entry was dropped by get(): the store self-healed
        assert store.verify() == (2, 0)


class TestMemoCacheTier:
    def test_mem_miss_probes_store_and_promotes(self, tmp_path):
        store = DiskMemoStore("t", root=tmp_path)
        warmer = MemoCache("w", store=store)
        warmer.put(("k",), "v")  # write-through

        fresh = MemoCache("w", store=DiskMemoStore("t", root=tmp_path))
        assert fresh.get(("k",)) == "v"   # served from disk
        assert fresh.stats.hits == 1      # a disk hit is a cache hit
        # promoted: second get never touches the store again
        disk_hits = fresh.store.stats.hits
        assert fresh.get(("k",)) == "v"
        assert fresh.store.stats.hits == disk_hits

    def test_get_or_compute_skips_compute_on_disk_hit(self, tmp_path):
        MemoCache("w", store=DiskMemoStore("t", root=tmp_path)).put(("k",), 41)
        fresh = MemoCache("w", store=DiskMemoStore("t", root=tmp_path))
        calls = []

        def compute():
            calls.append(1)
            return 99

        assert fresh.get_or_compute(("k",), compute) == 41
        assert not calls

    def test_publish_metrics_includes_store_counters(self, tmp_path):
        with obs.session(label="t", write_on_exit=False) as sess:
            cache = MemoCache("w", store=DiskMemoStore("t", root=tmp_path))
            cache.put(("k",), 1)
            cache.publish_metrics()
            names = {s.name for s in sess.metrics.series()}
        assert "memo.disk_writes" in names


def _worker_put(root: str, rank: int) -> None:
    store = DiskMemoStore("shared", root=root)
    cache = MemoCache("shared", store=store)
    cache.put(("from", rank), {"rank": rank})


class TestCrossProcess:
    def test_entries_written_by_children_are_visible_here(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_worker_put, args=(str(tmp_path), rank))
            for rank in range(3)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        reader = MemoCache("shared", store=DiskMemoStore("shared", root=tmp_path))
        for rank in range(3):
            assert reader.get(("from", rank)) == {"rank": rank}
        ok, corrupt = reader.store.verify()
        assert corrupt == 0 and ok == 3

    def test_pickle_protocol_is_stable_for_plain_values(self, tmp_path):
        # entries must be loadable by any process with the same code
        store = DiskMemoStore("t", root=tmp_path)
        store.put(("k",), {"cycles": 12, "energy": 3.5})
        raw = store._path(("k",)).read_bytes()
        assert pickle.loads(raw) == {"cycles": 12, "energy": 3.5}
