"""The array-backed cache replayer versus the per-access reference loop.

Equality here is *state* equality, not just stats: after replaying the
same trace, every set's residency, LRU order, and dirty bits must match
the reference simulator exactly — the replayer mutates real
:class:`LRUCache` objects, so a divergence would poison any code that
keeps simulating afterwards.
"""

from __future__ import annotations

import random
from dataclasses import asdict

import pytest

from repro.core.memo import MemoCache
from repro.compiled import flatten_trace, replay_into, replay_trace, trace_digest
from repro.machines.cachesim import (
    CacheHierarchy,
    LRUCache,
    run_trace,
    run_trace_cached,
    trace_fingerprint,
)

SPECS = [
    [(256, 8, None, "L1")],                                  # direct-ish single
    [(64, 4, 1, "L1")],                                      # direct-mapped
    [(64, 4, 2, "L1"), (512, 16, 4, "L2")],                  # classic two-level
    [(32, 4, 1, "L1"), (128, 8, 2, "L2"), (1024, 16, None, "L3")],
    [(16, 2, 2, "tiny"), (64, 2, None, "L2")],               # same block sizes
]


def build(spec):
    levels = [LRUCache(*row) for row in spec]
    return CacheHierarchy(levels) if len(levels) > 1 else levels[0]


def full_state(cache):
    """Stats + per-set residency/order/dirty of every level + mem counters."""
    if isinstance(cache, CacheHierarchy):
        return (
            [(asdict(lvl.stats), [list(s.items()) for s in lvl._sets])
             for lvl in cache.levels],
            cache.mem_accesses,
            cache.mem_writebacks,
        )
    return (asdict(cache.stats), [list(s.items()) for s in cache._sets])


def random_trace(seed, n, addr_space, write_frac=0.3):
    rng = random.Random(seed)
    return [
        ("w" if rng.random() < write_frac else "r", rng.randrange(addr_space))
        for _ in range(n)
    ]


class TestDigest:
    @pytest.mark.parametrize("trace", [
        [],
        [("r", 0)],
        [("w", 2**40)],
        random_trace(1, 500, 4096),
    ])
    def test_hex_identical_to_reference_fingerprint(self, trace):
        kinds, addrs = flatten_trace(trace)
        assert trace_digest(kinds, addrs) == trace_fingerprint(trace)

    def test_negative_address_error_matches_reference(self):
        trace = [("r", -1)]
        with pytest.raises(OverflowError) as ref_err:
            trace_fingerprint(trace)
        kinds, addrs = flatten_trace(trace)
        with pytest.raises(OverflowError) as comp_err:
            trace_digest(kinds, addrs)
        assert str(comp_err.value) == str(ref_err.value)


class TestReplayStateParity:
    @pytest.mark.parametrize("spec", SPECS)
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_random_traces(self, spec, seed):
        trace = random_trace(seed, 4000, 2048)
        ref, comp = build(spec), build(spec)
        run_trace(ref, trace, backend="reference")
        kinds, addrs = flatten_trace(trace)
        replay_into(comp, kinds, addrs)
        assert full_state(comp) == full_state(ref)

    def test_empty_trace(self):
        ref, comp = build(SPECS[2]), build(SPECS[2])
        kinds, addrs = flatten_trace([])
        replay_into(comp, kinds, addrs)
        assert full_state(comp) == full_state(ref)

    def test_standalone_lru_writebacks(self):
        # force dirty evictions: writes cycling through 3x capacity
        trace = [("w", a * 4) for a in range(48)] * 3
        ref, comp = LRUCache(64, 4), LRUCache(64, 4)
        run_trace(ref, trace, backend="reference")
        kinds, addrs = flatten_trace(trace)
        replay_into(comp, kinds, addrs)
        assert comp.stats.writebacks > 0
        assert full_state(comp) == full_state(ref)

    def test_run_collapse_repeated_block(self):
        # long same-block runs exercise the run-collapse fast path,
        # including trailing-write dirty marking inside a collapsed run
        trace = (
            [("r", 0)] * 10 + [("w", 1)] * 5 + [("r", 2)] * 7
            + [("r", 64)] + [("w", 0), ("r", 1)] * 6
        )
        for spec in SPECS:
            ref, comp = build(spec), build(spec)
            run_trace(ref, trace, backend="reference")
            kinds, addrs = flatten_trace(trace)
            replay_into(comp, kinds, addrs)
            assert full_state(comp) == full_state(ref)

    def test_negative_address_raises_like_reference(self):
        trace = [("r", 4), ("r", -3)]
        ref, comp = LRUCache(64, 4), LRUCache(64, 4)
        with pytest.raises(ValueError) as ref_err:
            run_trace(ref, trace, backend="reference")
        kinds, addrs = flatten_trace(trace)
        with pytest.raises(ValueError) as comp_err:
            replay_into(comp, kinds, addrs)
        assert str(comp_err.value) == str(ref_err.value)

    def test_resumed_simulation_stays_identical(self):
        """Replay must leave the cache usable: continuing access-by-access
        afterwards matches a reference that ran everything in the loop."""
        head, tail = random_trace(3, 1500, 1024), random_trace(4, 500, 1024)
        ref, comp = build(SPECS[2]), build(SPECS[2])
        run_trace(ref, head + tail, backend="reference")
        kinds, addrs = flatten_trace(head)
        replay_into(comp, kinds, addrs)
        for kind, addr in tail:
            comp.access(addr, write=(kind == "w"))
        assert full_state(comp) == full_state(ref)


class TestRunTraceDispatch:
    def test_backends_agree(self):
        trace = random_trace(11, 3000, 4096)
        ref, comp = build(SPECS[3]), build(SPECS[3])
        run_trace(ref, trace, backend="reference")
        run_trace(comp, trace, backend="compiled")
        assert full_state(comp) == full_state(ref)

    def test_cached_results_shared_across_backends(self):
        trace = random_trace(5, 2000, 2048)
        spec = SPECS[2]
        memo = MemoCache("t")
        ref = run_trace_cached(spec, trace, memo=memo, backend="reference")
        comp = run_trace_cached(spec, trace, memo=memo, backend="compiled")
        assert comp == ref
        assert memo.stats.hits == 1  # compiled run hit the reference entry

    def test_replay_trace_result_shape(self):
        trace = random_trace(9, 1000, 1024)
        spec = SPECS[2]
        kinds, addrs = flatten_trace(trace)
        got = replay_trace(spec, kinds, addrs)
        want = run_trace_cached(spec, trace, memo=MemoCache("x"),
                                backend="reference")
        assert got == want
