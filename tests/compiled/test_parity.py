"""Differential parity: the compiled backend versus the reference path.

Every searcher, the placement lowering, the schedule kernel, and the api
facade must produce **bit-identical** results on the compiled backend —
same floats, same mappings, same labels, same error messages.  The
checks go through :func:`repro.testing.assert_search_equivalent`, the
same oracle the fast engine is held to.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.core.default_mapper import schedule_asap
from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec
from repro.core.memo import MemoCache
from repro.core.search import (
    COMPILED_ENGINE,
    FigureOfMerit,
    SearchEngine,
    anneal,
    engine_for_backend,
    exhaustive_search,
    sweep_placements,
)
from repro.compiled import (
    get_program,
    resolve_backend,
    schedule_compiled,
)
from repro.testing import assert_search_equivalent

CASES = [
    ("stencil", {"n": 8, "steps": 2}, GridSpec(4, 2)),
    ("fft", {"n": 8}, GridSpec(8, 1)),
    ("sum_squares", {"n": 12}, GridSpec(2, 2)),
    ("matmul", {"n": 3}, GridSpec(4, 1)),
]
FOMS = [FigureOfMerit.fastest(), FigureOfMerit(1.0, 1.0, 0.0),
        FigureOfMerit(1.0, 1.0, 0.5)]


def compiled_engine() -> SearchEngine:
    """A compiled engine with a private cache (no cross-test bleed)."""
    return SearchEngine(
        memoize=True, incremental=True, compiled=True, cache=MemoCache("t")
    )


def graph_for(name: str, params: dict) -> DataflowGraph:
    return api.compile(name, **params)


class TestSearcherParity:
    @pytest.mark.parametrize("name,params,grid", CASES)
    def test_sweep_bit_identical(self, name, params, grid):
        g = graph_for(name, params)
        for fom in FOMS:
            ref = sweep_placements(g, grid, fom, engine=None)
            comp = sweep_placements(g, grid, fom, engine=compiled_engine())
            assert_search_equivalent(comp, ref, context=f"sweep/{name}")

    @pytest.mark.parametrize("name,params,grid", CASES)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_anneal_bit_identical(self, name, params, grid, seed):
        g = graph_for(name, params)
        for fom in FOMS:
            ref = anneal(g, grid, fom, steps=80, seed=seed, engine=None)
            comp = anneal(
                g, grid, fom, steps=80, seed=seed, engine=compiled_engine()
            )
            assert_search_equivalent(comp, ref, context=f"anneal/{name}")

    def test_anneal_memo_shared_with_fast_engine(self):
        """Compiled and fast anneal share one memo key: a compiled run
        warms the cache for the fast engine (and vice versa)."""
        g = graph_for("stencil", {"n": 8, "steps": 2})
        grid = GridSpec(4, 2)
        cache = MemoCache("shared")
        fom = FigureOfMerit(1.0, 1.0, 0.0)
        first = anneal(
            g, grid, fom, steps=60, seed=1,
            engine=SearchEngine(memoize=True, incremental=True, compiled=True,
                                cache=cache),
        )
        hits_before, misses_before = cache.stats.hits, cache.stats.misses
        second = anneal(
            g, grid, fom, steps=60, seed=1,
            engine=SearchEngine(memoize=True, incremental=True, cache=cache),
        )
        # the fast engine finds the compiled run's entry: no new compute
        assert cache.stats.hits > hits_before
        assert cache.stats.misses == misses_before
        assert_search_equivalent(second, first, context="cross-engine memo")

    def test_exhaustive_bit_identical(self):
        g = graph_for("sum_squares", {"n": 5})
        grid = GridSpec(2, 1)
        for fom in FOMS:
            ref = exhaustive_search(g, grid, fom, max_points=200_000, engine=None)
            comp = exhaustive_search(
                g, grid, fom, max_points=200_000, engine=compiled_engine()
            )
            assert_search_equivalent(comp, ref, context="exhaustive")


class TestScheduleKernel:
    @pytest.mark.parametrize("name,params,grid", CASES)
    def test_schedule_matches_reference(self, name, params, grid):
        g = graph_for(name, params)
        fp = get_program(g, grid)
        rng = np.random.default_rng(7)
        for _ in range(5):
            place = {
                nid: (int(rng.integers(grid.width)), int(rng.integers(grid.height)))
                for nid in g.compute_nodes()
            }
            ref = schedule_asap(g, grid, lambda nid: place.get(nid, (0, 0)))
            px = [place.get(nid, (0, 0))[0] for nid in range(g.n_nodes)]
            py = [place.get(nid, (0, 0))[1] for nid in range(g.n_nodes)]
            comp = schedule_compiled(fp, px, py)
            assert ref.fingerprint() == comp.fingerprint()

    def test_offgrid_error_message_parity(self):
        g = graph_for("sum_squares", {"n": 4})
        grid = GridSpec(2, 1)
        fp = get_program(g, grid)
        bad = {nid: (5, 0) for nid in g.compute_nodes()}
        with pytest.raises(ValueError) as ref_err:
            schedule_asap(g, grid, lambda nid: bad.get(nid, (0, 0)))
        px = [bad.get(nid, (0, 0))[0] for nid in range(g.n_nodes)]
        py = [bad.get(nid, (0, 0))[1] for nid in range(g.n_nodes)]
        with pytest.raises(ValueError) as comp_err:
            schedule_compiled(fp, px, py)
        assert str(comp_err.value) == str(ref_err.value)

    @pytest.mark.parametrize("name,params,grid", CASES)
    def test_asap_levels_match_depth_recurrence(self, name, params, grid):
        g = graph_for(name, params)
        fp = get_program(g, grid)
        levels = fp.asap_levels()
        # the work-depth recurrence: level = max(level of args) + dur
        expect = [0] * g.n_nodes
        for v in range(g.n_nodes):
            args = fp.args_list[v]
            base = max((expect[u] for u in args), default=0)
            expect[v] = base + int(fp.dur[v])
        assert levels.tolist() == expect
        assert int(levels.max(initial=0)) == g.depth()


class TestBackendSelection:
    def test_engine_for_backend_mapping(self):
        assert engine_for_backend("compiled") is COMPILED_ENGINE
        assert engine_for_backend("reference").compiled is False
        assert not engine_for_backend("reference").memoize
        assert engine_for_backend("fast").memoize
        assert not engine_for_backend("fast").compiled
        with pytest.raises(ValueError, match="unknown backend"):
            engine_for_backend("turbo")

    def test_resolve_backend_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None) == "compiled"
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        assert resolve_backend(None) == "reference"
        assert resolve_backend("fast") == "fast"  # explicit beats env
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("turbo")

    def test_api_search_backend_parity(self):
        rows_ref = api.search("stencil", (4, 2), backend="reference",
                              n=8, steps=2)
        rows_comp = api.search("stencil", (4, 2), backend="compiled",
                               n=8, steps=2)
        assert_search_equivalent(rows_comp, rows_ref, context="api sweep")

    def test_api_rejects_engine_plus_backend(self):
        with pytest.raises(api.ApiError, match="not both"):
            api.search("stencil", (4, 2), engine=SearchEngine(),
                       backend="compiled", n=8, steps=2)
        with pytest.raises(api.ApiError, match="unknown backend"):
            api.search("stencil", (4, 2), backend="turbo", n=8, steps=2)
        with pytest.raises(api.ApiError, match="unknown backend"):
            api.evaluate("stencil", (4, 2), backend="turbo", n=8, steps=2)

    def test_api_evaluate_and_score_backend_parity(self):
        ref = api.evaluate("fft", (4, 1), fom={"time": 1, "energy": 1},
                           backend="reference", n=8)
        comp = api.evaluate("fft", (4, 1), fom={"time": 1, "energy": 1},
                            backend="compiled", n=8)
        assert comp.cost.as_dict() == ref.cost.as_dict()
        assert comp.fom == ref.fom
        assert comp.mapping.fingerprint() == ref.mapping.fingerprint()

        g = api.compile("sum_squares", n=5)
        pairs = [(i % 2, (i // 2) % 2) for i in range(len(g.compute_nodes()))]
        s_ref = api.score("sum_squares", (2, 2), pairs, backend="reference", n=5)
        s_comp = api.score("sum_squares", (2, 2), pairs, backend="compiled", n=5)
        assert s_comp.cost.as_dict() == s_ref.cost.as_dict()
        assert s_comp.mapping.fingerprint() == s_ref.mapping.fingerprint()

    def test_api_simulate_backend_parity(self):
        trace = [("w" if i % 3 == 0 else "r", (i * 17) % 512) for i in range(400)]
        levels = [(64, 4, 2, "L1"), (512, 16, None, "L2")]
        ref = api.simulate(levels, trace, memo=MemoCache("a"),
                           backend="reference")
        comp = api.simulate(levels, trace, memo=MemoCache("b"),
                            backend="compiled")
        assert comp == ref
