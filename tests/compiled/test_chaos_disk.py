"""Chaos: injected worker faults must never corrupt the disk memo store.

The scenario the store exists for: a parallel compiled sweep persists its
results; workers crash / hang / return poison mid-campaign; recovery
(retry, then in-process fallback) completes the sweep bit-identically;
and a *restarted* process — fresh in-memory cache, same store directory —
reloads everything without recomputing and without reading a single torn
entry.
"""

from __future__ import annotations

import pytest

from repro.core.memo import DiskMemoStore, MemoCache
from repro.core.search import SearchEngine, sweep_placements
from repro.faults import FaultPlan, FaultSpec, injection
from repro.testing import assert_search_equivalent
from repro import api
from repro.core.mapping import GridSpec

GRAPH = api.compile("stencil", n=6, steps=2)
GRID = GridSpec(2, 2)
REFERENCE = sweep_placements(GRAPH, GRID, engine=None)


def chaos_engine(root, **kw) -> SearchEngine:
    return SearchEngine(
        parallel=True,
        n_workers=2,
        compiled=True,
        memoize=True,
        incremental=True,
        cache=MemoCache("chaos", store=DiskMemoStore("chaos", root=root)),
        task_timeout_s=kw.pop("task_timeout_s", 30.0),
        max_retries=kw.pop("max_retries", 2),
        retry_backoff_s=0.01,
        **kw,
    )


@pytest.mark.parametrize("spec,engine_kw", [
    (FaultSpec(worker_crash=1.0), {}),
    (FaultSpec(worker_poison=1.0), {}),
    (FaultSpec(worker_hang=1.0), {"task_timeout_s": 1.0}),
])
def test_faulted_sweep_leaves_store_clean_and_warm(tmp_path, spec, engine_kw):
    root = tmp_path / "store"
    with injection(FaultPlan(11, spec)) as inj:
        rows = sweep_placements(
            GRAPH, GRID, engine=chaos_engine(root, **engine_kw)
        )
    assert inj.n_injected > 0
    assert inj.n_recovered == inj.n_injected
    assert_search_equivalent(rows, REFERENCE, context="chaos sweep")

    # nothing torn on disk, despite every worker having been faulted
    audit = DiskMemoStore("chaos", root=root)
    ok, corrupt = audit.verify()
    assert corrupt == 0
    assert ok > 0  # the campaign actually persisted its results

    # "restart": fresh memory, same disk — everything reloads, nothing
    # recomputes, and the rows are bit-identical to the faulted run
    warm_cache = MemoCache("chaos", store=DiskMemoStore("chaos", root=root))
    warm = sweep_placements(
        GRAPH, GRID,
        engine=SearchEngine(memoize=True, incremental=True, compiled=True,
                            cache=warm_cache),
    )
    assert_search_equivalent(warm, rows, context="warm restart after chaos")
    assert warm_cache.stats.misses == 0
    assert warm_cache.store.stats.hits == warm_cache.stats.hits


def test_fallback_only_campaign_still_persists(tmp_path):
    """Every attempt of every task faulted: only the in-process fallback
    finishes — and its results still land in the store intact."""
    root = tmp_path / "store"
    spec = FaultSpec(worker_crash=1.0, worker_faulty_attempts=99)
    with injection(FaultPlan(5, spec)) as inj:
        rows = sweep_placements(
            GRAPH, GRID, engine=chaos_engine(root, max_retries=1)
        )
    assert inj.n_injected > 0
    assert_search_equivalent(rows, REFERENCE, context="fallback chaos")
    ok, corrupt = DiskMemoStore("chaos", root=root).verify()
    assert corrupt == 0 and ok > 0
