"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import tempfile

import numpy as np
import pytest

from repro.core.mapping import GridSpec
from repro.machines.technology import TECH_5NM, Technology


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_memo():
    """Point the on-disk memo store at a throwaway directory for the whole
    run, so tests (and the shard subprocesses they spawn, which inherit
    the environment) never touch the developer's real ``~/.cache/repro``."""
    prior = os.environ.get("REPRO_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix="repro-test-cache-") as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        try:
            yield tmp
        finally:
            if prior is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = prior


@pytest.fixture
def tech() -> Technology:
    return TECH_5NM


@pytest.fixture
def grid8() -> GridSpec:
    """An 8-PE row, the workhorse topology of the tests."""
    return GridSpec(8, 1)


@pytest.fixture
def grid4x4() -> GridSpec:
    return GridSpec(4, 4)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
