"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mapping import GridSpec
from repro.machines.technology import TECH_5NM, Technology


@pytest.fixture
def tech() -> Technology:
    return TECH_5NM


@pytest.fixture
def grid8() -> GridSpec:
    """An 8-PE row, the workhorse topology of the tests."""
    return GridSpec(8, 1)


@pytest.fixture
def grid4x4() -> GridSpec:
    return GridSpec(4, 4)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
