"""CI smoke for the serving layer: start a real HTTP server, fire >= 32
concurrent mixed-kind requests, and require every one to either succeed
or be shed with an explicit rejection code — then diff a served search
against the direct library call with the differential oracle, and probe
the live introspection endpoints (``/metrics`` must be a well-formed
metrics dump carrying nonzero shard-side counters with ``process``
labels; ``/healthz`` must report every shard alive).

Exit codes: 0 = pass; 1 = a response was lost, errored, or diverged.

Run:  PYTHONPATH=src python tools/serve_smoke.py [--shards 2] [--requests 40]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import urllib.request

from repro import api, obs
from repro.obs.export import validate_metrics_dump
from repro.obs.metrics import parse_series_key
from repro.serve import (
    REJECTION_CODES,
    EvaluationServer,
    HttpClient,
    Request,
    Response,
)
from repro.serve.protocol import search_results_from_rows
from repro.serve.server import serve_http
from repro.testing.oracle import SearchEquivalenceError, assert_search_equivalent


def _mixed_requests(n: int) -> list[Request]:
    """A deterministic mixed-kind stream: all four verbs, several keys."""
    reqs: list[Request] = []
    for i in range(n):
        kind = ("search", "evaluate", "simulate", "score")[i % 4]
        if kind == "search":
            reqs.append(Request("search", {
                "workload": {"name": "stencil", "params": {"n": 8 + 2 * (i % 3)}},
                "machine": [4, 1],
            }))
        elif kind == "evaluate":
            reqs.append(Request("evaluate", {
                "workload": {"name": "fft", "params": {"n": 8 << (i % 2)}},
                "machine": [4, 1],
                "mapper": "serial" if i % 8 else "default",
            }))
        elif kind == "simulate":
            reqs.append(Request("simulate", {
                "levels": [[64, 4, None, "L1"], [512, 8, None, "L2"]],
                "trace": [["r", (a * (1 + i % 3)) % 256] for a in range(128)],
            }))
        else:
            reqs.append(Request("score", {
                "workload": {"name": "matmul", "params": {"n": 2}},
                "machine": [2, 1],
                "placement": [[0, 0]] * 12,
            }))
    return reqs


def _check_introspection(base: str, n_shards: int, failures: list[str]) -> None:
    """GET /metrics and /healthz; append to ``failures`` on any problem."""

    def get_json(path: str) -> dict:
        with urllib.request.urlopen(f"{base}{path}", timeout=30) as r:
            return json.loads(r.read())

    try:
        metrics = get_json("/metrics")
    except Exception as exc:
        failures.append(f"/metrics: {exc}")
        return
    problems = validate_metrics_dump(metrics)
    if problems:
        failures.append(f"/metrics: invalid dump: {problems[0]}")
    shard_counters = {
        k: v
        for k, v in metrics.get("counters", {}).items()
        if str(parse_series_key(k)[1].get("process", "")).startswith("shard-")
    }
    if not shard_counters or not any(v > 0 for v in shard_counters.values()):
        failures.append("/metrics: no nonzero shard-process counters merged")
    if metrics.get("counters", {}).get("serve.served", 0) <= 0:
        failures.append("/metrics: serve.served is zero")

    try:
        health = get_json("/healthz")
    except Exception as exc:
        failures.append(f"/healthz: {exc}")
        return
    if not health.get("ok"):
        failures.append(f"/healthz: not ok: {health}")
    if health.get("shards_alive") != n_shards:
        failures.append(
            f"/healthz: {health.get('shards_alive')}/{n_shards} shards alive"
        )
    print(
        f"  introspection: /metrics carries {len(shard_counters)} "
        f"shard-process series; /healthz reports "
        f"{health.get('shards_alive')}/{n_shards} shards alive"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--requests", type=int, default=40)
    args = parser.parse_args(argv)
    if args.requests < 32:
        parser.error("--requests must be >= 32 (the smoke's concurrency floor)")

    failures: list[str] = []
    with obs.session(label="serve-smoke") as sess:
        with EvaluationServer(n_shards=args.shards, tick_s=0.002) as srv:
            httpd = serve_http(srv, port=0)
            port = httpd.server_address[1]
            threading.Thread(target=httpd.serve_forever, daemon=True).start()
            base = f"http://127.0.0.1:{port}"
            print(f"serve_smoke: {args.shards} shard(s) on {base}, "
                  f"{args.requests} concurrent mixed-kind requests")

            reqs = _mixed_requests(args.requests)
            responses: list[Response | None] = [None] * len(reqs)

            def fire(i: int, req: Request) -> None:
                responses[i] = HttpClient(base, timeout_s=300).request(req)

            threads = [
                threading.Thread(target=fire, args=(i, r))
                for i, r in enumerate(reqs)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            ok = shed = 0
            for i, resp in enumerate(responses):
                if resp is None:
                    failures.append(f"request {i}: no response")
                elif resp.ok:
                    ok += 1
                elif resp.code in REJECTION_CODES:
                    shed += 1
                else:
                    failures.append(
                        f"request {i} ({reqs[i].kind}): {resp.code}: {resp.detail}"
                    )
            print(f"  {ok} served, {shed} explicitly shed, "
                  f"{len(failures)} failed")

            # oracle: one served search per distinct key vs the direct call
            checked = set()
            for req, resp in zip(reqs, responses):
                if req.kind != "search" or resp is None or not resp.ok:
                    continue
                key = req.payload["workload"]["params"]["n"]
                if key in checked:
                    continue
                checked.add(key)
                direct = api.search("stencil", (4, 1), n=key)
                try:
                    assert_search_equivalent(
                        search_results_from_rows(resp.result["rows"]),
                        direct,
                        context=f"serve-smoke/n={key}",
                    )
                except SearchEquivalenceError as exc:
                    failures.append(f"oracle: {exc}")
            print(f"  differential oracle: {len(checked)} served searches "
                  "bit-identical to direct calls")
            _check_introspection(base, args.shards, failures)
            httpd.shutdown()
            httpd.server_close()
        stats = srv.stats()

    counters = sess.metrics_dump()["counters"]
    print(f"  serve.served={counters.get('serve.served', 0):.0f} "
          f"shard_restarts={stats['shard_restarts']} "
          f"fallbacks={stats['inproc_fallbacks']}")
    if ok == 0:
        failures.append("nothing was served at all")
    if failures:
        print("serve_smoke: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("serve_smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
