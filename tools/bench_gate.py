"""Perf-regression gate over two bench metrics JSONs.

The CI ``bench-smoke`` job uploads a metrics artifact per run (e.g.
``benchmarks/out/c21_compiled_core.main.json``).  This tool turns those
artifacts into an automated perf-trajectory gate: given a baseline and a
new dump, it flattens every numeric leaf to a dotted key
(``campaign.speedup``, ``disk_restart.t_warm_s``), classifies each key's
goodness direction, computes relative deltas, and fails when a gated key
worsens beyond the tolerance.

Direction heuristics (override per key with ``--tol key=frac`` to widen,
or ignore a key entirely with ``--ignore key``):

* keys containing ``speedup``, ``hit``, ``throughput``, or ``rate``
  are **higher-better**;
* keys whose last component starts with ``t_`` or ends with ``_s`` /
  ``_ms`` / ``_ns``, or containing ``miss`` / ``error`` / ``corrupt``,
  are **lower-better**;
* everything else (seeds, gates, counts) is informational — reported,
  never gated.

Exit codes: 0 = within tolerance, 1 = regression (suppressed by
``--warn-only``), 2 = usage/baseline trouble.  A *missing baseline file*
exits 0 with a warning — the first CI run has no history to gate
against, and the workflow treats that as "record, don't judge".

Run::

    python tools/bench_gate.py baseline.json new.json [--tolerance 0.25]
        [--tol campaign.speedup=0.5] [--ignore seed] [--warn-only]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["GateEntry", "flatten_metrics", "direction_of", "compare", "main"]

#: default: a gated key may worsen by up to this fraction before failing.
#: Bench timings on shared CI runners are noisy; 25% is deliberately wide
#: (the per-bench gates inside the benches themselves stay strict).
DEFAULT_TOLERANCE = 0.25

_HIGHER_HINTS = ("speedup", "hit", "throughput", "rate")
_LOWER_HINTS = ("miss", "error", "corrupt")
_TIME_SUFFIXES = ("_s", "_ms", "_ns")


def flatten_metrics(doc: Any, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested JSON document as dotted keys.

    Booleans and non-numeric leaves are skipped — ``ok``/``failures``
    style fields are verdicts of the producing bench, not measurements.
    """
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        for k, v in doc.items():
            key = f"{prefix}.{k}" if prefix else str(k)
            if isinstance(v, dict):
                out.update(flatten_metrics(v, key))
            elif isinstance(v, bool):
                continue
            elif isinstance(v, (int, float)):
                out[key] = float(v)
    return out


def direction_of(key: str) -> str | None:
    """``"higher"`` / ``"lower"`` for gated keys, None for informational."""
    lowered = key.lower()
    if any(h in lowered for h in _HIGHER_HINTS):
        return "higher"
    if any(h in lowered for h in _LOWER_HINTS):
        return "lower"
    leaf = lowered.rsplit(".", 1)[-1]
    if leaf.startswith("t_") or leaf.endswith(_TIME_SUFFIXES):
        return "lower"
    return None


@dataclass
class GateEntry:
    """One compared metric: values, direction, and the applied tolerance."""

    key: str
    base: float | None
    new: float | None
    direction: str | None  # "higher" | "lower" | None (informational)
    tolerance: float

    @property
    def one_sided(self) -> bool:
        return self.base is None or self.new is None

    @property
    def worsening(self) -> float:
        """Relative change in the *bad* direction (negative = improved)."""
        if self.one_sided or self.direction is None:
            return 0.0
        denom = max(abs(self.base), 1e-12)
        delta = (self.new - self.base) / denom
        return delta if self.direction == "lower" else -delta

    @property
    def regressed(self) -> bool:
        return (
            not self.one_sided
            and self.direction is not None
            and self.worsening > self.tolerance
        )

    @property
    def status(self) -> str:
        if self.one_sided:
            return "baseline-only" if self.new is None else "new-only"
        if self.direction is None:
            return "info"
        if self.regressed:
            return "REGRESSED"
        return "improved" if self.worsening < 0 else "ok"


def compare(
    base_doc: Any,
    new_doc: Any,
    tolerance: float = DEFAULT_TOLERANCE,
    per_key: dict[str, float] | None = None,
    ignore: set[str] | None = None,
) -> list[GateEntry]:
    """Compare two metrics documents key by key.

    Keys present in only one input are reported (``baseline-only`` /
    ``new-only``) but never gated: a bench added or removed between runs
    is a topology change, not a regression.
    """
    base = flatten_metrics(base_doc)
    new = flatten_metrics(new_doc)
    per_key = per_key or {}
    ignore = ignore or set()
    entries: list[GateEntry] = []
    for key in sorted(set(base) | set(new)):
        if key in ignore:
            continue
        entries.append(
            GateEntry(
                key=key,
                base=base.get(key),
                new=new.get(key),
                direction=direction_of(key),
                tolerance=per_key.get(key, tolerance),
            )
        )
    return entries


def _fmt(v: float | None) -> str:
    return "-" if v is None else f"{v:.4g}"


def _report_lines(entries: list[GateEntry]) -> Iterator[str]:
    yield f"{'metric':<40} {'base':>10} {'new':>10} {'change':>8}  status"
    for e in entries:
        if e.one_sided or e.direction is None:
            change = "-"
        else:
            raw = e.worsening if e.direction == "lower" else -e.worsening
            change = f"{raw * 100:+.1f}%"
        yield (
            f"{e.key:<40} {_fmt(e.base):>10} {_fmt(e.new):>10} "
            f"{change:>8}  {e.status}"
        )


def _parse_tol(values: list[str]) -> dict[str, float]:
    out: dict[str, float] = {}
    for item in values:
        key, _, frac = item.partition("=")
        if not frac:
            raise argparse.ArgumentTypeError(
                f"--tol wants key=fraction, got {item!r}"
            )
        out[key] = float(frac)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-gate",
        description="Fail when a bench metrics JSON regresses past tolerance.",
    )
    parser.add_argument("baseline", help="baseline metrics JSON (e.g. last main run)")
    parser.add_argument("new", help="freshly produced metrics JSON")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"allowed relative worsening (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--tol", action="append", default=[], metavar="KEY=FRAC",
        help="per-key tolerance override (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="KEY",
        help="exclude a key from the report entirely (repeatable)",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but always exit 0 (first-run CI mode)",
    )
    args = parser.parse_args(argv)

    base_path = pathlib.Path(args.baseline)
    if not base_path.exists():
        print(
            f"bench-gate: no baseline at {base_path} — nothing to gate "
            "against (first run?); passing",
        )
        return 0
    try:
        base_doc = json.loads(base_path.read_text())
        new_doc = json.loads(pathlib.Path(args.new).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench-gate: cannot read inputs: {exc}", file=sys.stderr)
        return 2

    entries = compare(
        base_doc, new_doc,
        tolerance=args.tolerance,
        per_key=_parse_tol(args.tol),
        ignore=set(args.ignore),
    )
    for line in _report_lines(entries):
        print(line)
    regressions = [e for e in entries if e.regressed]
    if regressions:
        for e in regressions:
            print(
                f"bench-gate: {e.key} worsened {e.worsening * 100:.1f}% "
                f"(> {e.tolerance * 100:.0f}% tolerance)",
                file=sys.stderr,
            )
        if args.warn_only:
            print("bench-gate: warn-only mode, passing anyway")
            return 0
        return 1
    print(f"bench-gate: {len(entries)} metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
