"""Regenerate EXPERIMENTS.md from the benchmark artifacts.

Run the benchmarks first (they write their tables to ``benchmarks/out/``),
then::

    python tools/gen_experiments.py

The script stitches the claim registry (the paper's quotes and expected
values) together with the measured tables, so EXPERIMENTS.md is always the
record of an actual run, never hand-copied numbers.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.claims import CLAIMS  # noqa: E402

ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT = ROOT / "benchmarks" / "out"

#: experiment id -> (title, claim ids, bench module, artifact files, verdict)
EXPERIMENTS = [
    ("C1-C4", "5 nm energy/delay ratios", ["C1", "C2", "C3", "C3b", "C4a", "C4b", "C4c", "C4d"],
     "bench_c01_energy_ratios.py",
     ["c01_energy_ratios.txt", "c01_distance_series.txt"],
     "Reproduced exactly (C1, C3, C4 are arithmetic identities of the "
     "constants; C2 within 0.6% using diagonal = sqrt(area), the paper's "
     "own convention; off-chip/diagonal = 11x ~ 'an order of magnitude')."),
    ("C5", "10,000x multicore instruction overhead", ["C5"],
     "bench_c05_multicore_overhead.py",
     ["c05_multicore_overhead.txt", "c05_size_series.txt"],
     "Reproduced: 10,001x per ADD instruction by construction of the "
     "accounting model; measured whole-program ratio on the paper's own "
     "sum-a-sequence example is ~3.8x higher still (loads/branches/"
     "memory), strengthening the claim."),
    ("C6", "1,000x to haul operands vs adding at the remote point", ["C6"],
     "bench_c06_remote_add.py",
     ["c06_remote_add.txt", "c06_auto_remat.txt"],
     "Reproduced: at 10 mm the operand haul costs 3,200x the remote add "
     "(paper says '1,000x or more').  Ablation: the recompute optimizer "
     "relocates a misplaced add to its data automatically."),
    ("C7", "Same O(N log N) FFTs, large constant-factor gaps", ["C7"],
     "bench_c07_fft_mappings.py",
     ["c07_fft_functions.txt", "c07_fft_mappings.txt", "c07_operand_residence.txt"],
     "Reproduced in shape: radix choice changes the multiply count 25%, "
     "mapping choice changes cycles >2x at N=64, and operand residence "
     "(on-chip vs off-chip) is the paper's 50,000x per word — the factor "
     "behind the quote."),
    ("C8", "The worked edit-distance example", ["C8 (construction)"],
     "bench_c08_edit_distance.py",
     ["c08_literal_mapping.txt", "c08_wavefront_speedup.txt"],
     "Reproduced, with one finding: the mapping exactly as printed is "
     "illegal under the paper's own legality conditions (rows of a band "
     "share a schedule but depend on each other).  The prose's 'marching "
     "anti-diagonals' with a hop+1 skew is legal, verified against the "
     "serial DP, and reaches 3.98x speedup on P=4."),
    ("C9", "Default mapper no worse than today's abstractions", ["C9 (construction)"],
     "bench_c09_default_mapper.py",
     ["c09_default_mapper.txt"],
     "Reproduced: across map/reduce/scan/stencil/FFT the default mapper "
     "never loses to the serial mapping and stays within 4x of the best "
     "swept mapping."),
    ("C10", "Brent's bound as the model-to-machine cost mapping", ["C10 (theory)"],
     "bench_c10_brent.py",
     ["c10_brent.txt", "c10_stealing_constant.txt", "c10_grain.txt"],
     "Reproduced: every greedy schedule of every fork-join program lands "
     "inside [max(W/P, D), (W-D)/P + D]; randomized work stealing stays "
     "within W/P + ~6D across seeds.  Grain ablation included."),
    ("C11", "Cache-oblivious works on multilevel caches", ["C11 (theory)"],
     "bench_c11_cache_oblivious.py",
     ["c11_one_level.txt", "c11_multilevel.txt", "c11_block_ablation.txt"],
     "Reproduced: untuned recursive matmul tracks the per-M tuned blocked "
     "variant within 3x at every cache size and every level of a 3-level "
     "hierarchy; fixed-block tuning cliffs when M shrinks, the oblivious "
     "trace does not."),
    ("C12", "Communication avoidance: volume and message count", ["C12 (theory)"],
     "bench_c12_comm_avoiding.py",
     ["c12_volumes.txt", "c12_scaling.txt", "c12_replication.txt"],
     "Reproduced: measured Cannon volume follows n^2 sqrt(p) within a "
     "stable constant; 2.5D (c=4, p=64) beats SUMMA and Cannon on words "
     "AND messages; the c-sweep shows the replication U-curve."),
    ("C13", "4-5 orders of magnitude from many-core; XMT on irregular PRAM", ["C13"],
     "bench_c13_manycore_xmt.py",
     ["c13_xmt_scaling.txt", "c13_sync_gap.txt", "c13_connectivity.txt"],
     "Partially reproduced, honestly: speedup scales monotonically with "
     "TCUs and the per-op energy advantage (~100x) compounds it, but at "
     "laptop-scale inputs the UMA round trip caps measured throughput "
     "speedup (~5x at 256 TCUs on G(1000, 0.01)); the bench reports the "
     "limiting factor explicitly.  The sync-cost gap that makes irregular "
     "parallelism viable (hw spawn vs barrier) exceeds 50x."),
    ("C14", "Systematic mapping search over figures of merit", ["C14 (construction)"],
     "bench_c14_mapping_search.py",
     ["c14_pareto.txt", "c14_span.txt", "c14_fom_winners.txt", "c14_exhaustive.txt"],
     "Reproduced: the space spans serial (cycles ~ work) to near the "
     "function's depth; time/energy FoMs elect different winners; "
     "heuristics validated against exhaustive search on a tiny kernel."),
    ("C15", "Simple data-movement/synchronization primitives (Yelick)", ["C15 (construction)"],
     "bench_c15_primitives.py",
     ["c15_primitives.txt", "c15_aggregation.txt"],
     "Reproduced: one-sided put/get beats rendezvous send/recv on every "
     "workload in the suite ('universally useful'), with the largest win "
     "on irregular updates; aggregation lets the heavyweight set recover "
     "time only by spending per-processor buffer memory — the 'precious "
     "fast memory' cost, measured."),
    ("C16", "Automated full-stack verification (Martonosi)", ["C16 (construction)"],
     "bench_c16_verification.py",
     ["c16_clean.txt", "c16_mutations.txt"],
     "Reproduced as a construction: translation validation executes the "
     "lowered hardware directly and checks it against the functional spec; "
     "clean designs pass all five checks, and 100% of single-fault mutants "
     "(5 kinds x 5 seeds) are caught with the failing check named."),
    ("C17", "Accelerators >10,000x, programmable targets 100s of times", ["C17a", "C17b"],
     "bench_c17_efficiency_gap.py",
     ["c17_efficiency_gap.txt", "c17_decomposition.txt"],
     "Reproduced: at the same 5 nm point, the owner-mapped stencil "
     "dataflow is ~11,000x more energy-efficient per useful op than the "
     "multicore (which spends <0.1% of its energy on actual arithmetic), "
     "and the simple-core programmable target is ~1,100x — both meeting "
     "the quoted bands."),
    ("C18", "Fast mapping-search engine vs reference (differentially verified)", [],
     "bench_c18_search_engine.py",
     ["c18_engine.txt", "c18_parallel.txt"],
     "Infrastructure claim for C14's search: content-addressed memoization "
     "plus incremental annealing re-scoring accelerate a realistic "
     "multi-FoM search campaign by >=3x (asserted in-bench) while the "
     "differential oracle (repro.testing.assert_search_equivalent) "
     "verifies results identical to the reference path, and the 2-worker "
     "multiprocessing sweep merges deterministically to the same rows."),
    ("C19", "Deterministic fault injection and the cost of resilience", [],
     "bench_c19_fault_overhead.py",
     ["c19_fault_overhead.txt", "c19_zero_fault.txt"],
     "Robustness claim for the whole stack: under a seeded chaos plan "
     "(fail-stopped PEs, dead mesh links, transient bitflips, "
     "crashed/hung/poisoned search workers, a dying executor) the grid "
     "machine remaps, the NoC detours, the search retries, and the "
     "scheduler checkpoint-replays — with every recovered result "
     "bit-identical to the fault-free golden run, every injected fault "
     "accounted recovered-or-surfaced in the fault.* counters, and the "
     "extra cycles/hops/energy of resilience measured, not hidden."),
    ("C20", "Batched evaluation service: shard scaling with oracle identity", [],
     "bench_c20_serve_throughput.py",
     ["c20_serve_scaling.txt"],
     "Serving-layer claim: fronting the library with the batched "
     "evaluation service scales a 16-key search-sweep mix >=2x from 1 to "
     "4 shards (measured ~5.8x on a one-core CI box) because shards are "
     "cache scale-out first — content-hash affinity keeps each shard's "
     "slice of the key set warm in its bounded memo budget, where a "
     "single shard's LRU thrashes — and the differential oracle diffs "
     "every served row set against the direct repro.api call, so "
     "throughput never buys away bit-exactness."),
    ("C21", "Compiled flat-graph kernel core with a persistent cross-process memo store", [],
     "bench_c21_compiled_core.py",
     ["c21_compiled_campaign.txt", "c21_disk_restart.txt", "c21_cache_replay.txt"],
     "Perf-infrastructure claim under C14/C18: lowering the dataflow "
     "graph once into a content-addressed FlatProgram (CSR adjacency, "
     "distance LUTs) and evaluating schedules/costs with array kernels "
     "accelerates the C18 multi-FoM campaign >=3x over the reference "
     "engine (measured ~10x), while the on-disk content-addressed memo "
     "tier makes a process restart of the same campaign >=5x faster than "
     "the cold run (measured ~7x, every warm entry a disk hit, zero "
     "corrupt) — and the differential oracle diffs every searched row and "
     "every CostReport against the reference, so neither speedup buys "
     "away bit-exactness.  The array cache replayer is roughly at parity "
     "on pure-Python traces (no gate); its value is state-exact replay "
     "for the memoized run_trace_cached path.  The CI bench-smoke job "
     "reruns the standalone bench (--smoke --json, gates relaxed to "
     "1.5x) and uploads c21_compiled_core.main.json; divergence from the "
     "reference fails the job before any speedup is read."),
    ("C22", "Telemetry overhead: instrumented within 5% of dark", [],
     "bench_c22_obs_overhead.py",
     ["c22_obs_overhead.txt"],
     "Observability-infrastructure claim: running the C21 smoke campaign "
     "under a full obs session (counters, log2-bucket histograms, spans, "
     "cross-process delta snapshots) costs at most 5% wall time over the "
     "same campaign with no session, best-of-3 interleaved rounds.  This "
     "pins the 'cheap when on' half of the obs layer's contract (the "
     "'one branch when off' half is enforced by "
     "tests/obs/test_instrumentation.py), so instrumentation creep "
     "cannot silently tax the serving stack — the CI bench-smoke job "
     "reruns it standalone and fails past the 1.05x gate."),
    ("A1", "Ablation: systolic forwarding vs broadcast matmul", [],
     "bench_a01_systolic_matmul.py",
     ["a01_systolic.txt"],
     "Section 3 names systolic arrays as communication-minimizing prior "
     "art; expressed inside F&M, explicit forwarding cuts on-chip wire "
     "energy by a factor that grows with n (3x at n=6, ~4x at n=8) at "
     "identical arithmetic energy."),
    ("A2", "Ablation: asymmetric read/write costs reorder the locality ladder", [],
     "bench_a02_asymmetric.py",
     ["a02_asymmetric.txt"],
     "Section 2's asymmetry extension has teeth: the cache-oblivious "
     "recursive matmul writes C blocks back ~2x more often, so beyond "
     "omega ~ 10 the write-lean naive loop overtakes it; the cache-aware "
     "blocked variant wins at every omega tested."),
    ("A3", "Ablation: idealized model vs contended NoC", [],
     "bench_a03_model_vs_noc.py",
     ["a03_model_vs_noc.txt"],
     "The F&M cost model's 'predictable time' claim holds for spread "
     "mappings (<10% queueing inflation for owner-computes stencil and "
     "tree reduce) and breaks exactly where it should — convergent bursts "
     "that serialize on one link."),
    ("A4", "Ablation: PRAM depth vs physical distance (scan geometry)", [],
     "bench_a04_scan_geometry.py",
     ["a04_scan_geometry.txt"],
     "The panel's disagreement in one table: Blelloch's log-depth tree "
     "scan beats the serial offset chain >2x on a 2-D grid, but on a 1-D "
     "row both need a signal to travel ~p pitches and the PRAM's log-p "
     "advantage evaporates — Dally's physics point, measured."),
    ("A5", "Ablation: hidden parallelism of random-order sequential algorithms", [],
     "bench_a05_incremental.py",
     ["a05_incremental.txt", "a05_parallelism.txt"],
     "Blelloch's 'sequential algorithms are actually parallel in a random "
     "order', measured: on a path, sorted-order greedy coloring/BST "
     "insertion have dependence depth n while random orders stay at "
     "O(log n); available parallelism (work/depth) grows ~ n/log n."),
    ("A7", "Ablation: work-efficient PRAM list ranking (ruling sets)", [],
     "bench_a07_work_efficiency.py",
     ["a07_work_efficiency.txt", "a07_per_element.txt"],
     "Vishkin's 'work efficient PRAM algorithms' program, measured on its "
     "flagship problem: Wyllie pointer jumping costs Theta(n log n) work "
     "(work/element grows 36 -> 60 across the sweep) while sparse ruling "
     "sets stay at Theta(n) (~11 work/element, flat), both with step "
     "counts orders below n."),
    ("A8", "Ablation: tailoring memory-per-PE to the application family", [],
     "bench_a08_memory_tailoring.py",
     ["a08_memory_tailoring.txt", "a08_storage_check.txt"],
     "Section 3's architecture-tailoring knob measured: spreading a "
     "streaming workload over 4 PEs shrinks the required memory tile "
     ">= 2x, but the edit-distance wavefront barely saves (each PE's band "
     "keeps ~N cells live) — per-application sizing is real; the storage "
     "legality check enforces the chosen tile exactly at the boundary."),
    ("A6", "Ablation: the work-depth model's locality extension", [],
     "bench_a06_schedule_locality.py",
     ["a06_schedule_locality.txt"],
     "Section 2's 'simple extensions that support accounting for "
     "locality': replaying schedules through per-worker private caches "
     "shows two schedules with identical Brent makespans differing 16x in "
     "misses — FIFO interleaving thrashes working sets, work stealing's "
     "depth-first order pays each chain's set roughly once."),
]

NON_EXECUTABLE = """\
## Non-executable claims

The panel statements also contain sociological and forecasting claims with
no executable content; we record them as out of scope rather than
pretending to test them:

* Vishkin: the chicken-and-egg "killer app" impasse, the monopoly risk,
  and education-policy arguments (Section 5).
* Martonosi: the post-ISA verification agenda is a research direction, not
  a measurable claim (Section 4); the package's lowering + verification
  round trip (tests in `tests/core/test_lowering.py`) gestures at it.
* Yelick: market-pressure and benchmark-influence observations (Section 6).
"""

HEADER = """\
# EXPERIMENTS — paper vs. measured

This panel paper has **no tables or figures**; its evaluation surface is
the set of quantitative claims inside the panelists' statements.  Each
claim (C1-C17, indexed in DESIGN.md) has a benchmark in `benchmarks/` that
regenerates the relevant numbers; the tables below are the artifacts of an
actual run (`pytest benchmarks/ --benchmark-only`), stitched together by
`tools/gen_experiments.py`.

Summary: **C1-C12, C14-C17 reproduce** within the stated tolerances (many
exactly — they are arithmetic identities of the paper's technology
constants, which is itself the verification that the models implement
those constants correctly).  **C13 reproduces in trend** with its limiting
factor measured and reported.  Eight ablations (A1-A8) probe the design
choices the panel statements call out.  One **finding**: the worked
example's mapping is illegal exactly as printed and needs a hop+1 skew
(details under C8).

"""


def main() -> None:
    parts = [HEADER]
    for exp_id, title, claim_ids, bench, artifacts, verdict in EXPERIMENTS:
        parts.append(f"## {exp_id}: {title}\n")
        for cid in claim_ids:
            base = cid.split(" ")[0]
            if base in CLAIMS:
                c = CLAIMS[base]
                parts.append(f"> “{c.quote}” (Section {c.section})\n")
        parts.append(f"*Bench:* `benchmarks/{bench}`\n")
        parts.append(f"**Verdict.** {verdict}\n")
        for art in artifacts:
            path = OUT / art
            if path.exists():
                parts.append("```text")
                parts.append(path.read_text().rstrip())
                parts.append("```\n")
            else:
                parts.append(f"*(artifact {art} missing — run the benchmarks)*\n")
    parts.append(NON_EXECUTABLE)
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(parts))
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")


if __name__ == "__main__":
    main()
