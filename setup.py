"""Legacy setuptools shim.

Kept so `pip install -e .` works in offline environments where the PEP-517
editable path is unavailable (it requires the `wheel` package).  All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
