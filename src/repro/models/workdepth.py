"""The work-depth (work-span) model: computation DAGs and Brent's bound.

Blelloch's panel statement (Section 2) names this model as the RAM's
rightful parallel successor:

    "At least for multicore machines, there are parallel models that are
    simple, use simple constructs in programming languages, and support
    cost mappings down to the machine level that reasonably capture real
    performance.  This includes the fork-join work-depth (or work-span)
    model."

A computation is a directed acyclic graph of tasks; **work** W is the total
task time and **span** (depth) D is the weight of the longest path.  The
model's "cost mapping down to the machine level" is Brent's theorem: any
greedy schedule on P processors finishes in time

    max(W/P, D)  <=  T_P  <=  W/P + D            (unit tasks: (W-D)/P + D)

Claim C10 in DESIGN.md checks this bound empirically against the greedy and
work-stealing schedulers in :mod:`repro.runtime.scheduler`.

This module owns the :class:`Dag` structure used across the package (the
fork-join recorder in :mod:`repro.runtime.fork_join` produces one, the
schedulers consume one) and the analytical work/span computations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
import numpy as np

__all__ = ["Dag", "DagError", "brent_bounds", "greedy_schedule_length"]


class DagError(Exception):
    """Raised for malformed DAGs (cycles, unknown nodes, bad durations)."""


class Dag:
    """A computation DAG with weighted (integer-duration) task nodes.

    Nodes are dense integer ids assigned by :meth:`add_node`.  Edges point
    from a task to tasks that depend on it.  The structure is append-only,
    which keeps analyses (work, span, topological order) cacheable.
    """

    def __init__(self) -> None:
        self.durations: list[int] = []
        self.successors: list[list[int]] = []
        self.predecessors: list[list[int]] = []
        self._topo_cache: list[int] | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_node(self, duration: int = 1) -> int:
        """Add a task taking ``duration`` time units; returns its id."""
        if duration < 0:
            raise DagError(f"duration must be non-negative, got {duration}")
        self.durations.append(int(duration))
        self.successors.append([])
        self.predecessors.append([])
        self._topo_cache = None
        return len(self.durations) - 1

    def add_edge(self, u: int, v: int) -> None:
        """Add dependence ``u -> v`` (v cannot start until u completes)."""
        n = len(self.durations)
        if not (0 <= u < n and 0 <= v < n):
            raise DagError(f"edge ({u}, {v}) references unknown node")
        if u == v:
            raise DagError(f"self-loop on node {u}")
        self.successors[u].append(v)
        self.predecessors[v].append(u)
        self._topo_cache = None

    @property
    def n_nodes(self) -> int:
        return len(self.durations)

    @property
    def n_edges(self) -> int:
        return sum(len(s) for s in self.successors)

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #

    def topological_order(self) -> list[int]:
        """Kahn topological order; raises :class:`DagError` on a cycle."""
        if self._topo_cache is not None:
            return self._topo_cache
        n = self.n_nodes
        indeg = np.array([len(p) for p in self.predecessors], dtype=np.int64)
        stack = [i for i in range(n) if indeg[i] == 0]
        order: list[int] = []
        while stack:
            u = stack.pop()
            order.append(u)
            for v in self.successors[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    stack.append(v)
        if len(order) != n:
            raise DagError("graph contains a cycle")
        self._topo_cache = order
        return order

    def work(self) -> int:
        """W: total duration over all tasks."""
        return int(sum(self.durations))

    def span(self) -> int:
        """D: weight of the heaviest path (the model's 'depth')."""
        dist = self._longest_finish_times()
        return int(dist.max()) if self.n_nodes else 0

    def _longest_finish_times(self) -> np.ndarray:
        """Earliest possible finish time of each node with unbounded processors."""
        n = self.n_nodes
        finish = np.zeros(n, dtype=np.int64)
        for u in self.topological_order():
            start = 0
            for p in self.predecessors[u]:
                if finish[p] > start:
                    start = finish[p]
            finish[u] = start + self.durations[u]
        return finish

    def critical_path(self) -> list[int]:
        """One heaviest path, as a list of node ids from a source to a sink."""
        if self.n_nodes == 0:
            return []
        finish = self._longest_finish_times()
        node = int(np.argmax(finish))
        path = [node]
        while self.predecessors[node]:
            preds = self.predecessors[node]
            node = max(preds, key=lambda p: finish[p])
            path.append(node)
        path.reverse()
        return path

    def parallelism(self) -> float:
        """W/D — the model's measure of available parallelism."""
        d = self.span()
        return self.work() / d if d else float("inf")

    # ------------------------------------------------------------------ #
    # generators for tests/benches
    # ------------------------------------------------------------------ #

    @staticmethod
    def chain(n: int, duration: int = 1) -> "Dag":
        """A fully serial chain: W = n*duration = D."""
        d = Dag()
        prev = None
        for _ in range(n):
            node = d.add_node(duration)
            if prev is not None:
                d.add_edge(prev, node)
            prev = node
        return d

    @staticmethod
    def independent(n: int, duration: int = 1) -> "Dag":
        """n independent tasks: W = n*duration, D = duration."""
        d = Dag()
        for _ in range(n):
            d.add_node(duration)
        return d

    @staticmethod
    def binary_tree_reduction(n_leaves: int, duration: int = 1) -> "Dag":
        """A balanced reduction tree over ``n_leaves`` leaves."""
        if n_leaves < 1:
            raise DagError("need at least one leaf")
        d = Dag()
        frontier = [d.add_node(duration) for _ in range(n_leaves)]
        while len(frontier) > 1:
            nxt = []
            for i in range(0, len(frontier) - 1, 2):
                parent = d.add_node(duration)
                d.add_edge(frontier[i], parent)
                d.add_edge(frontier[i + 1], parent)
                nxt.append(parent)
            if len(frontier) % 2:
                nxt.append(frontier[-1])
            frontier = nxt
        return d

    @staticmethod
    def random_dag(
        n: int, edge_prob: float, seed: int = 0, max_duration: int = 1
    ) -> "Dag":
        """A random DAG (edges only forward in id order) for property tests."""
        rng = np.random.default_rng(seed)
        d = Dag()
        for _ in range(n):
            d.add_node(int(rng.integers(1, max_duration + 1)))
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < edge_prob:
                    d.add_edge(u, v)
        return d


def brent_bounds(work: int, span: int, p: int) -> tuple[int, int]:
    """Brent's theorem bounds on greedy P-processor schedule length.

    Returns ``(lower, upper)`` with

        lower = max(ceil(W/P), D)
        upper = floor((W - D) / P) + D

    Any greedy schedule satisfies ``lower <= T_P <= upper`` (the upper form
    is the unit-task statement; for weighted tasks ``W/P + D`` also holds
    and is implied since ``floor((W-D)/P) + D <= W/P + D``).
    """
    if p < 1:
        raise ValueError("p must be positive")
    if span > work:
        raise ValueError(f"span {span} cannot exceed work {work}")
    lower = max(math.ceil(work / p), span)
    upper = (work - span) // p + span
    return lower, upper


def greedy_schedule_length(dag: Dag, p: int) -> int:
    """Length of the canonical greedy (level-by-level) schedule on P workers.

    Semantics: at every time step, if k tasks are ready, min(k, P) of them
    execute (FIFO among ready tasks).  Tasks with duration d occupy a worker
    for d consecutive steps (non-preemptive).  This is the schedule Brent's
    theorem reasons about; the richer simulators (with utilization traces
    and work stealing) live in :mod:`repro.runtime.scheduler`.
    """
    from repro.runtime.scheduler import greedy_schedule

    return greedy_schedule(dag, p).length
