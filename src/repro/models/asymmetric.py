"""Asymmetric read/write cost model.

Blelloch, Section 2: "There are even reasonably simple extensions that
support accounting for locality, as well as asymmetry in read-write costs."

The asymmetric RAM (ARAM) charges omega >= 1 for a write and 1 for a read —
the standard model for non-volatile memories where writes are much more
expensive than reads.  We provide:

*  :func:`asymmetric_cost` — cost of a raw address trace;
*  :func:`asymmetric_cache_cost` — the (M, B, omega) variant where only the
   traffic *below* the cache is charged asymmetrically (misses cost 1 per
   block read, dirty writebacks cost omega per block written), which is the
   form used by write-efficient algorithm analyses;
*  :class:`AsymmetricCounts` — the breakdown both return.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.machines.cachesim import ideal_cache

__all__ = ["AsymmetricCounts", "asymmetric_cost", "asymmetric_cache_cost"]

Trace = Iterable[tuple[str, int]]


@dataclass(frozen=True)
class AsymmetricCounts:
    """Reads, writes, and the omega-weighted total."""

    reads: int
    writes: int
    omega: float

    @property
    def cost(self) -> float:
        return self.reads + self.omega * self.writes

    @property
    def symmetric_cost(self) -> int:
        return self.reads + self.writes


def asymmetric_cost(trace: Trace, omega: float = 1.0) -> AsymmetricCounts:
    """Charge 1 per read and ``omega`` per write over a raw trace."""
    if omega < 1.0:
        raise ValueError(f"omega must be >= 1 (writes cannot be cheaper), got {omega}")
    reads = writes = 0
    for kind, _addr in trace:
        if kind == "r":
            reads += 1
        elif kind == "w":
            writes += 1
        else:
            raise ValueError(f"bad trace record kind {kind!r}")
    return AsymmetricCounts(reads, writes, omega)


def asymmetric_cache_cost(
    trace: Trace,
    capacity_words: int,
    block_words: int,
    omega: float = 1.0,
) -> AsymmetricCounts:
    """The asymmetric *external-memory* cost: only below-cache traffic counts.

    Misses are block reads (cost 1 each); dirty evictions are block writes
    (cost omega each).  Remaining dirty blocks are flushed at the end —
    otherwise an algorithm could hide all its writes in the cache.
    """
    if omega < 1.0:
        raise ValueError(f"omega must be >= 1, got {omega}")
    cache = ideal_cache(capacity_words, block_words)
    for kind, addr in trace:
        cache.access(addr, write=(kind == "w"))
    # final flush of dirty residents
    dirty_resident = sum(
        1 for s in cache._sets for d in s.values() if d
    )
    reads = cache.stats.misses
    writes = cache.stats.writebacks + dirty_resident
    return AsymmetricCounts(reads, writes, omega)
