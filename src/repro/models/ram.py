"""The Random Access Machine: an instrumented word-RAM interpreter.

Paper Section 2 (Blelloch):

    "It is easy to understand, for example, how the algorithmic concept of
    summing the elements of a sequence can be converted to a for loop at
    the language level, and a sequence of RAM instructions roughly
    consisting of a load, add to a register, increment a register, compare,
    and conditional jump."

This module implements exactly that machine: a register machine over an
unbounded word-addressed memory, with a tiny assembler so programs can be
written the way textbooks write them.  The interpreter counts instructions
by class (loads, stores, ALU ops, branches) so the unit-cost RAM measure —
and refinements that charge loads/stores differently — can be computed from
one execution.

The instruction set (three-address, register-register):

======================  =====================================================
``li rd, imm``          load immediate
``mv rd, ra``           register move
``ld rd, (ra)``         load from memory address in ``ra``
``st (ra), rs``         store ``rs`` to memory address in ``ra``
``add/sub/mul rd, ra, rb``  arithmetic
``div/mod rd, ra, rb``  integer division / remainder (toward zero)
``min/max rd, ra, rb``  minimum / maximum
``addi rd, ra, imm``    add immediate (also the canonical "increment")
``muli rd, ra, imm``    multiply by immediate
``beq/bne/blt/bge ra, rb, label``  conditional branches
``jmp label``           unconditional branch
``halt``                stop
======================  =====================================================

Example — the paper's "sum the elements of a sequence"::

    prog = assemble('''
        ; r1 = base, r2 = n  ->  r0 = sum
            li   r0, 0
            li   r3, 0          ; i = 0
    loop:   bge  r3, r2, done
            add  r4, r1, r3
            ld   r5, (r4)       ; load
            add  r0, r0, r5     ; add to a register
            addi r3, r3, 1      ; increment a register
            jmp  loop           ; compare + conditional jump
    done:   halt
    ''')
    ram = RAM()
    ram.memory.store_array(100, [3, 1, 4, 1, 5])
    ram.run(prog, registers={1: 100, 2: 5})
    assert ram.registers[0] == 14
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Instruction",
    "Program",
    "Memory",
    "RAM",
    "RAMError",
    "assemble",
    "sum_program",
]

ALU_OPS = {"add", "sub", "mul", "div", "mod", "min", "max"}
ALU_IMM_OPS = {"addi", "muli"}
BRANCH_OPS = {"beq", "bne", "blt", "bge"}
OPCODES = (
    {"li", "mv", "ld", "st", "jmp", "halt"} | ALU_OPS | ALU_IMM_OPS | BRANCH_OPS
)


class RAMError(Exception):
    """Raised on malformed programs or runtime faults (bad opcode, div by 0)."""


@dataclass(frozen=True)
class Instruction:
    """One decoded RAM instruction.

    ``args`` holds register numbers and immediates positionally, already
    resolved (labels become instruction indices at assembly time).
    """

    op: str
    args: tuple[int, ...]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.op} {', '.join(map(str, self.args))}"


@dataclass(frozen=True)
class Program:
    """An assembled RAM program: instructions plus the label table."""

    instructions: tuple[Instruction, ...]
    labels: Mapping[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)


_LINE_RE = re.compile(
    r"^\s*(?:(?P<label>[A-Za-z_]\w*)\s*:)?\s*(?P<body>[^;]*?)\s*(?:;.*)?$"
)


def _parse_operand(tok: str, labels: Mapping[str, int]) -> tuple[str, int | str]:
    tok = tok.strip()
    if m := re.fullmatch(r"r(\d+)", tok):
        return "reg", int(m.group(1))
    if m := re.fullmatch(r"\(\s*r(\d+)\s*\)", tok):
        return "mem", int(m.group(1))
    if re.fullmatch(r"-?\d+", tok):
        return "imm", int(tok)
    if re.fullmatch(r"[A-Za-z_]\w*", tok):
        return "label", tok
    raise RAMError(f"cannot parse operand {tok!r}")


def assemble(source: str) -> Program:
    """Assemble textual RAM assembly into a :class:`Program`.

    Two passes: the first collects labels, the second resolves operands.
    Comments start with ``;``.  Raises :class:`RAMError` on syntax errors,
    unknown opcodes, or undefined labels.
    """
    lines: list[tuple[str | None, str]] = []
    for raw in source.splitlines():
        m = _LINE_RE.match(raw)
        if m is None:  # pragma: no cover - regex matches everything
            raise RAMError(f"unparseable line: {raw!r}")
        label, body = m.group("label"), m.group("body").strip()
        if label is None and not body:
            continue
        lines.append((label, body))

    # pass 1: label -> instruction index
    labels: dict[str, int] = {}
    idx = 0
    for label, body in lines:
        if label is not None:
            if label in labels:
                raise RAMError(f"duplicate label {label!r}")
            labels[label] = idx
        if body:
            idx += 1

    # pass 2: decode
    instructions: list[Instruction] = []
    for _label, body in lines:
        if not body:
            continue
        parts = body.split(None, 1)
        op = parts[0].lower()
        if op not in OPCODES:
            raise RAMError(f"unknown opcode {op!r} in {body!r}")
        operand_str = parts[1] if len(parts) > 1 else ""
        operands = [s for s in (t.strip() for t in operand_str.split(",")) if s]
        parsed = [_parse_operand(tok, labels) for tok in operands]

        def expect(kinds: Sequence[str]) -> tuple[int, ...]:
            if len(parsed) != len(kinds):
                raise RAMError(f"{op}: expected {len(kinds)} operands in {body!r}")
            out = []
            for (kind, val), want in zip(parsed, kinds):
                if want == "target":
                    if kind == "label":
                        if val not in labels:
                            raise RAMError(f"undefined label {val!r}")
                        out.append(labels[val])  # type: ignore[index]
                    elif kind == "imm":
                        out.append(val)
                    else:
                        raise RAMError(f"{op}: bad branch target in {body!r}")
                elif kind != want:
                    raise RAMError(
                        f"{op}: expected {want}, got {kind} ({val!r}) in {body!r}"
                    )
                else:
                    out.append(val)  # type: ignore[arg-type]
            return tuple(out)  # type: ignore[return-value]

        if op == "li":
            args = expect(["reg", "imm"])
        elif op == "mv":
            args = expect(["reg", "reg"])
        elif op == "ld":
            args = expect(["reg", "mem"])
        elif op == "st":
            args = expect(["mem", "reg"])
        elif op in ALU_OPS:
            args = expect(["reg", "reg", "reg"])
        elif op in ALU_IMM_OPS:
            args = expect(["reg", "reg", "imm"])
        elif op in BRANCH_OPS:
            args = expect(["reg", "reg", "target"])
        elif op == "jmp":
            args = expect(["target"])
        else:  # halt
            args = expect([])
        instructions.append(Instruction(op, args))

    return Program(tuple(instructions), labels)


class Memory:
    """Unbounded word-addressed memory (sparse, integer words).

    Also records the address trace when ``trace=True`` so the same program
    run can feed the cache simulators in :mod:`repro.machines.cachesim`.
    """

    def __init__(self, trace: bool = False) -> None:
        self._words: dict[int, int] = {}
        self.trace_enabled = trace
        self.trace: list[tuple[str, int]] = []

    def load(self, addr: int) -> int:
        if addr < 0:
            raise RAMError(f"negative address {addr}")
        if self.trace_enabled:
            self.trace.append(("r", addr))
        return self._words.get(addr, 0)

    def store(self, addr: int, value: int) -> None:
        if addr < 0:
            raise RAMError(f"negative address {addr}")
        if self.trace_enabled:
            self.trace.append(("w", addr))
        self._words[addr] = int(value)

    def store_array(self, base: int, values: Iterable[int]) -> None:
        """Bulk-initialize memory without touching counters or the trace."""
        for i, v in enumerate(values):
            self._words[base + i] = int(v)

    def load_array(self, base: int, n: int) -> list[int]:
        """Bulk-read memory without touching counters or the trace."""
        return [self._words.get(base + i, 0) for i in range(n)]


@dataclass
class InstructionCounts:
    """Instruction counts by class; ``total`` is the unit-cost RAM time."""

    loads: int = 0
    stores: int = 0
    alu: int = 0
    branches: int = 0
    moves: int = 0

    @property
    def total(self) -> int:
        return self.loads + self.stores + self.alu + self.branches + self.moves

    @property
    def memory_ops(self) -> int:
        return self.loads + self.stores

    def as_dict(self) -> dict[str, int]:
        return {
            "loads": self.loads,
            "stores": self.stores,
            "alu": self.alu,
            "branches": self.branches,
            "moves": self.moves,
            "total": self.total,
        }


class RAM:
    """The word-RAM interpreter.

    Parameters
    ----------
    trace_memory:
        If true, every load/store is appended to ``memory.trace`` as
        ``('r'|'w', addr)`` for cache simulation.
    max_steps:
        Safety bound on executed instructions (default 10 million).
    """

    def __init__(self, trace_memory: bool = False, max_steps: int = 10_000_000) -> None:
        self.memory = Memory(trace=trace_memory)
        self.registers: dict[int, int] = {}
        self.counts = InstructionCounts()
        self.max_steps = max_steps

    # ------------------------------------------------------------------ #

    def _reg(self, r: int) -> int:
        return self.registers.get(r, 0)

    def run(self, program: Program, registers: Mapping[int, int] | None = None) -> InstructionCounts:
        """Execute ``program`` to ``halt`` (or off the end) and return counts.

        ``registers`` pre-loads register values (e.g. argument pointers).
        Counts accumulate across calls; use a fresh :class:`RAM` per
        measurement.
        """
        if registers:
            for r, v in registers.items():
                self.registers[r] = int(v)
        pc = 0
        n = len(program.instructions)
        steps = 0
        while 0 <= pc < n:
            steps += 1
            if steps > self.max_steps:
                raise RAMError(f"exceeded max_steps={self.max_steps}")
            ins = program.instructions[pc]
            op, a = ins.op, ins.args
            pc += 1
            if op == "ld":
                self.registers[a[0]] = self.memory.load(self._reg(a[1]))
                self.counts.loads += 1
            elif op == "st":
                self.memory.store(self._reg(a[0]), self._reg(a[1]))
                self.counts.stores += 1
            elif op == "add":
                self.registers[a[0]] = self._reg(a[1]) + self._reg(a[2])
                self.counts.alu += 1
            elif op == "sub":
                self.registers[a[0]] = self._reg(a[1]) - self._reg(a[2])
                self.counts.alu += 1
            elif op == "mul":
                self.registers[a[0]] = self._reg(a[1]) * self._reg(a[2])
                self.counts.alu += 1
            elif op == "div":
                d = self._reg(a[2])
                if d == 0:
                    raise RAMError("division by zero")
                self.registers[a[0]] = int(self._reg(a[1]) / d)
                self.counts.alu += 1
            elif op == "mod":
                d = self._reg(a[2])
                if d == 0:
                    raise RAMError("modulo by zero")
                q = int(self._reg(a[1]) / d)
                self.registers[a[0]] = self._reg(a[1]) - q * d
                self.counts.alu += 1
            elif op == "min":
                self.registers[a[0]] = min(self._reg(a[1]), self._reg(a[2]))
                self.counts.alu += 1
            elif op == "max":
                self.registers[a[0]] = max(self._reg(a[1]), self._reg(a[2]))
                self.counts.alu += 1
            elif op == "addi":
                self.registers[a[0]] = self._reg(a[1]) + a[2]
                self.counts.alu += 1
            elif op == "muli":
                self.registers[a[0]] = self._reg(a[1]) * a[2]
                self.counts.alu += 1
            elif op == "li":
                self.registers[a[0]] = a[1]
                self.counts.moves += 1
            elif op == "mv":
                self.registers[a[0]] = self._reg(a[1])
                self.counts.moves += 1
            elif op == "beq":
                self.counts.branches += 1
                if self._reg(a[0]) == self._reg(a[1]):
                    pc = a[2]
            elif op == "bne":
                self.counts.branches += 1
                if self._reg(a[0]) != self._reg(a[1]):
                    pc = a[2]
            elif op == "blt":
                self.counts.branches += 1
                if self._reg(a[0]) < self._reg(a[1]):
                    pc = a[2]
            elif op == "bge":
                self.counts.branches += 1
                if self._reg(a[0]) >= self._reg(a[1]):
                    pc = a[2]
            elif op == "jmp":
                self.counts.branches += 1
                pc = a[0]
            elif op == "halt":
                break
            else:  # pragma: no cover - assembler rejects unknown ops
                raise RAMError(f"unknown opcode {op!r}")
        return self.counts


#: Source of the paper's "sum a sequence" program (Section 2's example).
SUM_SOURCE = """
; inputs: r1 = base address, r2 = n ; output: r0 = sum
        li   r0, 0
        li   r3, 0
loop:   bge  r3, r2, done
        add  r4, r1, r3
        ld   r5, (r4)
        add  r0, r0, r5
        addi r3, r3, 1
        jmp  loop
done:   halt
"""


def sum_program() -> Program:
    """The paper's canonical example: sum a sequence on the RAM."""
    return assemble(SUM_SOURCE)
