"""The PRAM: a lock-step shared-memory machine with conflict semantics.

Vishkin's panel statement (Section 5) is a defence of the PRAM as the
algorithm-friendly abstraction: "work efficient PRAM algorithms" and the
XMT "PRAM-on-chip" platform that supports them.  Dally's statement attacks
the same model: "the RAM and PRAM models ... hide the reality of spatial
distribution".  To have the argument at all we need an executable PRAM,
which this module provides.

The model: ``p`` processors proceed in lock step over a shared word memory.
Each step every active processor performs one operation — a shared-memory
read, a shared-memory write, or a local compute.  Within a step all reads
happen before all writes (the standard PRAM step = read / compute / write
convention).  Access conflicts are policed according to the machine's
:class:`ConcurrencyMode`:

=================  ==========================================================
``EREW``           no two processors may touch the same address in a step
``CREW``           concurrent reads allowed, writes must be exclusive
``CRCW_COMMON``    concurrent writes allowed iff all write the same value
``CRCW_ARBITRARY`` an arbitrary (seeded, reproducible) writer wins
``CRCW_PRIORITY``  the lowest-numbered processor wins
=================  ==========================================================

Accounting follows the theory: **time** is the number of lock-step rounds,
**work** is the total number of operations performed (so an algorithm is
work-efficient when its work matches the best serial RAM count
asymptotically).

Two APIs are provided:

*  a **vectorized step API** (:meth:`PRAM.par_read` / :meth:`PRAM.par_write`
   / :meth:`PRAM.par_compute`) where each call is one PRAM step executed by
   an explicit set of processors — convenient for data-parallel algorithms
   written with numpy;
*  an **SPMD API** (:meth:`PRAM.run_spmd`) where every processor runs a
   Python generator yielding :func:`read` / :func:`write` / :func:`compute`
   effects, and the machine advances all of them in lock step — convenient
   for irregular per-processor code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Generator, Iterable, Sequence

import numpy as np

__all__ = [
    "ConcurrencyMode",
    "ConflictError",
    "PRAM",
    "read",
    "write",
    "compute",
]


class ConcurrencyMode(enum.Enum):
    """PRAM conflict-resolution discipline."""

    EREW = "erew"
    CREW = "crew"
    CRCW_COMMON = "crcw-common"
    CRCW_ARBITRARY = "crcw-arbitrary"
    CRCW_PRIORITY = "crcw-priority"

    @property
    def allows_concurrent_reads(self) -> bool:
        return self is not ConcurrencyMode.EREW

    @property
    def allows_concurrent_writes(self) -> bool:
        return self in (
            ConcurrencyMode.CRCW_COMMON,
            ConcurrencyMode.CRCW_ARBITRARY,
            ConcurrencyMode.CRCW_PRIORITY,
        )


class ConflictError(Exception):
    """A step violated the machine's concurrency mode.

    Attributes
    ----------
    kind:
        ``"read"`` or ``"write"``.
    address:
        One offending address.
    processors:
        The processors that collided there.
    """

    def __init__(self, kind: str, address: int, processors: Sequence[int]) -> None:
        self.kind = kind
        self.address = int(address)
        self.processors = [int(p) for p in processors]
        super().__init__(
            f"illegal concurrent {kind} of address {self.address} by "
            f"processors {self.processors}"
        )


# --------------------------------------------------------------------------- #
# SPMD effect constructors (what kernels yield)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class _Read:
    addr: int


@dataclass(frozen=True)
class _Write:
    addr: int
    value: int


@dataclass(frozen=True)
class _Compute:
    amount: int = 1


def read(addr: int) -> _Read:
    """SPMD effect: read shared memory at ``addr`` (value is sent back)."""
    return _Read(int(addr))


def write(addr: int, value: int) -> _Write:
    """SPMD effect: write ``value`` to shared memory at ``addr``."""
    return _Write(int(addr), int(value))


def compute(amount: int = 1) -> _Compute:
    """SPMD effect: perform ``amount`` units of local computation."""
    return _Compute(int(amount))


class PRAM:
    """A ``p``-processor PRAM over ``size`` words of shared memory.

    Parameters
    ----------
    n_processors:
        Number of lock-step processors ``p``.
    size:
        Shared-memory size in words.
    mode:
        Conflict discipline (default CREW, the textbook middle ground).
    seed:
        Seed for the CRCW-arbitrary winner choice, making runs reproducible
        while still exercising the non-determinism the model permits.
    """

    def __init__(
        self,
        n_processors: int,
        size: int,
        mode: ConcurrencyMode = ConcurrencyMode.CREW,
        seed: int = 0,
    ) -> None:
        if n_processors < 1:
            raise ValueError("need at least one processor")
        if size < 0:
            raise ValueError("memory size must be non-negative")
        self.p = int(n_processors)
        self.mode = mode
        self.memory = np.zeros(int(size), dtype=np.int64)
        self.steps = 0
        self.work = 0
        self.max_active = 0
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _validate_pids(self, pids: np.ndarray) -> np.ndarray:
        pids = np.asarray(pids, dtype=np.int64)
        if pids.size == 0:
            return pids
        if pids.min() < 0 or pids.max() >= self.p:
            raise ValueError(f"processor ids must lie in [0, {self.p})")
        if np.unique(pids).size != pids.size:
            raise ValueError("duplicate processor ids in one step")
        return pids

    def _validate_addrs(self, addrs: np.ndarray) -> np.ndarray:
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.size and (addrs.min() < 0 or addrs.max() >= self.memory.size):
            bad = addrs[(addrs < 0) | (addrs >= self.memory.size)][0]
            raise IndexError(f"address {bad} out of range [0, {self.memory.size})")
        return addrs

    def _account(self, active: int) -> None:
        if active:
            self.steps += 1
            self.work += active
            self.max_active = max(self.max_active, active)

    @staticmethod
    def _first_duplicate(addrs: np.ndarray, pids: np.ndarray) -> tuple[int, np.ndarray] | None:
        if addrs.size < 2:
            return None
        order = np.argsort(addrs, kind="stable")
        sorted_addrs = addrs[order]
        dup = sorted_addrs[1:] == sorted_addrs[:-1]
        if not dup.any():
            return None
        a = sorted_addrs[:-1][dup][0]
        return int(a), pids[addrs == a]

    # ------------------------------------------------------------------ #
    # vectorized step API
    # ------------------------------------------------------------------ #

    def par_read(self, pids: Iterable[int], addrs: Iterable[int]) -> np.ndarray:
        """One PRAM step in which processors ``pids`` read ``addrs``.

        Returns the values read, aligned with ``pids``.  Raises
        :class:`ConflictError` if two processors read the same address on an
        EREW machine.
        """
        pids_a = self._validate_pids(np.asarray(list(pids) if not isinstance(pids, np.ndarray) else pids))
        addrs_a = self._validate_addrs(np.asarray(list(addrs) if not isinstance(addrs, np.ndarray) else addrs))
        if pids_a.size != addrs_a.size:
            raise ValueError("pids and addrs must have equal length")
        if not self.mode.allows_concurrent_reads:
            hit = self._first_duplicate(addrs_a, pids_a)
            if hit is not None:
                raise ConflictError("read", hit[0], hit[1])
        self._account(pids_a.size)
        return self.memory[addrs_a].copy()

    def par_write(
        self, pids: Iterable[int], addrs: Iterable[int], values: Iterable[int]
    ) -> None:
        """One PRAM step in which processors ``pids`` write ``values`` to ``addrs``.

        Conflicts are resolved per the machine's mode; EREW/CREW machines
        raise :class:`ConflictError` on any collision, CRCW-common raises if
        colliding writers disagree.
        """
        pids_a = self._validate_pids(np.asarray(list(pids) if not isinstance(pids, np.ndarray) else pids))
        addrs_a = self._validate_addrs(np.asarray(list(addrs) if not isinstance(addrs, np.ndarray) else addrs))
        vals_a = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=np.int64)
        if not (pids_a.size == addrs_a.size == vals_a.size):
            raise ValueError("pids, addrs and values must have equal length")
        self._account(pids_a.size)
        if pids_a.size == 0:
            return
        self._resolve_writes(pids_a, addrs_a, vals_a)

    def par_compute(self, n_active: int, amount: int = 1) -> None:
        """One PRAM step of local computation by ``n_active`` processors.

        ``amount`` scales the work charged per processor (the step count
        still advances by one, matching the lock-step convention).
        """
        if n_active < 0 or n_active > self.p:
            raise ValueError(f"n_active must lie in [0, {self.p}]")
        if n_active:
            self.steps += 1
            self.work += n_active * max(1, int(amount))
            self.max_active = max(self.max_active, n_active)

    def _resolve_writes(
        self, pids: np.ndarray, addrs: np.ndarray, vals: np.ndarray
    ) -> None:
        if not self.mode.allows_concurrent_writes:
            hit = self._first_duplicate(addrs, pids)
            if hit is not None:
                raise ConflictError("write", hit[0], hit[1])
            self.memory[addrs] = vals
            return

        # group colliding writers; resolve per mode
        order = np.lexsort((pids, addrs))
        a_s, p_s, v_s = addrs[order], pids[order], vals[order]
        boundaries = np.flatnonzero(np.r_[True, a_s[1:] != a_s[:-1]])
        group_ends = np.r_[boundaries[1:], a_s.size]

        if self.mode is ConcurrencyMode.CRCW_COMMON:
            for start, end in zip(boundaries, group_ends):
                group_vals = v_s[start:end]
                if not (group_vals == group_vals[0]).all():
                    raise ConflictError("write", a_s[start], p_s[start:end])
            self.memory[a_s[boundaries]] = v_s[boundaries]
        elif self.mode is ConcurrencyMode.CRCW_PRIORITY:
            # lexsort put lowest pid first within each address group
            self.memory[a_s[boundaries]] = v_s[boundaries]
        else:  # CRCW_ARBITRARY: seeded random winner per group
            sizes = group_ends - boundaries
            offsets = (self._rng.random(boundaries.size) * sizes).astype(np.int64)
            winners = boundaries + np.minimum(offsets, sizes - 1)
            self.memory[a_s[winners]] = v_s[winners]

    # ------------------------------------------------------------------ #
    # Brent-style emulation: n > p parallel ops in ceil(n/p) steps
    # ------------------------------------------------------------------ #

    def read_all(self, addrs: Iterable[int]) -> np.ndarray:
        """Read ``len(addrs)`` cells using all p processors in rounds.

        This is the standard Brent emulation of an n-processor step on a
        p-processor machine: ceil(n/p) actual steps.  Conflict rules apply
        within each round.
        """
        addrs_a = np.asarray(
            list(addrs) if not isinstance(addrs, np.ndarray) else addrs,
            dtype=np.int64,
        )
        out = np.empty(addrs_a.size, dtype=np.int64)
        for k in range(0, addrs_a.size, self.p):
            chunk = addrs_a[k : k + self.p]
            out[k : k + self.p] = self.par_read(np.arange(chunk.size), chunk)
        return out

    def write_all(self, addrs: Iterable[int], values: Iterable[int]) -> None:
        """Write ``len(addrs)`` cells using all p processors in rounds."""
        addrs_a = np.asarray(
            list(addrs) if not isinstance(addrs, np.ndarray) else addrs,
            dtype=np.int64,
        )
        vals_a = np.asarray(
            list(values) if not isinstance(values, np.ndarray) else values,
            dtype=np.int64,
        )
        if addrs_a.size != vals_a.size:
            raise ValueError("addrs and values must have equal length")
        for k in range(0, addrs_a.size, self.p):
            chunk = addrs_a[k : k + self.p]
            self.par_write(
                np.arange(chunk.size), chunk, vals_a[k : k + self.p]
            )

    # ------------------------------------------------------------------ #
    # SPMD API
    # ------------------------------------------------------------------ #

    def run_spmd(
        self,
        kernel: Callable[[int], Generator],
        n_threads: int | None = None,
    ) -> None:
        """Run ``kernel(pid)`` on processors ``0..n_threads-1`` in lock step.

        ``kernel`` is a generator function yielding :func:`read`,
        :func:`write`, or :func:`compute` effects.  The value of a ``yield
        read(a)`` expression is the word read.  All processors advance by
        exactly one effect per step; a processor whose generator returns
        simply drops out.  Reads in a step observe memory *before* that
        step's writes.
        """
        n = self.p if n_threads is None else int(n_threads)
        if n < 0 or n > self.p:
            raise ValueError(f"n_threads must lie in [0, {self.p}]")
        gens: dict[int, Generator] = {pid: kernel(pid) for pid in range(n)}
        pending: dict[int, object] = {}
        # prime the generators
        for pid in list(gens):
            try:
                pending[pid] = next(gens[pid])
            except StopIteration:
                del gens[pid]

        while gens:
            reads: list[tuple[int, _Read]] = []
            writes: list[tuple[int, _Write]] = []
            compute_work = 0
            for pid, eff in pending.items():
                if isinstance(eff, _Read):
                    reads.append((pid, eff))
                elif isinstance(eff, _Write):
                    writes.append((pid, eff))
                elif isinstance(eff, _Compute):
                    compute_work += eff.amount
                else:
                    raise TypeError(
                        f"processor {pid} yielded {eff!r}; expected read/write/compute"
                    )

            active = len(pending)
            self.steps += 1
            self.work += len(reads) + len(writes) + compute_work
            self.max_active = max(self.max_active, active)

            # read phase (before writes land)
            results: dict[int, int] = {}
            if reads:
                r_pids = np.array([p for p, _ in reads], dtype=np.int64)
                r_addrs = self._validate_addrs(
                    np.array([e.addr for _, e in reads], dtype=np.int64)
                )
                if not self.mode.allows_concurrent_reads:
                    hit = self._first_duplicate(r_addrs, r_pids)
                    if hit is not None:
                        raise ConflictError("read", hit[0], hit[1])
                vals = self.memory[r_addrs]
                for (pid, _), v in zip(reads, vals):
                    results[pid] = int(v)

            # write phase
            if writes:
                w_pids = np.array([p for p, _ in writes], dtype=np.int64)
                w_addrs = self._validate_addrs(
                    np.array([e.addr for _, e in writes], dtype=np.int64)
                )
                w_vals = np.array([e.value for _, e in writes], dtype=np.int64)
                self._resolve_writes(w_pids, w_addrs, w_vals)

            # advance every processor by one effect
            new_pending: dict[int, object] = {}
            for pid in list(pending):
                gen = gens[pid]
                try:
                    if pid in results:
                        new_pending[pid] = gen.send(results[pid])
                    else:
                        new_pending[pid] = next(gen)
                except StopIteration:
                    del gens[pid]
            pending = new_pending

    # ------------------------------------------------------------------ #

    def counters(self) -> dict[str, int]:
        """Work/time counters as a plain dict (for reports)."""
        return {
            "steps": self.steps,
            "work": self.work,
            "processors": self.p,
            "max_active": self.max_active,
        }
