"""The RAM-plus-cache model and cache-oblivious analysis (claim C11).

Blelloch, Section 2: "it is easy to add a one level cache to the RAM model,
and hundreds of algorithms have been developed in such a model.  When
algorithms developed in this model satisfy a property of being cache
oblivious, they will also work effectively on a multilevel cache."

This module is the thin analytical layer over the trace-driven simulators
in :mod:`repro.machines.cachesim`:

*  :func:`ideal_cache_misses` — Q(trace; M, B) in the one-level ideal-cache
   model;
*  :func:`multilevel_misses` — per-level misses on an arbitrary hierarchy,
   used to check the "also work effectively on a multilevel cache" claim;
*  closed-form miss bounds for the matmul variants the benches sweep, so
   measured curves can be compared against theory shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.machines.cachesim import (
    CacheHierarchy,
    LRUCache,
    ideal_cache,
    run_trace,
)

__all__ = [
    "ideal_cache_misses",
    "multilevel_misses",
    "HierarchySpec",
    "bound_matmul_naive",
    "bound_matmul_oblivious",
    "bound_scan",
]

Trace = Iterable[tuple[str, int]]


def ideal_cache_misses(trace: Trace, capacity_words: int, block_words: int) -> int:
    """Q(trace; M, B): misses of the trace on an (M, B) ideal cache."""
    cache = ideal_cache(capacity_words, block_words)
    run_trace(cache, trace)
    return cache.stats.misses


@dataclass(frozen=True)
class HierarchySpec:
    """One level of a multilevel hierarchy: (capacity M_i, block B_i, distance)."""

    capacity_words: int
    block_words: int
    distance_mm: float = 0.5
    name: str = "L?"

    def build(self) -> LRUCache:
        return LRUCache(
            self.capacity_words,
            self.block_words,
            assoc=None,
            name=self.name,
            distance_mm=self.distance_mm,
        )


#: A plausible laptop-like hierarchy in words (32 KiB / 256 KiB / 8 MiB with
#: 8-byte words and 64-byte lines -> 8-word blocks).
DEFAULT_HIERARCHY = (
    HierarchySpec(4 * 1024, 8, 0.5, "L1"),
    HierarchySpec(32 * 1024, 8, 2.0, "L2"),
    HierarchySpec(1024 * 1024, 8, 10.0, "L3"),
)


def multilevel_misses(
    trace: Trace, specs: Sequence[HierarchySpec] = DEFAULT_HIERARCHY
) -> list[int]:
    """Misses at each level of a multilevel LRU hierarchy, nearest first.

    The trace is materialized once so callers can pass generators.
    """
    hier = CacheHierarchy([s.build() for s in specs])
    run_trace(hier, trace)
    return hier.miss_counts()


# --------------------------------------------------------------------------- #
# closed-form shapes for the bench comparisons
# --------------------------------------------------------------------------- #


def bound_matmul_naive(n: int, capacity_words: int, block_words: int) -> float:
    """Ideal-cache miss bound shape for naive (ijk) n x n matmul.

    When a row of B no longer fits, the inner product streams B with no
    block reuse across k: Q = Theta(n^3) for n > M (word-per-miss on the
    column-major-strided operand), Theta(n^3 / B) when rows fit.
    We return the standard coarse bound n^3 / B + n^2, adequate for
    shape comparison (who wins / crossover), not absolute prediction.
    """
    if n <= 0:
        return 0.0
    if n * block_words > capacity_words:
        return float(n**3)  # strided operand misses every access
    return n**3 / block_words + n**2


def bound_matmul_oblivious(n: int, capacity_words: int, block_words: int) -> float:
    """Ideal-cache bound for recursive cache-oblivious matmul.

    Q(n) = Theta(n^3 / (B * sqrt(M)) + n^2 / B + 1) — Frigo et al.'s bound;
    the first term dominates for n^2 > M.
    """
    if n <= 0:
        return 0.0
    m, b = float(capacity_words), float(block_words)
    return n**3 / (b * math.sqrt(m)) + n**2 / b + 1.0


def bound_scan(n: int, block_words: int) -> float:
    """Streaming lower bound: a single pass misses ~ n / B times."""
    if n <= 0:
        return 0.0
    return n / block_words
