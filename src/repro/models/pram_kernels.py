"""Classic PRAM kernels and the separations between its variants.

Part of making the PRAM "executable enough to argue about" (the Section 2
/ Section 5 debate) is exhibiting the model-theoretic folklore as runnable
code.  The canonical separation: computing the OR of n bits takes **one
step** on a common-CRCW PRAM (everyone whose bit is set writes 1 to the
same cell — they agree, so the write is legal) but **Omega(log n)** steps
on EREW (information can only fan in by constant factors per step).  Both
sides are implemented here and the gap is asserted in the tests — and,
symmetrically, the EREW implementation *raises* on the CRCW trick, because
the conflict checker knows the difference.

Also here: broadcast (the dual separation — O(1) with concurrent reads,
Theta(log n) by doubling on EREW) and max-finding (constant-time on
common-CRCW with n^2 processors, the other textbook surprise).
"""

from __future__ import annotations

import numpy as np

from repro.models.pram import PRAM, ConcurrencyMode

__all__ = [
    "or_crcw",
    "or_erew",
    "broadcast_crew",
    "broadcast_erew",
    "max_crcw_quadratic",
]


def or_crcw(bits: np.ndarray) -> tuple[int, PRAM]:
    """OR of n bits in O(1) steps on common-CRCW.

    Step 1: processor 0 clears the result cell.  Step 2: every processor
    whose bit is set writes 1 — all writers agree, so common-CRCW allows
    it.  Two steps, independent of n.
    """
    bits = np.asarray(bits, dtype=np.int64)
    n = bits.size
    if n < 1:
        raise ValueError("need at least one bit")
    pram = PRAM(n, n + 1, mode=ConcurrencyMode.CRCW_COMMON)
    pram.memory[:n] = bits
    pram.par_write([0], [n], [0])
    writers = np.flatnonzero(bits != 0)
    if writers.size:
        pram.par_write(writers, np.full(writers.size, n), np.ones(writers.size, dtype=np.int64))
    return int(pram.memory[n]), pram


def or_erew(bits: np.ndarray) -> tuple[int, PRAM]:
    """OR of n bits on EREW: binary-tree combining, Theta(log n) steps.

    (power-of-two n for the clean tree.)
    """
    bits = np.asarray(bits, dtype=np.int64)
    n = bits.size
    if n < 1 or n & (n - 1):
        raise ValueError("need power-of-two n")
    pram = PRAM(max(n // 2, 1), n, mode=ConcurrencyMode.EREW)
    pram.memory[:n] = (bits != 0).astype(np.int64)
    stride = 1
    while stride < n:
        ks = np.arange(0, n, 2 * stride, dtype=np.int64)
        a = pram.read_all(ks)
        b = pram.read_all(ks + stride)
        pram.write_all(ks, np.maximum(a, b))
        stride *= 2
    return int(pram.memory[0]), pram


def broadcast_crew(value: int, n: int) -> tuple[np.ndarray, PRAM]:
    """One value to n cells in O(1) steps with concurrent reads."""
    if n < 1:
        raise ValueError("n must be >= 1")
    pram = PRAM(n, n + 1, mode=ConcurrencyMode.CREW)
    pram.par_write([0], [n], [int(value)])
    pids = np.arange(n, dtype=np.int64)
    vals = pram.par_read(pids, np.full(n, n, dtype=np.int64))  # concurrent!
    pram.par_write(pids, pids, vals)
    return pram.memory[:n].copy(), pram


def broadcast_erew(value: int, n: int) -> tuple[np.ndarray, PRAM]:
    """One value to n cells on EREW: recursive doubling, Theta(log n).

    Round k copies cells [0, 2^k) to [2^k, 2^{k+1}) — every address is
    touched by exactly one processor per round.
    """
    if n < 1 or n & (n - 1):
        raise ValueError("need power-of-two n")
    pram = PRAM(n, n, mode=ConcurrencyMode.EREW)
    pram.par_write([0], [0], [int(value)])
    have = 1
    while have < n:
        src = np.arange(have, dtype=np.int64)
        vals = pram.par_read(np.arange(src.size), src)
        pram.par_write(np.arange(src.size), src + have, vals)
        have *= 2
    return pram.memory[:n].copy(), pram


def max_crcw_quadratic(values: np.ndarray) -> tuple[int, PRAM]:
    """Maximum of n values in O(1) steps on common-CRCW with n^2 processors.

    The textbook surprise: every ordered pair (i, j) with values[i] <
    values[j] knocks out candidate i; the survivors all hold the maximum
    (ties allowed — all agreeing writers write 1, which common-CRCW
    permits).  Steps: constant; work: Theta(n^2) — a work/time tradeoff
    no work-efficient algorithm would make, which is the point.
    """
    values = np.asarray(values, dtype=np.int64)
    n = values.size
    if n < 1:
        raise ValueError("need at least one value")
    pram = PRAM(n * n, 2 * n + 1, mode=ConcurrencyMode.CRCW_COMMON)
    pram.memory[:n] = values
    loser_base = n
    # step 1: clear loser flags (n processors)
    pram.par_write(np.arange(n), loser_base + np.arange(n), np.zeros(n, dtype=np.int64))
    # step 2: pair (i, j) marks i a loser when values[i] < values[j]
    i_idx, j_idx = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    i_flat, j_flat = i_idx.ravel(), j_idx.ravel()
    losers = values[i_flat] < values[j_flat]
    if losers.any():
        pids = np.flatnonzero(losers)  # one processor per losing pair
        pram.par_write(pids, loser_base + i_flat[losers],
                       np.ones(int(losers.sum()), dtype=np.int64))
    pram.par_compute(n * n)  # the comparisons themselves
    # step 3: each surviving candidate writes the answer (all agree)
    survivors = np.flatnonzero(pram.memory[loser_base : loser_base + n] == 0)
    pram.par_write(survivors, np.full(survivors.size, 2 * n),
                   values[survivors])
    return int(pram.memory[2 * n]), pram
