"""A small library of RAM assembly programs.

Section 2's argument for the RAM is pedagogical: "The RAM abstraction ...
has allowed us to educate innumerable students in the art of algorithm
design."  This module is that curriculum in miniature — the classic
kernels as assembly for the instrumented word-RAM, each with a documented
register calling convention, used by the multicore benches (instruction
mixes, cache behaviour) and by tests that check the *measured* instruction
counts against the theory the algorithms are taught with (linear scans are
linear, binary search is logarithmic, bubble sort is quadratic).

Conventions: inputs in low registers as documented per program; results in
``r0`` unless stated; memory is caller-prepared.  All programs terminate
with ``halt``.
"""

from __future__ import annotations

from repro.models.ram import Program, assemble

__all__ = [
    "memcpy_program",
    "binary_search_program",
    "fibonacci_program",
    "bubble_sort_program",
    "strided_sum_program",
    "dot_product_program",
]


def memcpy_program() -> Program:
    """Copy ``r3`` words from address ``r1`` to address ``r2``."""
    return assemble("""
        ; r1 = src, r2 = dst, r3 = n
            li   r4, 0
    loop:   bge  r4, r3, done
            add  r5, r1, r4
            ld   r6, (r5)
            add  r7, r2, r4
            st   (r7), r6
            addi r4, r4, 1
            jmp  loop
    done:   halt
    """)


def binary_search_program() -> Program:
    """Find ``r3`` in the sorted array at base ``r1`` of length ``r2``.

    Returns the index in ``r0``, or -1 if absent.  O(log n) iterations —
    the measured branch count is checked against that in the tests.
    """
    return assemble("""
        ; r1 = base, r2 = n, r3 = key -> r0 = index or -1
            li   r4, 0          ; lo
            mv   r5, r2         ; hi (exclusive)
            li   r0, -1
    loop:   bge  r4, r5, done
            add  r6, r4, r5
            li   r7, 2
            div  r6, r6, r7     ; mid
            add  r8, r1, r6
            ld   r9, (r8)
            beq  r9, r3, found
            blt  r9, r3, right
            mv   r5, r6         ; hi = mid
            jmp  loop
    right:  addi r4, r6, 1      ; lo = mid + 1
            jmp  loop
    found:  mv   r0, r6
    done:   halt
    """)


def fibonacci_program() -> Program:
    """Iterative Fibonacci: ``r0 = fib(r1)`` (fib(0)=0, fib(1)=1)."""
    return assemble("""
        ; r1 = n -> r0 = fib(n)
            li   r0, 0
            li   r2, 1
            li   r3, 0          ; i
    loop:   bge  r3, r1, done
            add  r4, r0, r2
            mv   r0, r2
            mv   r2, r4
            addi r3, r3, 1
            jmp  loop
    done:   halt
    """)


def bubble_sort_program() -> Program:
    """In-place bubble sort of ``r2`` words at base ``r1``.

    O(n^2) — the RAM curriculum's canonical bad example, measured as such.
    """
    return assemble("""
        ; r1 = base, r2 = n
            li   r3, 0          ; i
    outer:  addi r4, r2, -1
            bge  r3, r4, done
            li   r5, 0          ; j
    inner:  sub  r6, r2, r3
            addi r6, r6, -1
            bge  r5, r6, next
            add  r7, r1, r5
            ld   r8, (r7)
            addi r9, r7, 1
            ld   r10, (r9)
            bge  r10, r8, skip
            st   (r7), r10
            st   (r9), r8
    skip:   addi r5, r5, 1
            jmp  inner
    next:   addi r3, r3, 1
            jmp  outer
    done:   halt
    """)


def strided_sum_program() -> Program:
    """Sum every ``r3``-th word of the ``r2``-word array at ``r1``.

    Same instruction mix as the contiguous sum but a cache-hostile access
    pattern — the pair the multicore cache studies compare.
    """
    return assemble("""
        ; r1 = base, r2 = n (words), r3 = stride -> r0 = sum
            li   r0, 0
            li   r4, 0          ; offset
    loop:   bge  r4, r2, done
            add  r5, r1, r4
            ld   r6, (r5)
            add  r0, r0, r6
            add  r4, r4, r3
            jmp  loop
    done:   halt
    """)


def dot_product_program() -> Program:
    """``r0 = sum(a[i] * b[i])`` for arrays at ``r1`` and ``r2`` of length ``r3``."""
    return assemble("""
        ; r1 = base a, r2 = base b, r3 = n -> r0
            li   r0, 0
            li   r4, 0
    loop:   bge  r4, r3, done
            add  r5, r1, r4
            ld   r6, (r5)
            add  r7, r2, r4
            ld   r8, (r7)
            mul  r9, r6, r8
            add  r0, r0, r9
            addi r4, r4, 1
            jmp  loop
    done:   halt
    """)
