"""Abstract machine cost models.

Blelloch's panel statement (paper Section 2) frames the whole debate around
the Random Access Machine and its parallel successors: the RAM "has served
the computing community amazingly well as a bridge from algorithms, through
programming languages, to machines"; it is "easy to add a one level cache";
and for parallelism "the fork-join work-depth (or work-span) model" with
"reasonably simple extensions that support accounting for locality, as well
as asymmetry in read-write costs".

This subpackage makes each of those models executable and instrumented:

ram
    A word-RAM register machine with an assembler and instruction counters.
pram
    Lock-step PRAM with EREW/CREW/CRCW conflict semantics and work/step
    accounting.
workdepth
    Computation DAGs with work/span analysis and the Brent bound.
cache
    The RAM + ideal-cache extension (one-level and multilevel) for
    cache-aware and cache-oblivious analysis.
asymmetric
    The asymmetric read/write cost extension (NVM-style writes cost omega).
"""

from repro.models.ram import RAM, Program, assemble
from repro.models.pram import PRAM, ConflictError, ConcurrencyMode
from repro.models.workdepth import Dag, brent_bounds, greedy_schedule_length

__all__ = [
    "RAM",
    "Program",
    "assemble",
    "PRAM",
    "ConflictError",
    "ConcurrencyMode",
    "Dag",
    "brent_bounds",
    "greedy_schedule_length",
]
