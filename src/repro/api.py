"""repro.api — the stable public facade over the F&M toolkit.

One import, four verbs, every capability::

    from repro import api

    g = api.compile("stencil", n=16, steps=2)          # function
    ev = api.evaluate(g, api.MachineSpec(8, 1))        # cost of one mapping
    rows = api.search("stencil", (8, 1), method="sweep")  # mapping search
    stats = api.simulate([(256, 8, None, "L1")], trace)   # cache simulation

Everything the serving layer (:mod:`repro.serve`), the benchmarks, and
the examples need goes through these entry points, so there is exactly
one behaviour to test: the serve workers call the same functions a
library user calls, which is what makes the served-vs-direct
bit-identity oracle meaningful.

Design rules
------------
*  **Typed requests.** :class:`WorkloadSpec` / :class:`MachineSpec` /
   :class:`FomSpec` are small frozen dataclasses with lossless JSON
   round-trips (``as_jsonable`` / ``from_jsonable``) — the wire protocol
   in :mod:`repro.serve.protocol` is a direct serialization of them.
*  **No new math.** The facade only routes to the library
   (:func:`repro.core.cost.evaluate_cost`, the searchers in
   :mod:`repro.core.search`, :func:`repro.machines.cachesim.
   run_trace_cached`); results are the library's own objects, so the
   PR-2 differential oracle applies unchanged.
*  **Registry, not pickles.** Functions are named workloads compiled
   from parameters (``compile("matmul", n=4)``), never serialized graph
   objects — a JSON request can therefore describe any workload without
   trusting the sender with code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping as TMapping, Sequence

from repro.core.cost import CostReport, evaluate_cost, evaluate_cost_cached
from repro.core.default_mapper import (
    default_mapping,
    schedule_asap,
    serial_mapping,
)
from repro.core.function import DataflowGraph
from repro.core.legality import LegalityReport, check_legality
from repro.core.mapping import GridSpec, Mapping
from repro.core.memo import MemoCache
from repro.core.search import (
    FigureOfMerit,
    SearchEngine,
    SearchResult,
    anneal,
    engine_for_backend,
    exhaustive_search,
    sweep_placements,
)
from repro.machines.cachesim import run_trace_cached

__all__ = [
    "WorkloadSpec",
    "MachineSpec",
    "FomSpec",
    "EvaluateResult",
    "ApiError",
    "workload_names",
    "register_workload",
    "unregister_workload",
    "compile",
    "evaluate",
    "search",
    "simulate",
    "score",
    "SEARCH_METHODS",
    "MAPPERS",
]

#: Search methods :func:`search` accepts.
SEARCH_METHODS = ("sweep", "anneal", "exhaustive")

#: Built-in mapping strategies :func:`evaluate` accepts.
MAPPERS = ("default", "serial")

_SCALARS = (int, float, str, bool)


class ApiError(ValueError):
    """A malformed facade request (unknown workload, bad params, ...).

    The serve layer maps this to the ``INVALID_REQUEST`` rejection code;
    anything else a facade call raises is a genuine internal error.
    """


# ---------------------------------------------------------------------- #
# typed request dataclasses


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, parameterized function from the workload registry.

    ``params`` is a sorted tuple of (name, scalar) pairs so the spec is
    hashable and its JSON form is canonical — two specs describing the
    same workload compare (and content-address) equal.
    """

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        for key, value in self.params:
            if not isinstance(key, str) or not isinstance(value, _SCALARS):
                raise ApiError(
                    f"workload param {key!r}={value!r} must be a (str, scalar) pair"
                )

    @staticmethod
    def of(name: str, **params: Any) -> "WorkloadSpec":
        return WorkloadSpec(name, tuple(sorted(params.items())))

    def as_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def as_jsonable(self) -> dict[str, Any]:
        return {"name": self.name, "params": self.as_dict()}

    @staticmethod
    def from_jsonable(doc: Any) -> "WorkloadSpec":
        if isinstance(doc, str):
            return WorkloadSpec.of(doc)
        if not isinstance(doc, dict) or "name" not in doc:
            raise ApiError(f"workload spec must be a name or {{name, params}}: {doc!r}")
        params = doc.get("params", {})
        if not isinstance(params, dict):
            raise ApiError(f"workload params must be an object: {params!r}")
        return WorkloadSpec.of(str(doc["name"]), **params)


@dataclass(frozen=True)
class MachineSpec:
    """The target machine, JSON-able: a W x H grid (defaults elsewhere).

    Only the geometry is exposed over the wire for now; technology and
    storage-bound knobs keep their library defaults, so a spec is always
    reproducible from its JSON form alone.
    """

    width: int
    height: int = 1

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ApiError(
                f"machine grid must have positive extent, got "
                f"{self.width}x{self.height}"
            )

    def grid(self) -> GridSpec:
        return GridSpec(self.width, self.height)

    def as_jsonable(self) -> dict[str, int]:
        return {"width": self.width, "height": self.height}

    @staticmethod
    def from_jsonable(doc: Any) -> "MachineSpec":
        if isinstance(doc, (list, tuple)) and len(doc) == 2:
            return MachineSpec(int(doc[0]), int(doc[1]))
        if isinstance(doc, dict) and "width" in doc:
            return MachineSpec(int(doc["width"]), int(doc.get("height", 1)))
        raise ApiError(f"machine spec must be [w, h] or {{width, height}}: {doc!r}")


@dataclass(frozen=True)
class FomSpec:
    """Weights of the weighted-product figure of merit (lower is better)."""

    time: float = 1.0
    energy: float = 0.0
    footprint: float = 0.0

    def fom(self) -> FigureOfMerit:
        return FigureOfMerit(self.time, self.energy, self.footprint)

    def as_jsonable(self) -> dict[str, float]:
        return {"time": self.time, "energy": self.energy, "footprint": self.footprint}

    @staticmethod
    def from_jsonable(doc: Any) -> "FomSpec":
        if doc is None:
            return FomSpec()
        if isinstance(doc, dict):
            extra = set(doc) - {"time", "energy", "footprint"}
            if extra:
                raise ApiError(f"unknown FoM weights: {sorted(extra)}")
            spec = FomSpec(
                float(doc.get("time", 0.0)),
                float(doc.get("energy", 0.0)),
                float(doc.get("footprint", 0.0)),
            )
            # an explicit dict means exactly these weights (omitted = 0) —
            # {"energy": 1} is energy-only, not EDP-by-default
            if spec.time == spec.energy == spec.footprint == 0.0:
                raise ApiError("FoM weights must include a positive weight")
            return spec
        raise ApiError(f"FoM spec must be {{time, energy, footprint}}: {doc!r}")


@dataclass
class EvaluateResult:
    """One mapped evaluation: the mapping, its cost, and (optionally) the
    figure of merit and legality report the caller asked for."""

    mapping: Mapping
    cost: CostReport
    fom: float | None = None
    legality: LegalityReport | None = None


# ---------------------------------------------------------------------- #
# the workload registry


def _sum_squares_graph(n: int = 32) -> DataflowGraph:
    """The quickstart function: sum of squares of an n-vector, squared in
    parallel then reduced by a balanced tree."""
    if n < 1:
        raise ApiError(f"sum_squares needs n >= 1, got {n}")
    g = DataflowGraph()
    frontier = []
    for i in range(n):
        x = g.input("x", (i,))
        frontier.append(g.op("*", x, x, index=(i,), group="sq"))
    while len(frontier) > 1:
        nxt = []
        for k in range(0, len(frontier) - 1, 2):
            nxt.append(
                g.op("+", frontier[k], frontier[k + 1], index=(k,), group="tree")
            )
        if len(frontier) % 2:
            nxt.append(frontier[-1])
        frontier = nxt
    g.mark_output(frontier[0], "sum_sq")
    return g


def _stencil(n: int = 16, steps: int = 2) -> DataflowGraph:
    from repro.algorithms.stencil import stencil_graph

    return stencil_graph(n, steps)


def _matmul(n: int = 3, systolic: bool = False) -> DataflowGraph:
    from repro.algorithms.matmul_fm import matmul_graph

    return matmul_graph(n, systolic=systolic)


def _edit_distance(n: int = 8, cell: str = "paper") -> DataflowGraph:
    from repro.algorithms.edit_distance import edit_distance_graph

    return edit_distance_graph(n, cell=cell)


def _fft(n: int = 8, variant: str = "dit") -> DataflowGraph:
    from repro.algorithms.fft import fft_graph

    return fft_graph(n, variant=variant)


#: name -> builder(**params) -> DataflowGraph.  Lazily imported so the
#: facade costs nothing until a workload is compiled.
_WORKLOADS: dict[str, Callable[..., DataflowGraph]] = {
    "sum_squares": _sum_squares_graph,
    "stencil": _stencil,
    "matmul": _matmul,
    "edit_distance": _edit_distance,
    "fft": _fft,
}

#: per-process compile cache: WorkloadSpec -> DataflowGraph.  Graphs are
#: treated as immutable after construction everywhere in this package, so
#: sharing one instance across requests is safe and keeps shard workers
#: warm between requests.
_COMPILED: dict[WorkloadSpec, DataflowGraph] = {}


def workload_names() -> list[str]:
    """The registered workload names, sorted."""
    return sorted(_WORKLOADS)


def register_workload(name: str, builder: Callable[..., DataflowGraph]) -> None:
    """Register (or replace) a named workload builder.

    Builders must be deterministic pure functions of their keyword
    parameters — the serve layer relies on a spec compiling to the same
    graph in every process.
    """
    _WORKLOADS[name] = builder


def unregister_workload(name: str) -> None:
    """Remove a registered workload (and its compiled graphs)."""
    _WORKLOADS.pop(name, None)
    for spec in [s for s in _COMPILED if s.name == name]:
        del _COMPILED[spec]


def _as_workload(workload: Any, params: dict[str, Any]) -> WorkloadSpec:
    if isinstance(workload, WorkloadSpec):
        if params:
            raise ApiError("pass params inside the WorkloadSpec, not alongside it")
        return workload
    if isinstance(workload, str):
        return WorkloadSpec.of(workload, **params)
    raise ApiError(f"workload must be a name or WorkloadSpec, got {workload!r}")


def _as_grid(machine: Any) -> GridSpec:
    if isinstance(machine, GridSpec):
        return machine
    if isinstance(machine, MachineSpec):
        return machine.grid()
    return MachineSpec.from_jsonable(machine).grid()


def _as_fom(fom: Any) -> FigureOfMerit:
    if fom is None:
        return FigureOfMerit.fastest()
    if isinstance(fom, FigureOfMerit):
        return fom
    if isinstance(fom, FomSpec):
        return fom.fom()
    return FomSpec.from_jsonable(fom).fom()


def _resolve_backend(backend: Any) -> str:
    """Resolve/validate a ``backend=`` argument, mapping bad names to
    :class:`ApiError` like every other malformed facade request."""
    from repro.compiled import resolve_backend

    try:
        return resolve_backend(backend)
    except ValueError as exc:
        raise ApiError(str(exc)) from exc


# ---------------------------------------------------------------------- #
# the four verbs (plus score)


def compile(workload: Any, **params: Any) -> DataflowGraph:  # noqa: A001
    """Build the dataflow graph for a named workload.

    ``workload`` may be a registry name (with ``**params``), a
    :class:`WorkloadSpec`, or an already-built :class:`DataflowGraph`
    (returned unchanged, so callers can be generic).
    """
    if isinstance(workload, DataflowGraph):
        if params:
            raise ApiError("cannot apply params to an already-built graph")
        return workload
    spec = _as_workload(workload, params)
    cached = _COMPILED.get(spec)
    if cached is not None:
        return cached
    builder = _WORKLOADS.get(spec.name)
    if builder is None:
        raise ApiError(
            f"unknown workload {spec.name!r}; registered: {workload_names()}"
        )
    try:
        graph = builder(**spec.as_dict())
    except ApiError:
        raise
    except (TypeError, ValueError) as exc:
        raise ApiError(f"bad params for workload {spec.name!r}: {exc}") from exc
    _COMPILED[spec] = graph
    return graph


def evaluate(
    workload: Any,
    machine: Any,
    mapper: str = "default",
    fom: Any = None,
    check: bool = False,
    cached: bool = False,
    cache: MemoCache | None = None,
    backend: str | None = None,
    **params: Any,
) -> EvaluateResult:
    """Map a workload with a built-in mapper and predict its cost.

    ``mapper`` selects :data:`MAPPERS` (``"default"`` or ``"serial"``);
    ``check=True`` additionally runs the legality checker; ``cached=True``
    routes through the content-addressed memo
    (:func:`repro.core.cost.evaluate_cost_cached`) — bit-identical to the
    direct evaluation, just free on repeats.  ``backend`` selects the
    reference or the compiled cost kernel (``None`` = ``$REPRO_BACKEND``
    or the compiled default); the report is bit-identical either way.
    """
    graph = compile(workload, **params)
    grid = _as_grid(machine)
    resolved = _resolve_backend(backend)
    if mapper == "default":
        mapping = default_mapping(graph, grid)
    elif mapper == "serial":
        mapping = serial_mapping(graph, grid)
    else:
        raise ApiError(f"unknown mapper {mapper!r}; expected one of {MAPPERS}")
    if cached:
        cost = evaluate_cost_cached(graph, mapping, grid, cache, backend=resolved)
    elif resolved == "compiled":
        from repro.compiled import evaluate_cost_compiled, get_program

        cost = evaluate_cost_compiled(get_program(graph, grid), mapping)
    else:
        cost = evaluate_cost(graph, mapping, grid)
    result = EvaluateResult(mapping=mapping, cost=cost, fom=_as_fom(fom)(cost))
    if check:
        result.legality = check_legality(graph, mapping, grid)
    return result


def search(
    workload: Any,
    machine: Any,
    fom: Any = None,
    method: str = "sweep",
    engine: SearchEngine | None = None,
    steps: int = 2_000,
    seed: int = 0,
    max_points: int = 200_000,
    backend: str | None = None,
    **params: Any,
) -> list[SearchResult]:
    """Search the mapping space of a workload; always returns a row list.

    ``method`` selects :data:`SEARCH_METHODS`: ``"sweep"`` returns every
    evaluated point (best first), ``"anneal"`` and ``"exhaustive"`` return
    a single-row list with the winner.  ``engine`` picks an exact engine
    configuration; ``backend`` names one (``"reference"`` | ``"fast"`` |
    ``"compiled"``, ``None`` = ``$REPRO_BACKEND`` or the compiled
    default) — pass at most one of the two.  By the differential oracle
    the rows are bit-identical across engines, which is what lets the
    serve workers run warm compiled engines while promising
    library-identical answers.
    """
    graph = compile(workload, **params)
    grid = _as_grid(machine)
    fig = _as_fom(fom)
    if engine is not None and backend is not None:
        raise ApiError("pass either engine= or backend=, not both")
    if engine is None:
        engine = engine_for_backend(_resolve_backend(backend))
    if method == "sweep":
        return sweep_placements(graph, grid, fig, engine=engine)
    if method == "anneal":
        return [anneal(graph, grid, fig, steps=steps, seed=seed, engine=engine)]
    if method == "exhaustive":
        return [
            exhaustive_search(graph, grid, fig, max_points=max_points, engine=engine)
        ]
    raise ApiError(f"unknown method {method!r}; expected one of {SEARCH_METHODS}")


def simulate(
    levels: Sequence[Sequence[Any]],
    trace: Sequence[tuple[str, int]],
    memo: MemoCache | None = None,
    backend: str | None = None,
) -> dict[str, Any]:
    """Run an address trace through a cache hierarchy, memoized.

    ``levels`` is nearest-first ``(capacity_words, block_words, assoc,
    name)`` rows; ``trace`` is a materialized ``('r'|'w', addr)``
    sequence.  ``backend`` selects the reference per-access loop or the
    compiled array replayer (``None`` = ``$REPRO_BACKEND`` or the
    compiled default); the stats are identical either way.  Returns the
    per-level stats dict of
    :func:`repro.machines.cachesim.run_trace_cached` (treat as
    immutable — it is shared between memo hits).
    """
    if not levels:
        raise ApiError("simulate needs at least one cache level")
    resolved = _resolve_backend(backend)
    spec: list[tuple] = []
    for row in levels:
        if not isinstance(row, (list, tuple)) or not 2 <= len(row) <= 4:
            raise ApiError(
                f"cache level must be (capacity, block[, assoc[, name]]): {row!r}"
            )
        spec.append(tuple(row))
    clean: list[tuple[str, int]] = []
    for entry in trace:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or entry[0] not in ("r", "w")
        ):
            raise ApiError(f"trace entries must be ('r'|'w', addr): {entry!r}")
        clean.append((entry[0], int(entry[1])))
    try:
        return run_trace_cached(spec, clean, memo=memo, backend=resolved)
    except (TypeError, ValueError) as exc:
        raise ApiError(f"bad cache level spec: {exc}") from exc


def score(
    workload: Any,
    machine: Any,
    placement: Any,
    fom: Any = None,
    check: bool = False,
    backend: str | None = None,
    **params: Any,
) -> EvaluateResult:
    """Score one explicit placement of a workload's compute nodes.

    ``placement`` is either a list of ``(x, y)`` pairs — one per compute
    node, in :meth:`DataflowGraph.compute_nodes` order (the same
    convention as the exhaustive searcher's assignments) — or a
    ``{nid: (x, y)}`` mapping.  Non-compute nodes ride along at (0, 0),
    exactly as the searchers place them.  ``backend`` selects the
    reference or the compiled schedule/cost kernels; the result is
    bit-identical either way.
    """
    graph = compile(workload, **params)
    grid = _as_grid(machine)
    compute = graph.compute_nodes()
    if isinstance(placement, TMapping):
        by_node = {int(nid): (int(p[0]), int(p[1])) for nid, p in placement.items()}
    else:
        pairs = list(placement)
        if len(pairs) != len(compute):
            raise ApiError(
                f"placement has {len(pairs)} entries for {len(compute)} "
                "compute nodes (order follows graph.compute_nodes())"
            )
        by_node = {
            nid: (int(p[0]), int(p[1])) for nid, p in zip(compute, pairs)
        }
    for nid, (x, y) in by_node.items():
        if not grid.in_bounds(x, y):
            raise ApiError(f"placement for node {nid} off-grid: ({x}, {y})")
    if _resolve_backend(backend) == "compiled":
        from repro.compiled import (
            evaluate_cost_compiled,
            get_program,
            schedule_compiled,
        )

        fp = get_program(graph, grid)
        px = [by_node.get(nid, (0, 0))[0] for nid in range(fp.n_nodes)]
        py = [by_node.get(nid, (0, 0))[1] for nid in range(fp.n_nodes)]
        mapping = schedule_compiled(fp, px, py)
        cost = evaluate_cost_compiled(fp, mapping)
    else:
        mapping = schedule_asap(graph, grid, lambda nid: by_node.get(nid, (0, 0)))
        cost = evaluate_cost(graph, mapping, grid)
    result = EvaluateResult(mapping=mapping, cost=cost, fom=_as_fom(fom)(cost))
    if check:
        result.legality = check_legality(graph, mapping, grid)
    return result
