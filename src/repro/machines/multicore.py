"""Conventional multicore CPU model: what the panel is arguing *against*.

Paper, Section 3 (Dally): "A modern multicore CPU hides the two physical
realities of parallelism and spatially distributed memory.  Each core is a
parallel engine - issuing up to 8 instructions per cycle and having
hundreds of instructions (size of ROB) in flight at a time.  The cost of
this is a 10,000x loss of efficiency.  The energy overhead of an ADD
instruction is 10,000x times more than the energy required to do the add."

This module is an *accounting* model, not a microarchitectural simulator:
it executes real programs on the instrumented RAM and charges each
instruction the paper's overhead energy, plus data-movement energy through
a cache hierarchy whose levels sit at physical distances.  That is exactly
the level of abstraction at which the paper's 10,000x claim lives, so the
model reproduces the claim *by measurement over a real instruction stream*
(claim C5) rather than by restating the constant.

For parallel executions it provides a bulk-synchronous phase executor
(static chunking + barrier cost per phase) — the standard multicore
execution style that Vishkin's XMT comparison (claim C13) needs a baseline
for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.machines.cachesim import CacheHierarchy, LRUCache
from repro.machines.technology import Technology, TECH_5NM
from repro.models.ram import RAM, InstructionCounts, Program

__all__ = ["MulticoreConfig", "MulticoreResult", "MulticoreMachine"]


@dataclass(frozen=True)
class MulticoreConfig:
    """Parameters of the conventional-multicore accounting model.

    ``issue_width`` models the "up to 8 instructions per cycle" engine: the
    cycle count is instruction count / issue_width plus memory stalls.
    ``barrier_cycles`` is the cost of a bulk-synchronous barrier (global
    synchronization is the "heavyweight mechanism" of Yelick's statement).
    Cache level sizes are in words; distances in mm feed transport energy.
    """

    n_cores: int = 8
    issue_width: int = 8
    barrier_cycles: int = 2_000
    l1_words: int = 4 * 1024
    l2_words: int = 64 * 1024
    l3_words: int = 1024 * 1024
    block_words: int = 8
    l1_distance_mm: float = 0.5
    l2_distance_mm: float = 2.0
    l3_distance_mm: float = 10.0
    l1_hit_cycles: int = 1
    l2_hit_cycles: int = 4
    l3_hit_cycles: int = 12

    def build_hierarchy(self) -> CacheHierarchy:
        return CacheHierarchy(
            [
                LRUCache(self.l1_words, self.block_words, assoc=8,
                         name="L1", distance_mm=self.l1_distance_mm),
                LRUCache(self.l2_words, self.block_words, assoc=8,
                         name="L2", distance_mm=self.l2_distance_mm),
                LRUCache(self.l3_words, self.block_words, assoc=16,
                         name="L3", distance_mm=self.l3_distance_mm),
            ]
        )


@dataclass
class MulticoreResult:
    """Cycles and energy of one multicore execution."""

    cycles: int
    instructions: int
    energy_instruction_overhead_fj: float
    energy_useful_alu_fj: float
    energy_memory_fj: float
    counts: InstructionCounts | None = None
    miss_counts: list[int] = field(default_factory=list)
    mem_accesses: int = 0
    barriers: int = 0

    @property
    def energy_total_fj(self) -> float:
        return (
            self.energy_instruction_overhead_fj
            + self.energy_useful_alu_fj
            + self.energy_memory_fj
        )

    @property
    def overhead_ratio(self) -> float:
        """Total energy per unit of *useful* arithmetic energy.

        The paper's 10,000x claim is about this ratio: what the machine
        spends versus what the arithmetic intrinsically costs.
        """
        if self.energy_useful_alu_fj == 0:
            return math.inf
        return self.energy_total_fj / self.energy_useful_alu_fj


class MulticoreMachine:
    """The conventional-architecture baseline."""

    def __init__(
        self,
        config: MulticoreConfig | None = None,
        tech: Technology = TECH_5NM,
    ) -> None:
        self.config = config or MulticoreConfig()
        self.tech = tech

    # ------------------------------------------------------------------ #
    # single-core instrumented execution
    # ------------------------------------------------------------------ #

    def run_single(
        self,
        program: Program,
        registers: Mapping[int, int] | None = None,
        memory_image: Mapping[int, Sequence[int]] | None = None,
    ) -> tuple[MulticoreResult, RAM]:
        """Execute a RAM program on one core with full accounting.

        ``memory_image`` maps base addresses to arrays stored before the
        run.  Returns (result, ram) so callers can read outputs from the
        RAM's memory/registers.
        """
        ram = RAM(trace_memory=True)
        if memory_image:
            for base, values in memory_image.items():
                ram.memory.store_array(base, values)
        counts = ram.run(program, registers)

        hier = self.config.build_hierarchy()
        stall_cycles = 0
        hit_cost = (
            self.config.l1_hit_cycles,
            self.config.l2_hit_cycles,
            self.config.l3_hit_cycles,
        )
        for kind, addr in ram.memory.trace:
            level = hier.access(addr, write=(kind == "w"))
            if level >= len(hit_cost):
                stall_cycles += self.tech.offchip_cycles()
            else:
                stall_cycles += hit_cost[level]

        cycles = -(-counts.total // self.config.issue_width) + stall_cycles
        result = self._account(counts, hier, cycles)
        result.counts = counts
        return result, ram

    def _account(
        self, counts: InstructionCounts, hier: CacheHierarchy, cycles: int
    ) -> MulticoreResult:
        add_word = self.tech.add_energy_word_fj()
        overhead = counts.total * add_word * self.tech.instruction_overhead_factor
        useful = counts.alu * add_word
        memory = hier.energy_fj(self.tech)
        return MulticoreResult(
            cycles=cycles,
            instructions=counts.total,
            energy_instruction_overhead_fj=overhead,
            energy_useful_alu_fj=useful,
            energy_memory_fj=memory,
            miss_counts=hier.miss_counts(),
            mem_accesses=hier.mem_accesses,
        )

    # ------------------------------------------------------------------ #
    # bulk-synchronous parallel phases
    # ------------------------------------------------------------------ #

    def run_phases(
        self,
        phase_work: Iterable[Sequence[int]],
        instructions_per_item: int = 1,
    ) -> MulticoreResult:
        """Analytic bulk-synchronous execution.

        ``phase_work`` is, per phase, the list of work-item costs (in
        items).  Items are statically chunked over the cores (OpenMP
        ``schedule(static)`` style), each phase ends with a barrier, so

            cycles(phase) = max over cores of (sum of its items)
                            * instructions_per_item / issue_width
                            + barrier_cycles.

        Energy charges every instruction the overhead factor.  No cache
        model here — this executor is for load-imbalance / synchronization
        studies where the memory side is held equal between machines.
        """
        cfg = self.config
        total_items = 0
        cycles = 0
        barriers = 0
        for items in phase_work:
            items = list(items)
            barriers += 1
            if not items:
                cycles += cfg.barrier_cycles
                continue
            total_items += sum(items)
            # static chunking: core c gets items [c*chunk, (c+1)*chunk)
            chunk = -(-len(items) // cfg.n_cores)
            worst = 0
            for c in range(cfg.n_cores):
                load = sum(items[c * chunk : (c + 1) * chunk])
                if load > worst:
                    worst = load
            cycles += (
                -(-worst * instructions_per_item // cfg.issue_width)
                + cfg.barrier_cycles
            )
        instructions = total_items * instructions_per_item
        add_word = self.tech.add_energy_word_fj()
        return MulticoreResult(
            cycles=cycles,
            instructions=instructions,
            energy_instruction_overhead_fj=(
                instructions * add_word * self.tech.instruction_overhead_factor
            ),
            energy_useful_alu_fj=instructions * add_word,
            energy_memory_fj=0.0,
            barriers=barriers,
        )
