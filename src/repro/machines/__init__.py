"""Simulated machine substrates.

The panel paper argues about machines more than it argues about code: Dally's
grid of processors with explicit data movement, Vishkin's XMT PRAM-on-chip,
and the conventional out-of-order multicore both of them criticize.  This
subpackage provides executable stand-ins for all of them, plus the shared
technology parameters and cache simulators they are built on.

Modules
-------
technology
    Energy/delay parameter sets; the 5 nm defaults encode the numbers in
    Dally's panel statement (Section 3 of the paper) exactly.
grid
    The Function-and-Mapping target machine: processors at grid points,
    memory tiles, and a bulk-memory layer; executes mapped programs.
noc
    Network-on-chip with XY routing and contention, used for in-transit
    storage accounting.
multicore
    Conventional multicore model with per-instruction overhead energy.
xmt
    XMT-style PRAM-on-chip with a hardware prefix-sum primitive.
cachesim
    Trace-driven LRU / set-associative / multilevel cache simulators.
"""

from repro.machines.technology import Technology, TECH_5NM

__all__ = ["Technology", "TECH_5NM"]
