"""XMT-style PRAM-on-chip: Vishkin's algorithm-friendly many-core.

Paper, Section 5: "the extensive FPGA-based prototyping of the XMT
PRAM-on-chip platform at UMD ... have shown feasibility of a competitive
scalable general-purpose many-core ... for as-is complete PRAM algorithms"
and (bio) "the XMT architecture, which to a first approximation is about
reducing overheads of PRAM algorithms using hardware primitives".

The signature hardware primitive is **prefix-sum (ps)**: an atomic
fetch-and-add that completes in constant time per round regardless of how
many threads participate, giving O(1) dynamic load balancing and compaction
— the thing that makes *irregular* PRAM algorithms (BFS, connectivity)
cheap on XMT and expensive on a barrier-everything multicore.

Model
-----
*  A **master thread** executes serial sections (charged per instruction).
*  ``spawn(n, kernel)`` starts ``n`` virtual threads executed by ``n_tcus``
   thread-control units.  Virtual threads are Python generators yielding
   :func:`read` / :func:`write` / :func:`ps` / :func:`compute` effects.
*  Execution proceeds in rounds; each live thread performs one effect per
   round, and a round costs ``ceil(live / n_tcus)`` TCU cycles plus the
   uniform memory latency for rounds touching memory (UMA via the
   interconnection network — XMT trades locality for uniformity).
*  Thread start costs ``spawn_overhead_cycles`` *per spawn block* (constant
   hardware broadcast) plus ``thread_start_cycles`` per ceil(n/n_tcus)
   wave — the "low overhead" the architecture is about.
*  ``ps`` effects in the same round to the same location serialize
   *semantically* (each gets a distinct old value, in thread-id order) but
   cost one round — the constant-time hardware prefix-sum.

Energy is charged per executed effect at a light decode overhead
(``instruction_overhead_factor`` of the technology divided by
``overhead_reduction``), reflecting that XMT TCUs are simple in-order
engines, not 8-wide OoO cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

import numpy as np

from repro.machines.technology import Technology, TECH_5NM
from repro.obs import active as _obs_active

__all__ = ["XmtConfig", "XmtResult", "XmtMachine", "read", "write", "ps", "compute"]


@dataclass(frozen=True)
class _Read:
    addr: int


@dataclass(frozen=True)
class _Write:
    addr: int
    value: int


@dataclass(frozen=True)
class _Ps:
    addr: int
    delta: int


@dataclass(frozen=True)
class _Compute:
    amount: int = 1


def read(addr: int) -> _Read:
    """Effect: read shared memory (value is sent back into the generator)."""
    return _Read(int(addr))


def write(addr: int, value: int) -> _Write:
    """Effect: write shared memory (arbitrary-CRCW on collisions)."""
    return _Write(int(addr), int(value))


def ps(addr: int, delta: int = 1) -> _Ps:
    """Effect: hardware prefix-sum — atomic fetch-and-add, old value returned."""
    return _Ps(int(addr), int(delta))


def compute(amount: int = 1) -> _Compute:
    """Effect: local computation."""
    return _Compute(int(amount))


@dataclass(frozen=True)
class XmtConfig:
    """XMT machine parameters."""

    n_tcus: int = 64
    mem_latency_cycles: int = 24       # uniform (UMA) interconnect round trip
    spawn_overhead_cycles: int = 8     # hardware spawn broadcast, per block
    thread_start_cycles: int = 1       # per wave of n_tcus threads
    overhead_reduction: float = 100.0  # TCU decode energy vs OoO-core overhead


@dataclass
class XmtResult:
    """Counters of one XMT execution."""

    cycles: int = 0
    serial_instructions: int = 0
    parallel_effects: int = 0
    spawn_blocks: int = 0
    ps_ops: int = 0
    rounds: int = 0

    def energy_total_fj(self, tech: Technology, config: XmtConfig) -> float:
        """Instruction energy under the lighter TCU decode overhead."""
        add_word = tech.add_energy_word_fj()
        per_instr = add_word * (
            1.0 + tech.instruction_overhead_factor / config.overhead_reduction
        )
        return (self.serial_instructions + self.parallel_effects) * per_instr


class XmtMachine:
    """The PRAM-on-chip: serial master thread + spawn blocks on TCUs."""

    def __init__(
        self,
        size: int,
        config: XmtConfig | None = None,
        tech: Technology = TECH_5NM,
    ) -> None:
        self.config = config or XmtConfig()
        self.tech = tech
        self.memory = np.zeros(int(size), dtype=np.int64)
        self.result = XmtResult()

    # ------------------------------------------------------------------ #

    def serial(self, instructions: int) -> None:
        """Master thread executes ``instructions`` serial operations."""
        if instructions < 0:
            raise ValueError("instruction count must be non-negative")
        self.result.cycles += instructions
        self.result.serial_instructions += instructions

    def sread(self, addr: int) -> int:
        """Master-thread memory read (charged one memory round trip)."""
        self.result.cycles += self.config.mem_latency_cycles
        self.result.serial_instructions += 1
        return int(self.memory[addr])

    def swrite(self, addr: int, value: int) -> None:
        """Master-thread memory write."""
        self.result.cycles += self.config.mem_latency_cycles
        self.result.serial_instructions += 1
        self.memory[addr] = value

    def spawn(self, n_threads: int, kernel: Callable[[int], Generator]) -> None:
        """Run ``kernel(tid)`` for tid in [0, n_threads) to completion.

        See the module docstring for round semantics and costs.
        """
        if n_threads < 0:
            raise ValueError("n_threads must be non-negative")
        sess = _obs_active()
        if sess is None:
            self._spawn(n_threads, kernel)
            return
        before_cycles = self.result.cycles
        before_rounds = self.result.rounds
        before_effects = self.result.parallel_effects
        before_ps = self.result.ps_ops
        with sess.span("xmt.spawn", cat="xmt", threads=n_threads) as span:
            self._spawn(n_threads, kernel)
            span.set_cycles(self.result.cycles - before_cycles).set(
                rounds=self.result.rounds - before_rounds
            )
        m = sess.metrics
        m.counter("xmt.spawn_blocks").inc()
        m.counter("xmt.cycles").add(self.result.cycles - before_cycles)
        m.counter("xmt.rounds").add(self.result.rounds - before_rounds)
        m.counter("xmt.parallel_effects").add(
            self.result.parallel_effects - before_effects
        )
        m.counter("xmt.ps_ops").add(self.result.ps_ops - before_ps)

    def _spawn(self, n_threads: int, kernel: Callable[[int], Generator]) -> None:
        cfg = self.config
        self.result.spawn_blocks += 1
        self.result.cycles += cfg.spawn_overhead_cycles
        if n_threads == 0:
            return
        waves = -(-n_threads // cfg.n_tcus)
        self.result.cycles += waves * cfg.thread_start_cycles

        gens: dict[int, Generator] = {}
        pending: dict[int, object] = {}
        for tid in range(n_threads):
            g = kernel(tid)
            try:
                pending[tid] = next(g)
                gens[tid] = g
            except StopIteration:
                pass

        while gens:
            live = len(gens)
            round_tcu_cycles = -(-live // cfg.n_tcus)
            touches_memory = False
            results: dict[int, int] = {}

            # read phase: all reads see memory before this round's writes
            for tid in sorted(pending):
                eff = pending[tid]
                if isinstance(eff, _Read):
                    touches_memory = True
                    results[tid] = int(self.memory[eff.addr])
            # ps phase: serialized semantics, constant-time hardware
            for tid in sorted(pending):
                eff = pending[tid]
                if isinstance(eff, _Ps):
                    touches_memory = True
                    old = int(self.memory[eff.addr])
                    self.memory[eff.addr] = old + eff.delta
                    results[tid] = old
                    self.result.ps_ops += 1
            # write phase: arbitrary CRCW -> lowest tid wins, deterministic
            written: set[int] = set()
            for tid in sorted(pending):
                eff = pending[tid]
                if isinstance(eff, _Write):
                    touches_memory = True
                    if eff.addr not in written:
                        self.memory[eff.addr] = eff.value
                        written.add(eff.addr)

            self.result.rounds += 1
            self.result.parallel_effects += live
            self.result.cycles += round_tcu_cycles + (
                cfg.mem_latency_cycles if touches_memory else 0
            )

            nxt: dict[int, object] = {}
            for tid in list(pending):
                g = gens[tid]
                try:
                    if tid in results:
                        nxt[tid] = g.send(results[tid])
                    else:
                        eff = pending[tid]
                        if isinstance(eff, _Compute):
                            nxt[tid] = next(g)
                        elif isinstance(eff, (_Write, _Read, _Ps)):
                            nxt[tid] = next(g)
                        else:
                            raise TypeError(
                                f"thread {tid} yielded {eff!r}; expected an "
                                "xmt effect (read/write/ps/compute)"
                            )
                except StopIteration:
                    del gens[tid]
            pending = nxt
