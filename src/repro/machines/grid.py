"""The F&M target machine: processors on a grid, executing mapped programs.

Paper, Section 3: "A programmable target can be realized by putting a
programmable processor at each grid point and surrounding it with many
'tiles' of memory. ... The amount of memory per processor is also a
parameter that can be adjusted to tailor the architecture to a family of
applications."

:class:`GridMachine` takes a (function, mapping) pair and actually runs it:

1.  checks legality (the paper's causality / transit / storage conditions);
2.  executes the dataflow cycle-accurately in mapped time order, moving
    real values between grid points and verifying each arrives before use
    (an independent re-check of causality, by construction of the engine);
3.  verifies outputs against the pure functional evaluation — a mapped
    execution that disagrees with the mathematical definition is a bug in
    the mapping layer, and the machine refuses to report costs for it;
4.  returns the :class:`~repro.core.cost.CostReport` for the run.

An optional contention-aware mode routes every message through the
:class:`~repro.machines.noc.Noc` and reports queueing delay on top of the
model's idealized transit times — quantifying how optimistic the pure
model is for a given mapping.

Fault resilience
----------------
When a :mod:`repro.faults` injection scope is open, the machine survives
the plan's hardware faults instead of crashing:

*  **PE fail-stop** — nodes mapped to dead PEs are deterministically
   re-homed to the nearest live PE, the graph is re-scheduled ASAP on the
   degraded grid, and the new mapping is re-checked through
   :mod:`repro.core.legality` before running.  The honest price shows up
   in the returned :class:`~repro.core.cost.CostReport` (longer wires,
   later cycles).  If *every* PE is dead, strict mode raises
   :class:`GridExecutionError`; non-strict mode records the fault as
   unrecovered and runs on the original mapping.
*  **Transient bit flips** — flipped compute results are caught by the
   phase-3 verification and the execution replays clean (the flip is
   transient); a flip that never reaches an output is counted as masked.

Every injection and recovery lands in the fault ledger and (when an obs
session is open) in ``fault.*`` counters.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Mapping as TMapping

from repro.core.cost import CostReport, evaluate_cost
from repro.core.default_mapper import schedule_asap
from repro.core.function import DataflowGraph, OP_TABLE
from repro.core.legality import LegalityReport, check_legality
from repro.core.mapping import GridSpec, Mapping
from repro.faults.inject import Injection, active as _faults_active
from repro.obs import active as _obs_active

__all__ = ["ExecutionResult", "GridMachine", "GridExecutionError"]

# reusable no-op context for the observability-off fast path
_NULL = contextlib.nullcontext()


class GridExecutionError(Exception):
    """A mapped execution failed (illegal mapping or value mismatch)."""


@dataclass
class ExecutionResult:
    """Outcome of one mapped run."""

    outputs: dict[Any, Any]
    cost: CostReport
    legality: LegalityReport
    verified: bool
    noc_extra_cycles: int = 0
    #: true when dead PEs forced a re-map onto the surviving grid
    remapped: bool = False
    #: fault bookkeeping for this run (counts, not identities — the
    #: injection ledger has the per-site detail)
    faults_injected: int = 0
    faults_recovered: int = 0
    #: execution replays forced by transient faults
    retries: int = 0

    @property
    def cycles(self) -> int:
        return self.cost.cycles

    @property
    def energy_total_fj(self) -> float:
        return self.cost.energy_total_fj


def _flip(value: Any) -> Any:
    """Deterministic transient corruption of one value."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ 1
    if isinstance(value, (float, complex)):
        return value + 1.0
    return ("<flipped>", value)


class GridMachine:
    """Executes (function, mapping) pairs on a :class:`GridSpec`.

    Parameters
    ----------
    grid:
        The grid geometry, technology, and storage bounds.
    strict:
        If true (default), an illegal mapping, an unrecoverable fault, or
        an output mismatch raises :class:`GridExecutionError`; if false,
        the result records the failure and costs are still reported
        (useful in search loops that want to penalize rather than crash).
    """

    def __init__(self, grid: GridSpec, strict: bool = True) -> None:
        self.grid = grid
        self.strict = strict

    def run(
        self,
        graph: DataflowGraph,
        mapping: Mapping,
        inputs: TMapping[str, Any] | None = None,
        with_noc: bool = False,
    ) -> ExecutionResult:
        """Run the mapped program; see class docstring for the phases."""
        sess = _obs_active()
        inj = _faults_active()
        run_span = (
            sess.span("grid.run", cat="grid", nodes=graph.n_nodes, with_noc=with_noc)
            if sess is not None
            else None
        )
        remapped = False
        injected = recovered = retries = 0
        try:
            # --- phase 0: chaos — remap off fail-stopped PEs ------------- #
            if inj is not None and inj.plan.spec.pe_fail > 0.0:
                mapping, remapped, pe_injected, pe_recovered = self._remap_dead_pes(
                    graph, mapping, inj, sess
                )
                injected += pe_injected
                recovered += pe_recovered

            with sess.span("grid.legality", cat="grid") if sess is not None else _NULL:
                legality = check_legality(graph, mapping, self.grid)
            if not legality.ok and self.strict:
                legality.raise_if_illegal()

            # --- phase 2: cycle-ordered execution with arrival checking - #
            flips_on = inj is not None and inj.plan.spec.bitflip > 0.0
            with sess.span("grid.execute", cat="grid") if sess is not None else _NULL:
                values, flipped = self._execute(
                    graph, mapping, inputs or {}, inj if flips_on else None
                )
            injected += len(flipped)

            # --- phase 3: verification against the pure function -------- #
            with sess.span("grid.verify", cat="grid") if sess is not None else _NULL:
                reference = graph.evaluate_all(inputs or {})
                verified, mismatch = self._verify(graph, mapping, values, reference)

            if flipped:
                if verified:
                    # corruption never reached an output: masked, benign
                    for nid in flipped:
                        inj.recovered("bitflip", f"node={nid} masked")
                    recovered += len(flipped)
                else:
                    # transient fault: replay clean and re-verify
                    retries = 1
                    with (
                        sess.span("grid.replay", cat="grid")
                        if sess is not None
                        else _NULL
                    ):
                        values, _ = self._execute(graph, mapping, inputs or {}, None)
                    verified, mismatch = self._verify(
                        graph, mapping, values, reference
                    )
                    for nid in flipped:
                        if verified:
                            inj.recovered("bitflip", f"node={nid} replayed")
                        else:
                            inj.unrecovered("bitflip", f"node={nid}")
                    if verified:
                        recovered += len(flipped)

            if not verified and self.strict:
                raise GridExecutionError(mismatch)

            cost = evaluate_cost(graph, mapping, self.grid)
            noc_extra = 0
            if with_noc:
                noc_extra = self._noc_extra_cycles(graph, mapping)
        finally:
            if run_span is not None:
                run_span.__exit__()
        if sess is not None:
            run_span.set_cycles(cost.cycles).set(verified=verified)
            m = sess.metrics
            m.counter("grid.runs").inc()
            m.counter("grid.cycles").add(cost.cycles)
            m.counter("grid.energy_total_fj").add(cost.energy_total_fj)
            m.counter("grid.noc_extra_cycles").add(noc_extra)
            m.counter("grid.verified_runs", better="higher").add(1 if verified else 0)
            if retries:
                m.counter("grid.fault_replays").add(retries)
        outputs = {label: values[nid] for label, nid in graph.outputs.items()}
        return ExecutionResult(
            outputs=outputs,
            cost=cost,
            legality=legality,
            verified=verified,
            noc_extra_cycles=noc_extra,
            remapped=remapped,
            faults_injected=injected,
            faults_recovered=recovered,
            retries=retries,
        )

    # ------------------------------------------------------------------ #

    def _remap_dead_pes(
        self,
        graph: DataflowGraph,
        mapping: Mapping,
        inj: Injection,
        sess: Any,
    ) -> tuple[Mapping, bool, int, int]:
        """Re-home nodes off fail-stopped PEs and re-schedule ASAP.

        Returns ``(mapping, remapped, n_injected, n_recovered)``.  The
        replacement PE for a dead place is the nearest live PE by
        Manhattan distance (ties broken by (y, x) — deterministic), the
        whole graph is re-scheduled on the degraded grid, and the result
        is re-checked through :func:`repro.core.legality.check_legality`
        before it is trusted.
        """
        plan = inj.plan
        dead = plan.dead_pes(self.grid.width, self.grid.height)
        if not dead:
            return mapping, False, 0, 0
        hit = sorted(dead & mapping.places_used())
        if not hit:
            return mapping, False, 0, 0
        for p in hit:
            inj.injected("pe_fail", f"pe=({p[0]},{p[1]})")
        live = [p for p in self.grid.places() if p not in dead]
        if not live:
            if self.strict:
                raise GridExecutionError(
                    f"all {self.grid.n_places} PEs of the "
                    f"{self.grid.width}x{self.grid.height} grid are "
                    "fail-stopped under the active fault plan; nothing left "
                    "to remap onto"
                )
            for p in hit:
                inj.unrecovered("pe_fail", f"pe=({p[0]},{p[1]}) no live PE")
            return mapping, False, len(hit), 0

        def nearest_live(p: tuple[int, int]) -> tuple[int, int]:
            return min(
                live,
                key=lambda q: (abs(q[0] - p[0]) + abs(q[1] - p[1]), q[1], q[0]),
            )

        replace = {p: nearest_live(p) for p in hit}
        input_ids = [
            nid for nid in range(graph.n_nodes) if graph.ops[nid] == "input"
        ]
        inputs_offchip = (
            all(bool(mapping.offchip[nid]) for nid in input_ids)
            if input_ids
            else True
        )

        def place_fn(nid: int) -> tuple[int, int]:
            p = mapping.place_of(nid)
            return replace.get(p, p)

        remapped = schedule_asap(
            graph, self.grid, place_fn, inputs_offchip=inputs_offchip
        )
        report = check_legality(graph, remapped, self.grid)
        if not report.ok:
            if self.strict:
                raise GridExecutionError(
                    "remapping off dead PEs "
                    f"{', '.join(f'({p[0]},{p[1]})' for p in hit)} produced an "
                    f"illegal mapping: {report.violations[0]}"
                )
            for p in hit:
                inj.unrecovered("pe_fail", f"pe=({p[0]},{p[1]}) remap illegal")
            return mapping, False, len(hit), 0
        for p in hit:
            inj.recovered("pe_fail", f"pe=({p[0]},{p[1]})->{replace[p]}")
        if sess is not None:
            base = evaluate_cost(graph, mapping, self.grid)
            after = evaluate_cost(graph, remapped, self.grid)
            sess.metrics.counter("fault.pe_remapped_places").add(len(hit))
            sess.metrics.histogram("fault.remap_extra_cycles").observe(
                after.cycles - base.cycles
            )
        return remapped, True, len(hit), len(hit)

    def _verify(
        self,
        graph: DataflowGraph,
        mapping: Mapping,
        values: list[Any],
        reference: list[Any],
    ) -> tuple[bool, str]:
        """Compare mapped outputs to the pure evaluation; returns
        ``(verified, first mismatch message)``."""
        for label, nid in graph.outputs.items():
            got, want = values[nid], reference[nid]
            if not _values_equal(got, want):
                place = mapping.place_of(nid)
                return False, (
                    f"output {label!r} (node {nid} at PE {place}): mapped "
                    f"execution produced {got!r}, function says {want!r}"
                )
        return True, ""

    def _execute(
        self,
        graph: DataflowGraph,
        mapping: Mapping,
        inputs: TMapping[str, Any],
        inj: Injection | None,
    ) -> tuple[list[Any], list[int]]:
        """Execute nodes in mapped-time order, checking operand arrival.

        This does not trust node-id order: it sorts by scheduled time, so a
        mapping that violates causality fails *here* too (belt and braces
        with the legality checker).

        With an injection scope passed in, compute results named by the
        fault plan are transiently corrupted; the flipped node ids are
        returned so the caller can drive detection and replay.
        """
        n = graph.n_nodes
        values: list[Any] = [None] * n
        computed = [False] * n
        flipped: list[int] = []
        order = sorted(range(n), key=lambda i: (int(mapping.time[i]), i))
        tech = self.grid.tech
        for nid in order:
            op = graph.ops[nid]
            t = int(mapping.time[nid])
            place = mapping.place_of(nid)
            if op == "const":
                values[nid] = graph.payload[nid]
                computed[nid] = True
                continue
            if op == "input":
                name, idx = graph.payload[nid]
                if name not in inputs:
                    raise GridExecutionError(f"no binding for input {name!r}")
                src = inputs[name]
                if callable(src):
                    values[nid] = src(*idx) if idx is not None else src()
                else:
                    values[nid] = src[idx]
                computed[nid] = True
                continue
            # operand arrival check
            for u in graph.args[nid]:
                if not computed[u]:
                    raise GridExecutionError(
                        f"node {nid} at PE {place} t={t} reads operand {u} "
                        "that has not been produced (causality violation at "
                        "execution time)"
                    )
                avail = int(mapping.time[u]) + (1 if graph.is_compute(u) else 0)
                if mapping.offchip[u] or mapping.offchip[nid]:
                    transit = tech.offchip_cycles()
                else:
                    transit = self.grid.transit_cycles(
                        mapping.place_of(u), place
                    )
                if t < avail + transit:
                    raise GridExecutionError(
                        f"node {nid} at PE {place} t={t} reads operand {u} "
                        f"(from PE {mapping.place_of(u)}) arriving at "
                        f"t={avail + transit}"
                    )
            _arity, fn = OP_TABLE[op]
            values[nid] = fn(*(values[u] for u in graph.args[nid]))
            if inj is not None and inj.plan.bitflip(nid):
                values[nid] = _flip(values[nid])
                flipped.append(nid)
                inj.injected("bitflip", f"node={nid} pe={place}")
            computed[nid] = True
        return values, flipped

    def _noc_extra_cycles(self, graph: DataflowGraph, mapping: Mapping) -> int:
        """Route every inter-PE edge through the NoC; return added latency.

        Measures total (sum over messages) queueing delay beyond the
        idealized distance/velocity transit the cost model assumes.
        """
        from repro.machines.noc import Message, Noc

        noc = Noc(self.grid.width, self.grid.height, tech=self.grid.tech)
        messages = []
        mid = 0
        for u, v in graph.edges():
            if mapping.offchip[u] or mapping.offchip[v]:
                continue
            pu, pv = mapping.place_of(u), mapping.place_of(v)
            if pu == pv:
                continue
            depart = int(mapping.time[u]) + (1 if graph.is_compute(u) else 0)
            messages.append(
                Message(mid=mid, src=pu, dst=pv, inject_cycle=depart)
            )
            mid += 1
        if not messages:
            return 0
        report = noc.simulate(messages)
        ideal = sum(
            self.grid.transit_cycles(m.src, m.dst) for m in messages
        )
        return max(0, report.total_latency - ideal)


def _values_equal(a: Any, b: Any) -> bool:
    if isinstance(a, complex) or isinstance(b, complex) or isinstance(a, float) or isinstance(b, float):
        return abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b))
    return a == b
