"""The F&M target machine: processors on a grid, executing mapped programs.

Paper, Section 3: "A programmable target can be realized by putting a
programmable processor at each grid point and surrounding it with many
'tiles' of memory. ... The amount of memory per processor is also a
parameter that can be adjusted to tailor the architecture to a family of
applications."

:class:`GridMachine` takes a (function, mapping) pair and actually runs it:

1.  checks legality (the paper's causality / transit / storage conditions);
2.  executes the dataflow cycle-accurately in mapped time order, moving
    real values between grid points and verifying each arrives before use
    (an independent re-check of causality, by construction of the engine);
3.  verifies outputs against the pure functional evaluation — a mapped
    execution that disagrees with the mathematical definition is a bug in
    the mapping layer, and the machine refuses to report costs for it;
4.  returns the :class:`~repro.core.cost.CostReport` for the run.

An optional contention-aware mode routes every message through the
:class:`~repro.machines.noc.Noc` and reports queueing delay on top of the
model's idealized transit times — quantifying how optimistic the pure
model is for a given mapping.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Mapping as TMapping

from repro.core.cost import CostReport, evaluate_cost
from repro.core.function import DataflowGraph, OP_TABLE
from repro.core.legality import LegalityReport, check_legality
from repro.core.mapping import GridSpec, Mapping
from repro.obs import active as _obs_active

__all__ = ["ExecutionResult", "GridMachine", "GridExecutionError"]

# reusable no-op context for the observability-off fast path
_NULL = contextlib.nullcontext()


class GridExecutionError(Exception):
    """A mapped execution failed (illegal mapping or value mismatch)."""


@dataclass
class ExecutionResult:
    """Outcome of one mapped run."""

    outputs: dict[Any, Any]
    cost: CostReport
    legality: LegalityReport
    verified: bool
    noc_extra_cycles: int = 0

    @property
    def cycles(self) -> int:
        return self.cost.cycles

    @property
    def energy_total_fj(self) -> float:
        return self.cost.energy_total_fj


class GridMachine:
    """Executes (function, mapping) pairs on a :class:`GridSpec`.

    Parameters
    ----------
    grid:
        The grid geometry, technology, and storage bounds.
    strict:
        If true (default), an illegal mapping or an output mismatch raises
        :class:`GridExecutionError`; if false, the result records the
        failure and costs are still reported (useful in search loops that
        want to penalize rather than crash).
    """

    def __init__(self, grid: GridSpec, strict: bool = True) -> None:
        self.grid = grid
        self.strict = strict

    def run(
        self,
        graph: DataflowGraph,
        mapping: Mapping,
        inputs: TMapping[str, Any] | None = None,
        with_noc: bool = False,
    ) -> ExecutionResult:
        """Run the mapped program; see class docstring for the phases."""
        sess = _obs_active()
        run_span = (
            sess.span("grid.run", cat="grid", nodes=graph.n_nodes, with_noc=with_noc)
            if sess is not None
            else None
        )
        try:
            with sess.span("grid.legality", cat="grid") if sess is not None else _NULL:
                legality = check_legality(graph, mapping, self.grid)
            if not legality.ok and self.strict:
                legality.raise_if_illegal()

            # --- phase 2: cycle-ordered execution with arrival checking - #
            with sess.span("grid.execute", cat="grid") if sess is not None else _NULL:
                values = self._execute(graph, mapping, inputs or {})

            # --- phase 3: verification against the pure function -------- #
            with sess.span("grid.verify", cat="grid") if sess is not None else _NULL:
                reference = graph.evaluate_all(inputs or {})
                verified = True
                for label, nid in graph.outputs.items():
                    got, want = values[nid], reference[nid]
                    if not _values_equal(got, want):
                        verified = False
                        if self.strict:
                            raise GridExecutionError(
                                f"output {label!r}: mapped execution produced "
                                f"{got!r}, function says {want!r}"
                            )

            cost = evaluate_cost(graph, mapping, self.grid)
            noc_extra = 0
            if with_noc:
                noc_extra = self._noc_extra_cycles(graph, mapping)
        finally:
            if run_span is not None:
                run_span.__exit__()
        if sess is not None:
            run_span.set_cycles(cost.cycles).set(verified=verified)
            m = sess.metrics
            m.counter("grid.runs").inc()
            m.counter("grid.cycles").add(cost.cycles)
            m.counter("grid.energy_total_fj").add(cost.energy_total_fj)
            m.counter("grid.noc_extra_cycles").add(noc_extra)
            m.counter("grid.verified_runs", better="higher").add(1 if verified else 0)
        outputs = {label: values[nid] for label, nid in graph.outputs.items()}
        return ExecutionResult(
            outputs=outputs,
            cost=cost,
            legality=legality,
            verified=verified,
            noc_extra_cycles=noc_extra,
        )

    # ------------------------------------------------------------------ #

    def _execute(
        self,
        graph: DataflowGraph,
        mapping: Mapping,
        inputs: TMapping[str, Any],
    ) -> list[Any]:
        """Execute nodes in mapped-time order, checking operand arrival.

        This does not trust node-id order: it sorts by scheduled time, so a
        mapping that violates causality fails *here* too (belt and braces
        with the legality checker).
        """
        n = graph.n_nodes
        values: list[Any] = [None] * n
        computed = [False] * n
        order = sorted(range(n), key=lambda i: (int(mapping.time[i]), i))
        tech = self.grid.tech
        for nid in order:
            op = graph.ops[nid]
            t = int(mapping.time[nid])
            if op == "const":
                values[nid] = graph.payload[nid]
                computed[nid] = True
                continue
            if op == "input":
                name, idx = graph.payload[nid]
                if name not in inputs:
                    raise GridExecutionError(f"no binding for input {name!r}")
                src = inputs[name]
                if callable(src):
                    values[nid] = src(*idx) if idx is not None else src()
                else:
                    values[nid] = src[idx]
                computed[nid] = True
                continue
            # operand arrival check
            for u in graph.args[nid]:
                if not computed[u]:
                    raise GridExecutionError(
                        f"node {nid} at t={t} reads operand {u} that has not "
                        "been produced (causality violation at execution time)"
                    )
                avail = int(mapping.time[u]) + (1 if graph.is_compute(u) else 0)
                if mapping.offchip[u] or mapping.offchip[nid]:
                    transit = tech.offchip_cycles()
                else:
                    transit = self.grid.transit_cycles(
                        mapping.place_of(u), mapping.place_of(nid)
                    )
                if t < avail + transit:
                    raise GridExecutionError(
                        f"node {nid} at t={t} reads operand {u} arriving at "
                        f"t={avail + transit}"
                    )
            _arity, fn = OP_TABLE[op]
            values[nid] = fn(*(values[u] for u in graph.args[nid]))
            computed[nid] = True
        return values

    def _noc_extra_cycles(self, graph: DataflowGraph, mapping: Mapping) -> int:
        """Route every inter-PE edge through the NoC; return added latency.

        Measures total (sum over messages) queueing delay beyond the
        idealized distance/velocity transit the cost model assumes.
        """
        from repro.machines.noc import Message, Noc

        noc = Noc(self.grid.width, self.grid.height, tech=self.grid.tech)
        messages = []
        mid = 0
        for u, v in graph.edges():
            if mapping.offchip[u] or mapping.offchip[v]:
                continue
            pu, pv = mapping.place_of(u), mapping.place_of(v)
            if pu == pv:
                continue
            depart = int(mapping.time[u]) + (1 if graph.is_compute(u) else 0)
            messages.append(
                Message(mid=mid, src=pu, dst=pv, inject_cycle=depart)
            )
            mid += 1
        if not messages:
            return 0
        report = noc.simulate(messages)
        ideal = sum(
            self.grid.transit_cycles(m.src, m.dst) for m in messages
        )
        return max(0, report.total_latency - ideal)


def _values_equal(a: Any, b: Any) -> bool:
    if isinstance(a, complex) or isinstance(b, complex) or isinstance(a, float) or isinstance(b, float):
        return abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b))
    return a == b
