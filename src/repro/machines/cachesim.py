"""Trace-driven cache simulators.

Blelloch's statement: "The RAM by itself ... does not capture the locality
that is needed to make effective use of caches ... it is easy to add a one
level cache to the RAM model, and hundreds of algorithms have been
developed in such a model.  When algorithms developed in this model satisfy
a property of being cache oblivious, they will also work effectively on a
multilevel cache."

These simulators make that claim checkable (claim C11).  They consume
address traces — sequences of ``('r'|'w', word_address)`` — produced either
by the instrumented RAM (:class:`repro.models.ram.Memory` with tracing) or
by the trace generators in :mod:`repro.algorithms.matmul` et al.

Design choices
--------------
*  Word-addressed; ``block_words`` groups addresses into cache blocks
   (lines).  The *ideal cache model*'s (M, B) parameters are
   ``capacity_words`` and ``block_words``.
*  Replacement is LRU.  Fully-associative LRU is the standard executable
   surrogate for the ideal cache (it is within a constant factor of
   optimal by the classic Sleator-Tarjan resource augmentation bound).
*  Write-back, write-allocate.  Writebacks are counted as traffic to the
   next level but do not recursively disturb its recency order (a common
   and conservative simplification; documented so results are
   interpretable).
*  Multilevel hierarchies install a missing block at every level on the
   path (mostly-inclusive behaviour).  The LRU *inclusion property*
   guarantees a larger same-block-size LRU cache never misses more —
   property-tested in ``tests/machines/test_cachesim.py``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.core.memo import MemoCache, global_cache
from repro.machines.technology import Technology
from repro.obs import Session, active as _obs_active

__all__ = [
    "CacheStats",
    "LRUCache",
    "CacheHierarchy",
    "ideal_cache",
    "run_trace",
    "trace_fingerprint",
    "run_trace_cached",
]

Trace = Iterable[tuple[str, int]]


@dataclass
class CacheStats:
    """Counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    read_misses: int = 0
    write_misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict[str, float]:
        d = {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "read_misses": self.read_misses,
            "write_misses": self.write_misses,
            "miss_rate": self.miss_rate,
        }
        return d


# counter name -> goodness direction for the obs diff tool
_CACHE_COUNTER_FIELDS = (
    ("accesses", "lower"),
    ("hits", "higher"),
    ("misses", "lower"),
    ("writebacks", "lower"),
    ("read_misses", "lower"),
    ("write_misses", "lower"),
)


class LRUCache:
    """A set-associative LRU cache over word addresses.

    Parameters
    ----------
    capacity_words:
        Total capacity M in words.  Must be a positive multiple of
        ``block_words``.
    block_words:
        Block (line) size B in words.
    assoc:
        Associativity; ``None`` (default) means fully associative — the
        ideal-cache surrogate.  Otherwise the number of sets is
        ``capacity / (block * assoc)`` and must come out integral.
    name:
        Label used in reports (e.g. ``"L1"``).
    distance_mm:
        Optional physical distance of this cache from the consuming
        processor; used by :meth:`CacheHierarchy.energy_fj` to charge
        transport energy per Dally's "all the cost in accessing memory is
        data movement".
    """

    def __init__(
        self,
        capacity_words: int,
        block_words: int = 1,
        assoc: int | None = None,
        name: str = "L?",
        distance_mm: float = 0.5,
    ) -> None:
        if block_words < 1:
            raise ValueError("block_words must be >= 1")
        if capacity_words < block_words or capacity_words % block_words:
            raise ValueError(
                f"capacity ({capacity_words}) must be a positive multiple of "
                f"block size ({block_words})"
            )
        n_blocks = capacity_words // block_words
        if assoc is None:
            assoc = n_blocks
        if assoc < 1 or n_blocks % assoc:
            raise ValueError(
                f"associativity {assoc} must divide block count {n_blocks}"
            )
        self.capacity_words = capacity_words
        self.block_words = block_words
        self.assoc = assoc
        self.n_sets = n_blocks // assoc
        self.name = name
        self.distance_mm = distance_mm
        self.stats = CacheStats()
        self._published = CacheStats()
        # per set: block_number -> dirty flag, in LRU order (oldest first)
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]

    def block_of(self, addr: int) -> int:
        return addr // self.block_words

    def config_key(self) -> tuple:
        """Hashable content key of this cache's configuration (not its
        state) — the machine-spec half of a memoized simulation key."""
        return (
            "lru",
            self.capacity_words,
            self.block_words,
            self.assoc,
            self.name,
            self.distance_mm,
        )

    def access(self, addr: int, write: bool = False) -> tuple[bool, bool]:
        """Access one word.  Returns ``(hit, evicted_dirty_block)``."""
        if addr < 0:
            raise ValueError(f"negative address {addr}")
        block = self.block_of(addr)
        s = self._sets[block % self.n_sets]
        self.stats.accesses += 1
        writeback = False
        if block in s:
            self.stats.hits += 1
            s.move_to_end(block)
            if write:
                s[block] = True
            return True, False
        self.stats.misses += 1
        if write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        if len(s) >= self.assoc:
            _victim, dirty = s.popitem(last=False)
            if dirty:
                self.stats.writebacks += 1
                writeback = True
        s[block] = write
        return False, writeback

    def contains(self, addr: int) -> bool:
        """Is the block holding ``addr`` resident (no recency update)?"""
        block = self.block_of(addr)
        return block in self._sets[block % self.n_sets]

    def resident_blocks(self) -> set[int]:
        """All resident block numbers (for inclusion-property tests)."""
        out: set[int] = set()
        for s in self._sets:
            out.update(s.keys())
        return out

    def reset_stats(self) -> None:
        self.stats = CacheStats()
        self._published = CacheStats()

    def publish_metrics(self, sess: Session | None = None) -> None:
        """Add this level's counter *deltas* (since the last publish) to the
        active obs session as ``cache.<field>{level=<name>}`` counters.

        Delta-based so repeated publishes never double count; the session's
        totals therefore exactly equal the simulator's internal
        :class:`CacheStats` for a cache observed from birth.
        """
        sess = sess if sess is not None else _obs_active()
        if sess is None:
            return
        cur, last = self.stats, self._published
        for field_name, better in _CACHE_COUNTER_FIELDS:
            delta = getattr(cur, field_name) - getattr(last, field_name)
            if delta:
                sess.metrics.counter(
                    f"cache.{field_name}", better=better, level=self.name
                ).add(delta)
        self._published = replace(cur)


class CacheHierarchy:
    """A stack of caches backed by bulk (off-chip) memory.

    ``levels`` is ordered nearest-first (L1, L2, ...).  An access probes
    levels in order; a miss at every level is a bulk-memory access.  The
    missing block is installed at every level probed.
    """

    def __init__(self, levels: Sequence[LRUCache]) -> None:
        if not levels:
            raise ValueError("need at least one cache level")
        self.levels = list(levels)
        self.mem_accesses = 0
        self.mem_writebacks = 0
        self._published_mem = (0, 0)

    def access(self, addr: int, write: bool = False) -> int:
        """Access one word; returns the level index that hit (len(levels)
        meaning bulk memory)."""
        hit_level = len(self.levels)
        for i, lvl in enumerate(self.levels):
            block = lvl.block_of(addr)
            s = lvl._sets[block % lvl.n_sets]
            lvl.stats.accesses += 1
            if block in s:
                lvl.stats.hits += 1
                s.move_to_end(block)
                if write and i == 0:
                    s[block] = True
                hit_level = i
                break
            lvl.stats.misses += 1
            if write:
                lvl.stats.write_misses += 1
            else:
                lvl.stats.read_misses += 1
        else:
            self.mem_accesses += 1
        # install into all levels above the hit
        for i in range(min(hit_level, len(self.levels)) - 1, -1, -1):
            lvl = self.levels[i]
            block = lvl.block_of(addr)
            s = lvl._sets[block % lvl.n_sets]
            if block not in s:
                if len(s) >= lvl.assoc:
                    _victim, dirty = s.popitem(last=False)
                    if dirty:
                        lvl.stats.writebacks += 1
                        if i + 1 == len(self.levels):
                            self.mem_writebacks += 1
                s[block] = write and i == 0
            elif write and i == 0:
                s[block] = True
        return hit_level

    # ------------------------------------------------------------------ #

    def config_key(self) -> tuple:
        return ("hier",) + tuple(lvl.config_key() for lvl in self.levels)

    def miss_counts(self) -> list[int]:
        """Misses at each level, nearest first."""
        return [lvl.stats.misses for lvl in self.levels]

    def publish_metrics(self, sess: Session | None = None) -> None:
        """Publish per-level counters plus bulk-memory traffic deltas."""
        sess = sess if sess is not None else _obs_active()
        if sess is None:
            return
        for lvl in self.levels:
            lvl.publish_metrics(sess)
        last_acc, last_wb = self._published_mem
        if self.mem_accesses - last_acc:
            sess.metrics.counter("cache.mem_accesses", level="mem").add(
                self.mem_accesses - last_acc
            )
        if self.mem_writebacks - last_wb:
            sess.metrics.counter("cache.mem_writebacks", level="mem").add(
                self.mem_writebacks - last_wb
            )
        self._published_mem = (self.mem_accesses, self.mem_writebacks)

    def energy_fj(self, tech: Technology) -> float:
        """Total data-movement energy of the trace so far.

        Charges, per the panel's physics: a hit at level i costs the SRAM
        bit-cell energy plus round-trip transport over that level's
        distance; a bulk-memory access costs the off-chip energy.  All
        per-block-word, since whole blocks move.
        """
        total = 0.0
        for i, lvl in enumerate(self.levels):
            hits = lvl.stats.hits
            word_fj = tech.sram_energy_word_fj() + 2 * tech.transport_energy_fj(
                lvl.distance_mm
            )
            total += hits * word_fj
            # misses move a whole block from the next level / memory;
            # charged at the *next* hop below
        block_words = self.levels[-1].block_words
        total += (self.mem_accesses + self.mem_writebacks) * block_words * (
            tech.offchip_energy_word_fj()
        )
        # inter-level block refills
        for i in range(1, len(self.levels)):
            upper, lower = self.levels[i - 1], self.levels[i]
            refills = upper.stats.misses
            total += (
                refills
                * upper.block_words
                * 2
                * tech.transport_energy_fj(lower.distance_mm)
            )
        return total


def ideal_cache(capacity_words: int, block_words: int, name: str = "ideal") -> LRUCache:
    """The (M, B) ideal-cache surrogate: fully-associative LRU."""
    return LRUCache(capacity_words, block_words, assoc=None, name=name)


def run_trace(
    cache: LRUCache | CacheHierarchy,
    trace: Trace,
    backend: str | None = None,
) -> LRUCache | CacheHierarchy:
    """Feed a ``('r'|'w', addr)`` trace through a cache or hierarchy.

    ``backend`` selects the evaluation path (default: the session-wide
    backend, normally ``compiled``): the compiled path flattens the trace
    into arrays and replays it through
    :func:`repro.compiled.replay_into` — same final stats, residency, LRU
    order, and dirty bits as the per-access loop, just without per-access
    Python dispatch.  The reference loop remains below, selected by
    ``backend="reference"`` (or ``"fast"``).

    When an obs session is active, the run is wrapped in a ``cache.run_trace``
    span and the cache's counter deltas are published on completion; the
    simulator itself is untouched (publishing reads the aggregate stats, so
    the per-access hot loop carries no telemetry branches).
    """
    from repro.compiled import resolve_backend

    if resolve_backend(backend) == "compiled":
        from repro.compiled import flatten_trace, replay_into

        kinds, addrs = flatten_trace(trace)
        sess = _obs_active()
        if sess is None:
            return replay_into(cache, kinds, addrs)
        label = (
            "+".join(lvl.name for lvl in cache.levels)
            if isinstance(cache, CacheHierarchy)
            else cache.name
        )
        with sess.span("cache.run_trace", cat="cache", cache=label) as span:
            replay_into(cache, kinds, addrs)
            span.set(accesses=int(addrs.size))
            cache.publish_metrics(sess)
        return cache

    sess = _obs_active()
    if sess is None:
        if isinstance(cache, CacheHierarchy):
            for kind, addr in trace:
                cache.access(addr, write=(kind == "w"))
        else:
            for kind, addr in trace:
                cache.access(addr, write=(kind == "w"))
        return cache

    label = (
        "+".join(lvl.name for lvl in cache.levels)
        if isinstance(cache, CacheHierarchy)
        else cache.name
    )
    n = 0
    with sess.span("cache.run_trace", cat="cache", cache=label) as span:
        if isinstance(cache, CacheHierarchy):
            for kind, addr in trace:
                cache.access(addr, write=(kind == "w"))
                n += 1
        else:
            for kind, addr in trace:
                cache.access(addr, write=(kind == "w"))
                n += 1
        span.set(accesses=n)
        cache.publish_metrics(sess)
    return cache


# ---------------------------------------------------------------------- #
# memoized simulation: search sweeps and claim benches replay identical
# traces through identical configurations (one run per FoM, per engine
# path, per tolerance setting); content-addressing makes the repeats free.


def trace_fingerprint(trace: Sequence[tuple[str, int]]) -> str:
    """Content address of an address trace (order-sensitive, as it must
    be: LRU state depends on access order)."""
    import hashlib

    h = hashlib.sha256()
    buf = bytearray()
    for kind, addr in trace:
        buf += b"w" if kind == "w" else b"r"
        buf += int(addr).to_bytes(8, "little", signed=False)
        if len(buf) >= 1 << 20:
            h.update(bytes(buf))
            buf.clear()
    h.update(bytes(buf))
    return h.hexdigest()


def run_trace_cached(
    spec: Sequence[tuple],
    trace: Sequence[tuple[str, int]],
    memo: MemoCache | None = None,
    backend: str | None = None,
) -> dict[str, object]:
    """Simulate ``trace`` through the hierarchy described by ``spec``,
    memoized on (configuration, trace content).

    ``spec`` is a sequence of per-level ``LRUCache`` constructor argument
    tuples, nearest level first — e.g. ``[(256, 8, None, "L1"), (4096, 8,
    None, "L2")]``.  Returns a read-only result dict: one entry per level
    name with that level's :meth:`CacheStats.as_dict`, plus
    ``mem_accesses`` / ``mem_writebacks``.  A repeat call with the same
    configuration and the same trace content returns the cached dict
    without touching a simulator (hits surface as ``memo.*{cache=
    cachesim}`` in the obs layer).  Treat the result as immutable — it is
    shared between hits.

    Unlike :func:`run_trace` this needs a *materialized* trace (a
    sequence, not a generator): the content hash must see every access.

    ``backend="compiled"`` (the session default) hashes and replays the
    trace through the array kernels; the digest is hex-identical to
    :func:`trace_fingerprint` and the result dict is bit-identical, so
    memo entries are shared across backends.
    """
    memo = memo if memo is not None else global_cache("cachesim")
    from repro.compiled import resolve_backend

    if resolve_backend(backend) == "compiled":
        from repro.compiled import flatten_trace, replay_trace, trace_digest

        kinds, addrs = flatten_trace(trace)
        key = ("trace", tuple(tuple(s) for s in spec), trace_digest(kinds, addrs))
        result = memo.get_or_compute(key, lambda: replay_trace(spec, kinds, addrs))
        memo.publish_metrics()
        return result

    key = ("trace", tuple(tuple(s) for s in spec), trace_fingerprint(trace))

    def compute() -> dict[str, object]:
        hierarchy = CacheHierarchy([LRUCache(*args) for args in spec])
        for kind, addr in trace:
            hierarchy.access(addr, write=(kind == "w"))
        out: dict[str, object] = {
            lvl.name: lvl.stats.as_dict() for lvl in hierarchy.levels
        }
        out["mem_accesses"] = hierarchy.mem_accesses
        out["mem_writebacks"] = hierarchy.mem_writebacks
        return out

    result = memo.get_or_compute(key, compute)
    memo.publish_metrics()
    return result
