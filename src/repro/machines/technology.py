"""Technology parameters: the physical constants behind the panel debate.

Dally's panel statement (paper Section 3) grounds the Function-and-Mapping
argument in concrete 5 nm numbers:

    "In 5nm technology, an add costs about 0.5fJ/bit and a 32-bit add takes
    about 200ps.  On-chip communication costs 80fJ/bit-mm and traveling 1mm
    takes about 800ps.  Transporting the result of an add 1mm costs 160x as
    much as performing the add.  Sending it across the diagonal of an
    800mm2 GPU costs 4500x as much.  Going off chip is an order of
    magnitude more expensive."

and later:

    "An add operation costs the same as transporting data from off-chip
    memory - even though the off-chip access is 50,000x more expensive."

This module encodes those constants in a single frozen dataclass so that
every simulator in the package charges energy and delay from the same
source of truth, and so the claim benchmarks (C1-C4 in DESIGN.md) can check
the stated ratios against the model rather than against magic numbers
scattered through the code.

Geometry note: the paper's arithmetic for the 4500x figure treats the
"diagonal" of an 800 mm^2 die as sqrt(area) ~= 28.3 mm (28.3 mm x
80 fJ/bit-mm ~= 2263 fJ/bit ~= 4525 x 0.5 fJ/bit).  We follow the same
convention: :attr:`Technology.chip_diagonal_mm` is ``sqrt(chip_area_mm2)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Technology:
    """A self-consistent set of energy/delay parameters for one process node.

    All energies are femtojoules, all times picoseconds, all distances
    millimetres.  Per-bit quantities are multiplied by ``word_bits`` by the
    ``*_word`` helpers.

    Parameters
    ----------
    name:
        Human-readable label, e.g. ``"5nm"``.
    add_energy_fj_per_bit:
        Energy of one full-adder bit operation (0.5 fJ at 5 nm).
    wire_energy_fj_per_bit_mm:
        On-chip transport energy per bit per millimetre (80 fJ at 5 nm).
    offchip_energy_fj_per_bit:
        Energy to move one bit to/from bulk (off-chip) memory.  The 5 nm
        default of 25 000 fJ/bit makes an off-chip word access exactly
        50 000x a word add, matching the paper.
    add_latency_ps:
        Latency of a ``word_bits``-wide add (200 ps at 5 nm).  Also used as
        the machine cycle time: one add per cycle.
    wire_latency_ps_per_mm:
        On-chip signal propagation delay (800 ps/mm at 5 nm).
    offchip_latency_ps:
        Latency of a bulk-memory access.
    chip_area_mm2:
        Die area; the paper's GPU example uses 800 mm^2.
    grid_pitch_mm:
        Distance between adjacent grid points of the F&M target machine.
    word_bits:
        Machine word width in bits.
    instruction_overhead_factor:
        Energy overhead of executing an ADD *instruction* on a conventional
        out-of-order core, relative to the energy of the add itself
        (fetch/decode/rename/ROB/scheduling).  The paper says 10 000x.
    sram_energy_fj_per_bit:
        Energy to read or write a local SRAM bit-cell.  The paper notes
        "reading or writing a bit-cell is extremely fast and efficient; all
        the cost in accessing memory is data movement", so the default is
        small relative to wire energy at any distance.
    """

    name: str = "5nm"
    add_energy_fj_per_bit: float = 0.5
    wire_energy_fj_per_bit_mm: float = 80.0
    offchip_energy_fj_per_bit: float = 25_000.0
    add_latency_ps: float = 200.0
    wire_latency_ps_per_mm: float = 800.0
    offchip_latency_ps: float = 10_000.0
    chip_area_mm2: float = 800.0
    grid_pitch_mm: float = 1.0
    word_bits: int = 32
    instruction_overhead_factor: float = 10_000.0
    sram_energy_fj_per_bit: float = 0.1

    # ------------------------------------------------------------------ #
    # derived geometry and rates
    # ------------------------------------------------------------------ #

    @property
    def chip_diagonal_mm(self) -> float:
        """Chip "diagonal" as used by the paper's arithmetic: sqrt(area)."""
        return math.sqrt(self.chip_area_mm2)

    @property
    def cycle_ps(self) -> float:
        """Machine cycle time: one word add per cycle."""
        return self.add_latency_ps

    @property
    def wire_mm_per_cycle(self) -> float:
        """How far a signal travels in one cycle (0.25 mm at 5 nm)."""
        return self.cycle_ps / self.wire_latency_ps_per_mm

    # ------------------------------------------------------------------ #
    # per-word energies
    # ------------------------------------------------------------------ #

    def add_energy_word_fj(self) -> float:
        """Energy of one word-wide add (fJ)."""
        return self.add_energy_fj_per_bit * self.word_bits

    def transport_energy_fj(self, distance_mm: float, bits: int | None = None) -> float:
        """Energy to move ``bits`` (default one word) ``distance_mm`` on chip."""
        if distance_mm < 0:
            raise ValueError(f"distance must be non-negative, got {distance_mm}")
        b = self.word_bits if bits is None else bits
        return self.wire_energy_fj_per_bit_mm * distance_mm * b

    def offchip_energy_word_fj(self) -> float:
        """Energy of one word moved to/from bulk memory (fJ)."""
        return self.offchip_energy_fj_per_bit * self.word_bits

    def sram_energy_word_fj(self) -> float:
        """Energy of one word read/written in a local memory tile (fJ)."""
        return self.sram_energy_fj_per_bit * self.word_bits

    # ------------------------------------------------------------------ #
    # latencies in cycles
    # ------------------------------------------------------------------ #

    def transport_cycles(self, distance_mm: float) -> int:
        """Cycles for a signal to travel ``distance_mm`` (ceiling; 0 for 0 mm)."""
        if distance_mm < 0:
            raise ValueError(f"distance must be non-negative, got {distance_mm}")
        if distance_mm == 0:
            return 0
        return max(1, math.ceil(distance_mm * self.wire_latency_ps_per_mm / self.cycle_ps))

    def hop_cycles(self) -> int:
        """Cycles for one grid hop (``grid_pitch_mm``)."""
        return self.transport_cycles(self.grid_pitch_mm)

    def offchip_cycles(self) -> int:
        """Cycles for one bulk-memory access."""
        return max(1, math.ceil(self.offchip_latency_ps / self.cycle_ps))

    # ------------------------------------------------------------------ #
    # the paper's ratios (claims C1-C5); see benchmarks/bench_c01..c05
    # ------------------------------------------------------------------ #

    def transport_vs_add_ratio(self, distance_mm: float) -> float:
        """Energy ratio: moving a result ``distance_mm`` vs computing it.

        The paper states this is 160x at 1 mm (claim C1).
        """
        return self.transport_energy_fj(distance_mm) / self.add_energy_word_fj()

    def diagonal_vs_add_ratio(self) -> float:
        """Energy ratio of a cross-chip transport vs an add (claim C2, 4500x)."""
        return self.transport_vs_add_ratio(self.chip_diagonal_mm)

    def offchip_vs_add_ratio(self) -> float:
        """Energy ratio of an off-chip access vs an add (claim C3, 50 000x)."""
        return self.offchip_energy_word_fj() / self.add_energy_word_fj()

    def offchip_vs_diagonal_ratio(self) -> float:
        """Off-chip vs cross-chip transport ("an order of magnitude more")."""
        return self.offchip_energy_word_fj() / self.transport_energy_fj(self.chip_diagonal_mm)

    def instruction_energy_word_fj(self) -> float:
        """Energy of one ADD *instruction* on a conventional core (claim C5).

        The paper: "The energy overhead of an ADD instruction is 10,000x
        times more than the energy required to do the add."
        """
        return self.add_energy_word_fj() * (1.0 + self.instruction_overhead_factor)

    # ------------------------------------------------------------------ #
    # variants
    # ------------------------------------------------------------------ #

    def with_(self, **changes) -> "Technology":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: The paper's 5 nm technology point (Section 3).
TECH_5NM = Technology()

#: A coarser node for sensitivity studies: wires relatively cheaper.
TECH_16NM = Technology(
    name="16nm",
    add_energy_fj_per_bit=2.0,
    wire_energy_fj_per_bit_mm=120.0,
    offchip_energy_fj_per_bit=40_000.0,
    add_latency_ps=300.0,
    wire_latency_ps_per_mm=1_000.0,
)

TECH_7NM = Technology(
    name="7nm",
    add_energy_fj_per_bit=0.8,
    wire_energy_fj_per_bit_mm=90.0,
    offchip_energy_fj_per_bit=30_000.0,
    add_latency_ps=230.0,
    wire_latency_ps_per_mm=850.0,
)

TECH_45NM = Technology(
    name="45nm",
    add_energy_fj_per_bit=10.0,
    wire_energy_fj_per_bit_mm=200.0,
    offchip_energy_fj_per_bit=80_000.0,
    add_latency_ps=500.0,
    wire_latency_ps_per_mm=1_400.0,
)

#: Illustrative scaling series, oldest node first.  Only the 5 nm point is
#: the paper's; the others are calibration-grade stand-ins chosen so the
#: well-known trend holds: logic energy scales down much faster than wire
#: energy, so the transport/compute ratio *grows* every node — the
#: "communication limited" trajectory the panel statement rests on.
TECH_NODES = (TECH_45NM, TECH_16NM, TECH_7NM, TECH_5NM)
