"""Data-movement and synchronization primitive sets — Yelick's agenda.

Paper, Section 6: "we need simpler mechanisms for communication and
synchronization, avoiding unnecessary memory copying, ordering
constraints, and blocking of useful work.  Heavyweight communication
mechanisms that imply global or pairwise synchronization and require more
data aggregation to amortize overhead can consume precious fast memory
resources. ... Algorithm designers could have significant influence in
showing that a simpler set of data movement and synchronization primitives
are universally useful across algorithms and applications."

This module makes the comparison executable.  A workload is a **traffic
batch** — a list of (src, dst, words) transfers between ``p`` processors —
plus the number of bulk-synchronous phases it needs.  Two primitive sets
cost the same batch:

``TwoSidedMachine`` (the heavyweight baseline)
    MPI-style rendezvous send/recv: every message costs a handshake
    (2 alpha) plus payload (beta * words) at the sender and a matching
    cost (alpha) at the receiver; each phase ends in a tree barrier
    (2 alpha log2 p).  Optional **aggregation** coalesces the messages of
    each (src, dst) pair into bounded-size batches — fewer messages, but
    the coalescing buffers occupy fast memory, which the model reports
    (the "consume precious fast memory resources" clause).
``OneSidedMachine`` (the simple primitives)
    Put/get RMA: a message costs alpha + beta * words with no matching and
    no handshake; a phase ends with a flush (alpha) plus a signal per
    communicating peer pair — pairwise-lightweight instead of global.

Per-processor time is computed from each processor's actual send/receive
load (max over processors per phase, summed over phases), so imbalanced
patterns are costed honestly.  Workload generators cover the panel's
spread: regular halo exchange, all-to-all transpose, irregular random
updates (the GUPS-style access pattern UPC-era machines were judged by),
and a tree reduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "CommConfig",
    "Traffic",
    "CommReport",
    "TwoSidedMachine",
    "OneSidedMachine",
    "halo_exchange",
    "transpose",
    "random_updates",
    "tree_reduce_traffic",
]


@dataclass(frozen=True)
class CommConfig:
    """LogP-flavoured cost constants (cycles).

    The default alpha is the *two-sided* software path (tag matching,
    rendezvous, completion queues — the microsecond-class overhead real
    MPI stacks carry).  :data:`ONE_SIDED_DEFAULT` is the hardware-RMA
    issue cost, an order of magnitude lower — the classic GASNet-vs-MPI
    gap, and precisely the "simpler mechanisms" dividend Yelick's
    statement argues for.  Pass explicit configs to study other points.
    """

    alpha: float = 1_000.0  # per-message latency/overhead
    beta: float = 2.0       # per-word transfer cost


#: Default cost point for one-sided RMA (see :class:`CommConfig`).
ONE_SIDED_DEFAULT = CommConfig(alpha=100.0, beta=2.0)


@dataclass(frozen=True)
class Traffic:
    """One bulk phase of point-to-point transfers.

    ``transfers`` holds (src, dst, words) with ``src != dst``; same-place
    data never enters the network.
    """

    p: int
    transfers: tuple[tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        for s, d, w in self.transfers:
            if not (0 <= s < self.p and 0 <= d < self.p):
                raise ValueError(f"transfer ({s}, {d}) outside {self.p} procs")
            if s == d:
                raise ValueError("same-source-and-destination transfer")
            if w <= 0:
                raise ValueError("transfers must move at least one word")

    @property
    def total_words(self) -> int:
        return sum(w for _s, _d, w in self.transfers)

    @property
    def n_messages(self) -> int:
        return len(self.transfers)


@dataclass
class CommReport:
    """Cost of a workload under one primitive set."""

    machine: str
    time_cycles: float = 0.0
    messages: int = 0
    sync_events: int = 0
    buffer_words_peak: int = 0
    words: int = 0

    def add(self, other: "CommReport") -> None:
        self.time_cycles += other.time_cycles
        self.messages += other.messages
        self.sync_events += other.sync_events
        self.buffer_words_peak = max(self.buffer_words_peak, other.buffer_words_peak)
        self.words += other.words


def _per_proc_loads(
    traffic: Traffic, send_cost_fn, recv_cost_fn
) -> tuple[np.ndarray, np.ndarray]:
    send = np.zeros(traffic.p)
    recv = np.zeros(traffic.p)
    for s, d, w in traffic.transfers:
        send[s] += send_cost_fn(w)
        recv[d] += recv_cost_fn(w)
    return send, recv


class TwoSidedMachine:
    """Rendezvous send/recv with per-phase global barrier."""

    name = "two-sided"

    def __init__(self, config: CommConfig | None = None, aggregate: int = 0) -> None:
        """``aggregate`` > 0 coalesces each (src, dst) pair's messages into
        batches of at most that many words (0 = no aggregation)."""
        self.config = config or CommConfig()
        self.aggregate = int(aggregate)

    def _coalesce(self, traffic: Traffic) -> tuple[Traffic, int]:
        """Merge per-pair messages into aggregated batches; returns the new
        traffic and the peak buffer words any processor dedicates to
        coalescing."""
        if self.aggregate <= 0:
            return traffic, 0
        pair_words: dict[tuple[int, int], int] = {}
        for s, d, w in traffic.transfers:
            pair_words[(s, d)] = pair_words.get((s, d), 0) + w
        out: list[tuple[int, int, int]] = []
        buffer_per_proc = np.zeros(traffic.p, dtype=np.int64)
        for (s, d), words in sorted(pair_words.items()):
            buffer_per_proc[s] += min(words, self.aggregate)
            while words > 0:
                chunk = min(words, self.aggregate)
                out.append((s, d, chunk))
                words -= chunk
        return Traffic(traffic.p, tuple(out)), int(buffer_per_proc.max())

    def phase(self, traffic: Traffic) -> CommReport:
        cfg = self.config
        coalesced, buffer_peak = self._coalesce(traffic)
        send, recv = _per_proc_loads(
            coalesced,
            send_cost_fn=lambda w: 2 * cfg.alpha + cfg.beta * w,
            recv_cost_fn=lambda _w: cfg.alpha,
        )
        barrier = 2 * cfg.alpha * max(1.0, math.log2(max(2, traffic.p)))
        time = float((send + recv).max(initial=0.0)) + barrier
        return CommReport(
            machine=self.name,
            time_cycles=time,
            messages=coalesced.n_messages,
            sync_events=1,  # the barrier
            buffer_words_peak=buffer_peak,
            words=coalesced.total_words,
        )

    def run(self, phases: Sequence[Traffic]) -> CommReport:
        total = CommReport(machine=self.name)
        for t in phases:
            total.add(self.phase(t))
        return total


class OneSidedMachine:
    """Put/get RMA with per-phase flush + pairwise signals."""

    name = "one-sided"

    def __init__(self, config: CommConfig | None = None) -> None:
        self.config = config or ONE_SIDED_DEFAULT

    def phase(self, traffic: Traffic) -> CommReport:
        cfg = self.config
        send, recv = _per_proc_loads(
            traffic,
            send_cost_fn=lambda w: cfg.alpha + cfg.beta * w,
            recv_cost_fn=lambda _w: 0.0,  # no matching at the target
        )
        pairs = {(s, d) for s, d, _w in traffic.transfers}
        # completion: one flush per processor (alpha) + one signal per pair
        signal_load = np.zeros(traffic.p)
        for s, _d in pairs:
            signal_load[s] += cfg.alpha
        time = float((send + signal_load).max(initial=0.0)) + cfg.alpha
        return CommReport(
            machine=self.name,
            time_cycles=time,
            messages=traffic.n_messages,
            sync_events=len(pairs),
            buffer_words_peak=0,
            words=traffic.total_words,
        )

    def run(self, phases: Sequence[Traffic]) -> CommReport:
        total = CommReport(machine=self.name)
        for t in phases:
            total.add(self.phase(t))
        return total


# --------------------------------------------------------------------------- #
# workload generators
# --------------------------------------------------------------------------- #


def halo_exchange(p: int, words: int, steps: int = 1) -> list[Traffic]:
    """1-D nearest-neighbour halo swap, ``steps`` bulk phases."""
    if p < 1:
        raise ValueError("p must be >= 1")
    transfers = []
    for k in range(p - 1):
        transfers.append((k, k + 1, words))
        transfers.append((k + 1, k, words))
    t = Traffic(p, tuple(transfers))
    return [t] * steps


def transpose(p: int, block_words: int) -> list[Traffic]:
    """All-to-all: every processor sends a block to every other."""
    transfers = [
        (s, d, block_words) for s in range(p) for d in range(p) if s != d
    ]
    return [Traffic(p, tuple(transfers))]


def random_updates(
    p: int, n_updates: int, seed: int = 0, words: int = 1
) -> list[Traffic]:
    """GUPS-style irregular updates: each update targets a random processor.

    The pattern fine-grained one-sided primitives exist for: many tiny
    messages to unpredictable targets.
    """
    rng = np.random.default_rng(seed)
    transfers = []
    src = rng.integers(0, p, size=n_updates)
    dst = rng.integers(0, p, size=n_updates)
    for s, d in zip(src, dst):
        if s != d:
            transfers.append((int(s), int(d), words))
    return [Traffic(p, tuple(transfers))]


def tree_reduce_traffic(p: int, words: int) -> list[Traffic]:
    """Binary-tree reduction: log2(p) phases of pairwise sends."""
    if p < 1 or p & (p - 1):
        raise ValueError("p must be a power of two")
    phases = []
    stride = 1
    while stride < p:
        transfers = []
        for k in range(0, p, 2 * stride):
            transfers.append((k + stride, k, words))
        phases.append(Traffic(p, tuple(transfers)))
        stride *= 2
    return phases
