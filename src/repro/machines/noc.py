"""Network-on-chip: XY-routed mesh with link contention and link faults.

The F&M cost model charges transport by distance alone — wires are assumed
available when a value wants to move.  Real grids arbitrate: two messages
wanting the same link serialize.  This module provides a deterministic
link-level mesh simulation so the package can *measure* the gap between
the idealized model and a contended fabric (the grid machine's
``with_noc=True`` mode), and so in-transit buffering can be bounded.

Model
-----
*  2-D mesh, bidirectional links between 4-neighbours.
*  Dimension-order (XY) routing: travel in x first, then y — deadlock-free
   and deterministic.
*  Each message carries ``size_bytes``; a word (8 bytes) is one flit.  A
   link accepts one new flit per cycle (pipelined wires: initiation
   interval 1), and a hop takes ``tech.hop_cycles()`` cycles of flight.
*  Arbitration is age-based and deterministic: messages are processed in
   (inject_cycle, id) order, each claiming the earliest slot on every link
   of its route.  This is a conservative, reproducible stand-in for
   round-robin VC arbitration.
*  **Link faults**: links named dead (explicitly, or by the active
   :mod:`repro.faults` plan) carry no traffic.  Messages whose XY route
   crosses a dead link are detoured over a deterministic BFS shortest
   path around the failure, with the extra hops charged honestly in both
   latency and transport energy (:class:`NocReport.extra_hops` /
   ``extra_energy_fj``); messages with no surviving route are reported as
   ``undelivered`` instead of silently dropped.

Dally's bio notes he "designed ... the Torus Routing Chip which pioneered
wormhole routing and virtual-channel flow control" — the simplified model
here is the single-flit degenerate case of exactly that machinery.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.faults.inject import active as _faults_active
from repro.faults.plan import canonical_link
from repro.machines.technology import Technology, TECH_5NM
from repro.obs import active as _obs_active

__all__ = ["Message", "NocReport", "Noc", "xy_route", "route_avoiding"]

#: One flit carries one 64-bit word.
_FLIT_BYTES = 8

Place = tuple[int, int]
Link = tuple[Place, Place]


@dataclass(frozen=True)
class Message:
    """One message of ``size_bytes`` payload (default: one word).

    Fields are validated at construction so malformed traffic fails with
    an actionable message instead of deep inside :meth:`Noc.simulate`.
    """

    mid: int
    src: tuple[int, int]
    dst: tuple[int, int]
    inject_cycle: int = 0
    size_bytes: int = _FLIT_BYTES

    def __post_init__(self) -> None:
        for name in ("src", "dst"):
            p = getattr(self, name)
            if (
                not isinstance(p, tuple)
                or len(p) != 2
                or not all(isinstance(c, int) and not isinstance(c, bool) for c in p)
            ):
                raise ValueError(
                    f"message {self.mid}: {name}={p!r} must be an (x, y) tuple "
                    "of ints"
                )
            if p[0] < 0 or p[1] < 0:
                raise ValueError(
                    f"message {self.mid}: {name}={p} has negative coordinates; "
                    "mesh nodes live at (x >= 0, y >= 0)"
                )
        if self.src == self.dst:
            raise ValueError(
                f"message {self.mid}: src == dst == {self.src}; same-place "
                "traffic needs no NoC — filter it out before simulating"
            )
        if self.size_bytes < 1:
            raise ValueError(
                f"message {self.mid}: size_bytes={self.size_bytes} must be "
                ">= 1 (a message carries at least one byte)"
            )
        if self.inject_cycle < 0:
            raise ValueError(
                f"message {self.mid}: inject_cycle={self.inject_cycle} must "
                "be >= 0 (cycle 0 is the start of time)"
            )

    @property
    def flits(self) -> int:
        """Payload size in flits (one word each, rounded up)."""
        return -(-self.size_bytes // _FLIT_BYTES)


@dataclass
class NocReport:
    """Aggregate results of a NoC simulation."""

    delivery_cycle: dict[int, int] = field(default_factory=dict)
    latency: dict[int, int] = field(default_factory=dict)
    max_link_waiting: int = 0
    busiest_link_messages: int = 0
    #: messages whose XY route crossed a dead link but found a detour
    rerouted: int = 0
    #: hops travelled beyond the (fault-free) XY routes, summed
    extra_hops: int = 0
    #: transport energy for those extra hops (one word per hop pitch)
    extra_energy_fj: float = 0.0
    #: mids with no surviving route (the mesh is partitioned around them)
    undelivered: list[int] = field(default_factory=list)

    @property
    def total_latency(self) -> int:
        return sum(self.latency.values())

    @property
    def max_latency(self) -> int:
        return max(self.latency.values(), default=0)

    @property
    def makespan(self) -> int:
        return max(self.delivery_cycle.values(), default=0)


def xy_route(src: tuple[int, int], dst: tuple[int, int]) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """The XY route as a list of directed links (hop pairs)."""
    hops: list[tuple[tuple[int, int], tuple[int, int]]] = []
    x, y = src
    while x != dst[0]:
        nx = x + (1 if dst[0] > x else -1)
        hops.append(((x, y), (nx, y)))
        x = nx
    while y != dst[1]:
        ny = y + (1 if dst[1] > y else -1)
        hops.append(((x, y), (x, ny)))
        y = ny
    return hops


def route_avoiding(
    src: Place,
    dst: Place,
    width: int,
    height: int,
    dead_links: set[Link],
) -> list[tuple[Place, Place]] | None:
    """Deterministic shortest mesh route from ``src`` to ``dst`` avoiding
    ``dead_links`` (canonical undirected pairs), or None if the failure
    pattern disconnects the endpoints.

    BFS with a fixed neighbour order (+x, -x, +y, -y) — no RNG, no tie
    ambiguity — so the same failure pattern always yields the same detour.
    """
    if src == dst:
        return []
    prev: dict[Place, Place] = {src: src}
    frontier: deque[Place] = deque([src])
    while frontier:
        p = frontier.popleft()
        if p == dst:
            break
        x, y = p
        for q in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
            if not (0 <= q[0] < width and 0 <= q[1] < height):
                continue
            if q in prev or canonical_link(p, q) in dead_links:
                continue
            prev[q] = p
            frontier.append(q)
    if dst not in prev:
        return None
    hops: list[tuple[Place, Place]] = []
    node = dst
    while node != src:
        hops.append((prev[node], node))
        node = prev[node]
    hops.reverse()
    return hops


class Noc:
    """A W x H mesh network simulator.

    ``dead_links`` (undirected node pairs) are unavailable from cycle 0;
    links named dead by the active :mod:`repro.faults` plan are merged in
    per :meth:`simulate` call.
    """

    def __init__(
        self,
        width: int,
        height: int,
        tech: Technology = TECH_5NM,
        dead_links: Iterable[Link] | None = None,
    ) -> None:
        if width < 1 or height < 1:
            raise ValueError("mesh must have positive extent")
        self.width = width
        self.height = height
        self.tech = tech
        self.dead_links: set[Link] = {
            canonical_link(a, b) for a, b in (dead_links or ())
        }
        for a, b in self.dead_links:
            self._check_node(a)
            self._check_node(b)
            if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
                raise ValueError(
                    f"dead link {a} -- {b} does not join mesh neighbours"
                )

    def _check_node(self, p: tuple[int, int]) -> None:
        if not (0 <= p[0] < self.width and 0 <= p[1] < self.height):
            raise ValueError(f"node {p} outside {self.width}x{self.height} mesh")

    def _effective_dead_links(self) -> set[Link]:
        inj = _faults_active()
        if inj is None or inj.plan.spec.link_down <= 0.0:
            return self.dead_links
        return self.dead_links | inj.plan.dead_links(self.width, self.height)

    def simulate(self, messages: list[Message]) -> NocReport:
        """Deliver all messages; returns per-message latency and congestion.

        Deterministic: independent of input list order (messages are sorted
        by (inject_cycle, mid) before link slots are claimed).  With dead
        links present, affected messages detour (see module docstring);
        the report carries the honest extra-hop latency/energy cost and
        lists undeliverable messages rather than hiding them.
        """
        sess = _obs_active()
        inj = _faults_active()
        span = (
            sess.span("noc.simulate", cat="noc", messages=len(messages))
            if sess is not None
            else None
        )
        hop_cycles = self.tech.hop_cycles()
        hop_energy_fj = self.tech.transport_energy_fj(self.tech.grid_pitch_mm)
        dead = self._effective_dead_links()
        # link -> next cycle at which it can accept a message
        link_free: dict[tuple[tuple[int, int], tuple[int, int]], int] = {}
        # link -> list of (enter_wait_cycle, start_cycle) for queue stats
        waits: dict[tuple[tuple[int, int], tuple[int, int]], list[tuple[int, int]]] = {}
        link_count: dict[tuple[tuple[int, int], tuple[int, int]], int] = {}

        report = NocReport()
        for msg in sorted(messages, key=lambda m: (m.inject_cycle, m.mid)):
            self._check_node(msg.src)
            self._check_node(msg.dst)
            route = xy_route(msg.src, msg.dst)
            if dead and any(canonical_link(a, b) in dead for a, b in route):
                if inj is not None:
                    inj.injected("link_down", f"mid={msg.mid}")
                detour = route_avoiding(
                    msg.src, msg.dst, self.width, self.height, dead
                )
                if detour is None:
                    report.undelivered.append(msg.mid)
                    if inj is not None:
                        inj.unrecovered("link_down", f"mid={msg.mid} partitioned")
                    continue
                report.rerouted += 1
                report.extra_hops += len(detour) - len(route)
                report.extra_energy_fj += (
                    (len(detour) - len(route)) * hop_energy_fj * msg.flits
                )
                if inj is not None:
                    inj.recovered(
                        "link_down",
                        f"mid={msg.mid} +{len(detour) - len(route)} hops",
                    )
                route = detour
            t = msg.inject_cycle
            flits = msg.flits
            for link in route:
                start = max(t, link_free.get(link, 0))
                if start > t:
                    waits.setdefault(link, []).append((t, start))
                link_free[link] = start + flits
                link_count[link] = link_count.get(link, 0) + 1
                t = start + hop_cycles
            # serialization: the tail flit trails the head by flits - 1
            t += flits - 1
            report.delivery_cycle[msg.mid] = t
            report.latency[msg.mid] = t - msg.inject_cycle

        # queue statistics: max simultaneous waiters on any link
        for link, intervals in waits.items():
            events: list[tuple[int, int]] = []
            for enter, leave in intervals:
                events.append((enter, +1))
                events.append((leave, -1))
            events.sort()
            cur = 0
            for _t, d in events:
                cur += d
                if cur > report.max_link_waiting:
                    report.max_link_waiting = cur
        report.busiest_link_messages = max(link_count.values(), default=0)

        if sess is not None:
            mesh = f"{self.width}x{self.height}"
            m = sess.metrics
            m.counter("noc.messages", mesh=mesh).add(len(messages))
            m.counter("noc.total_latency_cycles", mesh=mesh).add(report.total_latency)
            m.gauge("noc.busiest_link_messages", better="lower", mesh=mesh).set(
                report.busiest_link_messages
            )
            m.gauge("noc.max_link_waiting", better="lower", mesh=mesh).set(
                report.max_link_waiting
            )
            if dead:
                m.counter("noc.rerouted_messages", mesh=mesh).add(report.rerouted)
                m.counter("noc.extra_hops", mesh=mesh).add(report.extra_hops)
                m.counter("noc.undelivered_messages", mesh=mesh).add(
                    len(report.undelivered)
                )
            if span is not None:
                span.set_cycles(report.makespan).set(
                    max_latency=report.max_latency,
                    busiest_link=report.busiest_link_messages,
                )
                span.__exit__()
        return report
