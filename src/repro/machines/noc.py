"""Network-on-chip: XY-routed mesh with link contention.

The F&M cost model charges transport by distance alone — wires are assumed
available when a value wants to move.  Real grids arbitrate: two messages
wanting the same link serialize.  This module provides a deterministic
link-level mesh simulation so the package can *measure* the gap between
the idealized model and a contended fabric (the grid machine's
``with_noc=True`` mode), and so in-transit buffering can be bounded.

Model
-----
*  2-D mesh, bidirectional links between 4-neighbours.
*  Dimension-order (XY) routing: travel in x first, then y — deadlock-free
   and deterministic.
*  Each message is one word (one flit).  A link accepts at most one new
   message per cycle (pipelined wires: initiation interval 1), and a hop
   takes ``tech.hop_cycles()`` cycles of flight.
*  Arbitration is age-based and deterministic: messages are processed in
   (inject_cycle, id) order, each claiming the earliest slot on every link
   of its route.  This is a conservative, reproducible stand-in for
   round-robin VC arbitration.

Dally's bio notes he "designed ... the Torus Routing Chip which pioneered
wormhole routing and virtual-channel flow control" — the simplified model
here is the single-flit degenerate case of exactly that machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machines.technology import Technology, TECH_5NM
from repro.obs import active as _obs_active

__all__ = ["Message", "NocReport", "Noc", "xy_route"]


@dataclass(frozen=True)
class Message:
    """One word-sized message."""

    mid: int
    src: tuple[int, int]
    dst: tuple[int, int]
    inject_cycle: int = 0


@dataclass
class NocReport:
    """Aggregate results of a NoC simulation."""

    delivery_cycle: dict[int, int] = field(default_factory=dict)
    latency: dict[int, int] = field(default_factory=dict)
    max_link_waiting: int = 0
    busiest_link_messages: int = 0

    @property
    def total_latency(self) -> int:
        return sum(self.latency.values())

    @property
    def max_latency(self) -> int:
        return max(self.latency.values(), default=0)

    @property
    def makespan(self) -> int:
        return max(self.delivery_cycle.values(), default=0)


def xy_route(src: tuple[int, int], dst: tuple[int, int]) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """The XY route as a list of directed links (hop pairs)."""
    hops: list[tuple[tuple[int, int], tuple[int, int]]] = []
    x, y = src
    while x != dst[0]:
        nx = x + (1 if dst[0] > x else -1)
        hops.append(((x, y), (nx, y)))
        x = nx
    while y != dst[1]:
        ny = y + (1 if dst[1] > y else -1)
        hops.append(((x, y), (x, ny)))
        y = ny
    return hops


class Noc:
    """A W x H mesh network simulator."""

    def __init__(self, width: int, height: int, tech: Technology = TECH_5NM) -> None:
        if width < 1 or height < 1:
            raise ValueError("mesh must have positive extent")
        self.width = width
        self.height = height
        self.tech = tech

    def _check_node(self, p: tuple[int, int]) -> None:
        if not (0 <= p[0] < self.width and 0 <= p[1] < self.height):
            raise ValueError(f"node {p} outside {self.width}x{self.height} mesh")

    def simulate(self, messages: list[Message]) -> NocReport:
        """Deliver all messages; returns per-message latency and congestion.

        Deterministic: independent of input list order (messages are sorted
        by (inject_cycle, mid) before link slots are claimed).
        """
        sess = _obs_active()
        span = (
            sess.span("noc.simulate", cat="noc", messages=len(messages))
            if sess is not None
            else None
        )
        hop_cycles = self.tech.hop_cycles()
        # link -> next cycle at which it can accept a message
        link_free: dict[tuple[tuple[int, int], tuple[int, int]], int] = {}
        # link -> list of (enter_wait_cycle, start_cycle) for queue stats
        waits: dict[tuple[tuple[int, int], tuple[int, int]], list[tuple[int, int]]] = {}
        link_count: dict[tuple[tuple[int, int], tuple[int, int]], int] = {}

        report = NocReport()
        for msg in sorted(messages, key=lambda m: (m.inject_cycle, m.mid)):
            self._check_node(msg.src)
            self._check_node(msg.dst)
            t = msg.inject_cycle
            for link in xy_route(msg.src, msg.dst):
                start = max(t, link_free.get(link, 0))
                if start > t:
                    waits.setdefault(link, []).append((t, start))
                link_free[link] = start + 1
                link_count[link] = link_count.get(link, 0) + 1
                t = start + hop_cycles
            report.delivery_cycle[msg.mid] = t
            report.latency[msg.mid] = t - msg.inject_cycle

        # queue statistics: max simultaneous waiters on any link
        for link, intervals in waits.items():
            events: list[tuple[int, int]] = []
            for enter, leave in intervals:
                events.append((enter, +1))
                events.append((leave, -1))
            events.sort()
            cur = 0
            for _t, d in events:
                cur += d
                if cur > report.max_link_waiting:
                    report.max_link_waiting = cur
        report.busiest_link_messages = max(link_count.values(), default=0)

        if sess is not None:
            mesh = f"{self.width}x{self.height}"
            m = sess.metrics
            m.counter("noc.messages", mesh=mesh).add(len(messages))
            m.counter("noc.total_latency_cycles", mesh=mesh).add(report.total_latency)
            m.gauge("noc.busiest_link_messages", better="lower", mesh=mesh).set(
                report.busiest_link_messages
            )
            m.gauge("noc.max_link_waiting", better="lower", mesh=mesh).set(
                report.max_link_waiting
            )
            if span is not None:
                span.set_cycles(report.makespan).set(
                    max_latency=report.max_latency,
                    busiest_link=report.busiest_link_messages,
                )
                span.__exit__()
        return report
