"""Full-stack verification of lowered designs — Martonosi's agenda.

Paper, Section 4: "I will advocate for a shift towards formal
specifications that support automated full-stack verification for
correctness and security."

In this package the stack is: functional spec (`DataflowGraph`) ->
space-time mapping (`Mapping`) -> structural hardware (`HardwareSpec`).
This module closes the loop with **translation validation**: it executes
the *hardware description itself* — ROMs drive the PEs, values move only
over declared wires with physical latencies — and checks the result
against the functional spec, along with the structural invariants every
legal lowering must satisfy:

1.  **coverage** — every compute node appears in exactly one ROM entry;
2.  **occupancy** — no PE executes two entries in one cycle;
3.  **wiring** — every cross-PE operand has a declared wire of the right
    endpoints, and per-wire traffic counts match the spec;
4.  **timing** — every operand arrives (producer finish + wire flight)
    no later than its consumer's cycle;
5.  **functional equivalence** — the hardware execution's outputs equal
    the pure functional evaluation (run under multiple same-cycle
    execution orders: dataflow determinism means the schedule must not
    matter).

:func:`mutate_spec` produces single-fault mutants (dropped wire, retimed
entry, corrupted opcode, teleported entry); the C16 bench shows the
verifier catches every one — the "automated" in automated verification.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping as TMapping

import numpy as np

from repro.core.function import DataflowGraph, OP_TABLE
from repro.core.lowering import HardwareSpec, RomEntry, Wire
from repro.core.mapping import GridSpec, Mapping

__all__ = ["Check", "VerificationResult", "verify_lowering", "mutate_spec",
           "MUTATION_KINDS"]


@dataclass(frozen=True)
class Check:
    """One verification check's outcome."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class VerificationResult:
    """Outcome of :func:`verify_lowering`."""

    checks: list[Check] = field(default_factory=list)
    outputs: dict[Any, Any] | None = None

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def failed(self) -> list[Check]:
        return [c for c in self.checks if not c.ok]

    def describe(self) -> str:
        lines = []
        for c in self.checks:
            mark = "ok " if c.ok else "FAIL"
            lines.append(f"[{mark}] {c.name}" + (f": {c.detail}" if c.detail else ""))
        return "\n".join(lines)


def _entry_map(spec: HardwareSpec) -> dict[int, tuple[tuple[int, int], RomEntry]]:
    out: dict[int, tuple[tuple[int, int], RomEntry]] = {}
    for place, rom in spec.roms.items():
        for e in rom:
            if e.node in out:
                return {}  # duplicate — caught by coverage check
            out[e.node] = (place, e)
    return out


def verify_lowering(
    graph: DataflowGraph,
    mapping: Mapping,
    spec: HardwareSpec,
    grid: GridSpec,
    inputs: TMapping[str, Any] | None = None,
    orders: tuple[str, ...] = ("id", "reverse"),
) -> VerificationResult:
    """Translation-validate a lowered design against its functional spec.

    ``inputs`` binds the graph's inputs for the functional-equivalence
    check (defaults to index-derived integers so the check is always
    runnable).  ``orders`` selects the same-cycle execution orders the
    hardware run is repeated under.
    """
    res = VerificationResult()
    inputs = dict(inputs) if inputs else _default_inputs(graph)

    # ---- check 1: coverage ------------------------------------------- #
    rom_nodes: list[int] = [e.node for rom in spec.roms.values() for e in rom]
    compute = graph.compute_nodes()
    dup = len(rom_nodes) != len(set(rom_nodes))
    missing = set(compute) - set(rom_nodes)
    extra = set(rom_nodes) - set(compute)
    res.checks.append(Check(
        "coverage",
        not dup and not missing and not extra,
        f"dup={dup} missing={sorted(missing)[:4]} extra={sorted(extra)[:4]}"
        if dup or missing or extra else "",
    ))
    entries = _entry_map(spec)
    if dup or missing or extra or not entries:
        return res  # later checks need a well-formed entry map

    # ---- check 2: occupancy ------------------------------------------ #
    occ_bad = []
    for place, rom in spec.roms.items():
        seen: set[int] = set()
        for e in rom:
            if e.cycle in seen:
                occ_bad.append((place, e.cycle))
            seen.add(e.cycle)
    res.checks.append(Check(
        "occupancy", not occ_bad,
        f"double-booked {occ_bad[:4]}" if occ_bad else "",
    ))

    # ---- check 3: wiring --------------------------------------------- #
    declared: dict[tuple[tuple[int, int], tuple[int, int]], int] = {
        (w.src, w.dst): w.words for w in spec.wires
    }
    used: dict[tuple[tuple[int, int], tuple[int, int]], int] = {}
    wiring_bad: list[str] = []
    for nid, (place, e) in entries.items():
        args = graph.args[nid]
        if len(e.sources) != len(args):
            wiring_bad.append(f"node {nid}: {len(e.sources)} sources, "
                              f"{len(args)} operands")
            continue
        for u, src in zip(args, e.sources):
            if mapping.offchip[u]:
                if src != "offchip":
                    wiring_bad.append(f"node {nid}: operand {u} should be offchip")
                continue
            up = mapping.place_of(u)
            if up == place:
                if src != "local":
                    wiring_bad.append(f"node {nid}: operand {u} should be local")
                continue
            if src != up:
                wiring_bad.append(f"node {nid}: operand {u} routed from {src}, "
                                  f"produced at {up}")
                continue
            key = (up, place)
            used[key] = used.get(key, 0) + 1
            if key not in declared:
                wiring_bad.append(f"node {nid}: no wire {up} -> {place}")
    for key, words in used.items():
        if key in declared and declared[key] != words:
            wiring_bad.append(
                f"wire {key[0]} -> {key[1]} declares {declared[key]} words, "
                f"carries {words}"
            )
    for key in declared:
        if key not in used:
            wiring_bad.append(f"declared wire {key[0]} -> {key[1]} never used")
    res.checks.append(Check(
        "wiring", not wiring_bad, "; ".join(wiring_bad[:3]),
    ))

    # ---- check 4: timing --------------------------------------------- #
    timing_bad: list[str] = []
    for nid, (place, e) in entries.items():
        for u in graph.args[nid]:
            if graph.is_compute(u):
                if u not in entries:
                    continue  # coverage already failed
                up, ue = entries[u]
                avail = ue.cycle + 1
            else:
                up = mapping.place_of(u)
                avail = int(mapping.time[u])
            if mapping.offchip[u]:
                transit = grid.tech.offchip_cycles()
            else:
                transit = grid.transit_cycles(up, place)
            if e.cycle < avail + transit:
                timing_bad.append(
                    f"node {nid}@{e.cycle} needs operand {u} arriving at "
                    f"{avail + transit}"
                )
    res.checks.append(Check(
        "timing", not timing_bad, "; ".join(timing_bad[:3]),
    ))

    # ---- check 5: functional equivalence ----------------------------- #
    reference = graph.evaluate_all(inputs)
    func_bad: list[str] = []
    hw_outputs: dict[Any, Any] = {}
    for order in orders:
        values = _simulate_hardware(graph, mapping, entries, inputs, order)
        if values is None:
            func_bad.append(f"order {order}: hardware execution stuck")
            continue
        for label, nid in graph.outputs.items():
            got, want = values[nid], reference[nid]
            if not _close(got, want):
                func_bad.append(f"order {order}: output {label!r} = {got!r}, "
                                f"spec says {want!r}")
        if order == orders[0]:
            hw_outputs = {
                label: values[nid] for label, nid in graph.outputs.items()
            }
    res.checks.append(Check(
        "functional", not func_bad, "; ".join(func_bad[:3]),
    ))
    res.outputs = hw_outputs
    return res


def _default_inputs(graph: DataflowGraph) -> dict[str, Any]:
    """Index-derived deterministic bindings so verification always runs."""
    names = {graph.payload[nid][0] for nid in graph.input_nodes()}
    return {
        name: (lambda *idx: (sum(idx) * 7 + 3) % 101) for name in names
    }


def _close(a: Any, b: Any) -> bool:
    if isinstance(a, (float, complex)) or isinstance(b, (float, complex)):
        return abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b))
    return a == b


def _simulate_hardware(
    graph: DataflowGraph,
    mapping: Mapping,
    entries: dict[int, tuple[tuple[int, int], RomEntry]],
    inputs: TMapping[str, Any],
    order: str,
) -> list[Any] | None:
    """Execute the ROMs directly, in global cycle order.

    Entries sharing a cycle execute in id order / reverse id order /
    seeded-random order per ``order`` — dataflow semantics must make the
    choice invisible.  Uses the *entry's* opcode (so a corrupted ROM
    mis-executes, which is the point).  Returns node values or None if an
    operand was unavailable when needed.
    """
    n = graph.n_nodes
    values: list[Any] = [None] * n
    done = [False] * n
    for nid in range(n):
        op = graph.ops[nid]
        if op == "const":
            values[nid] = graph.payload[nid]
            done[nid] = True
        elif op == "input":
            name, idx = graph.payload[nid]
            src = inputs[name]
            values[nid] = src(*idx) if callable(src) else src[idx]
            done[nid] = True

    items = list(entries.items())
    if order == "id":
        items.sort(key=lambda kv: (kv[1][1].cycle, kv[0]))
    elif order == "reverse":
        items.sort(key=lambda kv: (kv[1][1].cycle, -kv[0]))
    else:
        rng = np.random.default_rng(abs(hash(order)) % (2**32))
        perm = rng.permutation(len(items))
        items = [items[i] for i in perm]
        items.sort(key=lambda kv: kv[1][1].cycle)

    for nid, (_place, e) in items:
        args = graph.args[nid]
        vals = []
        for u in args:
            if not done[u]:
                return None
            vals.append(values[u])
        if e.op not in OP_TABLE:
            return None
        arity, fn = OP_TABLE[e.op]
        if arity != len(vals):
            return None
        try:
            values[nid] = fn(*vals)
        except Exception:
            return None
        done[nid] = True
    return values


# --------------------------------------------------------------------------- #
# mutation testing
# --------------------------------------------------------------------------- #

MUTATION_KINDS = ("drop_wire", "retime_early", "corrupt_op", "teleport_entry",
                  "inflate_wire")


def mutate_spec(spec: HardwareSpec, kind: str, seed: int = 0) -> HardwareSpec:
    """Return a single-fault mutant of ``spec``.

    Kinds: ``drop_wire`` (remove one wire), ``retime_early`` (move one
    entry to cycle 0), ``corrupt_op`` (swap an entry's opcode between
    + and *), ``teleport_entry`` (move an entry to another PE without
    fixing wires), ``inflate_wire`` (misdeclare a wire's word count).
    Raises ValueError if the spec has no site for the mutation.
    """
    rng = np.random.default_rng(seed)
    roms = {p: list(rom) for p, rom in spec.roms.items()}
    wires = list(spec.wires)

    def rebuild() -> HardwareSpec:
        out = HardwareSpec(grid=spec.grid)
        out.roms = {p: sorted(rom, key=lambda e: e.cycle) for p, rom in roms.items()}
        out.wires = wires
        out.offchip_words = spec.offchip_words
        return out

    if kind == "drop_wire":
        if not wires:
            raise ValueError("no wires to drop")
        wires.pop(int(rng.integers(len(wires))))
        return rebuild()

    if kind == "inflate_wire":
        if not wires:
            raise ValueError("no wires to inflate")
        k = int(rng.integers(len(wires)))
        w = wires[k]
        wires[k] = Wire(src=w.src, dst=w.dst, length_mm=w.length_mm,
                        words=w.words + 3)
        return rebuild()

    # entry-level mutations: pick an entry with a nonzero cycle / operands
    places = [p for p, rom in roms.items() if rom]
    if not places:
        raise ValueError("empty spec")

    if kind == "retime_early":
        # prefer entries with a cross-PE operand: retiming those to cycle 0
        # necessarily violates wire flight time (a guaranteed real fault);
        # fall back to any nonzero-cycle entry
        candidates = [
            (p, i) for p in places for i, e in enumerate(roms[p])
            if e.cycle > 0 and any(isinstance(s, tuple) for s in e.sources)
        ]
        if not candidates:
            candidates = [
                (p, i) for p in places for i, e in enumerate(roms[p])
                if e.cycle > 0
            ]
        if not candidates:
            raise ValueError("no entry to retime")
        p, i = candidates[int(rng.integers(len(candidates)))]
        e = roms[p][i]
        roms[p][i] = dataclasses.replace(e, cycle=0)
        return rebuild()

    if kind == "corrupt_op":
        candidates = [
            (p, i) for p in places for i, e in enumerate(roms[p])
            if e.op in ("+", "*")
        ]
        if not candidates:
            raise ValueError("no +/* entry to corrupt")
        p, i = candidates[int(rng.integers(len(candidates)))]
        e = roms[p][i]
        roms[p][i] = dataclasses.replace(e, op="*" if e.op == "+" else "+")
        return rebuild()

    if kind == "teleport_entry":
        donors = [p for p in places if len(roms[p]) > 0]
        if len(spec.roms) < 1:
            raise ValueError("nothing to teleport")
        p = donors[int(rng.integers(len(donors)))]
        e = roms[p].pop(int(rng.integers(len(roms[p]))))
        # land it on a different grid place (possibly previously unused)
        target = ((p[0] + 1) % max(1, spec.grid.width), p[1])
        roms.setdefault(target, []).append(e)
        return rebuild()

    raise ValueError(f"unknown mutation kind {kind!r}")
