"""Mapping-space search: "systematically search ... to optimize a figure of merit".

Paper, Section 3: "For each function there are many possible mappings that
range from completely serial to minimum-depth parallel with many points
between.  One can systematically search the space of possible mappings to
optimize a given figure of merit: execution time, energy per op, memory
footprint, or some combination."

Three searchers, in increasing ambition:

``sweep_placements``
    The structured sweep: serial, block-p and cyclic-p owner-computes
    placements for p in powers of two up to the grid size, each ASAP
    scheduled.  Covers the "completely serial ... to minimum-depth" axis
    the paper describes; this is the workhorse for the benches.
``exhaustive_search``
    All ``n_places ** n_compute`` placements for tiny graphs — ground
    truth to validate the heuristics against.
``anneal``
    Simulated annealing over per-node placements (seeded, reproducible),
    re-scheduled ASAP each step.  Finds irregular mappings the structured
    sweep can't express.

Every searcher takes an optional :class:`SearchEngine` selecting between
the **reference** path (the simple, auditable implementation above) and
the **fast** path: content-addressed memoization of cost evaluations
(:mod:`repro.core.memo`), incremental per-edge re-scoring of annealing
moves (:class:`repro.core.cost.IncrementalEdgeEnergy`), and a
``multiprocessing`` fan-out for the sweep and the exhaustive enumeration.
The two paths are required to produce *identical* results — same best
mapping, same :class:`CostReport` floats — and ``repro.testing`` ships the
differential oracle (:func:`repro.testing.assert_search_equivalent`) that
enforces it over every seed workload.  Ties on the figure of merit are
broken by candidate label (sweep) or placement assignment (exhaustive),
never by evaluation or arrival order, so serial and parallel runs agree.

All searchers return :class:`SearchResult` rows; :func:`pareto_front`
lives in :mod:`repro.analysis.pareto` and consumes them directly.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.cost import (
    CostReport,
    IncrementalEdgeEnergy,
    evaluate_cost,
    weighted_product_fom,
)
from repro.core.default_mapper import (
    schedule_asap,
    schedule_asap_fast,
    serial_mapping,
)
from repro.core.function import OP_ENERGY_FACTOR, DataflowGraph
from repro.core.mapping import GridSpec, Mapping
from repro.core.memo import MemoCache, global_cache
from repro.faults.inject import active as _faults_active
from repro.obs import Session, active as _obs_active
from repro.obs.distributed import TelemetryAggregator as _TelemetryAggregator

__all__ = [
    "SearchResult",
    "FigureOfMerit",
    "SearchEngine",
    "REFERENCE_ENGINE",
    "FAST_ENGINE",
    "COMPILED_ENGINE",
    "engine_for_backend",
    "sweep_placements",
    "exhaustive_search",
    "anneal",
]


@dataclass(frozen=True)
class FigureOfMerit:
    """Weights for the weighted-product FoM; lower is better."""

    time: float = 1.0
    energy: float = 0.0
    footprint: float = 0.0

    def __call__(self, cost: CostReport) -> float:
        return cost.figure_of_merit(self.time, self.energy, self.footprint)

    def score(self, cycles: float, energy_total: float, footprint: float) -> float:
        """FoM from raw metrics — same float path as :meth:`__call__`."""
        return weighted_product_fom(
            cycles, energy_total, footprint, self.time, self.energy, self.footprint
        )

    @staticmethod
    def fastest() -> "FigureOfMerit":
        return FigureOfMerit(1.0, 0.0, 0.0)

    @staticmethod
    def lowest_energy() -> "FigureOfMerit":
        return FigureOfMerit(0.0, 1.0, 0.0)

    @staticmethod
    def edp() -> "FigureOfMerit":
        """Energy-delay product."""
        return FigureOfMerit(1.0, 1.0, 0.0)


@dataclass
class SearchResult:
    """One evaluated point of the mapping space."""

    label: str
    mapping: Mapping
    cost: CostReport
    fom: float

    def metrics(self) -> tuple[float, float, float]:
        """(time, energy, footprint) for Pareto analysis."""
        return (
            float(self.cost.cycles),
            self.cost.energy_total_fj,
            float(self.cost.footprint_words),
        )


@dataclass(frozen=True)
class SearchEngine:
    """Execution strategy for the searchers.

    ``REFERENCE_ENGINE`` (all knobs off) is the plain path every other
    configuration is differentially tested against.  ``FAST_ENGINE`` turns
    everything on.  The knobs are independent:

    memoize
        Content-addressed caching of (schedule + cost) per candidate
        placement, keyed on (function hash, placement, machine spec).
        Multi-FoM sweeps and annealing revisits become lookups.
    incremental
        Annealing moves re-score only the edges incident to the moved node
        (exact — see :class:`IncrementalEdgeEnergy`) and skip the liveness
        sweep whenever the FoM's footprint weight is zero, recovering the
        full report only for the returned winner.
    parallel
        Fan ``sweep_placements`` / ``exhaustive_search`` candidates out to
        a ``multiprocessing`` pool.  Merging is deterministic: results are
        combined by (FoM, label/assignment), never by arrival order.
    n_workers
        Pool size; ``None`` means ``os.cpu_count()``.  A resolved size of
        one runs inline (no pool overhead).
    task_timeout_s
        Per-task timeout for pool results; a worker that does not answer
        within it is treated as hung and its task is retried.  ``None``
        means the generous module default — a hung worker can delay a
        campaign, never stall it.
    max_retries
        Pool attempts beyond the first before falling back to running the
        still-failing tasks in-process (deterministic: results merge by
        payload index, so retries and fallbacks are bit-identical to a
        clean run).
    retry_backoff_s
        Base of the exponential backoff slept between pool attempts.
    compiled
        Evaluate candidates through the compiled kernels of
        :mod:`repro.compiled` — the graph/grid pair is lowered once into
        a :class:`~repro.compiled.FlatProgram` and every schedule/cost
        becomes an array-kernel call.  Bit-identical to the reference
        path (same floats, same tie-breaks, same memo keys — entries are
        interchangeable with the other engines' caches).
    cache
        The :class:`MemoCache` to use; ``None`` means the process-global
        ``search`` cache, shared across calls on purpose.
    """

    memoize: bool = False
    incremental: bool = False
    parallel: bool = False
    n_workers: int | None = None
    task_timeout_s: float | None = None
    max_retries: int = 2
    retry_backoff_s: float = 0.05
    compiled: bool = False
    cache: MemoCache | None = field(default=None, compare=False)

    @staticmethod
    def reference() -> "SearchEngine":
        return REFERENCE_ENGINE

    @staticmethod
    def fast(n_workers: int | None = None) -> "SearchEngine":
        return SearchEngine(
            memoize=True, incremental=True, parallel=True, n_workers=n_workers
        )

    @staticmethod
    def compiled_engine(n_workers: int | None = None) -> "SearchEngine":
        """Memoized + incremental + compiled kernels.  Parallel fan-out is
        deliberately off: the kernels win by making one process fast, and
        pools can be layered on explicitly when a campaign wants both."""
        return SearchEngine(
            memoize=True, incremental=True, compiled=True, n_workers=n_workers
        )

    # ------------------------------------------------------------------ #

    def resolved_cache(self) -> MemoCache:
        return self.cache if self.cache is not None else global_cache("search")

    def resolved_workers(self) -> int:
        if self.n_workers is not None:
            return max(1, self.n_workers)
        return os.cpu_count() or 1


REFERENCE_ENGINE = SearchEngine()
FAST_ENGINE = SearchEngine(memoize=True, incremental=True, parallel=True)
COMPILED_ENGINE = SearchEngine(memoize=True, incremental=True, compiled=True)


def engine_for_backend(backend: str) -> SearchEngine:
    """The shared engine instance implementing a named backend
    (``reference`` | ``fast`` | ``compiled``)."""
    if backend == "reference":
        return REFERENCE_ENGINE
    if backend == "fast":
        return FAST_ENGINE
    if backend == "compiled":
        return COMPILED_ENGINE
    raise ValueError(
        f"unknown backend {backend!r}; expected 'reference', 'fast', or 'compiled'"
    )


def _linear_place(grid: GridSpec, k: int) -> tuple[int, int]:
    return (k % grid.width, k // grid.width)


def _record_candidate(sess: Session | None, result: SearchResult) -> None:
    """One evaluated mapping -> one counter tick + FoM histogram sample."""
    if sess is None:
        return
    sess.metrics.counter("search.candidates").inc()
    sess.metrics.histogram("search.candidate_fom").observe(result.fom)


def _publish_engine_metrics(engine: SearchEngine | None) -> None:
    if engine is not None and engine.memoize:
        engine.resolved_cache().publish_metrics()


def _owner_place_fn(
    graph: DataflowGraph, grid: GridSpec, p: int, cyclic: bool
) -> Callable[[int], tuple[int, int]]:
    max_i = 0
    for nid in range(graph.n_nodes):
        idx = graph.index[nid]
        if idx and idx[0] > max_i:
            max_i = int(idx[0])
    extent = max_i + 1
    block = max(1, -(-extent // p))

    def place(nid: int) -> tuple[int, int]:
        idx = graph.index[nid]
        if not idx:
            return (0, 0)
        i = int(idx[0])
        linear = (i % p) if cyclic else min(i // block, p - 1)
        return _linear_place(grid, linear)

    return place


def _grid2d_place_fn(
    graph: DataflowGraph, grid: GridSpec
) -> Callable[[int], tuple[int, int]] | None:
    """2-D owner-computes for graphs whose nodes carry >= 2 index
    components: block index[0] over grid rows and index[1] over columns.
    Returns None when the graph has no 2-D-indexed nodes or the grid has
    a single row (nothing to gain)."""
    if grid.height < 2:
        return None
    max_i = max_j = -1
    for nid in range(graph.n_nodes):
        idx = graph.index[nid]
        if idx and len(idx) >= 2:
            max_i = max(max_i, int(idx[0]))
            max_j = max(max_j, int(idx[1]))
    if max_i < 0:
        return None
    bi = max(1, -(-(max_i + 1) // grid.height))
    bj = max(1, -(-(max_j + 1) // grid.width))

    def place(nid: int) -> tuple[int, int]:
        idx = graph.index[nid]
        if idx and len(idx) >= 2:
            y = min(int(idx[0]) // bi, grid.height - 1)
            x = min(int(idx[1]) // bj, grid.width - 1)
            return (x, y)
        if idx:
            return (0, min(int(idx[0]) // bi, grid.height - 1))
        return (0, 0)

    return place


# ---------------------------------------------------------------------- #
# candidate descriptors: picklable specs for the sweep's placements, so
# the parallel driver can rebuild the place functions inside workers.

_Spec = tuple[Any, ...]


def _sweep_specs(graph: DataflowGraph, grid: GridSpec) -> list[tuple[str, _Spec]]:
    """(label, spec) for every placement the structured sweep evaluates."""
    specs: list[tuple[str, _Spec]] = [("serial", ("serial",))]
    if _grid2d_place_fn(graph, grid) is not None:
        specs.append(("block-2d", ("2d",)))
    p = 2
    while p <= grid.n_places:
        for cyclic in (False, True):
            label = f"{'cyclic' if cyclic else 'block'}-p{p}"
            specs.append((label, ("owner", p, cyclic)))
        p *= 2
    # odd grid sizes: also try using every place
    if grid.n_places not in {1 << k for k in range(32)}:
        for cyclic in (False, True):
            label = f"{'cyclic' if cyclic else 'block'}-p{grid.n_places}"
            specs.append((label, ("owner", grid.n_places, cyclic)))
    return specs


def _spec_place_fn(
    graph: DataflowGraph, grid: GridSpec, spec: _Spec
) -> Callable[[int], tuple[int, int]]:
    if spec[0] == "serial":
        return lambda _nid: (0, 0)
    if spec[0] == "2d":
        place = _grid2d_place_fn(graph, grid)
        assert place is not None, "2d spec emitted for a graph without 2-D indices"
        return place
    _kind, p, cyclic = spec
    return _owner_place_fn(graph, grid, p, cyclic)


def _places_signature(graph: DataflowGraph, place_of: Callable[[int], tuple[int, int]]) -> bytes:
    """Content signature of a whole-graph placement (the mapping half of
    the memo key, before scheduling)."""
    flat: list[int] = []
    for nid in range(graph.n_nodes):
        x, y = place_of(nid)
        flat.append(int(x))
        flat.append(int(y))
    return np.asarray(flat, dtype=np.int64).tobytes()


# ---------------------------------------------------------------------- #
# multiprocessing workers (top-level, so payloads pickle under any start
# method).  OP_ENERGY_FACTOR entries registered by algorithm modules (e.g.
# the edit-distance cell ops) are shipped along and re-applied, so spawn
# workers charge the same energies as the parent.


def _sweep_worker(
    payload: tuple[DataflowGraph, GridSpec, list[tuple[str, _Spec]], dict[str, float]],
) -> list[tuple[str, Mapping, CostReport]]:
    graph, grid, specs, op_energy = payload
    OP_ENERGY_FACTOR.update(op_energy)
    out = []
    for label, spec in specs:
        place = _spec_place_fn(graph, grid, spec)
        m = schedule_asap(graph, grid, place)
        c = evaluate_cost(graph, m, grid)
        out.append((label, m, c))
    return out


def _sweep_worker_compiled(
    payload: tuple[DataflowGraph, GridSpec, list[tuple[str, _Spec]], dict[str, float]],
) -> list[tuple[str, Mapping, CostReport]]:
    """The compiled twin of :func:`_sweep_worker` — one lowering per
    worker (programs are process-global, so chunks share it)."""
    graph, grid, specs, op_energy = payload
    OP_ENERGY_FACTOR.update(op_energy)
    from repro.compiled import evaluate_cost_compiled, get_program, schedule_compiled

    fp = get_program(graph, grid)
    out = []
    for label, spec in specs:
        px, py = fp.places_for_spec(spec)
        m = schedule_compiled(fp, px, py)
        c = evaluate_cost_compiled(fp, m)
        out.append((label, m, c))
    return out


def _decode_assignment(lin: int, n_digits: int, base: int) -> list[int]:
    digits = []
    for _ in range(n_digits):
        digits.append(lin % base)
        lin //= base
    return digits


def _exhaustive_chunk_best(
    graph: DataflowGraph,
    grid: GridSpec,
    fom: "FigureOfMerit",
    compute: list[int],
    start: int,
    stop: int,
) -> tuple[float, tuple[int, ...], Mapping, CostReport, int]:
    """Best point of the linearised assignment range [start, stop).

    Selection is ``min((fom, assignment))`` — a total order independent of
    enumeration order, which is what makes chunked/parallel enumeration
    merge deterministically (and exactly match the serial reference).
    """
    assignment = _decode_assignment(start, len(compute), grid.n_places)
    best: tuple[float, tuple[int, ...], Mapping, CostReport] | None = None
    evaluated = 0
    for _lin in range(start, stop):
        node_place = {
            nid: _linear_place(grid, assignment[k]) for k, nid in enumerate(compute)
        }
        m = schedule_asap(graph, grid, lambda nid: node_place.get(nid, (0, 0)))
        c = evaluate_cost(graph, m, grid)
        f = fom(c)
        evaluated += 1
        key = (f, tuple(assignment))
        if best is None or key < (best[0], best[1]):
            best = (f, tuple(assignment), m, c)
        k = 0
        while k < len(assignment):
            assignment[k] += 1
            if assignment[k] < grid.n_places:
                break
            assignment[k] = 0
            k += 1
    assert best is not None
    return (*best, evaluated)


def _exhaustive_chunk_best_compiled(
    graph: DataflowGraph,
    grid: GridSpec,
    fom: "FigureOfMerit",
    compute: list[int],
    start: int,
    stop: int,
) -> tuple[float, tuple[int, ...], Mapping, CostReport, int]:
    """Compiled twin of :func:`_exhaustive_chunk_best`: same odometer,
    same ``min((fom, assignment))`` selection, but each point goes
    through the compiled scheduler and — while the FoM ignores footprint,
    which makes the liveness sweep irrelevant to the score (``x ** 0.0 ==
    1.0`` exactly) — a liveness-free energy total.  The winner's full
    report is recomputed at the end, so the returned ``CostReport`` is
    complete and identical to the reference's."""
    from repro.compiled import (
        edge_energy_totals,
        evaluate_cost_compiled,
        get_program,
        schedule_compiled,
    )

    fp = get_program(graph, grid)
    n = fp.n_nodes
    places = grid.n_places
    width = grid.width
    xs_of = [k % width for k in range(places)]
    ys_of = [k // width for k in range(places)]
    assignment = _decode_assignment(start, len(compute), places)
    xs = [0] * n
    ys = [0] * n
    for k, nid in enumerate(compute):
        xs[nid] = xs_of[assignment[k]]
        ys[nid] = ys_of[assignment[k]]
    skip_liveness = fom.footprint == 0.0
    best: tuple[float, tuple[int, ...], Mapping] | None = None
    evaluated = 0
    for _lin in range(start, stop):
        m = schedule_compiled(fp, xs, ys)
        if skip_liveness:
            cycles = int((m.time + fp.dur).max()) if n else 0
            local, onchip, offchip = edge_energy_totals(fp, m.x, m.y, m.offchip)
            energy = fp.energy_compute_fj + local + onchip + offchip
            f = fom.score(float(cycles), energy, 1.0)
        else:
            f = fom(evaluate_cost_compiled(fp, m))
        evaluated += 1
        key = (f, tuple(assignment))
        if best is None or key < (best[0], best[1]):
            best = (f, tuple(assignment), m)
        k = 0
        while k < len(assignment):
            assignment[k] += 1
            if assignment[k] < places:
                nid = compute[k]
                xs[nid] = xs_of[assignment[k]]
                ys[nid] = ys_of[assignment[k]]
                break
            assignment[k] = 0
            nid = compute[k]
            xs[nid] = xs_of[0]
            ys[nid] = ys_of[0]
            k += 1
    assert best is not None
    f, a, m = best
    c = evaluate_cost_compiled(fp, m)
    return (f, a, m, c, evaluated)


def _exhaustive_worker(
    payload: tuple[
        DataflowGraph, GridSpec, "FigureOfMerit", list[int], int, int, dict[str, float]
    ],
) -> tuple[float, tuple[int, ...], Mapping, CostReport, int]:
    graph, grid, fom, compute, start, stop, op_energy = payload
    OP_ENERGY_FACTOR.update(op_energy)
    return _exhaustive_chunk_best(graph, grid, fom, compute, start, stop)


def _exhaustive_worker_compiled(
    payload: tuple[
        DataflowGraph, GridSpec, "FigureOfMerit", list[int], int, int, dict[str, float]
    ],
) -> tuple[float, tuple[int, ...], Mapping, CostReport, int]:
    graph, grid, fom, compute, start, stop, op_energy = payload
    OP_ENERGY_FACTOR.update(op_energy)
    return _exhaustive_chunk_best_compiled(graph, grid, fom, compute, start, stop)


#: Default per-task pool timeout: generous enough that no honest workload
#: ever hits it, bounded so a genuinely hung worker cannot stall a campaign.
_DEFAULT_TASK_TIMEOUT_S = 300.0

#: How long an injected "hang" sleeps inside the worker — far beyond any
#: sane task timeout; the parent's pool.terminate() reaps the sleeper.
_HANG_SLEEP_S = 3600.0

#: Sentinel an injected "poison" worker returns instead of real results.
_POISON = ("__repro_injected_poison__",)


class _InjectedWorkerCrash(RuntimeError):
    """The crash raised inside a pool worker by an injected fault."""


class _TaskOutput:
    """A pool task's result plus the telemetry it produced (picklable)."""

    __slots__ = ("value", "telemetry")

    def __init__(self, value: Any, telemetry: dict[str, Any] | None) -> None:
        self.value = value
        self.telemetry = telemetry


def _chaos_task(
    payload: tuple[str | None, Callable[[Any], Any], Any, bool, int]
) -> Any:
    """Top-level pool target: apply the injected fault action (if any),
    otherwise run the real worker.  Faults are decided in the *parent*
    from the deterministic plan and shipped with the payload, so workers
    need no fault-plan state of their own.

    With ``collect`` set (the parent has an obs session open), the worker
    runs under its own child session and the result comes back wrapped in
    :class:`_TaskOutput` carrying the task's metric/span deltas — the
    parent merges them under a ``process=pool-<pid>`` label, so counters
    incremented inside transient pool workers (including fault-retried
    attempts) survive the pool.
    """
    action, worker, real_payload, collect, index = payload
    if action == "crash":
        raise _InjectedWorkerCrash("injected worker crash")
    if action == "hang":
        time.sleep(_HANG_SLEEP_S)  # pragma: no cover - reaped by terminate()
    if action == "poison":
        return _POISON
    if not collect:
        return worker(real_payload)
    from repro import obs
    from repro.obs.distributed import ChildTelemetry

    process = f"pool-{os.getpid()}"
    child = obs.Session(label=process)
    obs.activate(child)
    telemetry = ChildTelemetry(child, process=process)
    try:
        with child.tracer.span("pool.task", cat="pool", task=index):
            value = worker(real_payload)
    finally:
        obs.activate(None)
    return _TaskOutput(value, telemetry.flush())


def _pool_map(
    worker: Callable[[Any], Any],
    payloads: list[Any],
    n_workers: int,
    *,
    timeout_s: float | None = None,
    max_retries: int = 2,
    backoff_s: float = 0.05,
) -> list[Any]:
    """Resilient ordered pool map (payload index, not arrival, determines
    merge order — so retries, timeouts, and fallbacks are invisible in the
    results).

    Every task gets a per-result timeout; tasks that crash, hang, or
    return a poisoned result are retried in a fresh pool (with exponential
    backoff between attempts), and whatever still fails after
    ``max_retries`` pool attempts runs **in-process** with the real
    worker — a deterministic fallback, so a misbehaving pool can delay a
    campaign but never change its answer or stall it.  Genuine worker
    exceptions surface from the in-process run with their original
    traceback.

    When a :mod:`repro.faults` injection scope is open, worker faults from
    the plan are applied per (task, attempt) and every injection/recovery
    is recorded in the ledger (and as ``fault.*`` counters when an obs
    session is also open).
    """
    if n_workers <= 0:
        raise ValueError(f"_pool_map needs a positive worker count, got {n_workers}")
    # Oversized requests (callers tuning for other machines) clamp to the
    # host: beyond cpu_count a transient pool only adds fork + IPC overhead.
    n_workers = min(n_workers, os.cpu_count() or 1)
    if not payloads:
        return []
    if timeout_s is None:
        timeout_s = _DEFAULT_TASK_TIMEOUT_S
    inj = _faults_active()
    plan = inj.plan if inj is not None else None
    sess = _obs_active()
    results: list[Any] = [None] * len(payloads)
    injected_kinds: dict[int, list[str]] = {}  # task index -> injected faults

    def _task_recovered(i: int, how: str) -> None:
        if inj is not None:
            for kind in injected_kinds.pop(i, []):
                inj.recovered(f"worker_{kind}", f"task={i} via={how}")

    pending = list(range(len(payloads)))
    ctx = multiprocessing.get_context()
    for attempt in range(max_retries + 1):
        if not pending:
            break
        if attempt > 0:
            if backoff_s > 0:
                time.sleep(backoff_s * (2 ** (attempt - 1)))
            if sess is not None:
                sess.metrics.counter("search.pool_retries").add(len(pending))
        actions: dict[int, str] = {}
        if plan is not None:
            for i in pending:
                action = plan.worker_fault(i, attempt)
                if action is not None:
                    actions[i] = action
                    injected_kinds.setdefault(i, []).append(action)
                    inj.injected(f"worker_{action}", f"task={i} attempt={attempt}")
        failed: list[int] = []
        pool = ctx.Pool(processes=min(n_workers, len(pending)))
        try:
            handles = [
                (
                    i,
                    pool.apply_async(
                        _chaos_task,
                        (
                            (
                                actions.get(i),
                                worker,
                                payloads[i],
                                sess is not None,
                                i,
                            ),
                        ),
                    ),
                )
                for i in pending
            ]
            for i, handle in handles:
                try:
                    out = handle.get(timeout_s)
                except multiprocessing.TimeoutError:
                    failed.append(i)
                except Exception:
                    failed.append(i)
                else:
                    if isinstance(out, tuple) and out == _POISON:
                        failed.append(i)
                    else:
                        if isinstance(out, _TaskOutput):
                            if sess is not None and out.telemetry is not None:
                                _TelemetryAggregator(sess).absorb(out.telemetry)
                            out = out.value
                        results[i] = out
                        _task_recovered(i, f"retry{attempt}" if attempt else "pool")
        finally:
            # terminate, not close: a hung worker would block join() forever
            pool.terminate()
            pool.join()
        pending = failed

    if pending:
        # deterministic in-process fallback: same worker, same payloads,
        # same merge position — bit-identical to a clean pool run.
        if sess is not None:
            sess.metrics.counter("search.pool_fallbacks").add(len(pending))
        for i in pending:
            results[i] = worker(payloads[i])
            _task_recovered(i, "inproc")
    return results


def _chunked(items: Sequence[Any], n_chunks: int) -> list[list[Any]]:
    n_chunks = max(1, min(n_chunks, len(items)))
    size = -(-len(items) // n_chunks)
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


# ---------------------------------------------------------------------- #
# the sweep


def sweep_placements(
    graph: DataflowGraph,
    grid: GridSpec,
    fom: FigureOfMerit | None = None,
    engine: SearchEngine | None = None,
) -> list[SearchResult]:
    """Evaluate serial + block/cyclic placements for p = 1, 2, 4, ...,
    plus a 2-D block placement when the graph carries 2-D indices and the
    grid has rows to use.

    Returns all evaluated points sorted by (FoM, label), best first — the
    label tie-break keeps the ordering deterministic when two placements
    cost exactly the same.  ``engine`` selects the reference or the fast
    (memoized / parallel) evaluation path; both produce identical rows.
    """
    fom = fom or FigureOfMerit.fastest()
    sess = _obs_active()
    specs = _sweep_specs(graph, grid)
    results: list[SearchResult] = []

    sweep_span = (
        sess.span("search.sweep", cat="search", places=grid.n_places)
        if sess is not None
        else None
    )
    try:
        if engine is None or not (engine.memoize or engine.parallel or engine.compiled):
            for label, spec in specs:
                place = _spec_place_fn(graph, grid, spec)
                m = schedule_asap(graph, grid, place)
                if sess is None:
                    c = evaluate_cost(graph, m, grid)
                    r = SearchResult(label, m, c, fom(c))
                else:
                    with sess.span(
                        "search.candidate", cat="search", label=label
                    ) as span:
                        c = evaluate_cost(graph, m, grid)
                        r = SearchResult(label, m, c, fom(c))
                        span.set_cycles(c.cycles).set(fom=r.fom)
                    _record_candidate(sess, r)
                results.append(r)
        else:
            results = _sweep_engine(graph, grid, fom, engine, specs, sess)
    finally:
        if sweep_span is not None:
            sweep_span.set(candidates=len(results))
            sweep_span.__exit__()
    results.sort(key=lambda r: (r.fom, r.label))
    return results


def _sweep_engine(
    graph: DataflowGraph,
    grid: GridSpec,
    fom: FigureOfMerit,
    engine: SearchEngine,
    specs: list[tuple[str, _Spec]],
    sess: Session | None,
) -> list[SearchResult]:
    """Memoized / parallel / compiled sweep evaluation (identical results
    to the reference loop; scheduling via the fast exact scheduler or the
    compiled kernels)."""
    cache = engine.resolved_cache()
    gfp = graph.fingerprint()
    gkey = grid.cache_key()
    fp = None
    if engine.compiled:
        from repro.compiled import get_program, places_signature

        fp = get_program(graph, grid)
    results: list[SearchResult] = []
    pending: list[tuple[str, _Spec, Any]] = []  # (label, spec, memo key)

    for label, spec in specs:
        key = None
        if engine.memoize:
            if fp is not None:
                px, py = fp.places_for_spec(spec)
                sig = places_signature(px, py)
            else:
                place = _spec_place_fn(graph, grid, spec)
                sig = _places_signature(graph, place)
            key = ("sweep", gfp, gkey, sig)
            hit = cache.get(key)
            if hit is not None:
                m, c = hit
                r = SearchResult(label, m, c, fom(c))
                _record_candidate(sess, r)
                results.append(r)
                continue
        pending.append((label, spec, key))

    n_workers = engine.resolved_workers()
    if engine.parallel and n_workers > 1 and len(pending) > 1:
        op_energy = dict(OP_ENERGY_FACTOR)
        chunks = _chunked([(label, spec) for label, spec, _k in pending], n_workers)
        payloads = [(graph, grid, chunk, op_energy) for chunk in chunks]
        worker = _sweep_worker_compiled if engine.compiled else _sweep_worker
        evaluated = [
            row
            for rows in _pool_map(
                worker,
                payloads,
                n_workers,
                timeout_s=engine.task_timeout_s,
                max_retries=engine.max_retries,
                backoff_s=engine.retry_backoff_s,
            )
            for row in rows
        ]
        by_label = {label: (m, c) for label, m, c in evaluated}
        for label, _spec, key in pending:
            m, c = by_label[label]
            if key is not None:
                cache.put(key, (m, c))
            r = SearchResult(label, m, c, fom(c))
            _record_candidate(sess, r)
            results.append(r)
    else:
        if fp is not None:
            from repro.compiled import evaluate_cost_compiled, schedule_compiled
        for label, spec, key in pending:
            if fp is not None:
                px, py = fp.places_for_spec(spec)
                m = schedule_compiled(fp, px, py)
                c = evaluate_cost_compiled(fp, m)
            else:
                place = _spec_place_fn(graph, grid, spec)
                m = schedule_asap_fast(graph, grid, place)
                c = evaluate_cost(graph, m, grid)
            if key is not None:
                cache.put(key, (m, c))
            r = SearchResult(label, m, c, fom(c))
            _record_candidate(sess, r)
            results.append(r)
    _publish_engine_metrics(engine)
    return results


# ---------------------------------------------------------------------- #
# exhaustive ground truth


def exhaustive_search(
    graph: DataflowGraph,
    grid: GridSpec,
    fom: FigureOfMerit | None = None,
    max_points: int = 200_000,
    engine: SearchEngine | None = None,
) -> SearchResult:
    """Ground-truth search: every placement of every compute node.

    Refuses (ValueError) when the space exceeds ``max_points`` — this is a
    validation tool for tiny graphs, not a practical mapper.

    Equal-FoM ties are broken by the lexicographically smallest placement
    assignment (*not* by enumeration order), so the winner is a property of
    the space itself: serial, chunked, and parallel enumerations all elect
    the same mapping.
    """
    fom = fom or FigureOfMerit.fastest()
    compute = graph.compute_nodes()
    n_points = grid.n_places ** len(compute)
    if n_points > max_points:
        raise ValueError(
            f"search space {grid.n_places}^{len(compute)} = {n_points} exceeds "
            f"max_points={max_points}"
        )
    sess = _obs_active()
    span = (
        sess.span(
            "search.exhaustive", cat="search", points=n_points, places=grid.n_places
        )
        if sess is not None
        else None
    )

    compiled = engine is not None and engine.compiled
    n_workers = engine.resolved_workers() if engine is not None else 1
    if engine is not None and engine.parallel and n_workers > 1 and n_points >= 16:
        op_energy = dict(OP_ENERGY_FACTOR)
        bounds = np.linspace(0, n_points, min(n_workers, n_points) + 1, dtype=int)
        payloads = [
            (graph, grid, fom, compute, int(a), int(b), op_energy)
            for a, b in zip(bounds[:-1], bounds[1:])
            if b > a
        ]
        chunk_bests = _pool_map(
            _exhaustive_worker_compiled if compiled else _exhaustive_worker,
            payloads,
            n_workers,
            timeout_s=engine.task_timeout_s,
            max_retries=engine.max_retries,
            backoff_s=engine.retry_backoff_s,
        )
        evaluated = sum(row[4] for row in chunk_bests)
        f, assignment, m, c, _n = min(chunk_bests, key=lambda row: (row[0], row[1]))
    elif compiled:
        f, assignment, m, c, evaluated = _exhaustive_chunk_best_compiled(
            graph, grid, fom, compute, 0, n_points
        )
    else:
        f, assignment, m, c, evaluated = _exhaustive_chunk_best(
            graph, grid, fom, compute, 0, n_points
        )
    best = SearchResult(f"exhaustive{list(assignment)}", m, c, f)
    if engine is not None:
        _publish_engine_metrics(engine)
    if sess is not None:
        sess.metrics.counter("search.candidates").add(evaluated)
        sess.metrics.histogram("search.candidate_fom").observe(best.fom)
        if span is not None:
            span.set_cycles(best.cost.cycles).set(evaluated=evaluated, best_fom=best.fom)
            span.__exit__()
    return best


# ---------------------------------------------------------------------- #
# simulated annealing


def anneal(
    graph: DataflowGraph,
    grid: GridSpec,
    fom: FigureOfMerit | None = None,
    steps: int = 2_000,
    seed: int = 0,
    t_start: float = 0.30,
    t_end: float = 0.002,
    initial: Mapping | None = None,
    engine: SearchEngine | None = None,
) -> SearchResult:
    """Simulated annealing over per-node placement, ASAP-rescheduled.

    Moves relocate one random compute node to a random place.  Acceptance
    uses the relative FoM change (scale-free, so one temperature schedule
    works across problems).

    **Reproducibility is pinned:** the only randomness is a private
    ``numpy`` generator seeded from the integer ``seed`` argument — no
    global RNG state is read or written, so the same (graph, grid, fom,
    steps, seed) always walks the same trajectory, on either engine path.

    With ``engine.incremental`` the move loop re-scores candidates through
    :class:`IncrementalEdgeEnergy` (only edges incident to the moved node
    are re-priced) and skips the liveness sweep while the FoM ignores
    footprint; scores are bit-identical to the reference evaluation, so the
    accept/reject trajectory — and therefore the result — is unchanged.
    """
    fom = fom or FigureOfMerit.fastest()
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        raise TypeError(
            f"anneal seed must be an int (got {seed!r}): reruns must be "
            "reproducible, so implicit/global seeding is not supported"
        )
    rng = np.random.default_rng(seed)
    compute = graph.compute_nodes()
    if not compute:
        m = serial_mapping(graph, grid)
        c = evaluate_cost(graph, m, grid)
        return SearchResult("anneal-empty", m, c, fom(c))

    # start from the default block placement (or the supplied mapping)
    if initial is None:
        place_fn = _owner_place_fn(graph, grid, min(grid.n_places, 8), False)
        placement = {nid: place_fn(nid) for nid in compute}
    else:
        placement = {nid: initial.place_of(nid) for nid in compute}

    incremental = (
        engine is not None and engine.incremental and fom.footprint == 0.0
    )
    memoize = engine is not None and engine.memoize
    compiled = engine is not None and engine.compiled
    cache = engine.resolved_cache() if memoize else None
    scorer = _AnnealScorer(graph, grid, fom, compute, incremental, cache, compiled)

    sess = _obs_active()
    span = (
        sess.span("search.anneal", cat="search", steps=steps, seed=seed)
        if sess is not None
        else None
    )
    accepted = 0
    cur_m, cur_f = scorer.evaluate_initial(placement)
    best_m, best_f = cur_m, cur_f
    for step in range(steps):
        temp = t_start * (t_end / t_start) ** (step / max(1, steps - 1))
        nid = compute[int(rng.integers(len(compute)))]
        old = placement[nid]
        new_place = _linear_place(grid, int(rng.integers(grid.n_places)))
        placement[nid] = new_place
        new_m, new_f = scorer.evaluate_move(placement, nid, new_place)
        delta = (new_f - cur_f) / max(cur_f, 1e-12)
        if delta <= 0 or rng.random() < math.exp(-delta / max(temp, 1e-12)):
            scorer.commit()
            cur_m, cur_f = new_m, new_f
            accepted += 1
            if cur_f < best_f:
                best_m, best_f = cur_m, cur_f
        else:
            placement[nid] = old
            scorer.rollback()
    best_c = scorer.full_report(best_m)
    best = SearchResult("anneal", best_m, best_c, best_f)
    if engine is not None:
        _publish_engine_metrics(engine)
    if sess is not None:
        m = sess.metrics
        m.counter("search.candidates").add(steps + 1)
        m.counter("search.anneal_steps").add(steps)
        m.counter("search.anneal_accepted", better="higher").add(accepted)
        m.gauge("search.anneal_best_fom", better="lower").set(best.fom)
        m.histogram("search.candidate_fom").observe(best.fom)
        if span is not None:
            span.set_cycles(best.cost.cycles).set(accepted=accepted, best_fom=best.fom)
            span.__exit__()
    return best


class _AnnealScorer:
    """Scores annealing candidates on either the reference or the fast path.

    Reference mode: schedule + full :func:`evaluate_cost` per candidate,
    exactly the historical behaviour.  Incremental mode: the fast exact
    scheduler plus :class:`IncrementalEdgeEnergy`, skipping the liveness
    sweep (sound only while the FoM's footprint weight is zero — the
    caller guarantees it).  Optional memoization short-circuits placements
    the walk has already scored (annealers oscillate: every rejected
    ping-pong and every revisit is a hit).

    Scores on both paths are bit-identical; ``full_report`` always goes
    through the reference :func:`evaluate_cost`, so the returned
    :class:`CostReport` is the same object content either way.
    """

    def __init__(
        self,
        graph: DataflowGraph,
        grid: GridSpec,
        fom: FigureOfMerit,
        compute: list[int],
        incremental: bool,
        cache: MemoCache | None,
        compiled: bool = False,
    ) -> None:
        self.graph = graph
        self.grid = grid
        self.fom = fom
        self.compute = compute
        self.incremental = incremental
        self.compiled = compiled
        self.cache = cache
        self._gfp = graph.fingerprint() if cache is not None else ""
        self._gkey = grid.cache_key() if cache is not None else ()
        self._pending_undo: Any = None
        self.fp = None
        if compiled:
            from repro.compiled import CompiledAnnealState, get_program

            self.fp = get_program(graph, grid)
            self._compute_arr = np.asarray(compute, dtype=np.int64)
            if incremental:
                self.edges = CompiledAnnealState(self.fp)
                self._dur = self.fp.dur
            else:
                self.edges = None
        elif incremental:
            self.edges = IncrementalEdgeEnergy(graph, grid)
            n = graph.n_nodes
            self._dur = np.fromiter(
                (1 if graph.is_compute(i) else 0 for i in range(n)),
                dtype=np.int64,
                count=n,
            )
        else:
            self.edges = None

    # -- shared helpers ------------------------------------------------- #

    def _sig(self, placement: dict[int, tuple[int, int]]) -> bytes:
        if self.compiled and self.incremental:
            # the anneal state's arrays already track the tentative
            # placement; two gathers replace the per-node Python loop.
            # Byte-identical: same compute-node order, same int64 pairs.
            state = self.edges
            flat = np.empty((len(self.compute), 2), dtype=np.int64)
            flat[:, 0] = state.x[self._compute_arr]
            flat[:, 1] = state.y[self._compute_arr]
            return flat.tobytes()
        flat_l: list[int] = []
        for nid in self.compute:
            x, y = placement[nid]
            flat_l.append(x)
            flat_l.append(y)
        return np.asarray(flat_l, dtype=np.int64).tobytes()

    def _schedule(self, placement: dict[int, tuple[int, int]]) -> Mapping:
        if self.compiled:
            from repro.compiled import schedule_compiled

            if self.edges is not None:
                return schedule_compiled(self.fp, self.edges.xs, self.edges.ys)
            n = self.fp.n_nodes
            xs = [0] * n
            ys = [0] * n
            for nid, (a, b) in placement.items():
                xs[nid] = a
                ys[nid] = b
            return schedule_compiled(self.fp, xs, ys)
        if self.incremental:
            return schedule_asap_fast(
                self.graph, self.grid, lambda nid: placement.get(nid, (0, 0))
            )
        return schedule_asap(
            self.graph, self.grid, lambda nid: placement.get(nid, (0, 0))
        )

    def _score_scheduled(self, m: Mapping) -> tuple[float, float]:
        """(cycles, energy_total) on the incremental path."""
        assert self.edges is not None
        cycles = int((m.time + self._dur).max()) if m.n_nodes else 0
        return float(cycles), self.edges.energy_total_fj()

    def _evaluate(
        self, placement: dict[int, tuple[int, int]]
    ) -> tuple[Mapping, float]:
        key = None
        if self.cache is not None:
            key = ("anneal", self._gfp, self._gkey, self.incremental,
                   self._sig(placement))
            hit = self.cache.get(key)
            if hit is not None:
                m, f = hit
                return m, f
        m = self._schedule(placement)
        if self.incremental:
            cycles, energy = self._score_scheduled(m)
            f = self.fom.score(cycles, energy, 1.0)
        elif self.compiled:
            from repro.compiled import evaluate_cost_compiled

            f = self.fom(evaluate_cost_compiled(self.fp, m))
        else:
            c = evaluate_cost(self.graph, m, self.grid)
            f = self.fom(c)
        if key is not None:
            self.cache.put(key, (m, f))
        return m, f

    # -- the annealer's protocol ---------------------------------------- #

    def evaluate_initial(
        self, placement: dict[int, tuple[int, int]]
    ) -> tuple[Mapping, float]:
        if self.edges is not None:
            self.edges.set_placement(placement)
        return self._evaluate(placement)

    def evaluate_move(
        self,
        placement: dict[int, tuple[int, int]],
        nid: int,
        place: tuple[int, int],
    ) -> tuple[Mapping, float]:
        """Score ``placement`` after moving ``nid``; call :meth:`commit` or
        :meth:`rollback` before the next move."""
        if self.edges is not None:
            # incident-edge terms always track the tentative placement, even
            # on a memo hit, so the *next* incremental move starts exact.
            self._pending_undo = self.edges.move(nid, place)
        return self._evaluate(placement)

    def commit(self) -> None:
        self._pending_undo = None

    def rollback(self) -> None:
        if self.edges is not None and self._pending_undo is not None:
            self.edges.unmove(self._pending_undo)
        self._pending_undo = None

    def full_report(self, mapping: Mapping) -> CostReport:
        """The reference CostReport for the winner (liveness included)."""
        return evaluate_cost(self.graph, mapping, self.grid)
