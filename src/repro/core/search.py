"""Mapping-space search: "systematically search ... to optimize a figure of merit".

Paper, Section 3: "For each function there are many possible mappings that
range from completely serial to minimum-depth parallel with many points
between.  One can systematically search the space of possible mappings to
optimize a given figure of merit: execution time, energy per op, memory
footprint, or some combination."

Three searchers, in increasing ambition:

``sweep_placements``
    The structured sweep: serial, block-p and cyclic-p owner-computes
    placements for p in powers of two up to the grid size, each ASAP
    scheduled.  Covers the "completely serial ... to minimum-depth" axis
    the paper describes; this is the workhorse for the benches.
``exhaustive_search``
    All ``n_places ** n_compute`` placements for tiny graphs — ground
    truth to validate the heuristics against.
``anneal``
    Simulated annealing over per-node placements (seeded, reproducible),
    re-scheduled ASAP each step.  Finds irregular mappings the structured
    sweep can't express.

All return :class:`SearchResult` rows; :func:`pareto_front` lives in
:mod:`repro.analysis.pareto` and consumes them directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.cost import CostReport, evaluate_cost
from repro.core.default_mapper import schedule_asap, serial_mapping
from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping
from repro.obs import Session, active as _obs_active

__all__ = [
    "SearchResult",
    "FigureOfMerit",
    "sweep_placements",
    "exhaustive_search",
    "anneal",
]


@dataclass(frozen=True)
class FigureOfMerit:
    """Weights for the weighted-product FoM; lower is better."""

    time: float = 1.0
    energy: float = 0.0
    footprint: float = 0.0

    def __call__(self, cost: CostReport) -> float:
        return cost.figure_of_merit(self.time, self.energy, self.footprint)

    @staticmethod
    def fastest() -> "FigureOfMerit":
        return FigureOfMerit(1.0, 0.0, 0.0)

    @staticmethod
    def lowest_energy() -> "FigureOfMerit":
        return FigureOfMerit(0.0, 1.0, 0.0)

    @staticmethod
    def edp() -> "FigureOfMerit":
        """Energy-delay product."""
        return FigureOfMerit(1.0, 1.0, 0.0)


@dataclass
class SearchResult:
    """One evaluated point of the mapping space."""

    label: str
    mapping: Mapping
    cost: CostReport
    fom: float

    def metrics(self) -> tuple[float, float, float]:
        """(time, energy, footprint) for Pareto analysis."""
        return (
            float(self.cost.cycles),
            self.cost.energy_total_fj,
            float(self.cost.footprint_words),
        )


def _linear_place(grid: GridSpec, k: int) -> tuple[int, int]:
    return (k % grid.width, k // grid.width)


def _record_candidate(sess: Session | None, result: SearchResult) -> None:
    """One evaluated mapping -> one counter tick + FoM histogram sample."""
    if sess is None:
        return
    sess.metrics.counter("search.candidates").inc()
    sess.metrics.histogram("search.candidate_fom").observe(result.fom)


def _owner_place_fn(
    graph: DataflowGraph, grid: GridSpec, p: int, cyclic: bool
) -> Callable[[int], tuple[int, int]]:
    max_i = 0
    for nid in range(graph.n_nodes):
        idx = graph.index[nid]
        if idx and idx[0] > max_i:
            max_i = int(idx[0])
    extent = max_i + 1
    block = max(1, -(-extent // p))

    def place(nid: int) -> tuple[int, int]:
        idx = graph.index[nid]
        if not idx:
            return (0, 0)
        i = int(idx[0])
        linear = (i % p) if cyclic else min(i // block, p - 1)
        return _linear_place(grid, linear)

    return place


def _grid2d_place_fn(
    graph: DataflowGraph, grid: GridSpec
) -> Callable[[int], tuple[int, int]] | None:
    """2-D owner-computes for graphs whose nodes carry >= 2 index
    components: block index[0] over grid rows and index[1] over columns.
    Returns None when the graph has no 2-D-indexed nodes or the grid has
    a single row (nothing to gain)."""
    if grid.height < 2:
        return None
    max_i = max_j = -1
    for nid in range(graph.n_nodes):
        idx = graph.index[nid]
        if idx and len(idx) >= 2:
            max_i = max(max_i, int(idx[0]))
            max_j = max(max_j, int(idx[1]))
    if max_i < 0:
        return None
    bi = max(1, -(-(max_i + 1) // grid.height))
    bj = max(1, -(-(max_j + 1) // grid.width))

    def place(nid: int) -> tuple[int, int]:
        idx = graph.index[nid]
        if idx and len(idx) >= 2:
            y = min(int(idx[0]) // bi, grid.height - 1)
            x = min(int(idx[1]) // bj, grid.width - 1)
            return (x, y)
        if idx:
            return (0, min(int(idx[0]) // bi, grid.height - 1))
        return (0, 0)

    return place


def sweep_placements(
    graph: DataflowGraph,
    grid: GridSpec,
    fom: FigureOfMerit | None = None,
) -> list[SearchResult]:
    """Evaluate serial + block/cyclic placements for p = 1, 2, 4, ...,
    plus a 2-D block placement when the graph carries 2-D indices and the
    grid has rows to use.

    Returns all evaluated points sorted by FoM (best first).
    """
    fom = fom or FigureOfMerit.fastest()
    sess = _obs_active()
    results: list[SearchResult] = []

    def evaluate_point(label: str, m: Mapping) -> None:
        if sess is None:
            c = evaluate_cost(graph, m, grid)
            r = SearchResult(label, m, c, fom(c))
        else:
            with sess.span("search.candidate", cat="search", label=label) as span:
                c = evaluate_cost(graph, m, grid)
                r = SearchResult(label, m, c, fom(c))
                span.set_cycles(c.cycles).set(fom=r.fom)
            _record_candidate(sess, r)
        results.append(r)

    sweep_span = (
        sess.span("search.sweep", cat="search", places=grid.n_places)
        if sess is not None
        else None
    )
    try:
        evaluate_point("serial", serial_mapping(graph, grid))

        place2d = _grid2d_place_fn(graph, grid)
        if place2d is not None:
            evaluate_point("block-2d", schedule_asap(graph, grid, place2d))

        p = 2
        while p <= grid.n_places:
            for cyclic in (False, True):
                place = _owner_place_fn(graph, grid, p, cyclic)
                label = f"{'cyclic' if cyclic else 'block'}-p{p}"
                evaluate_point(label, schedule_asap(graph, grid, place))
            p *= 2
        # odd grid sizes: also try using every place
        if grid.n_places not in {1 << k for k in range(32)}:
            for cyclic in (False, True):
                place = _owner_place_fn(graph, grid, grid.n_places, cyclic)
                label = f"{'cyclic' if cyclic else 'block'}-p{grid.n_places}"
                evaluate_point(label, schedule_asap(graph, grid, place))
    finally:
        if sweep_span is not None:
            sweep_span.set(candidates=len(results))
            sweep_span.__exit__()
    results.sort(key=lambda r: r.fom)
    return results


def exhaustive_search(
    graph: DataflowGraph,
    grid: GridSpec,
    fom: FigureOfMerit | None = None,
    max_points: int = 200_000,
) -> SearchResult:
    """Ground-truth search: every placement of every compute node.

    Refuses (ValueError) when the space exceeds ``max_points`` — this is a
    validation tool for tiny graphs, not a practical mapper.
    """
    fom = fom or FigureOfMerit.fastest()
    compute = graph.compute_nodes()
    n_points = grid.n_places ** len(compute)
    if n_points > max_points:
        raise ValueError(
            f"search space {grid.n_places}^{len(compute)} = {n_points} exceeds "
            f"max_points={max_points}"
        )
    sess = _obs_active()
    span = (
        sess.span(
            "search.exhaustive", cat="search", points=n_points, places=grid.n_places
        )
        if sess is not None
        else None
    )
    evaluated = 0
    best: SearchResult | None = None
    assignment = [0] * len(compute)
    while True:
        node_place = {
            nid: _linear_place(grid, assignment[k]) for k, nid in enumerate(compute)
        }
        m = schedule_asap(graph, grid, lambda nid: node_place.get(nid, (0, 0)))
        c = evaluate_cost(graph, m, grid)
        f = fom(c)
        evaluated += 1
        if best is None or f < best.fom:
            best = SearchResult(f"exhaustive{assignment}", m, c, f)
        # increment mixed-radix counter
        k = 0
        while k < len(assignment):
            assignment[k] += 1
            if assignment[k] < grid.n_places:
                break
            assignment[k] = 0
            k += 1
        else:
            break
        if k == len(assignment):
            break
    assert best is not None
    if sess is not None:
        sess.metrics.counter("search.candidates").add(evaluated)
        sess.metrics.histogram("search.candidate_fom").observe(best.fom)
        if span is not None:
            span.set_cycles(best.cost.cycles).set(evaluated=evaluated, best_fom=best.fom)
            span.__exit__()
    return best


def anneal(
    graph: DataflowGraph,
    grid: GridSpec,
    fom: FigureOfMerit | None = None,
    steps: int = 2_000,
    seed: int = 0,
    t_start: float = 0.30,
    t_end: float = 0.002,
    initial: Mapping | None = None,
) -> SearchResult:
    """Simulated annealing over per-node placement, ASAP-rescheduled.

    Moves relocate one random compute node to a random place.  Acceptance
    uses the relative FoM change (scale-free, so one temperature schedule
    works across problems).  Deterministic for a fixed seed.
    """
    fom = fom or FigureOfMerit.fastest()
    rng = np.random.default_rng(seed)
    compute = graph.compute_nodes()
    if not compute:
        m = serial_mapping(graph, grid)
        c = evaluate_cost(graph, m, grid)
        return SearchResult("anneal-empty", m, c, fom(c))

    # start from the default block placement (or the supplied mapping)
    if initial is None:
        place_fn = _owner_place_fn(graph, grid, min(grid.n_places, 8), False)
        placement = {nid: place_fn(nid) for nid in compute}
    else:
        placement = {nid: initial.place_of(nid) for nid in compute}

    def evaluate(pl: dict[int, tuple[int, int]]) -> tuple[Mapping, CostReport, float]:
        m = schedule_asap(graph, grid, lambda nid: pl.get(nid, (0, 0)))
        c = evaluate_cost(graph, m, grid)
        return m, c, fom(c)

    sess = _obs_active()
    span = (
        sess.span("search.anneal", cat="search", steps=steps, seed=seed)
        if sess is not None
        else None
    )
    accepted = 0
    cur_m, cur_c, cur_f = evaluate(placement)
    best = SearchResult("anneal", cur_m, cur_c, cur_f)
    for step in range(steps):
        temp = t_start * (t_end / t_start) ** (step / max(1, steps - 1))
        nid = compute[int(rng.integers(len(compute)))]
        old = placement[nid]
        placement[nid] = _linear_place(grid, int(rng.integers(grid.n_places)))
        new_m, new_c, new_f = evaluate(placement)
        delta = (new_f - cur_f) / max(cur_f, 1e-12)
        if delta <= 0 or rng.random() < math.exp(-delta / max(temp, 1e-12)):
            cur_m, cur_c, cur_f = new_m, new_c, new_f
            accepted += 1
            if cur_f < best.fom:
                best = SearchResult("anneal", cur_m, cur_c, cur_f)
        else:
            placement[nid] = old
    if sess is not None:
        m = sess.metrics
        m.counter("search.candidates").add(steps + 1)
        m.counter("search.anneal_steps").add(steps)
        m.counter("search.anneal_accepted", better="higher").add(accepted)
        m.gauge("search.anneal_best_fom", better="lower").set(best.fom)
        m.histogram("search.candidate_fom").observe(best.fom)
        if span is not None:
            span.set_cycles(best.cost.cycles).set(accepted=accepted, best_fom=best.fom)
            span.__exit__()
    return best
