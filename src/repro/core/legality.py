"""Legal-mapping checking: causality, transit time, storage bounds.

Paper, Section 3: "A legal mapping is one that preserves causality -
scheduling element computations after their inputs have been computed,
allows time for elements to move from definition to use, and does not
exceed storage bounds for elements in transit."

:func:`check_legality` verifies all three conditions (plus grid bounds and
PE occupancy, which the paper's discretization implies) and returns a
:class:`LegalityReport` listing every violation with enough detail to fix
it.  The same liveness sweep that powers the storage check is exposed as
:func:`compute_liveness` because the cost model's *footprint* figure of
merit is exactly the same quantity.

Timing conventions (shared with :mod:`repro.core.cost` and the grid
machine):

*  a compute node scheduled at cycle ``t`` reads its operands at ``t`` and
   its result exists from ``t + 1``;
*  an input/const at cycle ``t`` is available from ``t``;
*  a value travelling distance ``d`` needs ``tech.transport_cycles(d)``
   cycles; off-chip endpoints need ``tech.offchip_cycles()`` instead;
*  a value produced at place ``p`` and consumed at time ``t_v`` is resident
   at ``p`` from production until its last consumer's read cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping

__all__ = ["Violation", "LegalityReport", "check_legality", "compute_liveness"]


@dataclass(frozen=True)
class Violation:
    """One legality violation.

    ``kind`` is one of ``bounds``, ``causality``, ``occupancy``,
    ``storage``, ``transit``.
    """

    kind: str
    node: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] node {self.node}: {self.detail}"


@dataclass
class LivenessSummary:
    """Storage-relevant facts about a mapping."""

    max_live_per_place: dict[tuple[int, int], int] = field(default_factory=dict)
    max_in_flight: int = 0

    @property
    def footprint_words(self) -> int:
        """Peak on-chip residency summed over places at the single worst cycle
        is expensive to compute exactly; we report the standard surrogate:
        the sum of per-place peaks (an upper bound on true peak footprint)."""
        return sum(self.max_live_per_place.values())

    @property
    def max_live_any_place(self) -> int:
        return max(self.max_live_per_place.values(), default=0)


@dataclass
class LegalityReport:
    """Outcome of :func:`check_legality`."""

    violations: list[Violation]
    liveness: LivenessSummary

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_kind(self, kind: str) -> list[Violation]:
        return [v for v in self.violations if v.kind == kind]

    def raise_if_illegal(self) -> None:
        if self.violations:
            head = "\n  ".join(str(v) for v in self.violations[:10])
            more = (
                f"\n  ... and {len(self.violations) - 10} more"
                if len(self.violations) > 10
                else ""
            )
            raise ValueError(f"illegal mapping:\n  {head}{more}")


def _edge_transit_cycles(
    grid: GridSpec, mapping: Mapping, u: int, v: int
) -> int:
    """Cycles for u's value to reach v's place."""
    if mapping.offchip[u] or mapping.offchip[v]:
        return grid.tech.offchip_cycles()
    pu = (int(mapping.x[u]), int(mapping.y[u]))
    pv = (int(mapping.x[v]), int(mapping.y[v]))
    return grid.transit_cycles(pu, pv)


def compute_liveness(
    graph: DataflowGraph, mapping: Mapping, grid: GridSpec
) -> LivenessSummary:
    """Sweep-line liveness: peak resident words per place and peak in-flight.

    A value is resident at its producer's place over
    ``[avail_time, last_consumer_read_time]`` (production counts even with
    no consumers — outputs must exist somewhere).  A value is in flight on
    ``[depart, arrive)`` for each consumer, where ``depart`` is its
    availability and ``arrive`` is ``depart + transit``; same-place uses
    are never in flight.
    """
    cons = graph.consumers()
    # events per place: (time, +1/-1)
    place_events: dict[tuple[int, int], list[tuple[int, int]]] = {}
    flight_events: list[tuple[int, int]] = []

    for u in range(graph.n_nodes):
        if mapping.offchip[u]:
            continue  # bulk memory is unbounded; its cost is energy/latency
        avail = int(mapping.time[u]) + (1 if graph.is_compute(u) else 0)
        last_use = avail
        for v in cons[u]:
            if int(mapping.time[v]) > last_use:
                last_use = int(mapping.time[v])
        p = (int(mapping.x[u]), int(mapping.y[u]))
        ev = place_events.setdefault(p, [])
        ev.append((avail, +1))
        ev.append((last_use + 1, -1))

    for u, v in graph.edges():
        transit = _edge_transit_cycles(grid, mapping, u, v)
        if transit <= 0:
            continue
        depart = int(mapping.time[u]) + (1 if graph.is_compute(u) else 0)
        flight_events.append((depart, +1))
        flight_events.append((depart + transit, -1))

    summary = LivenessSummary()
    for p, events in place_events.items():
        events.sort()
        live = peak = 0
        for _t, delta in events:
            live += delta
            if live > peak:
                peak = live
        summary.max_live_per_place[p] = peak

    flight_events.sort()
    live = 0
    for _t, delta in flight_events:
        live += delta
        if live > summary.max_in_flight:
            summary.max_in_flight = live
    return summary


def check_legality(
    graph: DataflowGraph,
    mapping: Mapping,
    grid: GridSpec,
    max_violations: int = 1000,
) -> LegalityReport:
    """Check the paper's three legality conditions plus bounds/occupancy.

    Stops collecting after ``max_violations`` (the report notes truncation
    via a final sentinel violation).
    """
    if mapping.n_nodes != graph.n_nodes:
        raise ValueError(
            f"mapping covers {mapping.n_nodes} nodes, graph has {graph.n_nodes}"
        )
    violations: list[Violation] = []

    def add(v: Violation) -> bool:
        violations.append(v)
        return len(violations) >= max_violations

    truncated = False

    # 1. grid bounds
    for nid in range(graph.n_nodes):
        if mapping.offchip[nid]:
            continue
        x, y = int(mapping.x[nid]), int(mapping.y[nid])
        if not grid.in_bounds(x, y):
            if add(Violation("bounds", nid, f"place ({x}, {y}) outside "
                             f"{grid.width}x{grid.height} grid")):
                truncated = True
                break

    # 2. causality + transit time
    if not truncated:
        for v in range(graph.n_nodes):
            if not graph.is_compute(v):
                continue
            tv = int(mapping.time[v])
            for u in graph.args[v]:
                avail = int(mapping.time[u]) + (1 if graph.is_compute(u) else 0)
                transit = _edge_transit_cycles(grid, mapping, u, v)
                required = avail + transit
                if tv < required:
                    if add(Violation(
                        "causality", v,
                        f"scheduled at t={tv} but operand {u} "
                        f"(avail t={avail}, transit {transit}) arrives at "
                        f"t={required}")):
                        truncated = True
                        break
            if truncated:
                break

    # 3. PE occupancy: one compute per place per cycle
    if not truncated:
        seen: dict[tuple[int, int, int], int] = {}
        for nid in range(graph.n_nodes):
            if not graph.is_compute(nid) or mapping.offchip[nid]:
                continue
            key = (int(mapping.x[nid]), int(mapping.y[nid]), int(mapping.time[nid]))
            if key in seen:
                if add(Violation(
                    "occupancy", nid,
                    f"PE ({key[0]}, {key[1]}) already executes node "
                    f"{seen[key]} at cycle {key[2]}")):
                    truncated = True
                    break
            else:
                seen[key] = nid

    # 4 + 5. storage at rest and in transit
    liveness = compute_liveness(graph, mapping, grid)
    if not truncated and grid.pe_memory_words is not None:
        for p, peak in sorted(liveness.max_live_per_place.items()):
            if peak > grid.pe_memory_words:
                if add(Violation(
                    "storage", -1,
                    f"place {p} holds {peak} live words > "
                    f"pe_memory_words={grid.pe_memory_words}")):
                    truncated = True
                    break
    if not truncated and grid.max_in_flight is not None:
        if liveness.max_in_flight > grid.max_in_flight:
            add(Violation(
                "transit", -1,
                f"{liveness.max_in_flight} values in flight > "
                f"max_in_flight={grid.max_in_flight}"))

    if truncated:
        violations.append(Violation(
            "truncated", -1, f"stopped after {max_violations} violations"))
    return LegalityReport(violations=violations, liveness=liveness)
