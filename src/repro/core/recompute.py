"""Recomputation instead of communication (claim C6's mechanism).

Paper, Section 3: "A mapping may compute the same element at multiple
points in time and/or space - rather than storing it or communicating it
between those points" and "Adding two numbers that are co-located at a
distant point requires first transporting them to the processor - again at
a cost of 1,000x or more the energy of doing the addition at the remote
point."

:func:`rematerialize` is the graph transformation: clone a producer node at
a consumer's place so the value no longer travels; the clone's *operands*
now travel instead (or are themselves recursively rematerialized).
:func:`auto_rematerialize` applies the transformation greedily wherever the
model says it wins — which, with the paper's constants, is almost always,
because an add (16 fJ) is cheaper to redo than almost any wire.

The benches use this to reproduce the compute-at-the-remote-point argument
quantitatively: summing two co-located far-away values by (a) hauling both
to the consumer versus (b) adding remotely and shipping one result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import evaluate_cost
from repro.core.default_mapper import schedule_asap
from repro.core.function import DataflowGraph, OP_ENERGY_FACTOR
from repro.core.mapping import GridSpec, Mapping

__all__ = ["RematResult", "rematerialize", "auto_rematerialize", "edge_transport_fj"]


def edge_transport_fj(
    mapping: Mapping, grid: GridSpec, u: int, v: int
) -> float:
    """Model energy of moving u's value to v's place (matches cost.py)."""
    tech = grid.tech
    if mapping.offchip[u] or mapping.offchip[v]:
        return tech.offchip_energy_word_fj()
    d = grid.distance_mm(mapping.place_of(u), mapping.place_of(v))
    if d == 0:
        return tech.sram_energy_word_fj()
    return tech.transport_energy_fj(d)


@dataclass
class RematResult:
    """Outcome of a rematerialization pass."""

    graph: DataflowGraph
    mapping: Mapping
    clones_made: int
    energy_before_fj: float
    energy_after_fj: float

    @property
    def energy_saved_fj(self) -> float:
        return self.energy_before_fj - self.energy_after_fj


def _clone_graph(graph: DataflowGraph) -> DataflowGraph:
    g = DataflowGraph()
    g.ops = list(graph.ops)
    g.args = list(graph.args)
    g.payload = list(graph.payload)
    g.index = list(graph.index)
    g.group = list(graph.group)
    g.outputs = dict(graph.outputs)
    return g


def rematerialize(
    graph: DataflowGraph,
    mapping: Mapping,
    node: int,
    consumer: int,
) -> tuple[DataflowGraph, dict[int, int]]:
    """Clone ``node`` at ``consumer``'s place, rewiring that one use.

    Returns the new graph and a {old: new} id map (only the clone is new;
    ids of existing nodes are unchanged because clones are appended).
    The caller re-schedules; this function only performs the *functional*
    transformation, which preserves semantics by construction (the clone
    has identical op and operands).
    """
    if node not in graph.args[consumer]:
        raise ValueError(f"node {node} is not an operand of {consumer}")
    if not graph.is_compute(node):
        raise ValueError(
            f"node {node} is an {graph.ops[node]} node; only computed values "
            "can be rematerialized"
        )
    g = _clone_graph(graph)
    clone = len(g.ops)
    g.ops.append(graph.ops[node])
    g.args.append(graph.args[node])
    g.payload.append(graph.payload[node])
    g.index.append(graph.index[node])
    g.group.append(graph.group[node])
    # rewire exactly this consumer's use
    new_args = tuple(clone if a == node else a for a in g.args[consumer])
    g.args[consumer] = new_args
    g._consumers_dirty = True

    # NOTE: the clone is appended *after* its consumer in id order, so the
    # graph is no longer in dependency-id order.  Downstream code that
    # assumes id order (the ASAP scheduler) must use a topological order;
    # auto_rematerialize handles this by rebuilding in topo order.
    return g, {node: clone}


def _rebuild_in_topo_order(g: DataflowGraph) -> tuple[DataflowGraph, list[int]]:
    """Renumber live nodes so ids are again a topological order.

    Nodes no longer reachable from any output (originals orphaned by
    rewiring) are pruned — a dead value should not occupy a PE cycle or
    count toward energy.
    """
    n = len(g.ops)
    # liveness: reachable from outputs
    live = [False] * n
    stack = list(g.outputs.values())
    while stack:
        u = stack.pop()
        if live[u]:
            continue
        live[u] = True
        stack.extend(g.args[u])

    indeg = [0] * n
    consumers: list[list[int]] = [[] for _ in range(n)]
    for v in range(n):
        if not live[v]:
            continue
        indeg[v] = len(g.args[v])
        for u in g.args[v]:
            consumers[u].append(v)
    stack = [i for i in range(n) if live[i] and indeg[i] == 0]
    order: list[int] = []
    while stack:
        u = stack.pop()
        order.append(u)
        for v in consumers[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                stack.append(v)
    if len(order) != sum(live):
        raise ValueError("rematerialized graph has a cycle (bug)")
    new_id = {old: k for k, old in enumerate(order)}
    out = DataflowGraph()
    for old in order:
        out.ops.append(g.ops[old])
        out.args.append(tuple(new_id[a] for a in g.args[old]))
        out.payload.append(g.payload[old])
        out.index.append(g.index[old])
        out.group.append(g.group[old])
    out.outputs = {label: new_id[nid] for label, nid in g.outputs.items()}
    out._consumers_dirty = True
    return out, order


def auto_rematerialize(
    graph: DataflowGraph,
    mapping: Mapping,
    grid: GridSpec,
    max_rounds: int = 4,
) -> RematResult:
    """Greedy recompute-vs-communicate optimization.

    For every cross-PE use u -> v where recomputing u at v's place is
    cheaper than the wire (compute energy + operand hauling < transport),
    clone u there.  Repeats up to ``max_rounds`` times (cloned nodes'
    operand edges may themselves become candidates), then reschedules ASAP
    with every node pinned to its (possibly new) place.
    """
    tech = grid.tech
    add_word = tech.add_energy_word_fj()
    before = evaluate_cost(graph, mapping, grid).energy_total_fj

    g = _clone_graph(graph)
    place: dict[int, tuple[int, int]] = {
        nid: mapping.place_of(nid) for nid in range(graph.n_nodes)
    }
    offchip = {nid for nid in range(graph.n_nodes) if mapping.offchip[nid]}
    clones = 0

    for _round in range(max_rounds):
        changed = False
        for v in range(len(g.ops)):
            if g.ops[v] in ("input", "const"):
                continue
            for slot, u in enumerate(g.args[v]):
                if g.ops[u] in ("input", "const"):
                    continue
                if u in offchip or v in offchip:
                    continue
                pu, pv = place[u], place[v]
                if pu == pv:
                    continue
                wire = tech.transport_energy_fj(grid.distance_mm(pu, pv))
                # cost of the clone: its compute + hauling its operands to pv
                clone_cost = OP_ENERGY_FACTOR.get(g.ops[u], 1.0) * add_word
                for w in g.args[u]:
                    if w in offchip:
                        clone_cost += tech.offchip_energy_word_fj()
                    else:
                        dw = grid.distance_mm(place[w], pv)
                        clone_cost += (
                            tech.transport_energy_fj(dw)
                            if dw
                            else tech.sram_energy_word_fj()
                        )
                if clone_cost < wire:
                    cid = len(g.ops)
                    g.ops.append(g.ops[u])
                    g.args.append(g.args[u])
                    g.payload.append(g.payload[u])
                    g.index.append(g.index[u])
                    g.group.append(g.group[u])
                    args = list(g.args[v])
                    args[slot] = cid
                    g.args[v] = tuple(args)
                    place[cid] = pv
                    clones += 1
                    changed = True
        if not changed:
            break

    g._consumers_dirty = True
    g2, order = _rebuild_in_topo_order(g)
    new_id = {old: k for k, old in enumerate(order)}
    place2 = {new_id[old]: pl for old, pl in place.items() if old in new_id}
    offchip2 = {new_id[o] for o in offchip if o in new_id}

    m2 = schedule_asap(
        g2,
        grid,
        lambda nid: place2.get(nid, (0, 0)),
        inputs_offchip=bool(offchip2),
    )
    after = evaluate_cost(g2, m2, grid).energy_total_fj
    return RematResult(
        graph=g2,
        mapping=m2,
        clones_made=clones,
        energy_before_fj=before,
        energy_after_fj=after,
    )
