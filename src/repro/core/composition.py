"""Modular composition of mapped programs, with explicit remapping.

Paper, Section 3: "The F&M model supports modular program composition, but
with constraints on mappings of input and output data structures.
Functions compose as usual.  Mappings, however, must be aligned to compose
modules.  The output of module A must have the same mapping as the input of
module B for the two to be composed in series, or a remapping module must
be inserted between the two to shuffle the data."

We model a module boundary as a :class:`DataLayout` — where each element of
a logical array resides.  :func:`compose` checks alignment; on mismatch it
inserts (and costs) a :class:`RemapModule` that moves every element from
its producer place to its consumer place.  The remap's cost is pure
communication — there is nothing to compute — which is precisely why the
paper wants it visible rather than hidden.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.mapping import GridSpec

__all__ = ["DataLayout", "RemapModule", "ComposedCost", "compose", "remap_cost"]


@dataclass(frozen=True)
class DataLayout:
    """Where each element of a logical length-``n`` array lives.

    ``place_of(i)`` -> grid place.  Standard constructors cover the layouts
    the idioms produce.
    """

    n: int
    place_of: Callable[[int], tuple[int, int]]
    name: str = "custom"

    @staticmethod
    def blocked(n: int, p: int, grid: GridSpec, name: str = "blocked") -> "DataLayout":
        from repro.core.idioms import block_owner

        return DataLayout(n, block_owner(n, p, grid), name)

    @staticmethod
    def cyclic(n: int, p: int, grid: GridSpec, name: str = "cyclic") -> "DataLayout":
        if p < 1 or p > grid.n_places:
            raise ValueError(f"p must be in [1, {grid.n_places}]")

        def owner(i: int) -> tuple[int, int]:
            linear = i % p
            return (linear % grid.width, linear // grid.width)

        return DataLayout(n, owner, name)

    @staticmethod
    def single(n: int, place: tuple[int, int] = (0, 0), name: str = "single") -> "DataLayout":
        return DataLayout(n, lambda _i: place, name)

    def places(self) -> list[tuple[int, int]]:
        return [self.place_of(i) for i in range(self.n)]

    def aligned_with(self, other: "DataLayout") -> bool:
        """Element-for-element identical placement."""
        if self.n != other.n:
            return False
        return all(self.place_of(i) == other.place_of(i) for i in range(self.n))


@dataclass
class RemapModule:
    """The inserted shuffle: element i moves ``distance_mm[i]`` on chip."""

    n: int
    moved: int
    energy_fj: float
    cycles: int

    @property
    def is_noop(self) -> bool:
        return self.moved == 0


@dataclass
class ComposedCost:
    """Cost of running A then (remap then) B in series."""

    a_name: str
    b_name: str
    remap: RemapModule | None
    aligned: bool

    @property
    def remap_energy_fj(self) -> float:
        return self.remap.energy_fj if self.remap else 0.0

    @property
    def remap_cycles(self) -> int:
        return self.remap.cycles if self.remap else 0


def remap_cost(src: DataLayout, dst: DataLayout, grid: GridSpec) -> RemapModule:
    """Cost of moving an array from layout ``src`` to layout ``dst``.

    Energy: one word over the manhattan distance per moved element.
    Time: moves to the same destination PE serialize on its ingress port
    (one word per cycle), plus the flight time of the longest move — the
    same conventions the cost model uses for dataflow edges.
    """
    if src.n != dst.n:
        raise ValueError(
            f"cannot remap length-{src.n} layout into length-{dst.n} layout"
        )
    tech = grid.tech
    energy = 0.0
    moved = 0
    max_transit = 0
    ingress: dict[tuple[int, int], int] = {}
    for i in range(src.n):
        a, b = src.place_of(i), dst.place_of(i)
        if a == b:
            continue
        moved += 1
        d = grid.distance_mm(a, b)
        energy += tech.transport_energy_fj(d)
        ingress[b] = ingress.get(b, 0) + 1
        t = tech.transport_cycles(d)
        if t > max_transit:
            max_transit = t
    serialization = max(ingress.values(), default=0)
    cycles = max_transit + max(0, serialization - 1)
    return RemapModule(n=src.n, moved=moved, energy_fj=energy, cycles=cycles)


def compose(
    a_output: DataLayout, b_input: DataLayout, grid: GridSpec
) -> ComposedCost:
    """Series-compose two modules across a layout boundary.

    If aligned, composition is free.  Otherwise the returned cost carries
    the remapping module the paper requires.
    """
    if a_output.aligned_with(b_input):
        return ComposedCost(
            a_name=a_output.name, b_name=b_input.name, remap=None, aligned=True
        )
    remap = remap_cost(a_output, b_input, grid)
    return ComposedCost(
        a_name=a_output.name, b_name=b_input.name, remap=remap, aligned=False
    )
