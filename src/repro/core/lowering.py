"""Mechanical lowering of (function, mapping) to a hardware description.

Paper, Section 3: "An algorithm expressed in this model also directly
specifies a domain-specific architecture.  Given a definition and mapping,
lowering the specification to hardware (e.g., in Verilog or Chisel) is a
mechanical process."

:func:`lower` performs that mechanical process into a structural
:class:`HardwareSpec`:

*  one **processing element** per grid point the mapping uses, with an
   instruction ROM — the time-ordered list of (cycle, op, operand routes)
   it executes;
*  one **wire** per (src place, dst place) pair any value travels, with
   its length and how many words it carries;
*  **port** entries for bulk-memory (off-chip) traffic.

The spec renders to a human-readable netlist (`render`) and reports the
resource totals (PEs, wire-mm, ROM entries) an RTL backend would consume.
No Verilog text is emitted — the data structure is the deliverable; the
point being demonstrated is *mechanicalness*, which the round-trip tests
check (every compute node appears in exactly one ROM; every cross-PE edge
in exactly one wire's traffic).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping
from repro.machines.technology import Technology

__all__ = ["RomEntry", "Wire", "HardwareSpec", "lower"]


@dataclass(frozen=True)
class RomEntry:
    """One instruction in a PE's ROM."""

    cycle: int
    node: int
    op: str
    sources: tuple[tuple[int, int] | str, ...]  # place or "offchip"/"local"


@dataclass(frozen=True)
class Wire:
    """A point-to-point physical route used by the mapping."""

    src: tuple[int, int]
    dst: tuple[int, int]
    length_mm: float
    words: int


@dataclass
class HardwareSpec:
    """A structural description of the implied domain-specific machine."""

    grid: GridSpec
    roms: dict[tuple[int, int], list[RomEntry]] = field(default_factory=dict)
    wires: list[Wire] = field(default_factory=list)
    offchip_words: int = 0

    @property
    def n_pes(self) -> int:
        return len(self.roms)

    @property
    def total_rom_entries(self) -> int:
        return sum(len(r) for r in self.roms.values())

    @property
    def total_wire_mm(self) -> float:
        return sum(w.length_mm for w in self.wires)

    @property
    def total_wire_traffic_words(self) -> int:
        return sum(w.words for w in self.wires)

    def render(self, max_rom_lines: int = 8) -> str:
        """Human-readable netlist summary."""
        lines = [
            f"hardware spec on {self.grid.width}x{self.grid.height} grid",
            f"  PEs: {self.n_pes}   ROM entries: {self.total_rom_entries}   "
            f"wires: {len(self.wires)} ({self.total_wire_mm:.1f} mm)   "
            f"offchip words: {self.offchip_words}",
        ]
        for place in sorted(self.roms):
            rom = self.roms[place]
            lines.append(f"  PE{place}: {len(rom)} instructions")
            for e in rom[:max_rom_lines]:
                srcs = ", ".join(str(s) for s in e.sources) or "-"
                lines.append(f"    @{e.cycle:>6}  n{e.node:<6} {e.op:<6} <- {srcs}")
            if len(rom) > max_rom_lines:
                lines.append(f"    ... {len(rom) - max_rom_lines} more")
        for w in sorted(self.wires, key=lambda w: -w.words)[:16]:
            lines.append(
                f"  wire {w.src} -> {w.dst}  {w.length_mm:.1f} mm  {w.words} words"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # serialization: the artifact an RTL backend would consume
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        """Serialize the full spec (including the technology point)."""

        def src_enc(s: tuple[int, int] | str) -> list | str:
            return list(s) if isinstance(s, tuple) else s

        doc = {
            "grid": {
                "width": self.grid.width,
                "height": self.grid.height,
                "pe_memory_words": self.grid.pe_memory_words,
                "max_in_flight": self.grid.max_in_flight,
                "tech": dataclasses.asdict(self.grid.tech),
            },
            "offchip_words": self.offchip_words,
            "roms": [
                {
                    "place": list(place),
                    "entries": [
                        {
                            "cycle": e.cycle,
                            "node": e.node,
                            "op": e.op,
                            "sources": [src_enc(s) for s in e.sources],
                        }
                        for e in rom
                    ],
                }
                for place, rom in sorted(self.roms.items())
            ],
            "wires": [
                {
                    "src": list(w.src),
                    "dst": list(w.dst),
                    "length_mm": w.length_mm,
                    "words": w.words,
                }
                for w in self.wires
            ],
        }
        return json.dumps(doc, indent=1)

    @staticmethod
    def from_json(text: str) -> "HardwareSpec":
        """Rebuild a spec serialized by :meth:`to_json` (exact round trip)."""
        doc = json.loads(text)
        gdoc = doc["grid"]
        grid = GridSpec(
            gdoc["width"],
            gdoc["height"],
            tech=Technology(**gdoc["tech"]),
            pe_memory_words=gdoc["pe_memory_words"],
            max_in_flight=gdoc["max_in_flight"],
        )
        spec = HardwareSpec(grid=grid)
        spec.offchip_words = doc["offchip_words"]
        for rdoc in doc["roms"]:
            place = tuple(rdoc["place"])
            spec.roms[place] = [
                RomEntry(
                    cycle=e["cycle"],
                    node=e["node"],
                    op=e["op"],
                    sources=tuple(
                        tuple(s) if isinstance(s, list) else s
                        for s in e["sources"]
                    ),
                )
                for e in rdoc["entries"]
            ]
        spec.wires = [
            Wire(
                src=tuple(w["src"]),
                dst=tuple(w["dst"]),
                length_mm=w["length_mm"],
                words=w["words"],
            )
            for w in doc["wires"]
        ]
        return spec


def lower(graph: DataflowGraph, mapping: Mapping, grid: GridSpec) -> HardwareSpec:
    """The mechanical (function, mapping) -> hardware transformation."""
    spec = HardwareSpec(grid=grid)
    wire_words: dict[tuple[tuple[int, int], tuple[int, int]], int] = {}

    for nid in range(graph.n_nodes):
        if not graph.is_compute(nid):
            continue
        place = mapping.place_of(nid)
        sources: list[tuple[int, int] | str] = []
        for u in graph.args[nid]:
            if mapping.offchip[u]:
                sources.append("offchip")
                spec.offchip_words += 1
            else:
                up = mapping.place_of(u)
                if up == place:
                    sources.append("local")
                else:
                    sources.append(up)
                    wire_words[(up, place)] = wire_words.get((up, place), 0) + 1
        rom = spec.roms.setdefault(place, [])
        rom.append(
            RomEntry(
                cycle=mapping.time_of(nid),
                node=nid,
                op=graph.ops[nid],
                sources=tuple(sources),
            )
        )

    for place in spec.roms:
        spec.roms[place].sort(key=lambda e: e.cycle)

    for (src, dst), words in sorted(wire_words.items()):
        spec.wires.append(
            Wire(src=src, dst=dst, length_mm=grid.distance_mm(src, dst), words=words)
        )
    return spec
