"""Cost evaluation of a mapped program: time, energy, footprint.

Paper, Section 3: "One can systematically search the space of possible
mappings to optimize a given figure of merit: execution time, energy per
op, memory footprint, or some combination" and "this model makes it
possible to write algorithms (function + mapping) with predictable
execution time and energy because communication - the major source of
delay and energy consumption - is made explicit."

Charging rules (all constants from :class:`~repro.machines.technology.
Technology`; see that module for the paper's numbers):

time
    The makespan in cycles: ``max(time + duration)`` over all nodes.
compute energy
    Each op node costs ``OP_ENERGY_FACTOR[op] x add_energy_word``.
transport energy
    Each dataflow edge whose endpoints sit at different on-chip places
    costs ``wire_energy x manhattan_distance x word_bits``; a same-place
    use costs one local-SRAM word access; an edge touching an off-chip
    node costs the off-chip word energy.  Nothing is hidden: this *is* the
    explicitness the model exists for.
footprint
    Peak resident words per place and the sum of per-place peaks, from the
    legality module's liveness sweep.

Figure-of-merit helpers (:meth:`CostReport.figure_of_merit`) combine these
for the mapping search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.function import DataflowGraph, OP_ENERGY_FACTOR
from repro.core.legality import LivenessSummary, compute_liveness
from repro.core.mapping import GridSpec, Mapping
from repro.obs import active as _obs_active

__all__ = ["CostReport", "evaluate_cost"]


@dataclass
class CostReport:
    """Everything the F&M model predicts about one mapped execution."""

    cycles: int
    time_ps: float
    energy_compute_fj: float
    energy_local_fj: float
    energy_onchip_fj: float
    energy_offchip_fj: float
    liveness: LivenessSummary
    n_compute: int = 0
    n_edges: int = 0
    places_used: int = 0

    @property
    def energy_total_fj(self) -> float:
        return (
            self.energy_compute_fj
            + self.energy_local_fj
            + self.energy_onchip_fj
            + self.energy_offchip_fj
        )

    @property
    def energy_transport_fj(self) -> float:
        """All data-movement energy (the paper's 'communication')."""
        return self.energy_local_fj + self.energy_onchip_fj + self.energy_offchip_fj

    @property
    def communication_fraction(self) -> float:
        """Fraction of energy spent moving data rather than computing."""
        tot = self.energy_total_fj
        return self.energy_transport_fj / tot if tot else 0.0

    @property
    def footprint_words(self) -> int:
        return self.liveness.footprint_words

    @property
    def energy_per_op_fj(self) -> float:
        return self.energy_total_fj / self.n_compute if self.n_compute else 0.0

    def figure_of_merit(
        self,
        time_weight: float = 1.0,
        energy_weight: float = 0.0,
        footprint_weight: float = 0.0,
    ) -> float:
        """Weighted-product FoM (geometric, scale-free): lower is better.

        ``time^wt * energy^we * footprint^wf`` with 1 substituted for any
        zero metric, matching the paper's "execution time, energy per op,
        memory footprint, or some combination".
        """
        t = max(1.0, float(self.cycles))
        e = max(1.0, self.energy_total_fj)
        f = max(1.0, float(self.footprint_words))
        return (t ** time_weight) * (e ** energy_weight) * (f ** footprint_weight)

    @property
    def edp(self) -> float:
        """Energy-delay product in fJ*ps."""
        return self.energy_total_fj * self.time_ps

    def as_dict(self) -> dict[str, float]:
        return {
            "cycles": self.cycles,
            "time_ps": self.time_ps,
            "energy_compute_fj": self.energy_compute_fj,
            "energy_local_fj": self.energy_local_fj,
            "energy_onchip_fj": self.energy_onchip_fj,
            "energy_offchip_fj": self.energy_offchip_fj,
            "energy_total_fj": self.energy_total_fj,
            "communication_fraction": self.communication_fraction,
            "footprint_words": self.footprint_words,
            "places_used": self.places_used,
        }


def evaluate_cost(
    graph: DataflowGraph,
    mapping: Mapping,
    grid: GridSpec,
) -> CostReport:
    """Predict time, energy, and footprint of a mapped program.

    Purely a model evaluation — does not run the program or check
    legality; pair with :func:`repro.core.legality.check_legality`, or use
    :meth:`repro.machines.grid.GridMachine.run`, which does both and also
    verifies values.
    """
    tech = grid.tech
    n = graph.n_nodes
    if mapping.n_nodes != n:
        raise ValueError("mapping/graph size mismatch")

    # --- time --------------------------------------------------------- #
    cycles = mapping.makespan(graph)
    time_ps = cycles * tech.cycle_ps

    # --- compute energy ------------------------------------------------ #
    add_word = tech.add_energy_word_fj()
    energy_compute = 0.0
    n_compute = 0
    for nid in range(n):
        op = graph.ops[nid]
        if op in ("input", "const"):
            continue
        n_compute += 1
        energy_compute += OP_ENERGY_FACTOR.get(op, 1.0) * add_word

    # --- transport energy ----------------------------------------------#
    energy_local = 0.0
    energy_onchip = 0.0
    energy_offchip = 0.0
    offchip_word = tech.offchip_energy_word_fj()
    sram_word = tech.sram_energy_word_fj()
    n_edges = 0
    for u, v in graph.edges():
        n_edges += 1
        if mapping.offchip[u] or mapping.offchip[v]:
            energy_offchip += offchip_word
            continue
        dist = grid.distance_mm(
            (int(mapping.x[u]), int(mapping.y[u])),
            (int(mapping.x[v]), int(mapping.y[v])),
        )
        if dist == 0:
            energy_local += sram_word
        else:
            energy_onchip += tech.transport_energy_fj(dist)

    liveness = compute_liveness(graph, mapping, grid)

    sess = _obs_active()
    if sess is not None:
        # counters only: evaluate_cost is the inner loop of every searcher,
        # so per-call spans would swamp the trace (searchers span per
        # candidate instead).
        m = sess.metrics
        m.counter("cost.evaluations").inc()
        m.counter("cost.cycles").add(cycles)
        m.counter("cost.energy_total_fj").add(
            energy_compute + energy_local + energy_onchip + energy_offchip
        )
        tot = energy_compute + energy_local + energy_onchip + energy_offchip
        transport = energy_local + energy_onchip + energy_offchip
        m.histogram("cost.communication_fraction").observe(
            transport / tot if tot else 0.0
        )

    return CostReport(
        cycles=cycles,
        time_ps=time_ps,
        energy_compute_fj=energy_compute,
        energy_local_fj=energy_local,
        energy_onchip_fj=energy_onchip,
        energy_offchip_fj=energy_offchip,
        liveness=liveness,
        n_compute=n_compute,
        n_edges=n_edges,
        places_used=len(mapping.places_used()),
    )
