"""Cost evaluation of a mapped program: time, energy, footprint.

Paper, Section 3: "One can systematically search the space of possible
mappings to optimize a given figure of merit: execution time, energy per
op, memory footprint, or some combination" and "this model makes it
possible to write algorithms (function + mapping) with predictable
execution time and energy because communication - the major source of
delay and energy consumption - is made explicit."

Charging rules (all constants from :class:`~repro.machines.technology.
Technology`; see that module for the paper's numbers):

time
    The makespan in cycles: ``max(time + duration)`` over all nodes.
compute energy
    Each op node costs ``OP_ENERGY_FACTOR[op] x add_energy_word``.
transport energy
    Each dataflow edge whose endpoints sit at different on-chip places
    costs ``wire_energy x manhattan_distance x word_bits``; a same-place
    use costs one local-SRAM word access; an edge touching an off-chip
    node costs the off-chip word energy.  Nothing is hidden: this *is* the
    explicitness the model exists for.
footprint
    Peak resident words per place and the sum of per-place peaks, from the
    legality module's liveness sweep.

Figure-of-merit helpers (:meth:`CostReport.figure_of_merit`) combine these
for the mapping search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.function import DataflowGraph, OP_ENERGY_FACTOR
from repro.core.legality import LivenessSummary, compute_liveness
from repro.core.mapping import GridSpec, Mapping
from repro.core.memo import MemoCache, global_cache
from repro.obs import active as _obs_active

__all__ = [
    "CostReport",
    "evaluate_cost",
    "evaluate_cost_cached",
    "weighted_product_fom",
    "IncrementalEdgeEnergy",
]


def weighted_product_fom(
    cycles: float,
    energy: float,
    footprint: float,
    time_weight: float,
    energy_weight: float,
    footprint_weight: float,
) -> float:
    """The weighted-product figure of merit, shared by the full and the
    incremental scoring paths so both produce bit-identical floats."""
    t = max(1.0, float(cycles))
    e = max(1.0, energy)
    f = max(1.0, float(footprint))
    return (t ** time_weight) * (e ** energy_weight) * (f ** footprint_weight)


@dataclass
class CostReport:
    """Everything the F&M model predicts about one mapped execution."""

    cycles: int
    time_ps: float
    energy_compute_fj: float
    energy_local_fj: float
    energy_onchip_fj: float
    energy_offchip_fj: float
    liveness: LivenessSummary
    n_compute: int = 0
    n_edges: int = 0
    places_used: int = 0

    @property
    def energy_total_fj(self) -> float:
        return (
            self.energy_compute_fj
            + self.energy_local_fj
            + self.energy_onchip_fj
            + self.energy_offchip_fj
        )

    @property
    def energy_transport_fj(self) -> float:
        """All data-movement energy (the paper's 'communication')."""
        return self.energy_local_fj + self.energy_onchip_fj + self.energy_offchip_fj

    @property
    def communication_fraction(self) -> float:
        """Fraction of energy spent moving data rather than computing."""
        tot = self.energy_total_fj
        return self.energy_transport_fj / tot if tot else 0.0

    @property
    def footprint_words(self) -> int:
        return self.liveness.footprint_words

    @property
    def energy_per_op_fj(self) -> float:
        return self.energy_total_fj / self.n_compute if self.n_compute else 0.0

    def figure_of_merit(
        self,
        time_weight: float = 1.0,
        energy_weight: float = 0.0,
        footprint_weight: float = 0.0,
    ) -> float:
        """Weighted-product FoM (geometric, scale-free): lower is better.

        ``time^wt * energy^we * footprint^wf`` with 1 substituted for any
        zero metric, matching the paper's "execution time, energy per op,
        memory footprint, or some combination".
        """
        return weighted_product_fom(
            self.cycles,
            self.energy_total_fj,
            self.footprint_words,
            time_weight,
            energy_weight,
            footprint_weight,
        )

    @property
    def edp(self) -> float:
        """Energy-delay product in fJ*ps."""
        return self.energy_total_fj * self.time_ps

    def as_dict(self) -> dict[str, float]:
        return {
            "cycles": self.cycles,
            "time_ps": self.time_ps,
            "energy_compute_fj": self.energy_compute_fj,
            "energy_local_fj": self.energy_local_fj,
            "energy_onchip_fj": self.energy_onchip_fj,
            "energy_offchip_fj": self.energy_offchip_fj,
            "energy_total_fj": self.energy_total_fj,
            "communication_fraction": self.communication_fraction,
            "footprint_words": self.footprint_words,
            "places_used": self.places_used,
        }


def evaluate_cost(
    graph: DataflowGraph,
    mapping: Mapping,
    grid: GridSpec,
) -> CostReport:
    """Predict time, energy, and footprint of a mapped program.

    Purely a model evaluation — does not run the program or check
    legality; pair with :func:`repro.core.legality.check_legality`, or use
    :meth:`repro.machines.grid.GridMachine.run`, which does both and also
    verifies values.
    """
    tech = grid.tech
    n = graph.n_nodes
    if mapping.n_nodes != n:
        raise ValueError("mapping/graph size mismatch")

    # --- time --------------------------------------------------------- #
    cycles = mapping.makespan(graph)
    time_ps = cycles * tech.cycle_ps

    # --- compute energy ------------------------------------------------ #
    add_word = tech.add_energy_word_fj()
    energy_compute = 0.0
    n_compute = 0
    for nid in range(n):
        op = graph.ops[nid]
        if op in ("input", "const"):
            continue
        n_compute += 1
        energy_compute += OP_ENERGY_FACTOR.get(op, 1.0) * add_word

    # --- transport energy ----------------------------------------------#
    energy_local = 0.0
    energy_onchip = 0.0
    energy_offchip = 0.0
    offchip_word = tech.offchip_energy_word_fj()
    sram_word = tech.sram_energy_word_fj()
    n_edges = 0
    for u, v in graph.edges():
        n_edges += 1
        if mapping.offchip[u] or mapping.offchip[v]:
            energy_offchip += offchip_word
            continue
        dist = grid.distance_mm(
            (int(mapping.x[u]), int(mapping.y[u])),
            (int(mapping.x[v]), int(mapping.y[v])),
        )
        if dist == 0:
            energy_local += sram_word
        else:
            energy_onchip += tech.transport_energy_fj(dist)

    liveness = compute_liveness(graph, mapping, grid)

    sess = _obs_active()
    if sess is not None:
        # counters only: evaluate_cost is the inner loop of every searcher,
        # so per-call spans would swamp the trace (searchers span per
        # candidate instead).
        m = sess.metrics
        m.counter("cost.evaluations").inc()
        m.counter("cost.cycles").add(cycles)
        m.counter("cost.energy_total_fj").add(
            energy_compute + energy_local + energy_onchip + energy_offchip
        )
        tot = energy_compute + energy_local + energy_onchip + energy_offchip
        transport = energy_local + energy_onchip + energy_offchip
        m.histogram("cost.communication_fraction").observe(
            transport / tot if tot else 0.0
        )

    return CostReport(
        cycles=cycles,
        time_ps=time_ps,
        energy_compute_fj=energy_compute,
        energy_local_fj=energy_local,
        energy_onchip_fj=energy_onchip,
        energy_offchip_fj=energy_offchip,
        liveness=liveness,
        n_compute=n_compute,
        n_edges=n_edges,
        places_used=len(mapping.places_used()),
    )


def evaluate_cost_cached(
    graph: DataflowGraph,
    mapping: Mapping,
    grid: GridSpec,
    cache: MemoCache | None = None,
    backend: str | None = None,
) -> CostReport:
    """Content-addressed :func:`evaluate_cost`.

    The key is (function hash, mapping digest, machine spec) — see
    :meth:`DataflowGraph.fingerprint`, :meth:`Mapping.fingerprint`,
    :meth:`GridSpec.cache_key`.  A hit returns the previously computed
    :class:`CostReport` (treat reports as immutable); a miss evaluates and
    populates.  ``backend="compiled"`` computes misses through the
    compiled kernels (bit-identical, so entries are interchangeable
    across backends and the key carries no backend component).  Hit/miss
    counters are published to the active obs session as
    ``memo.*{cache=<name>}`` on every call — including the disk tier's
    ``memo.disk_*`` when the cache has one — so cached evaluation is
    visible in ``repro.obs.report`` without waiting for a searcher.
    """
    cache = cache if cache is not None else global_cache("cost")
    key = (graph.fingerprint(), mapping.fingerprint(), grid.cache_key())

    def compute() -> CostReport:
        from repro.compiled import resolve_backend  # lazy: import cycle

        if resolve_backend(backend) == "compiled":
            from repro.compiled import evaluate_cost_compiled, get_program

            return evaluate_cost_compiled(get_program(graph, grid), mapping)
        return evaluate_cost(graph, mapping, grid)

    report = cache.get_or_compute(key, compute)
    cache.publish_metrics()
    return report


class IncrementalEdgeEnergy:
    """Exact incremental transport-energy accounting for single-node moves.

    The transport energy of an edge depends only on its endpoints' places
    (and off-chip flags), so relocating one node invalidates only the edges
    incident to it.  This class keeps one (class, value) term per dataflow
    edge — in :meth:`DataflowGraph.edges` order — and recomputes just the
    incident terms on :meth:`move`.

    **Bit-identity.**  :meth:`totals` re-sums the per-edge terms into the
    local/on-chip/off-chip accumulators *in edge order with one sequential
    accumulation per class* — the exact float operations
    :func:`evaluate_cost` performs — so a search driven by these numbers
    makes byte-for-byte the same decisions as one driven by the reference
    path.  The re-sum is O(edges) but does no distance or energy math, which
    is where the reference loop spends its time.  Verified by the anneal
    differential tests and the hypothesis delta-consistency property.

    The node-to-place rule mirrors the annealer's scheduling convention:
    inputs live off-chip, any other node not in ``placement`` sits at
    (0, 0).
    """

    _OFFCHIP, _LOCAL, _ONCHIP = 0, 1, 2

    def __init__(self, graph: DataflowGraph, grid: GridSpec) -> None:
        self.graph = graph
        self.grid = grid
        tech = grid.tech
        self._pitch = tech.grid_pitch_mm
        self._wire = tech.wire_energy_fj_per_bit_mm
        self._bits = tech.word_bits
        self._sram_word = tech.sram_energy_word_fj()
        self._offchip_word = tech.offchip_energy_word_fj()
        self._is_input = [op == "input" for op in graph.ops]
        # edges in evaluate_cost's iteration order
        self._edges: list[tuple[int, int]] = list(graph.edges())
        self._incident: dict[int, list[int]] = {}
        for eid, (u, v) in enumerate(self._edges):
            self._incident.setdefault(u, []).append(eid)
            self._incident.setdefault(v, []).append(eid)
        self._cls: list[int] = [0] * len(self._edges)
        self._val: list[float] = [0.0] * len(self._edges)
        self._places: dict[int, tuple[int, int]] = {}

        # compute energy is placement-independent: accumulate it once, in
        # evaluate_cost's node order, so the float is identical.
        add_word = tech.add_energy_word_fj()
        energy_compute = 0.0
        n_compute = 0
        for nid in range(graph.n_nodes):
            op = graph.ops[nid]
            if op in ("input", "const"):
                continue
            n_compute += 1
            energy_compute += OP_ENERGY_FACTOR.get(op, 1.0) * add_word
        self.energy_compute_fj = energy_compute
        self.n_compute = n_compute

    # ------------------------------------------------------------------ #

    def _place_of(self, nid: int) -> tuple[int, int]:
        return self._places.get(nid, (0, 0))

    def _edge_term(self, u: int, v: int) -> tuple[int, float]:
        if self._is_input[u] or self._is_input[v]:
            return self._OFFCHIP, self._offchip_word
        ux, uy = self._place_of(u)
        vx, vy = self._place_of(v)
        dist = (abs(ux - vx) + abs(uy - vy)) * self._pitch
        if dist == 0:
            return self._LOCAL, self._sram_word
        return self._ONCHIP, self._wire * dist * self._bits

    def set_placement(self, placement: dict[int, tuple[int, int]]) -> None:
        """Full recompute: adopt ``placement`` and re-derive every term."""
        self._places = dict(placement)
        for eid, (u, v) in enumerate(self._edges):
            self._cls[eid], self._val[eid] = self._edge_term(u, v)

    def move(self, nid: int, place: tuple[int, int]) -> list[tuple[int, int, float]]:
        """Relocate one node; recompute only its incident edge terms.

        Returns an undo token for :meth:`unmove` (the annealer rejects most
        uphill moves, so cheap rollback matters as much as cheap apply).
        """
        undo: list[tuple[int, int, float]] = [
            (-1, 0, 0.0)  # sentinel replaced below; keeps tuple shape uniform
        ]
        old_place = self._places.get(nid, (0, 0))
        undo[0] = (nid, old_place[0], float(old_place[1]))
        self._places[nid] = place
        for eid in self._incident.get(nid, ()):
            u, v = self._edges[eid]
            undo.append((eid, self._cls[eid], self._val[eid]))
            self._cls[eid], self._val[eid] = self._edge_term(u, v)
        return undo

    def unmove(self, undo: list[tuple[int, int, float]]) -> None:
        """Roll back one :meth:`move` using its undo token."""
        nid, ox, oy = undo[0]
        self._places[nid] = (int(ox), int(oy))
        for eid, cls, val in undo[1:]:
            self._cls[eid] = cls
            self._val[eid] = val

    def totals(self) -> tuple[float, float, float]:
        """(local, onchip, offchip) energy — the reference accumulation."""
        local = onchip = offchip = 0.0
        off_c, loc_c = self._OFFCHIP, self._LOCAL
        for cls, val in zip(self._cls, self._val):
            if cls == loc_c:
                local += val
            elif cls == off_c:
                offchip += val
            else:
                onchip += val
        return local, onchip, offchip

    def energy_total_fj(self) -> float:
        """Total energy, accumulated in :attr:`CostReport.energy_total_fj`
        property order (compute + local + onchip + offchip)."""
        local, onchip, offchip = self.totals()
        return self.energy_compute_fj + local + onchip + offchip
