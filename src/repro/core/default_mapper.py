"""The default mapper: legal mappings for programmers who don't write one.

Paper, Section 3: "Programmers that don't want to bother with mapping can
use a default mapper - with results no worse than with today's
abstractions."

The default mapper is owner-computes + ASAP list scheduling:

1.  **Placement.**  Every node with a logical index is assigned a home PE
    by block-distributing the *first* index component over the grid,
    row-major (the layout "today's abstractions" — OpenMP static loops,
    BLAS blocking — would pick).  Index-less compute nodes inherit the
    place of their first operand; inputs go to the bulk-memory layer.
2.  **Scheduling.**  Nodes are scheduled ASAP in dependency order: each
    compute node starts at the first cycle at which (a) all operands have
    arrived (availability + transit) and (b) its home PE is free.

The result is always **legal by construction** (bounds, causality,
occupancy; storage is whatever it is and is reported, not bounded), which
is why the search module also uses this scheduler to turn candidate
*placements* into full mappings.

Claim C9's bench compares this mapper against hand mappings and search
results: "no worse than today's abstractions" is operationalized as
"never worse than the serial (1-PE) mapping, and within the measured
envelope of a conventional multicore running the same function".
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping

__all__ = [
    "default_mapping",
    "schedule_asap",
    "schedule_asap_fast",
    "serial_mapping",
    "block_place_fn",
]


def block_place_fn(
    graph: DataflowGraph, grid: GridSpec
) -> Callable[[int], tuple[int, int]]:
    """Owner-computes placement: block-distribute index[0] over the grid.

    The extent of the first index component is taken from the graph itself
    (max over nodes), so the blocks are balanced for the program actually
    being mapped.
    """
    max_i = 0
    for nid in range(graph.n_nodes):
        idx = graph.index[nid]
        if idx:
            if idx[0] > max_i:
                max_i = int(idx[0])
    extent = max_i + 1
    n_places = grid.n_places
    block = max(1, -(-extent // n_places))  # ceil division

    def place(nid: int) -> tuple[int, int]:
        idx = graph.index[nid]
        if idx:
            linear = min(int(idx[0]) // block, n_places - 1)
            return (linear % grid.width, linear // grid.width)
        return (0, 0)

    return place


def schedule_asap(
    graph: DataflowGraph,
    grid: GridSpec,
    place_of: Callable[[int], tuple[int, int]],
    *,
    inputs_offchip: bool = True,
    input_port: tuple[int, int] = (0, 0),
) -> Mapping:
    """ASAP list scheduling over a fixed placement; legal by construction.

    Compute nodes are visited in id order (a topological order by
    construction of :class:`DataflowGraph`).  Occupancy is resolved with a
    per-PE "next free cycle" union-find (amortized near-constant per node);
    operand arrival accounts for transit and off-chip latency exactly as
    the legality checker does.
    """
    mapping = Mapping(graph.n_nodes)
    # per place: union-find over cycles; parent[t] = first candidate >= t
    next_free: dict[tuple[int, int], dict[int, int]] = {}

    def claim(p: tuple[int, int], t: int) -> int:
        """First free cycle >= t at place p; marks it busy."""
        parent = next_free.setdefault(p, {})
        # find with path compression
        root = t
        path = []
        while root in parent:
            path.append(root)
            root = parent[root]
        for s in path:
            parent[s] = root
        parent[root] = root + 1
        return root

    offchip_cyc = grid.tech.offchip_cycles()

    for nid in range(graph.n_nodes):
        op = graph.ops[nid]
        if op == "input":
            if inputs_offchip:
                mapping.set(nid, input_port, 0, offchip=True)
            else:
                mapping.set(nid, place_of(nid), 0)
            continue
        if op == "const":
            # constants are materialized at their consumer-home place at t=0
            mapping.set(nid, place_of(nid), 0)
            continue

        p = place_of(nid)
        if not grid.in_bounds(*p):
            raise ValueError(f"placement put node {nid} at {p}, off-grid")
        earliest = 0
        for u in graph.args[nid]:
            avail = int(mapping.time[u]) + (1 if graph.is_compute(u) else 0)
            if mapping.offchip[u]:
                transit = offchip_cyc
            else:
                pu = (int(mapping.x[u]), int(mapping.y[u]))
                transit = grid.transit_cycles(pu, p)
            arrive = avail + transit
            if arrive > earliest:
                earliest = arrive
        t = claim(p, earliest)
        mapping.set(nid, p, t)
    return mapping


def schedule_asap_fast(
    graph: DataflowGraph,
    grid: GridSpec,
    place_of: Callable[[int], tuple[int, int]],
    *,
    inputs_offchip: bool = True,
    input_port: tuple[int, int] = (0, 0),
) -> Mapping:
    """Drop-in twin of :func:`schedule_asap` that produces the *identical*
    mapping (same integer times, same places) several times faster.

    Same algorithm — ASAP list scheduling with the union-find occupancy
    claim — but the inner loop works on plain Python lists instead of
    per-element numpy scalar indexing, and transit cycles are memoized by
    Manhattan distance (``transit_cycles`` is a pure function of it).
    All arithmetic is integer, so equality with the reference is exact, not
    approximate; the property suite checks the two schedulers node-for-node
    on random graphs, and the search differential tests cross-check every
    engine result built on top of this.

    This is the scheduler the fast search engine uses per candidate; the
    reference engine keeps calling :func:`schedule_asap` so differential
    runs exercise genuinely independent code paths.
    """
    n = graph.n_nodes
    mapping = Mapping(n)
    if n == 0:
        return mapping
    ops = graph.ops
    args = graph.args
    xs = [0] * n
    ys = [0] * n
    ts = [0] * n
    off = [False] * n
    avail = [0] * n  # time at which each node's value exists
    next_free: dict[tuple[int, int], dict[int, int]] = {}
    transit_by_dist: dict[int, int] = {0: 0}
    offchip_cyc = grid.tech.offchip_cycles()
    in_x, in_y = input_port

    for nid in range(n):
        op = ops[nid]
        if op == "input":
            if inputs_offchip:
                xs[nid], ys[nid] = in_x, in_y
                off[nid] = True
            else:
                xs[nid], ys[nid] = place_of(nid)
            continue
        if op == "const":
            xs[nid], ys[nid] = place_of(nid)
            continue

        p = place_of(nid)
        x, y = p
        if not grid.in_bounds(x, y):
            raise ValueError(f"placement put node {nid} at {p}, off-grid")
        earliest = 0
        for u in args[nid]:
            if off[u]:
                arrive = avail[u] + offchip_cyc
            else:
                d = abs(xs[u] - x) + abs(ys[u] - y)
                transit = transit_by_dist.get(d)
                if transit is None:
                    transit = grid.transit_cycles((xs[u], ys[u]), p)
                    transit_by_dist[d] = transit
                arrive = avail[u] + transit
            if arrive > earliest:
                earliest = arrive
        # first free cycle >= earliest at p (path-compressed union-find,
        # exactly as schedule_asap's claim())
        parent = next_free.setdefault(p, {})
        root = earliest
        path = []
        while root in parent:
            path.append(root)
            root = parent[root]
        for s in path:
            parent[s] = root
        parent[root] = root + 1
        xs[nid], ys[nid] = x, y
        ts[nid] = root
        avail[nid] = root + 1

    mapping.x[:] = xs
    mapping.y[:] = ys
    mapping.time[:] = ts
    mapping.offchip[:] = off
    return mapping


def default_mapping(
    graph: DataflowGraph,
    grid: GridSpec,
    *,
    inputs_offchip: bool = True,
) -> Mapping:
    """The paper's default mapper: owner-computes blocks + ASAP schedule."""
    return schedule_asap(
        graph, grid, block_place_fn(graph, grid), inputs_offchip=inputs_offchip
    )


def serial_mapping(
    graph: DataflowGraph,
    grid: GridSpec,
    place: tuple[int, int] = (0, 0),
    *,
    inputs_offchip: bool = True,
) -> Mapping:
    """The fully serial point of the mapping space: one PE does everything.

    This is the paper's "completely serial" end of the spectrum of
    mappings, and doubles as the baseline conventional-execution stand-in
    for speedup figures.
    """
    return schedule_asap(
        graph, grid, lambda _nid: place, inputs_offchip=inputs_offchip
    )
