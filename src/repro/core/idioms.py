"""Common mapped idioms: map, reduce, scan, gather, scatter, shuffle.

Paper, Section 3: "Common idioms such as map, reduce, gather, scatter, and
shuffle can be used by many programs to realize common communication
patterns."

Each builder returns a ``(graph, mapping)`` pair over a 1-D array of ``n``
elements block-distributed across the first ``p`` PEs of a grid:

*  the graph is the pure function (so it can be evaluated and verified);
*  the mapping is the idiom's *known-good* communication pattern (local
   work at full parallelism; trees for reductions; explicit routes for the
   data-movement idioms), scheduled with the ASAP engine so it is legal by
   construction.

These are the reusable building blocks the composition module stitches
together, and the vocabulary in which the algorithm modules express their
F&M formulations.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.default_mapper import schedule_asap
from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping

__all__ = [
    "IdiomResult",
    "build_map",
    "build_reduce",
    "build_scan",
    "build_scan_tree",
    "build_gather",
    "build_scatter",
    "build_shuffle",
    "block_owner",
]


class IdiomResult:
    """A (function, mapping) pair plus the placement it used."""

    def __init__(
        self,
        graph: DataflowGraph,
        mapping: Mapping,
        owner: Callable[[int], tuple[int, int]],
        n: int,
        p: int,
    ) -> None:
        self.graph = graph
        self.mapping = mapping
        self.owner = owner
        self.n = n
        self.p = p


def _linear_place(grid: GridSpec, linear: int) -> tuple[int, int]:
    if not (0 <= linear < grid.n_places):
        raise ValueError(f"PE index {linear} outside grid of {grid.n_places}")
    return (linear % grid.width, linear // grid.width)


def block_owner(n: int, p: int, grid: GridSpec) -> Callable[[int], tuple[int, int]]:
    """Block distribution: element i lives at PE floor(i / ceil(n/p))."""
    if p < 1 or p > grid.n_places:
        raise ValueError(f"p must be in [1, {grid.n_places}]")
    block = max(1, -(-n // p))

    def owner(i: int) -> tuple[int, int]:
        return _linear_place(grid, min(i // block, p - 1))

    return owner


def _schedule(graph: DataflowGraph, grid: GridSpec,
              place_of_node: Callable[[int], tuple[int, int]]) -> Mapping:
    return schedule_asap(graph, grid, place_of_node, inputs_offchip=True)


def build_map(
    n: int, p: int, grid: GridSpec, op: str = "+", operand: int = 1
) -> IdiomResult:
    """Elementwise ``out[i] = op(in[i], operand)`` — owner computes.

    The simplest idiom: no inter-PE communication at all (beyond loading
    inputs from the bulk layer), total parallelism n.
    """
    g = DataflowGraph()
    owner = block_owner(n, p, grid)
    places: dict[int, tuple[int, int]] = {}
    for i in range(n):
        a = g.input("A", (i,))
        c = g.const(operand, index=(i,))
        r = g.op(op, a, c, index=(i,), group="out")
        g.mark_output(r, ("out", i))
        places[a] = places[c] = places[r] = owner(i)
    mapping = _schedule(g, grid, lambda nid: places.get(nid, (0, 0)))
    return IdiomResult(g, mapping, owner, n, p)


def build_reduce(n: int, p: int, grid: GridSpec, op: str = "+") -> IdiomResult:
    """Tree reduction: local serial reduce per PE, then a binary tree across
    PEs (the classic latency-optimal pattern)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    g = DataflowGraph()
    owner = block_owner(n, p, grid)
    places: dict[int, tuple[int, int]] = {}

    # local phase
    per_pe: dict[tuple[int, int], int] = {}
    for i in range(n):
        a = g.input("A", (i,))
        pl = owner(i)
        places[a] = pl
        if pl in per_pe:
            acc = g.op(op, per_pe[pl], a, group="partial")
            places[acc] = pl
            per_pe[pl] = acc
        else:
            per_pe[pl] = a

    # cross-PE binary tree (pairs nearest first to keep wires short)
    frontier = sorted(per_pe.items())  # [(place, node)]
    while len(frontier) > 1:
        nxt = []
        for k in range(0, len(frontier) - 1, 2):
            (pl_a, na), (_pl_b, nb) = frontier[k], frontier[k + 1]
            merged = g.op(op, na, nb, group="tree")
            places[merged] = pl_a
            nxt.append((pl_a, merged))
        if len(frontier) % 2:
            nxt.append(frontier[-1])
        frontier = nxt
    g.mark_output(frontier[0][1], "reduce")
    mapping = _schedule(g, grid, lambda nid: places.get(nid, (0, 0)))
    return IdiomResult(g, mapping, owner, n, p)


def build_scan(n: int, p: int, grid: GridSpec, op: str = "+") -> IdiomResult:
    """Inclusive scan: local scan, serial exchange of block sums, local add.

    The three-phase distributed scan (Blelloch's own idiom): each PE scans
    its block, block sums are combined across PEs, each PE adds its prefix
    offset.  Work Theta(n), cross-PE depth Theta(p) in this simple variant
    (a tree variant would be Theta(log p); kept linear for clarity and
    tested against the tree reduce for contrast).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    g = DataflowGraph()
    owner = block_owner(n, p, grid)
    places: dict[int, tuple[int, int]] = {}

    # local inclusive scans
    block_nodes: dict[tuple[int, int], list[int]] = {}
    inputs_by_i: list[int] = []
    for i in range(n):
        a = g.input("A", (i,))
        inputs_by_i.append(a)
        pl = owner(i)
        places[a] = pl
        nodes = block_nodes.setdefault(pl, [])
        if nodes:
            s = g.op(op, nodes[-1], a, index=(i,), group="local")
            places[s] = pl
            nodes.append(s)
        else:
            c = g.op("copy", a, index=(i,), group="local")
            places[c] = pl
            nodes.append(c)

    # exclusive scan of block sums across PEs (serial chain over p blocks);
    # ordered by linear PE index, which matches element-block order
    pls = sorted(block_nodes, key=lambda pl: pl[1] * grid.width + pl[0])
    offsets: dict[tuple[int, int], int | None] = {pls[0]: None}
    running: int | None = None
    for k in range(1, len(pls)):
        prev_sum = block_nodes[pls[k - 1]][-1]
        if running is None:
            running = prev_sum
        else:
            nx = g.op(op, running, prev_sum, group="offsets")
            places[nx] = pls[k]
            running = nx
        offsets[pls[k]] = running

    # apply offsets
    idx_in_block: dict[tuple[int, int], int] = {}
    for i in range(n):
        pl = owner(i)
        j = idx_in_block.get(pl, 0)
        idx_in_block[pl] = j + 1
        local = block_nodes[pl][j]
        off = offsets[pl]
        if off is None:
            out = local
        else:
            out = g.op(op, off, local, index=(i,), group="scan")
            places[out] = pl
        g.mark_output(out, ("scan", i))
    mapping = _schedule(g, grid, lambda nid: places.get(nid, (0, 0)))
    return IdiomResult(g, mapping, owner, n, p)


def build_scan_tree(n: int, p: int, grid: GridSpec, op: str = "+") -> IdiomResult:
    """Inclusive scan with a Blelloch up/down sweep across PEs.

    Same three-phase structure as :func:`build_scan`, but the cross-PE
    offset computation is the work-efficient tree (upsweep to partial
    sums, downsweep distributing exclusive prefixes) — cross-PE depth
    Theta(log p) instead of the serial chain's Theta(p).  The tests and
    the C14 ablation compare the two directly; this is Blelloch's own
    algorithm applied at the between-PE level.

    Requires power-of-two ``p`` (the classic formulation).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if p < 1 or p & (p - 1):
        raise ValueError(f"tree scan needs power-of-two p, got {p}")
    if n < p:
        raise ValueError(f"tree scan needs n >= p (got n={n}, p={p})")
    g = DataflowGraph()
    owner = block_owner(n, p, grid)
    places: dict[int, tuple[int, int]] = {}

    def pe(linear: int) -> tuple[int, int]:
        return _linear_place(grid, linear)

    # phase 1: local inclusive scans (same as build_scan)
    block_nodes: dict[int, list[int]] = {}
    owner_linear: list[int] = []
    for i in range(n):
        a = g.input("A", (i,))
        pl = owner(i)
        linear = pl[1] * grid.width + pl[0]
        owner_linear.append(linear)
        places[a] = pl
        nodes = block_nodes.setdefault(linear, [])
        if nodes:
            s = g.op(op, nodes[-1], a, index=(i,), group="local")
            places[s] = pl
            nodes.append(s)
        else:
            c = g.op("copy", a, index=(i,), group="local")
            places[c] = pl
            nodes.append(c)

    used = sorted(block_nodes)
    n_blocks = len(used)

    # phase 2: Blelloch up/down sweep over the block sums
    # tree[] holds the working value per participating block slot
    tree: dict[int, int] = {b: block_nodes[b][-1] for b in used}
    d = 1
    while d < n_blocks:
        for k in range(0, n_blocks - d, 2 * d):
            lo, hi = used[k + d - 1], used[k + 2 * d - 1]
            merged = g.op(op, tree[lo], tree[hi], group="upsweep")
            places[merged] = pe(hi)
            tree[hi] = merged
        d *= 2
    # downsweep: replace the root with identity, then swap-and-add down
    zero = g.const(0)
    places[zero] = pe(used[-1])
    tree[used[-1]] = zero
    d = max(1, n_blocks // 2)
    while d >= 1:
        for k in range(0, n_blocks - d, 2 * d):
            lo, hi = used[k + d - 1], used[k + 2 * d - 1]
            left_val = tree[lo]
            right_val = tree[hi]
            moved = g.op("copy", right_val, group="downsweep")
            places[moved] = pe(lo)
            summed = g.op(op, left_val, right_val, group="downsweep")
            places[summed] = pe(hi)
            tree[lo] = moved
            tree[hi] = summed
        d //= 2
    # tree[b] now holds the exclusive prefix of block b

    # phase 3: apply offsets
    idx_in_block: dict[int, int] = {}
    for i in range(n):
        linear = owner_linear[i]
        j = idx_in_block.get(linear, 0)
        idx_in_block[linear] = j + 1
        local = block_nodes[linear][j]
        out = g.op(op, tree[linear], local, index=(i,), group="scan")
        places[out] = pe(linear)
        g.mark_output(out, ("scan", i))
    mapping = _schedule(g, grid, lambda nid: places.get(nid, (0, 0)))
    return IdiomResult(g, mapping, owner, n, p)


def _movement_idiom(
    n: int,
    p: int,
    grid: GridSpec,
    dest_of: Callable[[int], int],
    name: str,
) -> IdiomResult:
    """Shared machinery: out[dest_of(i)] = in[i], placed at the destination.

    Movement idioms are *remapping* modules: their inputs are assumed
    already resident on chip at their owners (that is what makes them pure
    communication), so the edge input -> copy is exactly the on-chip
    traffic the idiom performs.
    """
    g = DataflowGraph()
    owner = block_owner(n, p, grid)
    places: dict[int, tuple[int, int]] = {}
    seen: set[int] = set()
    for i in range(n):
        d = dest_of(i)
        if not (0 <= d < n):
            raise ValueError(f"{name}: destination {d} for element {i} out of range")
        if d in seen:
            raise ValueError(f"{name}: destination {d} written twice")
        seen.add(d)
        a = g.input("A", (i,))
        places[a] = owner(i)
        c = g.op("copy", a, index=(d,), group=name)
        places[c] = owner(d)
        g.mark_output(c, (name, d))
    mapping = schedule_asap(
        g, grid, lambda nid: places.get(nid, (0, 0)), inputs_offchip=False
    )
    return IdiomResult(g, mapping, owner, n, p)


def build_gather(
    n: int, p: int, grid: GridSpec, indices: Sequence[int]
) -> IdiomResult:
    """``out[j] = in[indices[j]]`` — data-dependent reads.

    ``indices`` must be a permutation-free gather of length n (each output
    written once; sources may repeat).
    """
    if len(indices) != n:
        raise ValueError("indices must have length n")
    g = DataflowGraph()
    owner = block_owner(n, p, grid)
    places: dict[int, tuple[int, int]] = {}
    src_nodes: dict[int, int] = {}
    for j, src in enumerate(indices):
        if not (0 <= src < n):
            raise ValueError(f"gather index {src} out of range")
        if src not in src_nodes:
            a = g.input("A", (int(src),))
            places[a] = owner(int(src))
            src_nodes[src] = a
        c = g.op("copy", src_nodes[src], index=(j,), group="gather")
        places[c] = owner(j)
        g.mark_output(c, ("gather", j))
    mapping = schedule_asap(
        g, grid, lambda nid: places.get(nid, (0, 0)), inputs_offchip=False
    )
    return IdiomResult(g, mapping, owner, n, p)


def build_scatter(
    n: int, p: int, grid: GridSpec, destinations: Sequence[int]
) -> IdiomResult:
    """``out[destinations[i]] = in[i]`` — destinations must be a permutation."""
    if sorted(destinations) != list(range(n)):
        raise ValueError("scatter destinations must form a permutation of 0..n-1")
    return _movement_idiom(n, p, grid, lambda i: int(destinations[i]), "scatter")


def build_shuffle(n: int, p: int, grid: GridSpec) -> IdiomResult:
    """The perfect shuffle: out[(2i) mod (n-1)] = in[i] (n even, classic FFT
    wiring; element n-1 maps to itself)."""
    if n < 2 or n % 2:
        raise ValueError("shuffle needs even n >= 2")

    def dest(i: int) -> int:
        if i == n - 1:
            return n - 1
        return (2 * i) % (n - 1)

    return _movement_idiom(n, p, grid, dest, "shuffle")
