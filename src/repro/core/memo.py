"""Content-addressed memoization for the search hot path.

The F&M searchers (:mod:`repro.core.search`) evaluate the same
(function, placement, machine) triple over and over: multi-FoM sweeps
re-cost identical mappings once per figure of merit, annealers oscillate
through previously visited placements, and differential test harnesses
score the same candidates along both the fast and the reference path.
:class:`MemoCache` makes every repeat a dictionary lookup.

Keys are *content addresses*: callers hash the actual inputs
(:meth:`~repro.core.function.DataflowGraph.fingerprint`,
:meth:`~repro.core.mapping.Mapping.fingerprint`,
:meth:`~repro.core.mapping.GridSpec.cache_key`) rather than object
identities, so two structurally identical graphs built independently share
entries, and a mutated mapping can never alias a stale result.  Soundness
(equal key implies equal value) is property-tested in
``tests/properties/test_prop_memo.py``.

Hit/miss/eviction counts are kept locally (:attr:`MemoCache.stats`) and
published to the PR-1 observability layer when a session is open, as
``memo.hits{cache=<name>}`` / ``memo.misses{cache=<name>}`` counters plus a
``memo.hit_rate{cache=<name>}`` gauge — the bench tables and the obs diff
tool read them to prove the fast path is actually hitting.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.obs import active as _obs_active

__all__ = [
    "MemoCache",
    "MemoStats",
    "DiskMemoStore",
    "DiskStoreStats",
    "fingerprint_bytes",
    "global_cache",
    "clear_global_caches",
]


def fingerprint_bytes(*chunks: bytes) -> str:
    """SHA-256 content address of a sequence of byte chunks."""
    h = hashlib.sha256()
    for c in chunks:
        h.update(len(c).to_bytes(8, "little"))
        h.update(c)
    return h.hexdigest()


@dataclass
class MemoStats:
    """Counters for one cache (mirrors the shape of ``CacheStats``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class MemoCache:
    """A bounded LRU map from content-address keys to computed values.

    Parameters
    ----------
    name:
        Label used in obs series (``memo.hits{cache=<name>}``) and reports.
    max_entries:
        LRU bound; ``None`` means unbounded.  Entries are whole computed
        results (e.g. a ``(Mapping, CostReport)`` pair), so a few tens of
        thousands is plenty for any search this package runs.
    store:
        Optional persistent :class:`DiskMemoStore` tier.  On an in-memory
        miss the store is probed (a disk hit counts as a cache hit and is
        promoted into memory); every :meth:`put` writes through.  This is
        how serve shards survive restarts warm and how ``_pool_map``
        workers share results across process boundaries.
    """

    def __init__(
        self,
        name: str = "memo",
        max_entries: int | None = 65_536,
        store: "DiskMemoStore | None" = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive or None")
        self.name = name
        self.max_entries = max_entries
        self.store = store
        self.stats = MemoStats()
        self._published = MemoStats()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or miss; refreshes recency.

        With a persistent ``store`` attached, an in-memory miss probes the
        disk tier; a disk hit is promoted into memory and counted as a
        hit of this cache."""
        if key in self._entries:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        if self.store is not None:
            found, value = self.store.get(key)
            if found:
                self.stats.hits += 1
                self._insert(key, value)
                return value
        self.stats.misses += 1
        return default

    def _insert(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU past ``max_entries``;
        writes through to the persistent store when one is attached."""
        self._insert(key, value)
        if self.store is not None:
            self.store.put(key, value)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """``get`` with a compute-on-miss fallback that populates the cache."""
        sentinel = _MISS
        value = self.get(key, sentinel)
        if value is sentinel:
            value = compute()
            self.put(key, value)
        return value

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------ #

    def publish_metrics(self) -> None:
        """Add counter *deltas* since the last publish to the active obs
        session (delta-based like the cachesim publishers, so repeated
        publishes never double count)."""
        sess = _obs_active()
        if sess is None:
            return
        cur, last = self.stats, self._published
        m = sess.metrics
        if cur.hits - last.hits:
            m.counter("memo.hits", better="higher", cache=self.name).add(
                cur.hits - last.hits
            )
        if cur.misses - last.misses:
            m.counter("memo.misses", cache=self.name).add(cur.misses - last.misses)
        if cur.evictions - last.evictions:
            m.counter("memo.evictions", cache=self.name).add(
                cur.evictions - last.evictions
            )
        m.gauge("memo.hit_rate", better="higher", cache=self.name).set(cur.hit_rate)
        self._published = MemoStats(cur.hits, cur.misses, cur.evictions)
        if self.store is not None:
            self.store.publish_metrics()


_MISS = object()


# ---------------------------------------------------------------------- #
# the persistent tier


@dataclass
class DiskStoreStats:
    """Counters for one :class:`DiskMemoStore`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "errors": self.errors,
        }


class DiskMemoStore:
    """A content-addressed on-disk memo tier shared across processes.

    Layout: ``<root>/v<repro.__version__>/<namespace>/<d[:2]>/<d[2:]>.pkl``
    where ``d`` is the SHA-256 of ``repr(key)`` — the same hashable
    content-address tuples :class:`MemoCache` is keyed on, whose reprs
    are deterministic across processes.  Versioning the directory means a
    release that changes any model semantics invalidates the whole store
    by construction, with no migration logic.

    Durability contract (this is what the chaos tests pin):

    * writes are atomic — pickle to a same-directory temp file, then
      ``os.replace`` — so a killed worker can leave at most a stale temp
      file, never a torn entry;
    * reads tolerate anything: a missing, truncated, or garbage file is
      a miss (and is unlinked), never an exception;
    * an unwritable root degrades the store to a no-op rather than
      failing construction (sandboxes, read-only homes).

    The size cap is enforced by an mtime-LRU sweep (hits refresh mtime)
    that runs every few writes; stale temp files older than an hour are
    collected by the same sweep.
    """

    #: default cap on the bytes one namespace may occupy
    DEFAULT_MAX_BYTES = 256 << 20
    #: sweep every this many writes
    _SWEEP_EVERY = 64
    #: temp files older than this are presumed orphaned by a dead writer
    _TMP_TTL_S = 3600.0

    def __init__(
        self,
        namespace: str = "memo",
        root: str | os.PathLike | None = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        version: str | None = None,
    ) -> None:
        if version is None:
            from repro import __version__ as version  # lazy: avoids cycle
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
                os.path.expanduser("~"), ".cache", "repro"
            )
        self.namespace = namespace
        self.max_bytes = max_bytes
        self.root = pathlib.Path(root)
        self.dir = self.root / f"v{version}" / namespace
        self.stats = DiskStoreStats()
        self._published = DiskStoreStats()
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            self.enabled = True
        except OSError:
            self.enabled = False

    # ------------------------------------------------------------------ #

    def _path(self, key: Hashable) -> pathlib.Path:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return self.dir / digest[:2] / f"{digest[2:]}.pkl"

    def get(self, key: Hashable) -> tuple[bool, Any]:
        """Probe the store; returns ``(found, value)``.  Never raises on
        store trouble — corruption and races degrade to misses."""
        if not self.enabled:
            self.stats.misses += 1
            return False, None
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                value = pickle.load(f)
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except Exception:
            # truncated/garbage entry: drop it so it cannot keep costing
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return False, None
        self.stats.hits += 1
        try:
            os.utime(path)  # refresh mtime: the sweep's LRU signal
        except OSError:
            pass
        return True, value

    def put(self, key: Hashable, value: Any) -> None:
        """Atomically persist one entry (temp file + ``os.replace``)."""
        if not self.enabled:
            return
        path = self._path(key)
        tmp = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
            with os.fdopen(fd, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
            tmp = None
        except Exception:
            self.stats.errors += 1
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            return
        self.stats.writes += 1
        if self.stats.writes % self._SWEEP_EVERY == 0:
            self.sweep()

    # ------------------------------------------------------------------ #

    def _entries_on_disk(self) -> list[tuple[float, int, pathlib.Path]]:
        out: list[tuple[float, int, pathlib.Path]] = []
        if not self.enabled:
            return out
        now = time.time()
        try:
            for sub in self.dir.iterdir():
                if not sub.is_dir():
                    continue
                for p in sub.iterdir():
                    try:
                        st = p.stat()
                    except OSError:
                        continue
                    if p.name.startswith(".tmp-"):
                        # orphaned writer temp: collect once clearly stale
                        if now - st.st_mtime > self._TMP_TTL_S:
                            try:
                                os.unlink(p)
                            except OSError:
                                pass
                        continue
                    out.append((st.st_mtime, st.st_size, p))
        except OSError:
            pass
        return out

    def sweep(self, max_bytes: int | None = None) -> int:
        """Evict oldest-first until the namespace fits the byte cap.
        Returns the number of entries removed."""
        cap = self.max_bytes if max_bytes is None else max_bytes
        entries = self._entries_on_disk()
        total = sum(size for _, size, _ in entries)
        removed = 0
        if total <= cap:
            return removed
        for _mtime, size, path in sorted(entries):
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
            if total <= cap:
                break
        self.stats.evictions += removed
        return removed

    def __len__(self) -> int:
        return len(self._entries_on_disk())

    def clear(self) -> None:
        for _mtime, _size, path in self._entries_on_disk():
            try:
                os.unlink(path)
            except OSError:
                pass

    def verify(self) -> tuple[int, int]:
        """Integrity scan: unpickle every entry.  Returns (ok, corrupt) —
        the chaos tests assert corrupt == 0 after injected worker faults."""
        ok = corrupt = 0
        for _mtime, _size, path in self._entries_on_disk():
            try:
                with open(path, "rb") as f:
                    pickle.load(f)
                ok += 1
            except Exception:
                corrupt += 1
        return ok, corrupt

    # ------------------------------------------------------------------ #

    def publish_metrics(self) -> None:
        """Publish counter deltas as ``memo.disk_*{store=<namespace>}``."""
        sess = _obs_active()
        if sess is None:
            return
        cur, last = self.stats, self._published
        m = sess.metrics
        pairs = (
            ("memo.disk_hits", cur.hits - last.hits, "higher"),
            ("memo.disk_misses", cur.misses - last.misses, None),
            ("memo.disk_writes", cur.writes - last.writes, None),
            ("memo.disk_evictions", cur.evictions - last.evictions, None),
            ("memo.disk_errors", cur.errors - last.errors, None),
        )
        for name, delta, better in pairs:
            if delta:
                if better:
                    m.counter(name, better=better, store=self.namespace).add(delta)
                else:
                    m.counter(name, store=self.namespace).add(delta)
        self._published = DiskStoreStats(**cur.as_dict())

# ---------------------------------------------------------------------- #
# process-global named caches.  The search engine defaults to these so a
# bench that sweeps the same workload under three figures of merit shares
# one cache without threading it through every call site.

_GLOBAL: dict[str, MemoCache] = {}


def global_cache(name: str, max_entries: int | None = 65_536) -> MemoCache:
    """The process-global cache registered under ``name`` (created lazily)."""
    cache = _GLOBAL.get(name)
    if cache is None:
        cache = _GLOBAL[name] = MemoCache(name, max_entries)
    return cache


def clear_global_caches() -> None:
    """Drop all entries (and stats) of every global cache — for tests and
    for benches that must measure cold-start behaviour."""
    for cache in _GLOBAL.values():
        cache.clear()
        cache.stats = MemoStats()
        cache._published = MemoStats()
