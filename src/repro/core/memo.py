"""Content-addressed memoization for the search hot path.

The F&M searchers (:mod:`repro.core.search`) evaluate the same
(function, placement, machine) triple over and over: multi-FoM sweeps
re-cost identical mappings once per figure of merit, annealers oscillate
through previously visited placements, and differential test harnesses
score the same candidates along both the fast and the reference path.
:class:`MemoCache` makes every repeat a dictionary lookup.

Keys are *content addresses*: callers hash the actual inputs
(:meth:`~repro.core.function.DataflowGraph.fingerprint`,
:meth:`~repro.core.mapping.Mapping.fingerprint`,
:meth:`~repro.core.mapping.GridSpec.cache_key`) rather than object
identities, so two structurally identical graphs built independently share
entries, and a mutated mapping can never alias a stale result.  Soundness
(equal key implies equal value) is property-tested in
``tests/properties/test_prop_memo.py``.

Hit/miss/eviction counts are kept locally (:attr:`MemoCache.stats`) and
published to the PR-1 observability layer when a session is open, as
``memo.hits{cache=<name>}`` / ``memo.misses{cache=<name>}`` counters plus a
``memo.hit_rate{cache=<name>}`` gauge — the bench tables and the obs diff
tool read them to prove the fast path is actually hitting.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.obs import active as _obs_active

__all__ = ["MemoCache", "MemoStats", "fingerprint_bytes", "global_cache", "clear_global_caches"]


def fingerprint_bytes(*chunks: bytes) -> str:
    """SHA-256 content address of a sequence of byte chunks."""
    h = hashlib.sha256()
    for c in chunks:
        h.update(len(c).to_bytes(8, "little"))
        h.update(c)
    return h.hexdigest()


@dataclass
class MemoStats:
    """Counters for one cache (mirrors the shape of ``CacheStats``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class MemoCache:
    """A bounded LRU map from content-address keys to computed values.

    Parameters
    ----------
    name:
        Label used in obs series (``memo.hits{cache=<name>}``) and reports.
    max_entries:
        LRU bound; ``None`` means unbounded.  Entries are whole computed
        results (e.g. a ``(Mapping, CostReport)`` pair), so a few tens of
        thousands is plenty for any search this package runs.
    """

    def __init__(self, name: str = "memo", max_entries: int | None = 65_536) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive or None")
        self.name = name
        self.max_entries = max_entries
        self.stats = MemoStats()
        self._published = MemoStats()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or miss; refreshes recency."""
        if key in self._entries:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.stats.misses += 1
        return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU past ``max_entries``."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """``get`` with a compute-on-miss fallback that populates the cache."""
        sentinel = _MISS
        value = self.get(key, sentinel)
        if value is sentinel:
            value = compute()
            self.put(key, value)
        return value

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------ #

    def publish_metrics(self) -> None:
        """Add counter *deltas* since the last publish to the active obs
        session (delta-based like the cachesim publishers, so repeated
        publishes never double count)."""
        sess = _obs_active()
        if sess is None:
            return
        cur, last = self.stats, self._published
        m = sess.metrics
        if cur.hits - last.hits:
            m.counter("memo.hits", better="higher", cache=self.name).add(
                cur.hits - last.hits
            )
        if cur.misses - last.misses:
            m.counter("memo.misses", cache=self.name).add(cur.misses - last.misses)
        if cur.evictions - last.evictions:
            m.counter("memo.evictions", cache=self.name).add(
                cur.evictions - last.evictions
            )
        m.gauge("memo.hit_rate", better="higher", cache=self.name).set(cur.hit_rate)
        self._published = MemoStats(cur.hits, cur.misses, cur.evictions)


_MISS = object()

# ---------------------------------------------------------------------- #
# process-global named caches.  The search engine defaults to these so a
# bench that sweeps the same workload under three figures of merit shares
# one cache without threading it through every call site.

_GLOBAL: dict[str, MemoCache] = {}


def global_cache(name: str, max_entries: int | None = 65_536) -> MemoCache:
    """The process-global cache registered under ``name`` (created lazily)."""
    cache = _GLOBAL.get(name)
    if cache is None:
        cache = _GLOBAL[name] = MemoCache(name, max_entries)
    return cache


def clear_global_caches() -> None:
    """Drop all entries (and stats) of every global cache — for tests and
    for benches that must measure cold-start behaviour."""
    for cache in _GLOBAL.values():
        cache.clear()
        cache.stats = MemoStats()
        cache._published = MemoStats()
