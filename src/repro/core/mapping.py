"""The *mapping* half of Function-and-Mapping: space-time assignment.

Paper, Section 3: "The mapping specifies when and where each element is
computed and where elements reside from definition to last use.  The time
axis can be discretized into cycles.  Location can be discretized onto a
grid of two or more dimensions.  The delay and energy of bulk memory
(DRAM, SSD, etc.) can be modeled by adding a layer to the grid."

A :class:`Mapping` gives every node of a :class:`~repro.core.function.
DataflowGraph` a place ``(x, y)`` on a :class:`GridSpec` and an integer
cycle time.  The bulk-memory "layer" is modelled by an ``offchip`` flag per
node: off-chip residents have a port position but pay the off-chip energy
and latency for every edge that touches them.

The worked example from the paper —

    ``Map H(i,j) at i % P  time floor(i/P)*N + j``

— is an :func:`affine_by_index` mapping; the edit-distance module builds it
verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.function import DataflowGraph
from repro.machines.technology import Technology, TECH_5NM

__all__ = ["GridSpec", "Mapping", "MappingError", "affine_by_index"]


class MappingError(Exception):
    """Malformed or incomplete mapping."""


@dataclass(frozen=True)
class GridSpec:
    """The target: a W x H grid of processors with per-PE memory tiles.

    Parameters
    ----------
    width, height:
        Grid extent; places are ``(x, y)`` with ``0 <= x < width``,
        ``0 <= y < height``.
    tech:
        Technology parameters used for distance, energy, latency.
    pe_memory_words:
        Storage bound per grid point ("surrounding it with many 'tiles' of
        memory" — a parameter "adjusted to tailor the architecture").
        ``None`` disables the storage legality check.
    max_in_flight:
        Bound on values simultaneously in transit ("does not exceed storage
        bounds for elements in transit").  ``None`` disables the check.
    """

    width: int
    height: int = 1
    tech: Technology = field(default_factory=lambda: TECH_5NM)
    pe_memory_words: int | None = None
    max_in_flight: int | None = None

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("grid must have positive extent")

    @property
    def n_places(self) -> int:
        return self.width * self.height

    def places(self) -> Iterable[tuple[int, int]]:
        for y in range(self.height):
            for x in range(self.width):
                yield (x, y)

    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.width and 0 <= y < self.height

    def distance_mm(self, p: tuple[int, int], q: tuple[int, int]) -> float:
        """Manhattan (XY-routed) wire distance between two grid points."""
        return (abs(p[0] - q[0]) + abs(p[1] - q[1])) * self.tech.grid_pitch_mm

    def transit_cycles(self, p: tuple[int, int], q: tuple[int, int]) -> int:
        return self.tech.transport_cycles(self.distance_mm(p, q))

    def cache_key(self) -> tuple:
        """Hashable content key: the machine-spec third of the search
        memoization key.  ``GridSpec`` and ``Technology`` are both frozen
        dataclasses, so field equality is content equality."""
        return (self.width, self.height, self.tech,
                self.pe_memory_words, self.max_in_flight)


class Mapping:
    """Space-time assignment for every node of a graph.

    Struct-of-arrays: ``x[nid], y[nid], time[nid], offchip[nid]``.
    ``time`` for an input/const is the cycle at which the value is
    *available* at its place; for a compute node it is the cycle the
    operation executes (occupying its PE for that cycle).
    """

    def __init__(self, n_nodes: int) -> None:
        self.x = np.zeros(n_nodes, dtype=np.int64)
        self.y = np.zeros(n_nodes, dtype=np.int64)
        self.time = np.zeros(n_nodes, dtype=np.int64)
        self.offchip = np.zeros(n_nodes, dtype=bool)

    # ------------------------------------------------------------------ #

    @property
    def n_nodes(self) -> int:
        return self.x.size

    def set(self, nid: int, place: tuple[int, int], time: int,
            offchip: bool = False) -> None:
        self.x[nid], self.y[nid] = place
        self.time[nid] = time
        self.offchip[nid] = offchip

    def place_of(self, nid: int) -> tuple[int, int]:
        return (int(self.x[nid]), int(self.y[nid]))

    def time_of(self, nid: int) -> int:
        return int(self.time[nid])

    def copy(self) -> "Mapping":
        m = Mapping(self.n_nodes)
        m.x[:] = self.x
        m.y[:] = self.y
        m.time[:] = self.time
        m.offchip[:] = self.offchip
        return m

    def fingerprint(self) -> str:
        """Content address over every array (places, times, offchip flags).

        Any change to any node's space-time assignment changes the digest,
        which is what makes memoized cost results safe: a mutated mapping
        can never alias a stale cache entry (property-tested in
        ``tests/properties/test_prop_memo.py``).
        """
        import hashlib

        h = hashlib.sha256()
        h.update(self.n_nodes.to_bytes(8, "little"))
        h.update(np.ascontiguousarray(self.x).tobytes())
        h.update(np.ascontiguousarray(self.y).tobytes())
        h.update(np.ascontiguousarray(self.time).tobytes())
        h.update(np.packbits(self.offchip).tobytes())
        return h.hexdigest()

    def places_used(self) -> set[tuple[int, int]]:
        """Distinct on-chip places touched by the mapping."""
        on = ~self.offchip
        return set(zip(self.x[on].tolist(), self.y[on].tolist()))

    def makespan(self, graph: DataflowGraph) -> int:
        """Completion cycle: compute nodes finish at time+1, data at time."""
        if self.n_nodes == 0:
            return 0
        dur = np.fromiter(
            (1 if graph.is_compute(i) else 0 for i in range(graph.n_nodes)),
            dtype=np.int64,
            count=graph.n_nodes,
        )
        return int((self.time + dur).max())

    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        return (
            f"Mapping(nodes={self.n_nodes}, places={len(self.places_used())}, "
            f"t_max={int(self.time.max()) if self.n_nodes else 0})"
        )


def affine_by_index(
    graph: DataflowGraph,
    place_fn: Callable[[tuple[int, ...]], tuple[int, int]],
    time_fn: Callable[[tuple[int, ...]], int],
    *,
    input_offchip: bool = True,
    input_port: tuple[int, int] = (0, 0),
    fallback_place: tuple[int, int] = (0, 0),
) -> Mapping:
    """Build a mapping from per-index affine rules — the paper's notation.

    ``place_fn(idx)`` and ``time_fn(idx)`` are applied to every node that
    carries an index (e.g. the ``Map H(i,j) at i % P time (i//P)*N + j``
    example).  Inputs are placed off-chip at ``input_port`` available at
    time 0 when ``input_offchip`` (the DRAM layer); index-less nodes
    (constants, glue) go to ``fallback_place`` at time 0 — run the result
    through the legality checker, or use the default mapper for a
    guaranteed-legal schedule.
    """
    m = Mapping(graph.n_nodes)
    for nid in range(graph.n_nodes):
        idx = graph.index[nid]
        if graph.ops[nid] == "input" and input_offchip:
            m.set(nid, input_port, 0, offchip=True)
        elif idx is not None:
            m.set(nid, tuple(map(int, place_fn(idx))), int(time_fn(idx)))
        else:
            m.set(nid, fallback_place, 0)
    return m
