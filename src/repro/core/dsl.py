"""A tiny language for Function-and-Mapping programs — the paper's notation.

Section 3 closes with research questions, the first of which is: "What
languages best express functions and mapping and facilitate abstraction
and modular composition of programs?"  This module is a minimal answer
shaped exactly like the paper's own code fragment::

    Forall i, j in (0:N-1, 0:N-1)
      H(i,j) = min(H(i-1, j-1) + f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+I, 0);

    Map H(i,j) at i % P  time floor(i/P)*N + j

Grammar (case-insensitive keywords; ``#`` or ``//`` start comments)::

    program   := (param | input | boundary | forall | map)*
    param     := "param" NAME "=" expr
    input     := "input" NAME "[" expr ("," expr)* "]"
    boundary  := "boundary" NAME "=" expr          # value outside the domain
    forall    := "forall" NAME ("," NAME)* "in" "(" range ("," range)* ")"
                 NAME "(" idx ("," idx)* ")" "=" expr ";"?
    range     := expr ":" expr                      # inclusive bounds
    map       := "map" NAME "(" NAME ("," NAME)* ")"
                 "at" expr ("," expr)?              # place (x[, y])
                 "time" expr
    expr      := arithmetic over + - * / % and calls:
                 min(...), max(...), floor(a / b), eq(a, b), ne(a, b),
                 select(c, a, b), abs(a)
                 atoms: NUMBER, parameter, loop index, INPUT[expr, ...],
                 TENSOR(expr, ...), "(" expr ")"

Semantics
---------
``compile_program(source, params)`` elaborates every ``forall`` over its
(parameter-sized) domain into a :class:`~repro.core.function.DataflowGraph`
node per element.  References to *earlier* elements of the same (or a
previously defined) tensor become dataflow edges; references outside the
domain become the tensor's ``boundary`` constant (default 0).  Recurrences
must reference lexicographically earlier elements (row-major), which is
the standard elaboration order for DP-style ``Forall``s and holds for the
paper's example.  Each ``map`` clause compiles to place/time closures that
:meth:`CompiledProgram.build_mapping` applies per element, with inputs
off-chip and boundary constants co-located with their first consumer.

Index expressions inside tensor/input references and mapping clauses are
evaluated with Python integer arithmetic (``/`` is floor division there,
matching the paper's ``floor(i/P)``); *value* expressions compile to
dataflow ops.  Mapping-clause expressions may use the element's indices
and any parameter.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping as TMapping

from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping

__all__ = ["DslError", "CompiledProgram", "compile_program", "PAPER_EXAMPLE"]


class DslError(Exception):
    """Syntax or elaboration error, with line information where possible."""


# --------------------------------------------------------------------------- #
# lexer
# --------------------------------------------------------------------------- #

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*|//[^\n]*)
  | (?P<num>\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op>[(),:;=\[\]+\-*/%])
    """,
    re.VERBOSE,
)

KEYWORDS = {"forall", "in", "map", "at", "time", "param", "input", "boundary"}


@dataclass(frozen=True)
class Token:
    kind: str  # "num" | "name" | "kw" | "op"
    text: str
    line: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise DslError(f"line {line}: cannot tokenize {source[pos:pos+10]!r}")
        pos = m.end()
        text = m.group(0)
        line += text.count("\n")
        if m.lastgroup in ("ws", "comment"):
            continue
        kind = m.lastgroup
        if kind == "name" and text.lower() in KEYWORDS:
            tokens.append(Token("kw", text.lower(), line))
        else:
            tokens.append(Token(kind, text, line))  # type: ignore[arg-type]
    return tokens


# --------------------------------------------------------------------------- #
# AST
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Num:
    value: int


@dataclass(frozen=True)
class Var:
    name: str  # loop index or parameter


@dataclass(frozen=True)
class BinOp:
    op: str
    lhs: "Expr"
    rhs: "Expr"


@dataclass(frozen=True)
class Call:
    fn: str
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class InputRef:
    name: str
    indices: tuple["Expr", ...]


@dataclass(frozen=True)
class TensorRef:
    name: str
    indices: tuple["Expr", ...]


Expr = Num | Var | BinOp | Call | InputRef | TensorRef


@dataclass(frozen=True)
class ForallDecl:
    loop_vars: tuple[str, ...]
    ranges: tuple[tuple[Expr, Expr], ...]
    tensor: str
    tensor_indices: tuple[str, ...]
    rhs: Expr
    line: int


@dataclass(frozen=True)
class MapDecl:
    tensor: str
    index_names: tuple[str, ...]
    place: tuple[Expr, ...]
    time: Expr
    line: int


@dataclass
class ProgramAst:
    params: dict[str, Expr] = field(default_factory=dict)
    inputs: dict[str, tuple[Expr, ...]] = field(default_factory=dict)
    boundaries: dict[str, Expr] = field(default_factory=dict)
    foralls: list[ForallDecl] = field(default_factory=list)
    maps: dict[str, MapDecl] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# parser (recursive descent)
# --------------------------------------------------------------------------- #


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------- #

    def peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise DslError("unexpected end of program")
        self.pos += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = f"{kind} {text!r}" if text else kind
            raise DslError(f"line {tok.line}: expected {want}, got {tok.text!r}")
        return tok

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self.peek()
        if tok and tok.kind == kind and (text is None or tok.text == text):
            self.pos += 1
            return tok
        return None

    # -- grammar -------------------------------------------------------- #

    def parse_program(self) -> ProgramAst:
        ast = ProgramAst()
        while (tok := self.peek()) is not None:
            if tok.kind != "kw":
                raise DslError(
                    f"line {tok.line}: expected a declaration, got {tok.text!r}"
                )
            if tok.text == "param":
                self.next()
                name = self.expect("name").text
                self.expect("op", "=")
                ast.params[name] = self.parse_expr()
            elif tok.text == "input":
                self.next()
                name = self.expect("name").text
                self.expect("op", "[")
                dims = [self.parse_expr()]
                while self.accept("op", ","):
                    dims.append(self.parse_expr())
                self.expect("op", "]")
                ast.inputs[name] = tuple(dims)
            elif tok.text == "boundary":
                self.next()
                name = self.expect("name").text
                self.expect("op", "=")
                ast.boundaries[name] = self.parse_expr()
            elif tok.text == "forall":
                ast.foralls.append(self.parse_forall())
            elif tok.text == "map":
                decl = self.parse_map()
                if decl.tensor in ast.maps:
                    raise DslError(
                        f"line {decl.line}: duplicate map for {decl.tensor}"
                    )
                ast.maps[decl.tensor] = decl
            else:
                raise DslError(f"line {tok.line}: unexpected keyword {tok.text!r}")
        return ast

    def parse_forall(self) -> ForallDecl:
        start = self.expect("kw", "forall")
        loop_vars = [self.expect("name").text]
        while self.accept("op", ","):
            loop_vars.append(self.expect("name").text)
        self.expect("kw", "in")
        self.expect("op", "(")
        ranges = [self.parse_range()]
        while self.accept("op", ","):
            ranges.append(self.parse_range())
        self.expect("op", ")")
        if len(ranges) != len(loop_vars):
            raise DslError(
                f"line {start.line}: {len(loop_vars)} loop variables but "
                f"{len(ranges)} ranges"
            )
        tensor = self.expect("name").text
        self.expect("op", "(")
        idx = [self.expect("name").text]
        while self.accept("op", ","):
            idx.append(self.expect("name").text)
        self.expect("op", ")")
        if tuple(idx) != tuple(loop_vars):
            raise DslError(
                f"line {start.line}: definition indices {idx} must match the "
                f"loop variables {loop_vars}"
            )
        self.expect("op", "=")
        rhs = self.parse_expr()
        self.accept("op", ";")
        return ForallDecl(
            tuple(loop_vars), tuple(ranges), tensor, tuple(idx), rhs, start.line
        )

    def parse_range(self) -> tuple[Expr, Expr]:
        lo = self.parse_expr()
        self.expect("op", ":")
        hi = self.parse_expr()
        return (lo, hi)

    def parse_map(self) -> MapDecl:
        start = self.expect("kw", "map")
        tensor = self.expect("name").text
        self.expect("op", "(")
        names = [self.expect("name").text]
        while self.accept("op", ","):
            names.append(self.expect("name").text)
        self.expect("op", ")")
        self.expect("kw", "at")
        place = [self.parse_expr()]
        if self.accept("op", ","):
            place.append(self.parse_expr())
        time_kw = self.expect("kw", "time")
        time = self.parse_expr()
        return MapDecl(tensor, tuple(names), tuple(place), time, start.line)

    # expression precedence: (+ -) < (* / %) < unary - < atoms
    def parse_expr(self) -> Expr:
        node = self.parse_term()
        while (tok := self.peek()) and tok.kind == "op" and tok.text in "+-":
            self.next()
            node = BinOp(tok.text, node, self.parse_term())
        return node

    def parse_term(self) -> Expr:
        node = self.parse_unary()
        while (tok := self.peek()) and tok.kind == "op" and tok.text in "*/%":
            self.next()
            node = BinOp(tok.text, node, self.parse_unary())
        return node

    def parse_unary(self) -> Expr:
        if self.accept("op", "-"):
            return BinOp("-", Num(0), self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        tok = self.next()
        if tok.kind == "num":
            return Num(int(tok.text))
        if tok.kind == "op" and tok.text == "(":
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        if tok.kind == "name":
            name = tok.text
            if self.accept("op", "("):
                args = [self.parse_expr()]
                while self.accept("op", ","):
                    args.append(self.parse_expr())
                self.expect("op", ")")
                if name.lower() in _BUILTINS:
                    return Call(name.lower(), tuple(args))
                return TensorRef(name, tuple(args))
            if self.accept("op", "["):
                args = [self.parse_expr()]
                while self.accept("op", ","):
                    args.append(self.parse_expr())
                self.expect("op", "]")
                return InputRef(name, tuple(args))
            return Var(name)
        raise DslError(f"line {tok.line}: unexpected token {tok.text!r}")


_BUILTINS = {"min", "max", "floor", "eq", "ne", "select", "abs"}


# --------------------------------------------------------------------------- #
# elaboration
# --------------------------------------------------------------------------- #


def _eval_index(expr: Expr, env: TMapping[str, int]) -> int:
    """Integer evaluation for index/range/mapping expressions."""
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Var):
        if expr.name not in env:
            raise DslError(f"unknown name {expr.name!r} in index expression")
        return int(env[expr.name])
    if isinstance(expr, BinOp):
        a, b = _eval_index(expr.lhs, env), _eval_index(expr.rhs, env)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        if expr.op == "/":
            if b == 0:
                raise DslError("division by zero in index expression")
            return a // b
        if expr.op == "%":
            if b == 0:
                raise DslError("modulo by zero in index expression")
            return a % b
    if isinstance(expr, Call):
        args = [_eval_index(a, env) for a in expr.args]
        if expr.fn == "min":
            return min(args)
        if expr.fn == "max":
            return max(args)
        if expr.fn == "abs":
            return abs(args[0])
        if expr.fn == "floor":
            return args[0]  # floor(a / b) already floor-divided by "/"
        raise DslError(f"{expr.fn}() is not usable in index expressions")
    raise DslError(f"{type(expr).__name__} not allowed in index expressions")


@dataclass
class CompiledProgram:
    """The elaborated program: graph + per-tensor mapping closures."""

    graph: DataflowGraph
    ast: ProgramAst
    params: dict[str, int]
    #: (tensor, index tuple) -> node id for every defined element
    elements: dict[tuple[str, tuple[int, ...]], int]
    #: tensor -> domain extents
    domains: dict[str, tuple[tuple[int, int], ...]]

    def cell_cycles(self, tensor: str) -> int:
        """PE cycles one element's compute takes (ops per cell, maximized
        over the tensor's domain).

        The paper maps one *element* per (place, time); DSL elaboration
        produces several primitive ops per element, so the time axis of a
        map clause is scaled by this factor.
        """
        counts: dict[tuple[int, ...], int] = {}
        g = self.graph
        for nid in range(g.n_nodes):
            if g.group[nid] == tensor and g.is_compute(nid):
                idx = g.index[nid]
                if idx is not None:
                    counts[idx] = counts.get(idx, 0) + 1
        return max(counts.values(), default=1)

    def build_mapping(
        self,
        grid: GridSpec,
        *,
        input_port: tuple[int, int] = (0, 0),
        inputs_offchip: bool = True,
    ) -> Mapping:
        """Apply the program's ``map`` clauses.

        Each element's primitive ops share the declared place and occupy
        consecutive cycles starting at ``time(idx) * cell_cycles`` (the map
        clause's time unit is *one element*, as in the paper; elaborated
        ops are finer-grained, so the axis is scaled uniformly — relative
        schedules, and hence legality structure, are preserved).  Inputs go
        off-chip at ``input_port`` by default; with
        ``inputs_offchip=False`` each input element is pre-staged on chip
        at its first consumer's place (available at t=0).  Boundary
        constants are co-located with their consumer so they never travel.
        Raises :class:`DslError` for tensors without a map clause.
        """
        g = self.graph
        unmapped = {t for t in self.domains if t not in self.ast.maps}
        if unmapped:
            raise DslError(f"no map clause for tensor(s): {sorted(unmapped)}")
        mapping = Mapping(g.n_nodes)
        scale = {t: self.cell_cycles(t) for t in self.domains}

        # group every compute node by (tensor, element index); id order is
        # intra-cell dependency order by construction
        cell_nodes: dict[tuple[str, tuple[int, ...]], list[int]] = {}
        for nid in range(g.n_nodes):
            grp, idx = g.group[nid], g.index[nid]
            if grp in self.domains and idx is not None and g.is_compute(nid):
                cell_nodes.setdefault((grp, idx), []).append(nid)

        def clause_place_time(tensor: str, idx: tuple[int, ...]) -> tuple[tuple[int, int], int]:
            decl = self.ast.maps[tensor]
            if len(decl.index_names) != len(idx):
                raise DslError(
                    f"map for {tensor} names {len(decl.index_names)} indices, "
                    f"tensor has {len(idx)}"
                )
            env = dict(self.params)
            env.update(zip(decl.index_names, idx))
            px = _eval_index(decl.place[0], env)
            py = _eval_index(decl.place[1], env) if len(decl.place) > 1 else 0
            t0 = _eval_index(decl.time, env) * scale[tensor]
            return (px, py), t0

        for (tensor, idx), nodes in cell_nodes.items():
            place, t0 = clause_place_time(tensor, idx)
            for k, nid in enumerate(nodes):
                mapping.set(nid, place, t0 + k)

        # elements that folded to constants (no compute nodes) still obey
        # their clause — the value has to live somewhere
        element_nodes = set(self.elements.values())
        for (tensor, idx), nid in self.elements.items():
            if not g.is_compute(nid):
                place, t0 = clause_place_time(tensor, idx)
                mapping.set(nid, place, t0)

        # inputs and non-element boundary constants
        cons = g.consumers()
        for nid in range(g.n_nodes):
            op = g.ops[nid]
            if op == "input":
                users = cons[nid]
                if inputs_offchip or not users:
                    mapping.set(nid, input_port, 0, offchip=True)
                else:
                    first = users[0]
                    mapping.set(
                        nid,
                        (int(mapping.x[first]), int(mapping.y[first])),
                        0,
                    )
            elif op == "const" and nid not in element_nodes:
                users = cons[nid]
                if users:
                    first = users[0]
                    mapping.set(
                        nid,
                        (int(mapping.x[first]), int(mapping.y[first])),
                        0,
                    )
        return mapping

    def element(self, tensor: str, *idx: int) -> int:
        """Node id of one tensor element."""
        key = (tensor, tuple(idx))
        if key not in self.elements:
            raise KeyError(f"{tensor}{idx} is not a defined element")
        return self.elements[key]


class _Elaborator:
    def __init__(self, ast: ProgramAst, params: dict[str, int]) -> None:
        self.ast = ast
        self.params = dict(params)
        for name, expr in ast.params.items():
            if name not in self.params:
                self.params[name] = _eval_index(expr, self.params)
        self.graph = DataflowGraph()
        self.elements: dict[tuple[str, tuple[int, ...]], int] = {}
        self.domains: dict[str, tuple[tuple[int, int], ...]] = {}
        self.input_nodes: dict[tuple[str, tuple[int, ...]], int] = {}
        self.input_dims: dict[str, tuple[int, ...]] = {
            name: tuple(_eval_index(d, self.params) for d in dims)
            for name, dims in ast.inputs.items()
        }
        self.const_cache: dict[tuple[Any, tuple[int, ...] | None], int] = {}

    def run(self) -> CompiledProgram:
        for decl in self.ast.foralls:
            self._elaborate_forall(decl)
        # outputs: every element of the last-defined tensor
        if self.ast.foralls:
            last = self.ast.foralls[-1].tensor
            for (tensor, idx), nid in self.elements.items():
                if tensor == last:
                    self.graph.mark_output(nid, (tensor, *idx))
        return CompiledProgram(
            graph=self.graph,
            ast=self.ast,
            params=self.params,
            elements=self.elements,
            domains=self.domains,
        )

    # ------------------------------------------------------------------ #

    def _const(self, value: int, index: tuple[int, ...] | None) -> int:
        key = (value, index)
        if key not in self.const_cache:
            self.const_cache[key] = self.graph.const(value, index=index)
        return self.const_cache[key]

    def _input_node(self, name: str, idx: tuple[int, ...]) -> int:
        dims = self.input_dims.get(name)
        if dims is None:
            raise DslError(f"undeclared input {name!r}")
        if len(idx) != len(dims):
            raise DslError(f"input {name} has {len(dims)} dims, got index {idx}")
        for k, d in zip(idx, dims):
            if not (0 <= k < d):
                raise DslError(f"input reference {name}{list(idx)} out of bounds")
        key = (name, idx)
        if key not in self.input_nodes:
            self.input_nodes[key] = self.graph.input(name, idx)
        return self.input_nodes[key]

    def _elaborate_forall(self, decl: ForallDecl) -> None:
        if decl.tensor in self.domains:
            raise DslError(f"line {decl.line}: tensor {decl.tensor} redefined")
        bounds = tuple(
            (_eval_index(lo, self.params), _eval_index(hi, self.params))
            for lo, hi in decl.ranges
        )
        for lo, hi in bounds:
            if hi < lo:
                raise DslError(f"line {decl.line}: empty range {lo}:{hi}")
        self.domains[decl.tensor] = bounds

        def domain() -> Iterator[tuple[int, ...]]:
            def rec(k: int, prefix: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
                if k == len(bounds):
                    yield prefix
                    return
                lo, hi = bounds[k]
                for v in range(lo, hi + 1):
                    yield from rec(k + 1, prefix + (v,))

            yield from rec(0, ())

        boundary = self.ast.boundaries.get(decl.tensor, Num(0))
        for idx in domain():
            env = dict(self.params)
            env.update(zip(decl.loop_vars, idx))
            nid = self._compile_expr(decl.rhs, env, decl, idx, boundary)
            self.elements[(decl.tensor, idx)] = nid

    def _tensor_ref(
        self,
        name: str,
        idx: tuple[int, ...],
        decl: ForallDecl,
        at: tuple[int, ...],
        boundary: Expr,
    ) -> int:
        bounds = self.domains.get(name)
        if bounds is None:
            raise DslError(
                f"line {decl.line}: reference to undefined tensor {name!r}"
            )
        if len(idx) != len(bounds):
            raise DslError(
                f"line {decl.line}: {name} has {len(bounds)} dims, got {idx}"
            )
        in_range = all(lo <= k <= hi for k, (lo, hi) in zip(idx, bounds))
        if not in_range:
            bval = _eval_index(boundary if name == decl.tensor
                               else self.ast.boundaries.get(name, Num(0)),
                               dict(self.params))
            return self._const(bval, at)
        key = (name, idx)
        if key not in self.elements:
            raise DslError(
                f"line {decl.line}: {name}{list(idx)} referenced before "
                f"definition at {list(at)} — recurrences must reference "
                "lexicographically earlier elements"
            )
        return self.elements[key]

    def _compile_expr(
        self,
        expr: Expr,
        env: dict[str, int],
        decl: ForallDecl,
        at: tuple[int, ...],
        boundary: Expr,
    ) -> int:
        g = self.graph
        # constant-fold anything expressible in pure index arithmetic
        # (numbers, params, loop vars, + - * / % min max abs) — this is what
        # makes `i % 2` etc. usable inside value expressions
        try:
            return self._const(_eval_index(expr, env), at)
        except DslError:
            pass
        if isinstance(expr, Num):
            return self._const(expr.value, at)
        if isinstance(expr, Var):
            raise DslError(f"line {decl.line}: unknown name {expr.name!r}")
        if isinstance(expr, InputRef):
            idx = tuple(_eval_index(e, env) for e in expr.indices)
            return self._input_node(expr.name, idx)
        if isinstance(expr, TensorRef):
            idx = tuple(_eval_index(e, env) for e in expr.indices)
            return self._tensor_ref(expr.name, idx, decl, at, boundary)
        if isinstance(expr, BinOp):
            lhs = self._compile_expr(expr.lhs, env, decl, at, boundary)
            rhs = self._compile_expr(expr.rhs, env, decl, at, boundary)
            op = {"+": "+", "-": "-", "*": "*", "/": "/"}.get(expr.op)
            if op is None:
                raise DslError(
                    f"line {decl.line}: operator {expr.op!r} not supported in "
                    "value expressions"
                )
            return g.op(op, lhs, rhs, index=at, group=decl.tensor)
        if isinstance(expr, Call):
            if expr.fn == "floor":
                # floor(a / b): "/" already compiles to integer division
                return self._compile_expr(expr.args[0], env, decl, at, boundary)
            args = [
                self._compile_expr(a, env, decl, at, boundary) for a in expr.args
            ]
            if expr.fn in ("min", "max"):
                if len(args) < 2:
                    raise DslError(f"line {decl.line}: {expr.fn} needs >= 2 args")
                acc = args[0]
                for a in args[1:]:
                    acc = g.op(expr.fn, acc, a, index=at, group=decl.tensor)
                return acc
            if expr.fn == "eq":
                return g.op("eq", args[0], args[1], index=at, group=decl.tensor)
            if expr.fn == "ne":
                e = g.op("eq", args[0], args[1], index=at, group=decl.tensor)
                one = self._const(1, at)
                return g.op("-", one, e, index=at, group=decl.tensor)
            if expr.fn == "select":
                if len(args) != 3:
                    raise DslError(f"line {decl.line}: select needs 3 args")
                return g.op("select", args[0], args[1], args[2], index=at,
                            group=decl.tensor)
            if expr.fn == "abs":
                neg = g.op("neg", args[0], index=at, group=decl.tensor)
                return g.op("max", args[0], neg, index=at, group=decl.tensor)
            raise DslError(f"line {decl.line}: unknown function {expr.fn!r}")
        raise DslError(f"line {decl.line}: cannot compile {expr!r}")


def compile_program(
    source: str, params: TMapping[str, int] | None = None
) -> CompiledProgram:
    """Parse and elaborate a DSL program into graph + mapping closures.

    ``params`` supplies (or overrides) ``param`` declarations — e.g.
    ``compile_program(PAPER_EXAMPLE, {"N": 16, "P": 4})``.
    """
    ast = _Parser(tokenize(source)).parse_program()
    return _Elaborator(ast, dict(params or {})).run()


#: The paper's Section-3 fragment, expressed in the DSL.  ``f`` is unit
#: mismatch cost (ne); D and I are parameters defaulting to 1; the map
#: clause is the paper's, verbatim — which the legality checker rejects
#: (see bench C8); pass your own skewed clause for a legal schedule.
PAPER_EXAMPLE = """
param D = 1
param I = 1
input R[N]
input Q[N]

forall i, j in (0:N-1, 0:N-1)
  H(i, j) = min(H(i-1, j-1) + ne(R[i], Q[j]), H(i-1, j) + D, H(i, j-1) + I, 0);

map H(i, j) at i % P  time floor(i / P) * N + j
"""
