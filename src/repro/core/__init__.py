"""The Function-and-Mapping (F&M) model — the paper's core proposal.

Dally's panel statement (Section 3) proposes replacing "centralized serial
program execution and the RAM or PRAM model" with a model that separates:

*  the **function** — "a functional program that describes how each element
   of a computation is computed from earlier elements.  No ordering — other
   than that imposed by data dependencies — is specified" — here,
   :class:`~repro.core.function.DataflowGraph`;
*  the **mapping** — "when and where each element is computed and where
   elements reside from definition to last use", with time discretized
   into cycles and location onto a grid — here,
   :class:`~repro.core.mapping.Mapping`.

The rest of the subpackage supplies everything the statement promises of
the model: legality checking (causality, transit time, storage bounds),
cost evaluation (time, energy, footprint — "communication ... is made
explicit, to the granularity of the grid"), common idioms (map, reduce,
scan, gather, scatter, shuffle), modular composition with remapping,
a default mapper, mapping-space search, recomputation-instead-of-
communication, and mechanical lowering to a hardware description.
"""

from repro.core.function import DataflowGraph, OP_TABLE
from repro.core.mapping import Mapping, GridSpec
from repro.core.legality import check_legality, LegalityReport
from repro.core.cost import evaluate_cost, CostReport
from repro.core.default_mapper import default_mapping

__all__ = [
    "DataflowGraph",
    "OP_TABLE",
    "Mapping",
    "GridSpec",
    "check_legality",
    "LegalityReport",
    "evaluate_cost",
    "CostReport",
    "default_mapping",
]
