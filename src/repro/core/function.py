"""The *function* half of Function-and-Mapping: pure dataflow graphs.

Paper, Section 3: "The function can be specified by a functional program
that describes how each element of a computation is computed from earlier
elements.  No ordering - other than that imposed by data dependencies - is
specified.  By its nature, a definition exposes all available parallelism
in the computation."

A :class:`DataflowGraph` is exactly that: a DAG of *element computations*.
Nodes are either external **inputs**, **constants**, or **operations**
drawn from :data:`OP_TABLE`.  Every node may carry a logical *index* (e.g.
``(i, j)`` for the element H(i, j) it computes) which mapping helpers use
to assign places and times, and a *group* label (e.g. ``"H"``) naming the
logical tensor it belongs to.

The graph knows nothing about places, times, processors, or caches — that
is the mapping's job.  It can, however, be **evaluated** (to verify any
mapped execution against the mathematical definition) and **analyzed**
(inherent work and depth — the parallelism the function "exposes").

Storage is struct-of-arrays (parallel Python lists, converted to numpy on
demand) because graphs reach 10^5+ nodes in the FFT and edit-distance
benches.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterator, Mapping as TMapping

import numpy as np

__all__ = ["DataflowGraph", "OP_TABLE", "OP_ENERGY_FACTOR", "FunctionError", "forall"]


class FunctionError(Exception):
    """Malformed dataflow graph or evaluation failure."""


def _safe_div(a: Any, b: Any) -> Any:
    if b == 0:
        raise FunctionError("division by zero in dataflow evaluation")
    if isinstance(a, int) and isinstance(b, int):
        return int(a / b)
    return a / b


#: Operation semantics: name -> (arity, callable).
OP_TABLE: dict[str, tuple[int, Callable[..., Any]]] = {
    "+": (2, lambda a, b: a + b),
    "-": (2, lambda a, b: a - b),
    "*": (2, lambda a, b: a * b),
    "/": (2, _safe_div),
    "min": (2, min),
    "max": (2, max),
    "neg": (1, lambda a: -a),
    "copy": (1, lambda a: a),
    "lt": (2, lambda a, b: 1 if a < b else 0),
    "eq": (2, lambda a, b: 1 if a == b else 0),
    "select": (3, lambda c, a, b: a if c else b),
}

#: Relative energy of each op in units of one word-wide add.  Multipliers
#: are the textbook full-adder-array ratios; inputs/constants cost nothing
#: to "compute" (their cost is transport, which the mapping pays for).
OP_ENERGY_FACTOR: dict[str, float] = {
    "+": 1.0,
    "-": 1.0,
    "*": 4.0,
    "/": 8.0,
    "min": 1.0,
    "max": 1.0,
    "neg": 0.5,
    "copy": 0.0,
    "lt": 1.0,
    "eq": 1.0,
    "select": 0.5,
    "input": 0.0,
    "const": 0.0,
}


def forall(*extents: int) -> Iterator[tuple[int, ...]]:
    """Iterate an index space, row-major: ``forall(N, M)`` yields (i, j).

    Mirrors the paper's ``Forall i, j in (0:N-1, 0:N-1)`` syntax.
    """
    if any(e < 0 for e in extents):
        raise ValueError("extents must be non-negative")
    return np.ndindex(*extents)  # type: ignore[return-value]


class DataflowGraph:
    """A functional (dataflow) program: the F&M *function*.

    Construction API::

        g = DataflowGraph()
        r = g.input("R", (i,))          # external input element
        q = g.input("Q", (j,))
        d = g.const(2)
        s = g.op("+", r, q, index=(i, j), group="S")
        g.mark_output(s, ("S", (i, j)))

    Node ids are dense ints in creation order (which is *one* topological
    order, since operands must exist before use — the graph is acyclic by
    construction).
    """

    def __init__(self) -> None:
        self.ops: list[str] = []
        self.args: list[tuple[int, ...]] = []
        self.payload: list[Any] = []          # const value / input key
        self.index: list[tuple[int, ...] | None] = []
        self.group: list[str | None] = []
        self.outputs: dict[Any, int] = {}      # label -> node id
        self._consumers_dirty = True
        self._consumers: list[list[int]] | None = None
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _add(
        self,
        op: str,
        args: tuple[int, ...],
        payload: Any = None,
        index: tuple[int, ...] | None = None,
        group: str | None = None,
    ) -> int:
        nid = len(self.ops)
        for a in args:
            if not (0 <= a < nid):
                raise FunctionError(
                    f"operand {a} of new node {nid} does not exist yet "
                    "(graphs are built in dependency order)"
                )
        self.ops.append(op)
        self.args.append(args)
        self.payload.append(payload)
        self.index.append(index)
        self.group.append(group)
        self._consumers_dirty = True
        self._fingerprint = None
        return nid

    def input(
        self,
        name: str,
        index: tuple[int, ...] | int | None = None,
        group: str | None = None,
    ) -> int:
        """An external input element, identified by ``(name, index)``."""
        if isinstance(index, int):
            index = (index,)
        return self._add("input", (), payload=(name, index), index=index,
                         group=group or name)

    def const(self, value: Any, index: tuple[int, ...] | None = None) -> int:
        """A literal constant (materialized wherever the mapping wants it)."""
        return self._add("const", (), payload=value, index=index, group="const")

    def op(
        self,
        name: str,
        *args: int,
        index: tuple[int, ...] | None = None,
        group: str | None = None,
    ) -> int:
        """An operation node applying ``OP_TABLE[name]`` to operand nodes."""
        if name not in OP_TABLE:
            raise FunctionError(f"unknown op {name!r}; known: {sorted(OP_TABLE)}")
        arity, _fn = OP_TABLE[name]
        if len(args) != arity:
            raise FunctionError(f"op {name!r} takes {arity} operands, got {len(args)}")
        return self._add(name, tuple(args), index=index, group=group)

    def mark_output(self, node: int, label: Any) -> None:
        """Name ``node`` as a program output."""
        if not (0 <= node < self.n_nodes):
            raise FunctionError(f"no node {node}")
        if label in self.outputs:
            raise FunctionError(f"duplicate output label {label!r}")
        self.outputs[label] = node
        self._fingerprint = None

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    @property
    def n_nodes(self) -> int:
        return len(self.ops)

    def is_compute(self, nid: int) -> bool:
        """Does this node consume a processor cycle? (inputs/consts don't.)"""
        return self.ops[nid] not in ("input", "const")

    def compute_nodes(self) -> list[int]:
        return [i for i in range(self.n_nodes) if self.is_compute(i)]

    def input_nodes(self) -> list[int]:
        return [i for i in range(self.n_nodes) if self.ops[i] == "input"]

    def fingerprint(self) -> str:
        """Content address of the whole graph (ops, operands, payloads,
        indices, groups, outputs) — the "function hash" half of the search
        memoization key.

        Cached and invalidated on mutation, so repeated searcher calls pay
        one hash per *distinct* graph state, not per cost evaluation.
        Payloads are hashed through ``repr``; the construction API only
        admits const values and ``(name, index)`` input keys, for which
        ``repr`` equality tracks value equality.
        """
        if self._fingerprint is None:
            import hashlib

            h = hashlib.sha256()
            for nid in range(self.n_nodes):
                h.update(
                    repr(
                        (
                            self.ops[nid],
                            self.args[nid],
                            self.payload[nid],
                            self.index[nid],
                            self.group[nid],
                        )
                    ).encode()
                )
            h.update(repr(sorted(self.outputs.items(), key=repr)).encode())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def consumers(self) -> list[list[int]]:
        """Node -> list of nodes that read it (cached)."""
        if self._consumers_dirty or self._consumers is None:
            cons: list[list[int]] = [[] for _ in range(self.n_nodes)]
            for v in range(self.n_nodes):
                for u in self.args[v]:
                    cons[u].append(v)
            self._consumers = cons
            self._consumers_dirty = False
        return self._consumers

    def edges(self) -> Iterator[tuple[int, int]]:
        """All dataflow edges (producer, consumer)."""
        for v in range(self.n_nodes):
            for u in self.args[v]:
                yield u, v

    @property
    def n_edges(self) -> int:
        return sum(len(a) for a in self.args)

    # ------------------------------------------------------------------ #
    # analysis: the parallelism the function exposes
    # ------------------------------------------------------------------ #

    def work(self) -> int:
        """Number of operation (compute) nodes — the function's work."""
        return sum(1 for i in range(self.n_nodes) if self.is_compute(i))

    def depth(self) -> int:
        """Longest chain of compute nodes — the function's inherent depth.

        This is the minimum-depth-parallel execution time the paper's
        mapping space bottoms out at.
        """
        n = self.n_nodes
        d = np.zeros(n, dtype=np.int64)
        for v in range(n):
            dur = 1 if self.is_compute(v) else 0
            best = 0
            for u in self.args[v]:
                if d[u] > best:
                    best = d[u]
            d[v] = best + dur
        return int(d.max()) if n else 0

    def parallelism(self) -> float:
        dep = self.depth()
        return self.work() / dep if dep else float("inf")

    # ------------------------------------------------------------------ #
    # evaluation (the mathematical meaning; used to verify mappings)
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        inputs: TMapping[str, TMapping[tuple[int, ...] | None, Any] | Callable[..., Any]]
        | None = None,
    ) -> dict[Any, Any]:
        """Evaluate the function; returns ``{output label: value}``.

        ``inputs`` maps each input name to either a dict from index to
        value or a callable applied to the index components.
        """
        inputs = inputs or {}
        values = self.evaluate_all(inputs)
        return {label: values[nid] for label, nid in self.outputs.items()}

    def _evaluation_order(self) -> range | list[int]:
        """Ids are a topo order for graphs built through the public API; a
        transformed graph (e.g. rematerialization) may contain forward
        operand references, in which case fall back to a Kahn order."""
        n = self.n_nodes
        if all(a < v for v in range(n) for a in self.args[v]):
            return range(n)
        indeg = [len(self.args[v]) for v in range(n)]
        consumers = self.consumers()
        stack = [v for v in range(n) if indeg[v] == 0]
        order: list[int] = []
        while stack:
            u = stack.pop()
            order.append(u)
            for v in consumers[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    stack.append(v)
        if len(order) != n:
            raise FunctionError("dataflow graph contains a cycle")
        return order

    def evaluate_all(
        self,
        inputs: TMapping[str, Any] | None = None,
    ) -> list[Any]:
        """Evaluate and return the value of *every* node, id-indexed."""
        inputs = inputs or {}
        values: list[Any] = [None] * self.n_nodes
        for nid in self._evaluation_order():
            op = self.ops[nid]
            if op == "const":
                values[nid] = self.payload[nid]
            elif op == "input":
                name, idx = self.payload[nid]
                if name not in inputs:
                    raise FunctionError(f"no binding for input {name!r}")
                src = inputs[name]
                if callable(src):
                    values[nid] = src(*idx) if idx is not None else src()
                else:
                    if idx not in src:
                        raise FunctionError(f"input {name!r} missing index {idx}")
                    values[nid] = src[idx]
            else:
                _arity, fn = OP_TABLE[op]
                values[nid] = fn(*(values[a] for a in self.args[nid]))
        return values

    # ------------------------------------------------------------------ #
    # composition: "functions compose as usual" (paper, Section 3)
    # ------------------------------------------------------------------ #

    def splice(
        self,
        other: "DataflowGraph",
        bindings: TMapping[tuple[str, tuple[int, ...] | None], int],
        output_prefix: str | None = None,
    ) -> dict[int, int]:
        """Inline ``other`` into this graph, wiring its inputs to nodes here.

        ``bindings`` maps ``(input name, index)`` of ``other`` to node ids
        of ``self``; unbound inputs of ``other`` are imported as fresh
        inputs of the composite.  ``other``'s outputs are re-marked here
        (optionally namespaced by ``output_prefix`` to avoid label
        clashes).  Returns ``{other node id: new node id}``.

        This is function-level composition — the mapping-level alignment
        story (remapping modules) lives in :mod:`repro.core.composition`.
        """
        idmap: dict[int, int] = {}
        for nid in range(other.n_nodes):
            op = other.ops[nid]
            if op == "input":
                name, idx = other.payload[nid]
                key = (name, idx)
                if key in bindings:
                    bound = bindings[key]
                    if not (0 <= bound < self.n_nodes):
                        raise FunctionError(
                            f"binding for {key} references unknown node {bound}"
                        )
                    idmap[nid] = bound
                else:
                    idmap[nid] = self._add(
                        "input", (), payload=(name, idx), index=idx,
                        group=other.group[nid],
                    )
            elif op == "const":
                idmap[nid] = self._add(
                    "const", (), payload=other.payload[nid],
                    index=other.index[nid], group=other.group[nid],
                )
            else:
                idmap[nid] = self._add(
                    op,
                    tuple(idmap[a] for a in other.args[nid]),
                    index=other.index[nid],
                    group=other.group[nid],
                )
        for label, nid in other.outputs.items():
            new_label = (output_prefix, label) if output_prefix else label
            self.mark_output(idmap[nid], new_label)
        return idmap

    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        return (
            f"DataflowGraph(nodes={self.n_nodes}, edges={self.n_edges}, "
            f"work={self.work()}, outputs={len(self.outputs)})"
        )
