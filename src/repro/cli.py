"""Console entry points (see ``[project.scripts]`` in pyproject.toml).

``repro-bench`` runs the claim benchmarks with the unified option set
from ``benchmarks/common.py`` — one flag surface instead of per-bench
conventions::

    repro-bench                      # every bench
    repro-bench -k c18 --seed 7      # one bench, custom seed
    repro-bench --workers 4 --out /tmp/bench-out

The options travel to ``benchmarks/conftest.py`` via ``REPRO_BENCH_*``
environment variables, so a plain ``pytest benchmarks/ --benchmark-only``
still works (with the defaults).

``repro-serve`` lives in :mod:`repro.serve.server`.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

__all__ = ["bench_main"]


def _find_benchmarks_dir(start: pathlib.Path) -> pathlib.Path | None:
    """The benchmarks/ tree ships with the repo, not the wheel: walk up
    from ``start`` looking for it (cwd-relative invocation)."""
    for candidate in (start, *start.parents):
        bench = candidate / "benchmarks"
        if (bench / "conftest.py").is_file():
            return bench
    return None


def bench_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the claim benchmarks (pytest-benchmark) with the "
        "unified --seed/--out/--json/--workers option set.",
    )
    parser.add_argument(
        "-k", dest="select", default=None,
        help="pytest -k expression selecting benches (e.g. 'c18 or c20')",
    )
    parser.add_argument(
        "--benchmarks-dir", type=pathlib.Path, default=None,
        help="path to the benchmarks/ tree (default: found from cwd)",
    )
    parser.add_argument(
        "--collect-only", action="store_true",
        help="list the selected benches without running them",
    )

    bench_dir = _find_benchmarks_dir(pathlib.Path.cwd())
    # the shared flags live next to the benches; attach them when found
    if bench_dir is not None:
        sys.path.insert(0, str(bench_dir))
    try:
        from common import add_bench_arguments, options_from_args, to_env
    except ImportError:
        print(
            "repro-bench: cannot find benchmarks/common.py — run from the "
            "repository (or pass --benchmarks-dir)",
            file=sys.stderr,
        )
        return 2
    add_bench_arguments(parser)
    args = parser.parse_args(argv)
    if args.benchmarks_dir is not None:
        bench_dir = args.benchmarks_dir
    if bench_dir is None or not (bench_dir / "conftest.py").is_file():
        print(
            f"repro-bench: no benchmarks/ tree at {bench_dir or pathlib.Path.cwd()}",
            file=sys.stderr,
        )
        return 2

    os.environ.update(to_env(options_from_args(args)))
    pytest_args = [str(bench_dir), "--benchmark-only", "-q", "-s"]
    if args.select:
        pytest_args += ["-k", args.select]
    if args.collect_only:
        pytest_args.append("--collect-only")

    import pytest

    return int(pytest.main(pytest_args))


if __name__ == "__main__":  # pragma: no cover - exercised as repro-bench
    sys.exit(bench_main())
