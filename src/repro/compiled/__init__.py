"""The compiled evaluation backend.

``repro`` keeps two implementations of every hot model evaluation:

* the **reference** path — per-node/per-edge Python loops, written to
  mirror the paper's prose (``core.cost``, ``core.default_mapper``,
  ``machines.cachesim``);
* the **compiled** path (this package) — a one-time lowering of
  (graph, grid) into a :class:`FlatProgram` of flat arrays and lookup
  tables, plus kernels that evaluate placements, schedules, and cache
  traces over those arrays.

The two are **bit-identical** — same floats, same ints, same error
messages — enforced by the differential oracle, golden fixtures, and
hypothesis properties.  The compiled path is therefore the default;
select explicitly via ``backend=`` on the :mod:`repro.api` verbs, an
explicit ``SearchEngine``, or the ``REPRO_BACKEND`` environment
variable (``reference`` | ``fast`` | ``compiled``).
"""

from __future__ import annotations

import os

from .cachekernel import flatten_trace, replay_into, replay_trace, trace_digest
from .kernels import (
    CompiledAnnealState,
    edge_energy_totals,
    evaluate_cost_compiled,
    schedule_compiled,
)
from .program import FlatProgram, clear_programs, get_program, places_signature

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "default_backend",
    "resolve_backend",
    "FlatProgram",
    "get_program",
    "clear_programs",
    "places_signature",
    "schedule_compiled",
    "edge_energy_totals",
    "evaluate_cost_compiled",
    "CompiledAnnealState",
    "flatten_trace",
    "trace_digest",
    "replay_into",
    "replay_trace",
]

BACKENDS = ("reference", "fast", "compiled")
DEFAULT_BACKEND = "compiled"

#: environment override consulted whenever no backend is passed explicitly
BACKEND_ENV_VAR = "REPRO_BACKEND"


def default_backend() -> str:
    """The session-wide default backend: ``$REPRO_BACKEND`` if set (and
    valid), else ``"compiled"``."""
    return resolve_backend(None)


def resolve_backend(backend: str | None) -> str:
    """Validate an explicit backend name, or resolve ``None`` through the
    environment to the default."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend
