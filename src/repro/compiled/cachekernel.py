"""Array-backed cache-trace replay.

The reference :func:`repro.machines.cachesim.run_trace` pays full Python
dispatch per access (tuple unpack, modulo, OrderedDict probe).  The
replayer here decomposes the same simulation along two independences the
reference semantics guarantee:

* **per-level streams** — level *i* only ever sees the accesses that
  missed at level *i-1*, and within one access the probe+install pair at
  a level is atomic; so the hierarchy factors into one pass per level
  over a filtered (kinds, addrs) stream, with the block/set arithmetic
  for the whole stream vectorized up front;
* **per-set independence** — LRU state at a level is per-set, so each
  set's accesses can be replayed contiguously (a stable argsort groups
  them without reordering within a set), and consecutive same-block
  accesses within a set collapse into one probe plus guaranteed hits.

The replay mutates *real* :class:`LRUCache` / :class:`CacheHierarchy`
objects — stats, resident sets, LRU order, and dirty bits all end
byte-identical to a per-access reference run (pinned by the parity and
hypothesis tests).

Dirty-bit rules reproduced exactly: hierarchies mark blocks dirty only
at level 0 (so deeper levels never write back, and ``mem_writebacks``
can only move on a single-level hierarchy); a standalone ``LRUCache``
dirties on any write.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.machines.cachesim import CacheHierarchy, LRUCache

__all__ = ["flatten_trace", "trace_digest", "replay_into", "replay_trace"]

#: packed record matching trace_fingerprint's byte stream: one kind byte
#: (b"r"/b"w") + the address as 8-byte little-endian unsigned.
_REC_DTYPE = np.dtype([("k", "S1"), ("a", "<u8")])
assert _REC_DTYPE.itemsize == 9, "record dtype must be packed"


def flatten_trace(trace) -> tuple[np.ndarray, np.ndarray]:
    """Materialize a ``('r'|'w', addr)`` trace into (kinds, addrs) arrays
    (kind 1 = write).  Accepts any iterable; generators are drained."""
    trace = trace if isinstance(trace, (list, tuple)) else list(trace)
    n = len(trace)
    kinds = np.zeros(n, dtype=np.uint8)
    addrs = np.zeros(n, dtype=np.int64)
    if n:
        ks, ads = zip(*trace)
        kinds[:] = [1 if k == "w" else 0 for k in ks]
        addrs[:] = ads
    return kinds, addrs


def trace_digest(kinds: np.ndarray, addrs: np.ndarray) -> str:
    """sha256 of the flattened trace — hex-identical to
    :func:`repro.machines.cachesim.trace_fingerprint` on the same trace,
    so memo entries are shared across backends."""
    if addrs.size and bool((addrs < 0).any()):
        # the reference fingerprint's int.to_bytes(signed=False) error
        raise OverflowError("can't convert negative int to unsigned")
    rec = np.empty(addrs.size, dtype=_REC_DTYPE)
    rec["k"] = b"r"
    rec["k"][kinds != 0] = b"w"
    rec["a"] = addrs.astype("<u8")
    return hashlib.sha256(rec.tobytes()).hexdigest()


def _replay_level(
    lvl: LRUCache, kinds: np.ndarray, addrs: np.ndarray, dirty_on_write: bool
) -> tuple[np.ndarray, int]:
    """Replay one level's probe stream against its real set state.

    Returns (miss mask over the stream, dirty-eviction count).  Stats are
    applied to ``lvl.stats``; set contents/order/dirty bits end exactly
    as the per-access loop leaves them.
    """
    n = int(addrs.size)
    miss_mask = np.zeros(n, dtype=bool)
    if n == 0:
        return miss_mask, 0
    blocks = addrs // lvl.block_words
    if lvl.n_sets == 1:
        segments = [np.arange(n)]
        seg_sets = [0]
    else:
        sets = blocks % lvl.n_sets
        order = np.argsort(sets, kind="stable")
        sorted_sets = sets[order]
        bounds = np.nonzero(sorted_sets[1:] != sorted_sets[:-1])[0] + 1
        segments = np.split(order, bounds)
        seg_sets = [int(sorted_sets[b]) for b in np.concatenate(([0], bounds))]
    hits = misses = rmiss = wmiss = wb = 0
    assoc = lvl.assoc
    for seg, set_idx in zip(segments, seg_sets):
        blks = blocks[seg].tolist()
        kin = kinds[seg].tolist()
        # prefix write counts: any-write-in-[a, b) is one subtraction
        wcount = [0] * (len(kin) + 1)
        acc = 0
        for j, k in enumerate(kin):
            acc += k
            wcount[j + 1] = acc
        sd = lvl._sets[set_idx]
        # run boundaries: consecutive same-block accesses to one set are
        # a single probe plus guaranteed hits with no recency change
        m = len(blks)
        a = 0
        while a < m:
            b_end = a + 1
            blk = blks[a]
            while b_end < m and blks[b_end] == blk:
                b_end += 1
            run_len = b_end - a
            if blk in sd:
                sd.move_to_end(blk)
                hits += run_len
                if dirty_on_write and wcount[b_end] - wcount[a]:
                    sd[blk] = True
            else:
                misses += 1
                if kin[a]:
                    wmiss += 1
                else:
                    rmiss += 1
                if len(sd) >= assoc:
                    _victim, dirty = sd.popitem(last=False)
                    if dirty:
                        wb += 1
                sd[blk] = bool(dirty_on_write and kin[a])
                hits += run_len - 1
                if dirty_on_write and wcount[b_end] - wcount[a + 1]:
                    sd[blk] = True
                miss_mask[seg[a]] = True
            a = b_end
    st = lvl.stats
    st.accesses += n
    st.hits += hits
    st.misses += misses
    st.read_misses += rmiss
    st.write_misses += wmiss
    st.writebacks += wb
    return miss_mask, wb


def replay_into(
    cache: LRUCache | CacheHierarchy, kinds: np.ndarray, addrs: np.ndarray
) -> LRUCache | CacheHierarchy:
    """Replay a flattened trace into a real cache or hierarchy — the
    array-backed equivalent of feeding it through ``run_trace``."""
    if isinstance(cache, CacheHierarchy):
        k, a = kinds, addrs
        last = len(cache.levels) - 1
        for i, lvl in enumerate(cache.levels):
            miss_mask, wb = _replay_level(lvl, k, a, dirty_on_write=(i == 0))
            if wb and i == last:
                cache.mem_writebacks += wb
            sel = np.nonzero(miss_mask)[0]
            k = k[sel]
            a = a[sel]
        cache.mem_accesses += int(a.size)
    else:
        if addrs.size and bool((addrs < 0).any()):
            first = int(addrs[np.nonzero(addrs < 0)[0][0]])
            raise ValueError(f"negative address {first}")
        _replay_level(cache, kinds, addrs, dirty_on_write=True)
    return cache


def replay_trace(spec, kinds: np.ndarray, addrs: np.ndarray) -> dict[str, object]:
    """Build the hierarchy described by ``spec`` (per-level LRUCache
    constructor tuples), replay, and return the ``run_trace_cached``
    result shape."""
    hierarchy = CacheHierarchy([LRUCache(*args) for args in spec])
    replay_into(hierarchy, kinds, addrs)
    out: dict[str, object] = {
        lvl.name: lvl.stats.as_dict() for lvl in hierarchy.levels
    }
    out["mem_accesses"] = hierarchy.mem_accesses
    out["mem_writebacks"] = hierarchy.mem_writebacks
    return out
