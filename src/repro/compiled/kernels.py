"""Array kernels over a :class:`FlatProgram`.

Each kernel is the compiled twin of one reference hot loop and is
bit-identical to it by construction (see the summation contract in
:mod:`repro.compiled.program`):

* :func:`schedule_compiled`     — ``default_mapper.schedule_asap`` /
  ``schedule_asap_fast``;
* :func:`edge_energy_totals`    — the edge loop of ``cost.evaluate_cost``
  for a whole placement at once;
* :func:`evaluate_cost_compiled`— ``cost.evaluate_cost`` end to end;
* :class:`CompiledAnnealState`  — ``cost.IncrementalEdgeEnergy`` with
  batched incident-edge re-pricing instead of per-edge Python re-summing.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost import CostReport
from repro.core.legality import compute_liveness
from repro.core.mapping import Mapping
from repro.obs import active as _obs_active

from .program import FlatProgram, KIND_COMPUTE, KIND_INPUT

__all__ = [
    "schedule_compiled",
    "edge_energy_totals",
    "evaluate_cost_compiled",
    "CompiledAnnealState",
]


def _as_list(v) -> list:
    return v.tolist() if isinstance(v, np.ndarray) else list(v)


def schedule_compiled(fp: FlatProgram, px, py) -> Mapping:
    """ASAP schedule for the placement ``(px[nid], py[nid])``.

    Bit-identical to ``schedule_asap(graph, grid, place_fn)`` with the
    default off-chip inputs at port (0, 0): same greedy id-order slot
    claims (path-compressed next-free chains per place), same transit
    rounding (via the program's distance table), same off-grid
    ``ValueError``.  ``px``/``py`` may be numpy arrays or plain lists.
    """
    n = fp.n_nodes
    mapping = Mapping(n)
    if n == 0:
        return mapping
    xs, ys = _as_list(px), _as_list(py)
    ts = [0] * n
    off = [False] * n
    avail = [0] * n
    width, height = fp.grid.width, fp.grid.height
    offchip_cyc = fp.offchip_cyc
    kinds = fp.op_kind
    args_list = fp.args_list
    transit = fp._transit
    next_free: dict[tuple[int, int], dict[int, int]] = {}
    for nid in range(n):
        kind = kinds[nid]
        if kind == KIND_INPUT:
            xs[nid] = 0
            ys[nid] = 0
            off[nid] = True
            continue
        if kind != KIND_COMPUTE:  # const: pinned at its place, t=0
            continue
        x, y = xs[nid], ys[nid]
        if not (0 <= x < width and 0 <= y < height):
            raise ValueError(f"placement put node {nid} at {(x, y)}, off-grid")
        earliest = 0
        for u in args_list[nid]:
            if off[u]:
                arrive = avail[u] + offchip_cyc
            else:
                d = abs(xs[u] - x) + abs(ys[u] - y)
                if d >= len(transit):
                    fp.transit_table(d)
                arrive = avail[u] + transit[d]
            if arrive > earliest:
                earliest = arrive
        parent = next_free.get((x, y))
        if parent is None:
            parent = next_free[(x, y)] = {}
        root = earliest
        path = []
        while root in parent:
            path.append(root)
            root = parent[root]
        for s in path:
            parent[s] = root
        parent[root] = root + 1
        ts[nid] = root
        avail[nid] = root + 1
    mapping.x[:] = xs
    mapping.y[:] = ys
    mapping.time[:] = ts
    mapping.offchip[:] = off
    return mapping


def edge_energy_totals(
    fp: FlatProgram, x: np.ndarray, y: np.ndarray, offchip: np.ndarray
) -> tuple[float, float, float]:
    """(local, onchip, offchip) edge-energy sums for a whole placement.

    Classification and distances are vectorized; each class total then
    reproduces the reference's sequential accumulation exactly — local
    and off-chip via repeated-add tables, on-chip by an in-order sum of
    table terms (the only order-dependent class).
    """
    if fp.n_edges == 0:
        return 0.0, 0.0, 0.0
    src, dst = fp.edge_src, fp.edge_dst
    off = offchip[src] | offchip[dst]
    d = np.abs(x[src] - x[dst]) + np.abs(y[src] - y[dst])
    n_off = int(off.sum())
    live = ~off
    n_local = int((live & (d == 0)).sum())
    codes = d[live & (d != 0)]
    onchip = 0.0
    if codes.size:
        term = fp.term_table(int(codes.max()))
        for c in codes.tolist():
            onchip += term[c]
    return fp.rs_local.sums(n_local), onchip, fp.rs_offchip.sums(n_off)


def evaluate_cost_compiled(fp: FlatProgram, mapping: Mapping) -> CostReport:
    """``evaluate_cost`` through the compiled kernels.

    Cycles, all four energy classes, liveness, and the obs counters come
    out identical to the reference — liveness deliberately reuses the
    reference ``compute_liveness`` (it is not on the per-candidate hot
    path of any search; the winner's full report is computed once).
    """
    graph, grid = fp.graph, fp.grid
    if mapping.n_nodes != fp.n_nodes:
        raise ValueError(
            f"mapping has {mapping.n_nodes} nodes, graph has {fp.n_nodes}"
        )
    cycles = mapping.makespan(graph)
    time_ps = cycles * grid.tech.cycle_ps
    energy_compute = fp.energy_compute_fj
    energy_local, energy_onchip, energy_offchip = edge_energy_totals(
        fp, mapping.x, mapping.y, mapping.offchip
    )
    liveness = compute_liveness(graph, mapping, grid)
    sess = _obs_active()
    if sess is not None:
        m = sess.metrics
        m.counter("cost.evaluations").inc()
        m.counter("cost.cycles").add(cycles)
        m.counter("cost.energy_total_fj").add(
            energy_compute + energy_local + energy_onchip + energy_offchip
        )
        tot = energy_compute + energy_local + energy_onchip + energy_offchip
        transport = energy_local + energy_onchip + energy_offchip
        m.histogram("cost.communication_fraction").observe(
            transport / tot if tot else 0.0
        )
    return CostReport(
        cycles=cycles,
        time_ps=time_ps,
        energy_compute_fj=energy_compute,
        energy_local_fj=energy_local,
        energy_onchip_fj=energy_onchip,
        energy_offchip_fj=energy_offchip,
        liveness=liveness,
        n_compute=fp.n_compute,
        n_edges=fp.n_edges,
        places_used=len(mapping.places_used()),
    )


class CompiledAnnealState:
    """Incremental edge-energy state for move-based search.

    The compiled replacement for ``cost.IncrementalEdgeEnergy``: the
    edge class split (off-chip = touches an input; local = same place;
    on-chip = rest) is identical, but a move re-prices only the moved
    node's incident live edges through integer distance updates, and
    ``totals()`` is table lookups plus one in-order on-chip sum instead
    of three per-edge Python re-summations.

    ``xs``/``ys`` (plain lists) and ``x``/``y`` (int64 arrays) both
    track the current tentative placement — the lists feed
    :func:`schedule_compiled`, the arrays feed vectorized signatures.
    """

    def __init__(self, fp: FlatProgram) -> None:
        self.fp = fp
        n = fp.n_nodes
        self.xs = [0] * n
        self.ys = [0] * n
        self.x = np.zeros(n, dtype=np.int64)
        self.y = np.zeros(n, dtype=np.int64)
        self._live_ids = np.nonzero(~fp.edge_touch_input)[0]  # edge order
        self.n_offchip = int(fp.edge_touch_input.sum())
        self._d = np.zeros(fp.n_edges, dtype=np.int64)
        self.n_local = 0
        self._src = fp.edge_src.tolist()
        self._dst = fp.edge_dst.tolist()
        incident: list[list[int]] = [[] for _ in range(n)]
        for eid in self._live_ids.tolist():
            incident[self._src[eid]].append(eid)
            incident[self._dst[eid]].append(eid)
        self._incident = incident

    def set_placement(self, placement: dict[int, tuple[int, int]]) -> None:
        """Reset to ``placement`` (nodes absent from it sit at (0, 0),
        exactly like ``IncrementalEdgeEnergy.set_placement``)."""
        n = self.fp.n_nodes
        self.xs = [0] * n
        self.ys = [0] * n
        for nid, (a, b) in placement.items():
            self.xs[nid] = int(a)
            self.ys[nid] = int(b)
        self.x[:] = self.xs
        self.y[:] = self.ys
        src, dst = self.fp.edge_src, self.fp.edge_dst
        if self.fp.n_edges:
            self._d = np.abs(self.x[src] - self.x[dst]) + np.abs(
                self.y[src] - self.y[dst]
            )
        live_d = self._d[self._live_ids]
        self.n_local = int((live_d == 0).sum())

    def move(self, nid: int, place: tuple[int, int]):
        """Tentatively move ``nid``; returns an undo token for
        :meth:`unmove`.  Only the incident live edges are re-priced."""
        eids = self._incident[nid]
        d = self._d
        undo = (nid, self.xs[nid], self.ys[nid], [int(d[e]) for e in eids],
                self.n_local)
        a, b = int(place[0]), int(place[1])
        self.xs[nid] = a
        self.ys[nid] = b
        self.x[nid] = a
        self.y[nid] = b
        xs, ys = self.xs, self.ys
        n_local = self.n_local
        for e in eids:
            u, v = self._src[e], self._dst[e]
            nd = abs(xs[u] - xs[v]) + abs(ys[u] - ys[v])
            od = int(d[e])
            if od != nd:
                if od == 0:
                    n_local -= 1
                elif nd == 0:
                    n_local += 1
                d[e] = nd
        self.n_local = n_local
        return undo

    def unmove(self, undo) -> None:
        """Revert a tentative :meth:`move`."""
        nid, ox, oy, old_d, old_local = undo
        self.xs[nid] = ox
        self.ys[nid] = oy
        self.x[nid] = ox
        self.y[nid] = oy
        d = self._d
        for e, od in zip(self._incident[nid], old_d):
            d[e] = od
        self.n_local = old_local

    def totals(self) -> tuple[float, float, float]:
        """(local, onchip, offchip) — same floats as the reference
        ``IncrementalEdgeEnergy.totals`` re-summation."""
        fp = self.fp
        codes = self._d[self._live_ids]
        codes = codes[codes > 0]
        onchip = 0.0
        if codes.size:
            term = fp.term_table(int(codes.max()))
            for c in codes.tolist():
                onchip += term[c]
        return (
            fp.rs_local.sums(self.n_local),
            onchip,
            fp.rs_offchip.sums(self.n_offchip),
        )

    def energy_total_fj(self) -> float:
        local, onchip, offchip = self.totals()
        return self.fp.energy_compute_fj + local + onchip + offchip
