"""Lowering: one-time compilation of (graph, grid) into a FlatProgram.

The reference evaluators (:func:`repro.core.cost.evaluate_cost`, the
schedulers in :mod:`repro.core.default_mapper`) walk Python objects —
``graph.ops`` strings, per-edge generator traversal, per-node closures —
on every single candidate mapping.  A search evaluates thousands of
candidates over the *same* graph on the *same* grid, so everything that
depends only on (graph, grid) can be computed once and reused:

* CSR adjacency and flat edge arrays (``edge_src``/``edge_dst`` in
  exactly :meth:`DataflowGraph.edges` order, which is the float-sum
  order of the reference cost loop);
* integer op-kind codes and per-node durations (no string compares in
  the scheduler's inner loop);
* per-index placement arrays so the structured sweep's owner-computes /
  2-D placements vectorize (one numpy expression per candidate instead
  of one closure call per node);
* technology lookup tables: transit cycles and on-chip transport energy
  by Manhattan distance, plus *repeated-add tables* for the constant
  per-edge local/off-chip energies (see below);
* the placement-independent compute energy, accumulated once with the
  reference's own sequential loop.

**Summation contract.**  numpy sums are pairwise, the reference sums are
sequential, and the differential oracle compares floats with ``==``; so
the kernels never use ``ndarray.sum`` for energy.  The local and
off-chip edge classes add one *constant* value per edge, so their
reference accumulation is a pure function of the edge count:
``S(0)=0, S(k)=fl(S(k-1)+v)``.  :class:`_RepeatedSum` materializes that
table lazily, making whole-class totals O(1) lookups that are
bit-identical to the reference loop.  The on-chip class (value varies by
distance) is summed in edge order through the distance->energy table —
a short Python loop over precomputed floats, with no per-edge distance
or energy arithmetic left in it.

Programs are content-addressed: the cache key is (graph fingerprint,
grid cache key, the op-energy factors the graph actually uses), so a
mutated graph or a re-registered energy factor can never alias a stale
lowering.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.function import DataflowGraph, OP_ENERGY_FACTOR
from repro.core.mapping import GridSpec
from repro.obs import active as _obs_active

__all__ = ["FlatProgram", "get_program", "clear_programs", "places_signature"]

#: op-kind codes (scheduler inner loop works on ints, never strings)
KIND_INPUT, KIND_CONST, KIND_COMPUTE = 0, 1, 2


class _RepeatedSum:
    """Sequential-sum table for a repeated constant addend.

    ``sums(k)`` returns the float produced by adding ``value`` to 0.0
    exactly ``k`` times in order — the accumulation the reference cost
    loop performs for a class whose every edge contributes the same
    value.  Grown lazily and cached, so repeated totals are O(1).
    """

    __slots__ = ("value", "table")

    def __init__(self, value: float) -> None:
        self.value = float(value)
        self.table = [0.0]

    def sums(self, count: int) -> float:
        t = self.table
        if count >= len(t):
            acc = t[-1]
            v = self.value
            for _ in range(len(t), count + 1):
                acc += v
                t.append(acc)
        return t[count]


class FlatProgram:
    """The lowered, array-form twin of one (DataflowGraph, GridSpec) pair.

    Everything here is a pure function of the graph and the grid; the
    kernels in :mod:`repro.compiled.kernels` combine it with a placement
    to produce schedules and costs bit-identical to the reference path.
    """

    def __init__(self, graph: DataflowGraph, grid: GridSpec) -> None:
        self.graph = graph
        self.grid = grid
        tech = grid.tech
        n = graph.n_nodes
        self.n_nodes = n

        # --- nodes ----------------------------------------------------- #
        kinds = []
        for op in graph.ops:
            if op == "input":
                kinds.append(KIND_INPUT)
            elif op == "const":
                kinds.append(KIND_CONST)
            else:
                kinds.append(KIND_COMPUTE)
        self.op_kind: list[int] = kinds
        self.args_list: list[tuple[int, ...]] = [tuple(a) for a in graph.args]
        self.is_compute = np.fromiter(
            (k == KIND_COMPUTE for k in kinds), dtype=bool, count=n
        )
        self.is_input = np.fromiter(
            (k == KIND_INPUT for k in kinds), dtype=bool, count=n
        )
        self.dur = self.is_compute.astype(np.int64)
        self.n_compute = int(self.is_compute.sum())

        # --- edges (CSR; data order == graph.edges() order) ------------ #
        counts = np.fromiter((len(a) for a in self.args_list), np.int64, count=n)
        self.n_edges = int(counts.sum())
        self.arg_indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        self.edge_src = np.fromiter(
            (u for args in self.args_list for u in args),
            dtype=np.int32,
            count=self.n_edges,
        )
        self.edge_dst = np.repeat(
            np.arange(n, dtype=np.int32), counts
        ) if n else np.zeros(0, dtype=np.int32)
        self.edge_touch_input = (
            self.is_input[self.edge_src] | self.is_input[self.edge_dst]
            if self.n_edges
            else np.zeros(0, dtype=bool)
        )
        # out-edge CSR (by source), for the wavefront leveling kernel
        if self.n_edges:
            order = np.argsort(self.edge_src, kind="stable")
            self.out_dst = self.edge_dst[order]
            self.out_indptr = np.concatenate(
                ([0], np.cumsum(np.bincount(self.edge_src, minlength=n)))
            ).astype(np.int64)
        else:
            self.out_dst = np.zeros(0, dtype=np.int32)
            self.out_indptr = np.zeros(n + 1, dtype=np.int64)
        self.indeg = counts

        # --- logical indices (vectorized sweep placements) -------------- #
        idx0 = np.zeros(n, dtype=np.int64)
        idx1 = np.zeros(n, dtype=np.int64)
        has_idx = np.zeros(n, dtype=bool)
        has_idx2 = np.zeros(n, dtype=bool)
        for nid in range(n):
            idx = graph.index[nid]
            if idx:
                has_idx[nid] = True
                idx0[nid] = int(idx[0])
                if len(idx) >= 2:
                    has_idx2[nid] = True
                    idx1[nid] = int(idx[1])
        self.idx0, self.idx1 = idx0, idx1
        self.has_idx, self.has_idx2 = has_idx, has_idx2
        # extent conventions mirror _owner_place_fn / _grid2d_place_fn
        self.owner_max_i = max(0, int(idx0[has_idx].max())) if has_idx.any() else 0
        if has_idx2.any():
            self.g2_max_i = int(idx0[has_idx2].max())
            self.g2_max_j = int(idx1[has_idx2].max())
        else:
            self.g2_max_i = self.g2_max_j = -1

        # --- technology scalars + lazy lookup tables -------------------- #
        self.pitch = tech.grid_pitch_mm
        self.offchip_cyc = tech.offchip_cycles()
        self.cycle_ps = tech.cycle_ps
        self.rs_local = _RepeatedSum(tech.sram_energy_word_fj())
        self.rs_offchip = _RepeatedSum(tech.offchip_energy_word_fj())
        self._tech = tech
        self._transit: list[int] = [0]
        self._term: list[float] = [0.0]

        # --- compute energy: placement-independent, reference order ----- #
        add_word = tech.add_energy_word_fj()
        energy_compute = 0.0
        for nid in range(n):
            op = graph.ops[nid]
            if op in ("input", "const"):
                continue
            energy_compute += OP_ENERGY_FACTOR.get(op, 1.0) * add_word
        self.energy_compute_fj = energy_compute

    # ------------------------------------------------------------------ #
    # lookup tables (lazily grown; list identity is stable)

    def transit_table(self, max_dist: int) -> list[int]:
        """Transit cycles by Manhattan hop distance, through ``max_dist``."""
        t = self._transit
        while len(t) <= max_dist:
            t.append(self._tech.transport_cycles(len(t) * self.pitch))
        return t

    def term_table(self, max_dist: int) -> list[float]:
        """On-chip transport energy by Manhattan distance — exactly
        ``tech.transport_energy_fj(d * pitch)``, the reference per-edge
        float for an on-chip edge at distance ``d``."""
        t = self._term
        while len(t) <= max_dist:
            t.append(self._tech.transport_energy_fj(len(t) * self.pitch))
        return t

    # ------------------------------------------------------------------ #
    # vectorized sweep placements (bit-identical to _spec_place_fn)

    def places_serial(self) -> tuple[np.ndarray, np.ndarray]:
        z = np.zeros(self.n_nodes, dtype=np.int64)
        return z, z.copy()

    def places_owner(self, p: int, cyclic: bool) -> tuple[np.ndarray, np.ndarray]:
        """Owner-computes over index[0]: block or cyclic distribution —
        the array form of ``_owner_place_fn``."""
        extent = self.owner_max_i + 1
        block = max(1, -(-extent // p))
        if cyclic:
            linear = self.idx0 % p
        else:
            linear = np.minimum(self.idx0 // block, p - 1)
        linear = np.where(self.has_idx, linear, 0)
        return linear % self.grid.width, linear // self.grid.width

    def places_grid2d(self) -> tuple[np.ndarray, np.ndarray]:
        """2-D owner-computes — the array form of ``_grid2d_place_fn``."""
        assert self.g2_max_i >= 0, "2d placement needs 2-D-indexed nodes"
        h, w = self.grid.height, self.grid.width
        bi = max(1, -(-(self.g2_max_i + 1) // h))
        bj = max(1, -(-(self.g2_max_j + 1) // w))
        py = np.where(self.has_idx, np.minimum(self.idx0 // bi, h - 1), 0)
        px = np.where(self.has_idx2, np.minimum(self.idx1 // bj, w - 1), 0)
        return px.astype(np.int64), py.astype(np.int64)

    def places_for_spec(self, spec: tuple[Any, ...]) -> tuple[np.ndarray, np.ndarray]:
        """Placement arrays for one sweep candidate descriptor."""
        if spec[0] == "serial":
            return self.places_serial()
        if spec[0] == "2d":
            return self.places_grid2d()
        _kind, p, cyclic = spec
        return self.places_owner(p, cyclic)

    # ------------------------------------------------------------------ #
    # vectorized ASAP leveling

    def asap_levels(self) -> np.ndarray:
        """Dependency levels by wavefront relaxation, fully array-driven.

        ``level[v] = max(level[u] for u in args) + dur[v]`` — the
        dependency-depth recurrence of :meth:`DataflowGraph.depth`, so
        ``asap_levels().max() == graph.depth()``.  Each wave is one set
        of vectorized gathers/scatters; the number of waves is the graph
        depth, not the node count.
        """
        n = self.n_nodes
        level = np.zeros(n, dtype=np.int64)
        if n == 0:
            return level
        bound = np.zeros(n, dtype=np.int64)  # max level over settled preds
        indeg = self.indeg.copy()
        frontier = np.nonzero(indeg == 0)[0]
        out_indptr, out_dst = self.out_indptr, self.out_dst
        while frontier.size:
            level[frontier] = bound[frontier] + self.dur[frontier]
            starts = out_indptr[frontier]
            counts = out_indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            offsets = np.repeat(np.cumsum(counts) - counts, counts)
            flat = np.repeat(starts, counts) + (np.arange(total) - offsets)
            dsts = out_dst[flat]
            srcs = np.repeat(frontier, counts)
            np.maximum.at(bound, dsts, level[srcs])
            np.subtract.at(indeg, dsts, 1)
            frontier = np.unique(dsts[indeg[dsts] == 0])
        return level


def places_signature(px: np.ndarray, py: np.ndarray) -> bytes:
    """The byte signature ``repro.core.search._places_signature`` derives
    from a place function, computed from placement arrays instead —
    interleaved ``x0, y0, x1, y1, ...`` int64, identical bytes."""
    flat = np.empty((len(px), 2), dtype=np.int64)
    flat[:, 0] = px
    flat[:, 1] = py
    return flat.tobytes()


# ---------------------------------------------------------------------- #
# the content-addressed program cache

_PROGRAMS: dict[tuple, FlatProgram] = {}
_MAX_PROGRAMS = 64


def _energy_factors_key(graph: DataflowGraph) -> tuple:
    """The op-energy factors this graph's cost depends on; part of the
    program cache key so re-registered factors invalidate lowerings."""
    ops = sorted(set(graph.ops))
    return tuple((op, OP_ENERGY_FACTOR.get(op, 1.0)) for op in ops)


def get_program(graph: DataflowGraph, grid: GridSpec) -> FlatProgram:
    """The (cached) lowering of ``graph`` onto ``grid``.

    Keyed on content (graph fingerprint, grid cache key, energy
    factors), so structurally identical graphs built independently share
    one lowering.  Counted in the obs layer as ``compiled.lowerings`` /
    ``compiled.program_cache_hits``.
    """
    key = (graph.fingerprint(), grid.cache_key(), _energy_factors_key(graph))
    fp = _PROGRAMS.get(key)
    sess = _obs_active()
    if fp is not None:
        if sess is not None:
            sess.metrics.counter("compiled.program_cache_hits", better="higher").inc()
        return fp
    fp = FlatProgram(graph, grid)
    if len(_PROGRAMS) >= _MAX_PROGRAMS:
        _PROGRAMS.pop(next(iter(_PROGRAMS)))
    _PROGRAMS[key] = fp
    if sess is not None:
        sess.metrics.counter("compiled.lowerings").inc()
    return fp


def clear_programs() -> None:
    """Drop every cached lowering (tests, cold-start benches)."""
    _PROGRAMS.clear()
