"""The shard pool: persistent warm-cache worker processes.

Unlike the transient pools of :mod:`repro.core.search` (spawned per
call), serve shards are **long-lived**: each worker process holds a
bounded :class:`~repro.core.memo.MemoCache` pair (search + cost/trace
memo) and a fast :class:`~repro.core.search.SearchEngine` wired to it, so
state stays warm *between* requests.  Batches route by content
(:func:`repro.serve.batcher.route`), giving each shard affinity for a
slice of the workload space — adding shards multiplies the aggregate warm
cache, which is exactly the scaling the C20 bench measures.

Resilience follows the PR-3 playbook (same policy as ``_pool_map``, lifted
to persistent workers):

*  every dispatched batch stays in the parent's in-flight ledger until a
   result is acked — a crashed or hung shard never loses an accepted
   request;
*  a dead process (or a batch overdue past ``batch_timeout_s``) triggers
   respawn + re-dispatch, at most ``max_retries`` times per batch;
*  batches that still fail run **in-process** through the same
   :func:`~repro.serve.protocol.execute_request` — a deterministic
   fallback that is bit-identical to a healthy shard, so recovery is
   invisible in the results;
*  with a :mod:`repro.faults` injection scope open, the deterministic
   plan's worker faults (``crash`` / ``hang``) are applied per
   (batch, attempt) by sending the shard a control message, and every
   injection/recovery lands in the ledger as ``shard_crash`` /
   ``shard_hang`` — the chaos-campaign machinery works on the serving
   layer unchanged.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.function import OP_ENERGY_FACTOR
from repro.core.memo import MemoCache
from repro.core.search import SearchEngine
from repro.faults.inject import active as _faults_active
from repro.obs import active as _obs_active
from repro.obs.distributed import TelemetryAggregator
from repro.serve.protocol import (
    INTERNAL_ERROR,
    INVALID_REQUEST,
    OK,
    ProtocolError,
    Request,
    execute_request,
)

__all__ = ["ShardPool", "BatchResult", "IN_PROCESS_SHARD"]

#: ``shard`` value reported for batches served by the in-process fallback.
IN_PROCESS_SHARD = -1

#: Exit code of an injected shard crash (visible in tests and logs).
_CRASH_EXIT = 17

#: How long an injected hang sleeps — far past any sane batch timeout; the
#: parent's terminate() reaps the sleeper.
_HANG_SLEEP_S = 3600.0


@dataclass
class BatchResult:
    """One completed batch: per-request (code, result-or-detail) rows."""

    batch_id: int
    shard: int
    outs: list[tuple[str, Any]]


@dataclass
class _InFlight:
    batch_id: int
    requests: list[dict[str, Any]]
    dispatch_ns: int
    attempts: int = 0
    injected: list[str] = field(default_factory=list)


class _Shard:
    """Parent-side handle for one worker process."""

    def __init__(
        self, index: int, ctx, cache_entries: int | None, disk_cache: bool
    ) -> None:
        self.index = index
        self.ctx = ctx
        self.cache_entries = cache_entries
        self.disk_cache = disk_cache
        self.restarts = -1  # first spawn() brings it to 0
        self.inflight: dict[int, _InFlight] = {}
        self.proc: multiprocessing.Process | None = None
        self.inbox = None
        self.outbox = None
        self.spawn()

    def spawn(self) -> None:
        self.inbox = self.ctx.Queue()
        self.outbox = self.ctx.Queue()
        self.proc = self.ctx.Process(
            target=_shard_main,
            args=(
                self.index,
                self.inbox,
                self.outbox,
                self.cache_entries,
                self.disk_cache,
            ),
            daemon=True,
        )
        self.proc.start()
        self.restarts += 1

    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    def reap(self) -> None:
        """Terminate the process (idempotent; safe on the already-dead)."""
        if self.proc is not None:
            self.proc.terminate()
            self.proc.join()
        self.proc = None


#: ``batch_id`` of the final telemetry-only message a shard emits on
#: clean shutdown (no batch result rides along).
_FLUSH_BATCH = -1


def _shard_main(
    index: int,
    inbox,
    outbox,
    cache_entries: int | None,
    disk_cache: bool = True,
) -> None:
    """Worker loop: warm caches + the one protocol executor.

    Messages: ``("batch", id, op_energy, [request dicts])`` to serve,
    ``("crash",)`` / ``("hang",)`` for injected faults, ``None`` to exit.
    Results go back as ``(index, batch_id, outs, telemetry)`` — the
    fourth element piggybacks the shard's metric/span deltas since its
    previous message (``None`` when nothing changed), and a final
    telemetry-only ``(index, _FLUSH_BATCH, None, telemetry)`` flushes on
    clean shutdown.  Counters incremented in this process therefore
    survive it: the parent merges them under a ``process=shard-<i>``
    label (:class:`repro.obs.distributed.TelemetryAggregator`).

    With ``disk_cache`` on (the default) the in-memory memo pair sits on
    top of the shared :class:`~repro.core.memo.DiskMemoStore` tiers — the
    store namespaces are deliberately *not* per-shard, so a restarted (or
    newly added) shard starts warm from every other shard's past work.
    """
    from repro import obs
    from repro.compiled import default_backend
    from repro.core.memo import DiskMemoStore
    from repro.obs.distributed import ChildTelemetry

    sess = obs.Session(label=f"shard-{index}")
    obs.activate(sess)
    telemetry = ChildTelemetry(sess, process=f"shard-{index}")

    search_store = DiskMemoStore("serve-search") if disk_cache else None
    memo_store = DiskMemoStore("serve-memo") if disk_cache else None
    search_cache = MemoCache(
        f"serve-search-{index}", cache_entries, store=search_store
    )
    memo = MemoCache(f"serve-memo-{index}", cache_entries, store=memo_store)
    engine = SearchEngine(
        memoize=True,
        incremental=True,
        parallel=False,
        compiled=default_backend() == "compiled",
        cache=search_cache,
    )
    while True:
        msg = inbox.get()
        if msg is None:
            search_cache.publish_metrics()
            memo.publish_metrics()
            outbox.put((index, _FLUSH_BATCH, None, telemetry.flush()))
            return
        if msg[0] == "crash":
            os._exit(_CRASH_EXIT)
        if msg[0] == "hang":  # pragma: no cover - reaped by terminate()
            time.sleep(_HANG_SLEEP_S)
            continue
        _tag, batch_id, op_energy, request_docs = msg
        OP_ENERGY_FACTOR.update(op_energy)
        outs: list[tuple[str, Any]] = []
        with sess.tracer.span(
            "shard.batch", cat="shard", batch=batch_id, size=len(request_docs)
        ):
            for doc in request_docs:
                try:
                    req = Request.from_jsonable(doc)
                    with sess.tracer.span(
                        "shard.request",
                        cat="shard",
                        kind=req.kind,
                        batch=batch_id,
                        **({"trace_id": req.trace_id} if req.trace_id else {}),
                    ):
                        outs.append(
                            (OK, execute_request(req, engine=engine, memo=memo))
                        )
                except ProtocolError as exc:
                    outs.append((INVALID_REQUEST, str(exc)))
                except Exception as exc:  # surfaced per-request, batch survives
                    outs.append((INTERNAL_ERROR, repr(exc)))
        search_cache.publish_metrics()
        memo.publish_metrics()
        outbox.put((index, batch_id, outs, telemetry.flush()))


class ShardPool:
    """The pool of persistent shards plus the recovery state machine.

    Single-owner: ``dispatch`` / ``poll`` / ``check`` are called from the
    server's tick thread only (construction and ``kill_shard`` may come
    from elsewhere — process handles tolerate that).
    """

    def __init__(
        self,
        n_shards: int,
        cache_entries: int | None = 4096,
        batch_timeout_s: float = 60.0,
        max_retries: int = 2,
        max_inflight: int = 2,
        ctx: Any = None,
        disk_cache: bool = True,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        self.n_shards = n_shards
        self.batch_timeout_s = batch_timeout_s
        self.max_retries = max_retries
        self.max_inflight = max_inflight
        self._ctx = ctx if ctx is not None else multiprocessing.get_context()
        self._shards = [
            _Shard(i, self._ctx, cache_entries, disk_cache)
            for i in range(n_shards)
        ]
        self.inproc_fallbacks = 0
        self.batch_retries = 0

    # ------------------------------------------------------------------ #
    # capacity + dispatch

    def can_accept(self, shard_index: int) -> bool:
        return len(self._shards[shard_index].inflight) < self.max_inflight

    def dispatch(
        self, batch_id: int, shard_index: int, requests: list[dict[str, Any]]
    ) -> None:
        """Send a batch to its shard and open its in-flight ledger entry."""
        shard = self._shards[shard_index]
        entry = _InFlight(
            batch_id, requests, dispatch_ns=time.perf_counter_ns()
        )
        shard.inflight[batch_id] = entry
        self._send(shard, entry)

    def _send(self, shard: _Shard, entry: _InFlight) -> None:
        inj = _faults_active()
        if inj is not None:
            action = inj.plan.worker_fault(entry.batch_id, entry.attempts)
            if action in ("crash", "hang"):
                kind = f"shard_{action}"
                entry.injected.append(kind)
                inj.injected(
                    kind,
                    f"batch={entry.batch_id} shard={shard.index} "
                    f"attempt={entry.attempts}",
                )
                shard.inbox.put((action,))
                if action == "hang":
                    return  # the batch never arrives; timeout recovery fires
        shard.inbox.put(
            ("batch", entry.batch_id, dict(OP_ENERGY_FACTOR), entry.requests)
        )

    # ------------------------------------------------------------------ #
    # completion + recovery

    def poll(self) -> list[BatchResult]:
        """Drain every shard's outbox; ack and return completed batches.

        Telemetry piggybacked on each message is merged into the active
        obs session (with a ``process=shard-<i>`` label) before the batch
        is acked — even stale results from a recovered predecessor still
        deliver their counters, since the work genuinely happened.
        """
        done: list[BatchResult] = []
        for shard in self._shards:
            while True:
                try:
                    index, batch_id, outs, telemetry = shard.outbox.get_nowait()
                except (queue_mod.Empty, OSError, EOFError):
                    break
                self._absorb(telemetry)
                if batch_id == _FLUSH_BATCH:
                    continue  # telemetry-only shutdown flush
                entry = shard.inflight.pop(batch_id, None)
                if entry is None:
                    continue  # stale result from a recovered predecessor
                self._resolve_injected(entry)
                done.append(BatchResult(batch_id, index, outs))
        return done

    def check(self) -> list[BatchResult]:
        """Detect dead/hung shards; respawn, re-dispatch, or fall back.

        Returns batches completed via the in-process fallback (so the
        caller fulfills them like any poll() result).  Re-dispatched
        batches simply show up in a later poll.
        """
        now = time.perf_counter_ns()
        timeout_ns = int(self.batch_timeout_s * 1e9)
        fallback_done: list[BatchResult] = []
        for shard in self._shards:
            overdue = any(
                now - e.dispatch_ns > timeout_ns for e in shard.inflight.values()
            )
            if shard.alive() and not overdue:
                continue
            if not shard.inflight and shard.alive():
                continue  # healthy-idle even if a stale timeout raced
            shard.reap()
            orphans = list(shard.inflight.values())
            shard.inflight.clear()
            shard.spawn()
            self._count("serve.shard_restarts")
            for entry in orphans:
                entry.attempts += 1
                if entry.attempts <= self.max_retries:
                    self.batch_retries += 1
                    self._count("serve.batch_retries")
                    entry.dispatch_ns = time.perf_counter_ns()
                    shard.inflight[entry.batch_id] = entry
                    self._send(shard, entry)
                else:
                    self.inproc_fallbacks += 1
                    self._count("serve.inproc_fallbacks")
                    outs = _execute_in_process(entry.requests)
                    self._resolve_injected(entry)
                    fallback_done.append(
                        BatchResult(entry.batch_id, IN_PROCESS_SHARD, outs)
                    )
        return fallback_done

    def _resolve_injected(self, entry: _InFlight) -> None:
        inj = _faults_active()
        if inj is not None:
            for kind in entry.injected:
                inj.recovered(kind, f"batch={entry.batch_id}")
            entry.injected.clear()

    @staticmethod
    def _count(name: str) -> None:
        sess = _obs_active()
        if sess is not None:
            sess.metrics.counter(name).inc()

    @staticmethod
    def _absorb(telemetry: dict[str, Any] | None) -> None:
        """Merge one piggybacked telemetry payload into the active session."""
        if telemetry is None:
            return
        sess = _obs_active()
        if sess is not None:
            TelemetryAggregator(sess).absorb(telemetry)

    # ------------------------------------------------------------------ #
    # lifecycle + introspection

    @property
    def inflight_total(self) -> int:
        return sum(len(s.inflight) for s in self._shards)

    @property
    def restarts_total(self) -> int:
        return sum(s.restarts for s in self._shards)

    def inflight_by_shard(self) -> list[int]:
        """Per-shard in-flight ledger sizes (for the tick gauges)."""
        return [len(s.inflight) for s in self._shards]

    def liveness(self) -> list[dict[str, Any]]:
        """Per-shard health rows for the ``/healthz`` endpoint."""
        return [
            {
                "shard": s.index,
                "alive": s.alive(),
                "inflight": len(s.inflight),
                "restarts": s.restarts,
            }
            for s in self._shards
        ]

    def kill_shard(self, index: int) -> None:
        """Hard-kill one worker (tests and chaos drills); recovery is the
        job of the next ``check()``."""
        shard = self._shards[index]
        if shard.proc is not None:
            shard.proc.kill()
            shard.proc.join()

    def stop(self) -> None:
        for shard in self._shards:
            try:
                shard.inbox.put(None)
            except (ValueError, OSError):  # already torn down
                pass
        deadline = time.monotonic() + 2.0
        for shard in self._shards:
            if shard.proc is not None:
                shard.proc.join(max(0.0, deadline - time.monotonic()))
        # collect the final telemetry flush each worker emits on clean
        # shutdown (crashed workers simply have nothing queued)
        self.poll()
        for shard in self._shards:
            shard.reap()


def _execute_in_process(request_docs: list[dict[str, Any]]) -> list[tuple[str, Any]]:
    """The deterministic last resort: the same executor, reference path,
    in the server process — bit-identical to a healthy shard."""
    outs: list[tuple[str, Any]] = []
    for doc in request_docs:
        try:
            req = Request.from_jsonable(doc)
            outs.append((OK, execute_request(req)))
        except ProtocolError as exc:
            outs.append((INVALID_REQUEST, str(exc)))
        except Exception as exc:
            outs.append((INTERNAL_ERROR, repr(exc)))
    return outs
