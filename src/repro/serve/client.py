"""Clients for the evaluation service.

:class:`LocalClient` wraps an in-process :class:`EvaluationServer` —
what the tests and benches use (no sockets, same semantics).
:class:`HttpClient` speaks the JSON protocol over HTTP with stdlib
``urllib`` only.

Both expose the same surface: ``request(Request) -> Response`` plus
typed conveniences (``evaluate`` / ``search`` / ``simulate`` / ``score``)
that build protocol payloads from the same arguments the
:mod:`repro.api` facade takes — so swapping a direct ``api.search(...)``
call for ``client.search(...)`` is mechanical, and the differential
oracle can compare the two paths bit for bit.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Sequence

from repro.serve.protocol import Request, Response

__all__ = ["LocalClient", "HttpClient", "ServeError"]


class ServeError(RuntimeError):
    """A request was not served: carries the full rejection Response."""

    def __init__(self, response: Response) -> None:
        super().__init__(f"{response.code}: {response.detail}")
        self.response = response


class _ClientBase:
    """The typed convenience surface shared by both transports."""

    def request(self, request: Request, timeout_s: float | None = None) -> Response:
        raise NotImplementedError

    def call(self, request: Request, timeout_s: float | None = None) -> dict[str, Any]:
        """Request and unwrap: the OK result dict, or :class:`ServeError`."""
        response = self.request(request, timeout_s)
        if not response.ok:
            raise ServeError(response)
        assert response.result is not None
        return response.result

    # -- per-kind conveniences (payload shapes match repro.api) --------- #

    @staticmethod
    def _workload(workload: Any, params: dict[str, Any]) -> dict[str, Any]:
        doc: dict[str, Any] = {"workload": workload}
        if params:
            doc["workload"] = {"name": workload, "params": params}
        return doc

    def evaluate(
        self,
        workload: str,
        machine: Sequence[int],
        mapper: str = "default",
        fom: dict[str, float] | None = None,
        deadline_s: float | None = None,
        trace_id: str = "",
        **params: Any,
    ) -> dict[str, Any]:
        payload = {
            **self._workload(workload, params),
            "machine": list(machine),
            "mapper": mapper,
        }
        if fom:
            payload["fom"] = fom
        return self.call(
            Request("evaluate", payload, deadline_s=deadline_s, trace_id=trace_id)
        )

    def search(
        self,
        workload: str,
        machine: Sequence[int],
        method: str = "sweep",
        fom: dict[str, float] | None = None,
        seed: int = 0,
        steps: int = 2000,
        deadline_s: float | None = None,
        trace_id: str = "",
        **params: Any,
    ) -> dict[str, Any]:
        payload = {
            **self._workload(workload, params),
            "machine": list(machine),
            "method": method,
            "seed": seed,
            "steps": steps,
        }
        if fom:
            payload["fom"] = fom
        return self.call(
            Request("search", payload, deadline_s=deadline_s, trace_id=trace_id)
        )

    def simulate(
        self,
        levels: Sequence[Sequence[Any]],
        trace: Sequence[Sequence[Any]],
        deadline_s: float | None = None,
        trace_id: str = "",
    ) -> dict[str, Any]:
        payload = {
            "levels": [list(l) for l in levels],
            "trace": [list(t) for t in trace],
        }
        return self.call(
            Request("simulate", payload, deadline_s=deadline_s, trace_id=trace_id)
        )

    def score(
        self,
        workload: str,
        machine: Sequence[int],
        placement: Sequence[Sequence[int]],
        fom: dict[str, float] | None = None,
        deadline_s: float | None = None,
        trace_id: str = "",
        **params: Any,
    ) -> dict[str, Any]:
        payload = {
            **self._workload(workload, params),
            "machine": list(machine),
            "placement": [list(p) for p in placement],
        }
        if fom:
            payload["fom"] = fom
        return self.call(
            Request("score", payload, deadline_s=deadline_s, trace_id=trace_id)
        )


class LocalClient(_ClientBase):
    """Drive an in-process :class:`EvaluationServer` directly."""

    def __init__(self, server: Any) -> None:
        self.server = server

    def request(self, request: Request, timeout_s: float | None = None) -> Response:
        return self.server.request(request, timeout_s)


class HttpClient(_ClientBase):
    """Speak the JSON protocol to a remote server over HTTP (stdlib only)."""

    #: bounded retry on connection-level failures (reset / refused before
    #: the request was accepted); the protocol body never got through, so
    #: resending cannot duplicate work
    connect_retries = 3

    def __init__(self, base_url: str, timeout_s: float = 120.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def request(self, request: Request, timeout_s: float | None = None) -> Response:
        body = json.dumps(request.as_jsonable()).encode()
        req = urllib.request.Request(
            f"{self.base_url}/v1/requests",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        timeout = timeout_s if timeout_s is not None else self.timeout_s
        for attempt in range(self.connect_retries + 1):
            try:
                with urllib.request.urlopen(req, timeout=timeout) as resp:
                    doc = json.loads(resp.read())
                break
            except urllib.error.HTTPError as exc:
                # rejections ride on 4xx with a full Response body
                doc = json.loads(exc.read())
                break
            except (ConnectionResetError, ConnectionRefusedError):
                if attempt == self.connect_retries:
                    raise
                time.sleep(0.05 * (attempt + 1))
            except urllib.error.URLError as exc:
                if attempt == self.connect_retries or not isinstance(
                    exc.reason, (ConnectionResetError, ConnectionRefusedError)
                ):
                    raise
                time.sleep(0.05 * (attempt + 1))
        return Response.from_jsonable(doc)

    def healthz(self) -> dict[str, Any]:
        with urllib.request.urlopen(
            f"{self.base_url}/healthz", timeout=self.timeout_s
        ) as resp:
            return json.loads(resp.read())

    def metrics(self) -> dict[str, Any]:
        """Fetch the live ``/metrics`` exposition (repro-obs-metrics/1
        dump with cross-process series plus the latency_ms block)."""
        with urllib.request.urlopen(
            f"{self.base_url}/metrics", timeout=self.timeout_s
        ) as resp:
            return json.loads(resp.read())
