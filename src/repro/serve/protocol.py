"""The serve wire protocol: JSON requests, JSON responses, one executor.

A request is ``{"kind": <verb>, "payload": {...}}`` where the verbs map
one-to-one onto the :mod:`repro.api` facade:

``evaluate``
    ``{workload, machine, mapper?, fom?, cached?}`` — cost one built-in
    mapping of a registered workload.
``search``
    ``{workload, machine, fom?, method?, steps?, seed?, max_points?}`` —
    run a mapping search; the response carries every row with its full
    mapping and cost report, so the differential oracle can compare a
    served answer against a direct library call bit for bit.
``simulate``
    ``{levels, trace}`` — trace-driven cache simulation.
``score``
    ``{workload, machine, placement, fom?}`` — score one explicit
    placement.

:func:`execute_request` is the **only** executor: shard workers, the
in-process crash fallback, the smoke tool, and the bit-identity tests all
call it, so "served result == direct library call" reduces to "JSON
round-trip is lossless" — and Python's ``json`` round-trips floats by
shortest-repr exactly, which the oracle then verifies end to end.

Rejection codes are explicit and machine-readable: a client can always
tell "your request was malformed" (``INVALID_REQUEST``) from "the server
chose not to serve you" (``QUEUE_FULL``, ``DEADLINE_EXCEEDED``,
``SHUTTING_DOWN``) from "the server broke" (``INTERNAL_ERROR``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro import api
from repro.core.cost import CostReport
from repro.core.legality import LivenessSummary
from repro.core.mapping import Mapping
from repro.core.memo import MemoCache
from repro.core.search import SearchEngine, SearchResult
from repro.testing.golden import cost_report_to_jsonable

__all__ = [
    "KINDS",
    "OK",
    "QUEUE_FULL",
    "DEADLINE_EXCEEDED",
    "SHUTTING_DOWN",
    "INVALID_REQUEST",
    "INTERNAL_ERROR",
    "REJECTION_CODES",
    "ProtocolError",
    "Request",
    "Response",
    "execute_request",
    "mapping_to_jsonable",
    "mapping_from_jsonable",
    "cost_report_from_jsonable",
    "search_rows_from_result",
    "search_results_from_rows",
]

#: Request verbs, mapping one-to-one onto the :mod:`repro.api` facade.
KINDS = ("evaluate", "search", "simulate", "score")

OK = "OK"
#: Backpressure: the bounded admission queue is full; retry later.
QUEUE_FULL = "QUEUE_FULL"
#: Load shedding: the request's deadline expired before a shard took it.
DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"
#: The server is draining; no new work is admitted.
SHUTTING_DOWN = "SHUTTING_DOWN"
#: The request itself is malformed (unknown kind/workload, bad params).
INVALID_REQUEST = "INVALID_REQUEST"
#: The server failed while executing a well-formed request.
INTERNAL_ERROR = "INTERNAL_ERROR"

#: Codes that mean "explicitly shed", as opposed to failed.
REJECTION_CODES = (QUEUE_FULL, DEADLINE_EXCEEDED, SHUTTING_DOWN)


class ProtocolError(ValueError):
    """A malformed request (maps to ``INVALID_REQUEST``)."""


@dataclass(frozen=True)
class Request:
    """One unit of service: a verb plus its JSON-able payload.

    ``id`` is assigned by the server when empty; ``deadline_s`` is the
    per-request service deadline measured from admission (``None`` means
    the server default).  ``trace_id`` is the request-scoped trace
    correlation id: clients may supply their own, the server generates
    one at admission otherwise, and every span the request produces — in
    the server process and inside shard workers — carries it, so one
    request yields one coherent cross-process trace.
    """

    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    id: str = ""
    deadline_s: float | None = None
    trace_id: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ProtocolError(f"unknown request kind {self.kind!r}; one of {KINDS}")
        if not isinstance(self.payload, dict):
            raise ProtocolError(f"payload must be an object, got {self.payload!r}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ProtocolError(f"deadline_s must be positive, got {self.deadline_s}")

    def as_jsonable(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": self.kind, "payload": self.payload}
        if self.id:
            doc["id"] = self.id
        if self.deadline_s is not None:
            doc["deadline_s"] = self.deadline_s
        if self.trace_id:
            doc["trace_id"] = self.trace_id
        return doc

    @staticmethod
    def from_jsonable(doc: Any) -> "Request":
        if not isinstance(doc, dict) or "kind" not in doc:
            raise ProtocolError(f"request must be {{kind, payload, ...}}: {doc!r}")
        extra = set(doc) - {"kind", "payload", "id", "deadline_s", "trace_id"}
        if extra:
            raise ProtocolError(f"unknown request fields: {sorted(extra)}")
        deadline = doc.get("deadline_s")
        return Request(
            kind=str(doc["kind"]),
            payload=doc.get("payload", {}),
            id=str(doc.get("id", "")),
            deadline_s=float(deadline) if deadline is not None else None,
            trace_id=str(doc.get("trace_id", "")),
        )


@dataclass
class Response:
    """The answer to one request.

    ``ok`` iff ``code == "OK"``; otherwise ``code`` is a rejection or
    error code and ``detail`` says why.  ``shard``/``batch`` record the
    routing decision (``None`` for requests that never reached a shard,
    ``shard == -1`` for the in-process fallback); ``wait_ms`` /
    ``service_ms`` split the latency into queueing and execution.
    ``trace_id`` echoes the request's trace correlation id so a client
    can find its spans in the server's exported Chrome trace.
    """

    id: str
    kind: str
    code: str = OK
    result: dict[str, Any] | None = None
    detail: str = ""
    shard: int | None = None
    batch: int | None = None
    wait_ms: float = 0.0
    service_ms: float = 0.0
    trace_id: str = ""

    @property
    def ok(self) -> bool:
        return self.code == OK

    @property
    def shed(self) -> bool:
        """Explicitly load-shed (as opposed to failed or served)."""
        return self.code in REJECTION_CODES

    def as_jsonable(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind,
            "code": self.code,
            "ok": self.ok,
            "result": self.result,
            "detail": self.detail,
            "shard": self.shard,
            "batch": self.batch,
            "wait_ms": self.wait_ms,
            "service_ms": self.service_ms,
            "trace_id": self.trace_id,
        }

    @staticmethod
    def from_jsonable(doc: Any) -> "Response":
        if not isinstance(doc, dict) or "code" not in doc:
            raise ProtocolError(f"response must be {{id, code, ...}}: {doc!r}")
        return Response(
            id=str(doc.get("id", "")),
            kind=str(doc.get("kind", "")),
            code=str(doc["code"]),
            result=doc.get("result"),
            detail=str(doc.get("detail", "")),
            shard=doc.get("shard"),
            batch=doc.get("batch"),
            wait_ms=float(doc.get("wait_ms", 0.0)),
            service_ms=float(doc.get("service_ms", 0.0)),
            trace_id=str(doc.get("trace_id", "")),
        )


# ---------------------------------------------------------------------- #
# lossless object <-> JSON converters.  json round-trips Python floats by
# shortest repr, so "bit-identical through the wire" is a real property
# (asserted by the serve test suite with the PR-2 differential oracle).


def mapping_to_jsonable(mapping: Mapping) -> dict[str, Any]:
    return {
        "x": mapping.x.tolist(),
        "y": mapping.y.tolist(),
        "time": mapping.time.tolist(),
        "offchip": [bool(v) for v in mapping.offchip],
    }


def mapping_from_jsonable(doc: dict[str, Any]) -> Mapping:
    xs = doc["x"]
    m = Mapping(len(xs))
    for nid, (x, y, t, off) in enumerate(
        zip(xs, doc["y"], doc["time"], doc["offchip"])
    ):
        m.set(nid, (int(x), int(y)), int(t), bool(off))
    return m


def cost_report_from_jsonable(doc: dict[str, Any]) -> CostReport:
    """Invert :func:`repro.testing.golden.cost_report_to_jsonable`.

    Only the constructor fields are read back; the derived properties
    (totals, fractions) recompute from identical floats in the identical
    order, so the reconstruction is bit-identical to the original.
    """
    live = doc["liveness"]
    per_place = {
        (int(k.split(",")[0]), int(k.split(",")[1])): int(v)
        for k, v in live["max_live_per_place"].items()
    }
    return CostReport(
        cycles=int(doc["cycles"]),
        time_ps=float(doc["time_ps"]),
        energy_compute_fj=float(doc["energy_compute_fj"]),
        energy_local_fj=float(doc["energy_local_fj"]),
        energy_onchip_fj=float(doc["energy_onchip_fj"]),
        energy_offchip_fj=float(doc["energy_offchip_fj"]),
        liveness=LivenessSummary(
            max_live_per_place=per_place,
            max_in_flight=int(live["max_in_flight"]),
        ),
        n_compute=int(doc["n_compute"]),
        n_edges=int(doc["n_edges"]),
        places_used=int(doc["places_used"]),
    )


def search_rows_from_result(rows: list[SearchResult]) -> list[dict[str, Any]]:
    return [
        {
            "label": r.label,
            "fom": float(r.fom),
            "mapping": mapping_to_jsonable(r.mapping),
            "cost": cost_report_to_jsonable(r.cost),
        }
        for r in rows
    ]


def search_results_from_rows(rows: list[dict[str, Any]]) -> list[SearchResult]:
    """Reconstruct full :class:`SearchResult` objects from a served search
    response — the form the differential oracle consumes."""
    return [
        SearchResult(
            label=str(row["label"]),
            mapping=mapping_from_jsonable(row["mapping"]),
            cost=cost_report_from_jsonable(row["cost"]),
            fom=float(row["fom"]),
        )
        for row in rows
    ]


def _evaluate_result_jsonable(res: api.EvaluateResult) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "mapping": mapping_to_jsonable(res.mapping),
        "cost": cost_report_to_jsonable(res.cost),
        "fom": float(res.fom) if res.fom is not None else None,
    }
    if res.legality is not None:
        doc["legal"] = res.legality.ok
        doc["violations"] = [str(v) for v in res.legality.violations]
    return doc


# ---------------------------------------------------------------------- #
# the one executor


def execute_request(
    request: Request,
    engine: SearchEngine | None = None,
    memo: MemoCache | None = None,
) -> dict[str, Any]:
    """Execute one request through the :mod:`repro.api` facade.

    ``engine`` (search) and ``memo`` (evaluate/simulate caches) carry a
    worker's warm state; passing ``None`` everywhere gives the plain
    reference path.  Both paths return bit-identical results — that is
    the PR-2 engine contract, and the serve tests re-verify it through
    the wire.

    Raises :class:`ProtocolError` for malformed payloads; any other
    exception is a genuine internal error the caller maps to
    ``INTERNAL_ERROR``.
    """
    p = dict(request.payload)
    try:
        if request.kind == "evaluate":
            res = api.evaluate(
                api.WorkloadSpec.from_jsonable(_need(p, "workload")),
                api.MachineSpec.from_jsonable(_need(p, "machine")),
                mapper=str(p.get("mapper", "default")),
                fom=p.get("fom"),
                check=bool(p.get("check", False)),
                cached=memo is not None,
                cache=memo,
            )
            return _evaluate_result_jsonable(res)
        if request.kind == "search":
            rows = api.search(
                api.WorkloadSpec.from_jsonable(_need(p, "workload")),
                api.MachineSpec.from_jsonable(_need(p, "machine")),
                fom=p.get("fom"),
                method=str(p.get("method", "sweep")),
                engine=engine,
                steps=int(p.get("steps", 2_000)),
                seed=int(p.get("seed", 0)),
                max_points=int(p.get("max_points", 200_000)),
            )
            return {"rows": search_rows_from_result(rows)}
        if request.kind == "simulate":
            stats = api.simulate(
                _need(p, "levels"), _need(p, "trace"), memo=memo
            )
            return json.loads(json.dumps(stats))  # decouple from the shared memo
        if request.kind == "score":
            res = api.score(
                api.WorkloadSpec.from_jsonable(_need(p, "workload")),
                api.MachineSpec.from_jsonable(_need(p, "machine")),
                _need(p, "placement"),
                fom=p.get("fom"),
                check=bool(p.get("check", False)),
            )
            return _evaluate_result_jsonable(res)
    except api.ApiError as exc:
        raise ProtocolError(str(exc)) from exc
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad {request.kind} payload: {exc!r}") from exc
    raise ProtocolError(f"unknown request kind {request.kind!r}")


def _need(payload: dict[str, Any], key: str) -> Any:
    if key not in payload:
        raise ProtocolError(f"payload missing required field {key!r}")
    return payload[key]
