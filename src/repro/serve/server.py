"""The evaluation server: admission -> tick batcher -> shard pool.

:class:`EvaluationServer` is the embeddable core (what the tests, the
bench, and the HTTP front all drive):

*  ``submit`` performs instant admission control against the bounded
   queue (``QUEUE_FULL`` / ``SHUTTING_DOWN`` are decided on the caller's
   thread — backpressure never waits in line);
*  a single **tick thread** runs the whole service loop: shed expired
   requests, form compatible batches, dispatch them to shards with free
   in-flight windows, collect completions, recover crashed shards;
*  every admitted request is resolved exactly once — served, or rejected
   with an explicit code.  "Accepted but lost" cannot happen: undispatched
   tickets live in the queue, dispatched ones in the pool's in-flight
   ledger, and both ends drain through :meth:`_fulfill`.

Telemetry (when an obs session is open): ``serve.requests{kind}``,
``serve.rejections{code}``, ``serve.batches`` + ``serve.batch_size``,
``serve.wait_ms`` / ``serve.service_ms`` histograms, shard restart /
retry / fallback counters from the pool, and one ``serve.request`` span
per served request on the real timeline (via :meth:`Tracer.record`).

``python -m repro.serve.server`` starts the HTTP front — a thin
stdlib ``ThreadingHTTPServer`` translating ``POST /v1/requests`` to
:meth:`EvaluationServer.request` (see README "Serving" for the curl
example).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro import obs
from repro.obs import active as _obs_active
from repro.serve.batcher import Batch, PendingQueue, Ticket, form_batches, route
from repro.serve.protocol import (
    DEADLINE_EXCEEDED,
    INTERNAL_ERROR,
    INVALID_REQUEST,
    OK,
    QUEUE_FULL,
    SHUTTING_DOWN,
    ProtocolError,
    Request,
    Response,
)
from repro.serve.shards import BatchResult, ShardPool

__all__ = ["ServerConfig", "EvaluationServer", "main"]


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one server instance.

    n_shards:
        Persistent worker processes.  Throughput scales with shards both
        by CPU parallelism and by aggregate warm-cache capacity (each
        shard holds ``shard_cache_entries`` memo entries for its slice of
        the key space).
    max_queue:
        Bound on *admitted but undispatched* requests; admission beyond
        it rejects with ``QUEUE_FULL``.
    max_batch:
        Cap on compatible requests served in one shard round trip.
    tick_s:
        The batching tick: how long arrivals are allowed to coalesce.
    default_deadline_s:
        Deadline for requests that do not carry their own; expiry before
        dispatch sheds with ``DEADLINE_EXCEEDED``.
    batch_timeout_s / max_retries:
        Shard recovery policy (see :class:`ShardPool`).
    max_inflight_per_shard:
        Dispatch window per shard; saturated shards push work back into
        the bounded queue, which is what makes ``QUEUE_FULL`` reachable.
    shard_cache_entries:
        LRU bound of each shard's memo caches (``None`` = unbounded).
    disk_cache:
        Back every shard's memo caches with the shared on-disk
        content-addressed store (:class:`repro.core.memo.DiskMemoStore`),
        so restarted shards — and whole server restarts — start warm.
    """

    n_shards: int = 2
    max_queue: int = 128
    max_batch: int = 8
    tick_s: float = 0.002
    default_deadline_s: float = 30.0
    batch_timeout_s: float = 60.0
    max_retries: int = 2
    max_inflight_per_shard: int = 2
    shard_cache_entries: int | None = 4096
    disk_cache: bool = True


class EvaluationServer:
    """The batched async evaluation service (embeddable core)."""

    def __init__(self, config: ServerConfig | None = None, **overrides: Any) -> None:
        if config is None:
            config = ServerConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a ServerConfig or keyword overrides")
        self.config = config
        self.queue = PendingQueue(config.max_queue)
        self.pool: ShardPool | None = None
        self._lock = threading.Lock()
        self._seq = 0
        self._next_batch = 0
        self._running = False
        self._stopping = False
        self._thread: threading.Thread | None = None
        self._by_batch: dict[int, Batch] = {}
        self.served = 0
        self.rejected = 0
        self._own_session: obs.Session | None = None
        self._prev_session: obs.Session | None = None

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> "EvaluationServer":
        if self._running:
            return self
        # /metrics must answer even when the caller never opened an obs
        # session: install our own for the server's lifetime.  A session
        # the caller already opened wins (and collects our telemetry).
        if _obs_active() is None:
            self._own_session = obs.Session(label="serve")
            self._prev_session = obs.activate(self._own_session)
        self.pool = ShardPool(
            self.config.n_shards,
            cache_entries=self.config.shard_cache_entries,
            batch_timeout_s=self.config.batch_timeout_s,
            max_retries=self.config.max_retries,
            max_inflight=self.config.max_inflight_per_shard,
            disk_cache=self.config.disk_cache,
        )
        self._running = True
        self._stopping = False
        self._thread = threading.Thread(
            target=self._tick_loop, name="serve-tick", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Stop serving.  ``drain=True`` serves everything already
        admitted first; either way new submissions reject immediately."""
        if not self._running:
            return
        self._stopping = True
        if drain:
            deadline = time.monotonic() + timeout_s
            while (
                (len(self.queue) or (self.pool and self.pool.inflight_total))
                and time.monotonic() < deadline
            ):
                time.sleep(self.config.tick_s)
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for ticket in self.queue.drain():
            self._fulfill(ticket, SHUTTING_DOWN, None, "server stopped")
        if self.pool is not None:
            self.pool.stop()
            self.pool = None
        if self._own_session is not None:
            obs.activate(self._prev_session)
            self._own_session = None
            self._prev_session = None

    def __enter__(self) -> "EvaluationServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # the client edge

    def submit(self, request: Request) -> Ticket:
        """Admit (or instantly reject) one request; never blocks.

        The returned ticket resolves exactly once — ``ticket.wait()`` for
        the response.  Rejections (full queue, shutdown) come back as
        already-fulfilled tickets, so callers handle one shape.
        """
        now = time.perf_counter_ns()
        with self._lock:
            self._seq += 1
            seq = self._seq
        if not request.id or not request.trace_id:
            # trace ids are pid-qualified so traces merged across server
            # runs (or processes) never collide
            request = Request(
                request.kind, request.payload,
                request.id or f"r{seq}",
                request.deadline_s,
                request.trace_id or f"t{os.getpid():x}-{seq:x}",
            )
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        ticket = Ticket(
            request=request,
            accepted_ns=now,
            deadline_ns=now + int(deadline_s * 1e9),
        )
        sess = _obs_active()
        if sess is not None:
            sess.metrics.counter("serve.requests", kind=request.kind).inc()
        if self._stopping or not self._running:
            self._fulfill(ticket, SHUTTING_DOWN, None, "server not accepting work")
        elif not self.queue.admit(ticket):
            self._fulfill(
                ticket, QUEUE_FULL, None,
                f"admission queue at capacity ({self.config.max_queue})",
            )
        return ticket

    def request(self, request: Request, timeout_s: float | None = None) -> Response:
        """Submit and wait: the synchronous convenience edge."""
        ticket = self.submit(request)
        timeout = (
            timeout_s
            if timeout_s is not None
            else (request.deadline_s or self.config.default_deadline_s)
            + self.config.batch_timeout_s * (self.config.max_retries + 2)
        )
        response = ticket.wait(timeout)
        if response is None:  # pragma: no cover - server wedged; fail loudly
            return Response(
                id=request.id, kind=request.kind, code=INTERNAL_ERROR,
                detail=f"no response within {timeout}s",
            )
        return response

    def stats(self) -> dict[str, Any]:
        pool = self.pool
        return {
            "running": self._running,
            "queue_depth": len(self.queue),
            "inflight": pool.inflight_total if pool else 0,
            "served": self.served,
            "rejected": self.rejected,
            "shard_restarts": pool.restarts_total if pool else 0,
            "batch_retries": pool.batch_retries if pool else 0,
            "inproc_fallbacks": pool.inproc_fallbacks if pool else 0,
            "config": {
                "n_shards": self.config.n_shards,
                "max_queue": self.config.max_queue,
                "max_batch": self.config.max_batch,
                "tick_s": self.config.tick_s,
            },
        }

    # ------------------------------------------------------------------ #
    # the tick loop (single thread owns batching, dispatch, completion)

    def _tick_loop(self) -> None:
        assert self.pool is not None
        while self._running:
            try:
                self._tick()
            except Exception:  # pragma: no cover - keep serving; log once
                import traceback

                traceback.print_exc()
            time.sleep(self.config.tick_s)

    def _tick(self) -> None:
        pool = self.pool
        if pool is None:
            return
        # 1. completions first: frees in-flight windows for this tick
        for done in pool.poll():
            self._fulfill_batch(done)
        # 2. drain everything waiting; shed what expired in the queue
        #    (checked on the drained snapshot, so a request can never slip
        #    past its deadline into a batch)
        drained = self.queue.drain()
        now = time.perf_counter_ns()
        tickets = [t for t in drained if not t.expired(now)]
        for ticket in drained:
            if ticket.expired(now):
                self._fulfill(
                    ticket, DEADLINE_EXCEEDED, None,
                    "deadline expired before a shard accepted the request",
                )
        # 3. form batches from the live ones; dispatch what fits
        if tickets:
            batches, self._next_batch = form_batches(
                tickets, self.config.max_batch, self._next_batch
            )
            sess = _obs_active()
            for batch in batches:
                shard_index = route(batch.key, pool.n_shards)
                if not pool.can_accept(shard_index):
                    self.queue.putback(batch.tickets)
                    continue
                now = time.perf_counter_ns()
                for t in batch.tickets:
                    t.dispatch_ns = now
                self._by_batch[batch.id] = batch
                pool.dispatch(
                    batch.id, shard_index,
                    [t.request.as_jsonable() for t in batch.tickets],
                )
                if sess is not None:
                    sess.metrics.counter("serve.batches").inc()
                    sess.metrics.histogram("serve.batch_size").observe(len(batch))
        # 4. recovery: crashed/hung shards respawn; exhausted batches
        #    complete in-process right here
        for done in pool.check():
            self._fulfill_batch(done)
        # 5. sample load signals every tick: gauges for "now", plus a
        #    histogram of queue depth so /metrics can report p95 occupancy
        #    (a gauge alone is last-write-wins and usually reads 0 at rest)
        sess = _obs_active()
        if sess is not None:
            depth = len(self.queue)
            sess.metrics.gauge("serve.queue_depth", better="lower").set(depth)
            sess.metrics.histogram("serve.queue_depth_sampled").observe(depth)
            for i, n in enumerate(pool.inflight_by_shard()):
                sess.metrics.gauge(
                    "serve.shard_inflight", better="lower", shard=i
                ).set(n)

    # ------------------------------------------------------------------ #
    # fulfillment

    def _fulfill_batch(self, done: BatchResult) -> None:
        batch = self._by_batch.pop(done.batch_id, None)
        if batch is None:
            return
        for ticket, (code, out) in zip(batch.tickets, done.outs):
            if code == OK:
                self._fulfill(ticket, OK, out, "", done.shard, done.batch_id)
            else:
                self._fulfill(ticket, code, None, str(out), done.shard, done.batch_id)

    def _fulfill(
        self,
        ticket: Ticket,
        code: str,
        result: dict[str, Any] | None,
        detail: str = "",
        shard: int | None = None,
        batch: int | None = None,
    ) -> None:
        now = time.perf_counter_ns()
        dispatched = ticket.dispatch_ns or now
        wait_ms = (dispatched - ticket.accepted_ns) / 1e6
        service_ms = (now - dispatched) / 1e6 if ticket.dispatch_ns else 0.0
        response = Response(
            id=ticket.request.id,
            kind=ticket.request.kind,
            code=code,
            result=result,
            detail=detail,
            shard=shard,
            batch=batch,
            wait_ms=wait_ms,
            service_ms=service_ms,
            trace_id=ticket.request.trace_id,
        )
        ticket.fulfill(response)
        if code == OK:
            self.served += 1
        else:
            self.rejected += 1
        sess = _obs_active()
        if sess is not None:
            m = sess.metrics
            if code == OK:
                m.counter("serve.served", better="higher").inc()
                m.histogram("serve.wait_ms").observe(wait_ms)
                m.histogram("serve.service_ms").observe(service_ms)
            else:
                m.counter("serve.rejections", code=code).inc()
            sess.tracer.record(
                "serve.request",
                start_ns=ticket.accepted_ns,
                dur_ns=now - ticket.accepted_ns,
                cat="serve",
                kind=ticket.request.kind,
                code=code,
                shard=shard,
                trace_id=ticket.request.trace_id or None,
            )


# ---------------------------------------------------------------------- #
# the HTTP front (stdlib only, threads; each handler thread blocks on its
# ticket while the tick thread does the actual serving)


def _metrics_doc(server: EvaluationServer) -> dict[str, Any]:
    """The ``/metrics`` JSON exposition: the full repro-obs-metrics/1 dump
    of the active session (counters carry ``process`` labels for series
    merged from shard workers) plus a ``latency_ms`` convenience block
    with p50/p95/p99 pulled from the serve histograms."""
    sess = _obs_active()
    if sess is None:  # pragma: no cover - the server installs its own
        return {"enabled": False, "detail": "no obs session active"}
    doc = sess.metrics_dump(extra={"stats": server.stats()})
    doc["enabled"] = True
    latency: dict[str, dict[str, float]] = {}
    for short, key in (
        ("wait", "serve.wait_ms"),
        ("service", "serve.service_ms"),
        ("queue_depth", "serve.queue_depth_sampled"),
    ):
        h = doc["histograms"].get(key)
        if h and h.get("count"):
            latency[short] = {
                "p50": h["p50"], "p95": h["p95"], "p99": h["p99"],
                "mean": h["mean"], "max": h["max"], "count": h["count"],
            }
    doc["latency_ms"] = latency
    return doc


def _healthz_doc(server: EvaluationServer) -> dict[str, Any]:
    """The ``/healthz`` JSON: overall ok, per-shard liveness, and the
    shared disk-store status (enabled/writable/entry counts)."""
    pool = server.pool
    shards = pool.liveness() if pool is not None else []
    disk: dict[str, Any] = {"enabled": server.config.disk_cache}
    if server.config.disk_cache:
        from repro.core.memo import DiskMemoStore

        stores = {ns: DiskMemoStore(ns) for ns in ("serve-search", "serve-memo")}
        disk["writable"] = all(s.enabled for s in stores.values())
        disk["root"] = str(next(iter(stores.values())).root)
        disk["entries"] = {ns: len(s) for ns, s in stores.items()}
    return {
        "ok": bool(server.stats()["running"]),
        **server.stats(),
        "shards": shards,
        "shards_alive": sum(1 for s in shards if s["alive"]),
        "disk_store": disk,
    }


def _make_handler(server: EvaluationServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args: Any) -> None:  # quiet by default
            pass

        def _send(self, status: int, doc: dict[str, Any]) -> None:
            body = json.dumps(doc).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            if self.path == "/healthz":
                self._send(200, _healthz_doc(server))
            elif self.path == "/metrics":
                self._send(200, _metrics_doc(server))
            elif self.path == "/stats":
                self._send(200, server.stats())
            else:
                self._send(404, {"error": f"no such endpoint {self.path!r}"})

        def do_POST(self) -> None:
            if self.path not in ("/v1/requests", "/"):
                self._send(404, {"error": f"no such endpoint {self.path!r}"})
                return
            doc: Any = None
            try:
                length = int(self.headers.get("Content-Length", "0"))
                doc = json.loads(self.rfile.read(length) or b"{}")
                request = Request.from_jsonable(doc)
            except (ProtocolError, json.JSONDecodeError, ValueError) as exc:
                rid = str(doc.get("id", "")) if isinstance(doc, dict) else ""
                self._send(
                    400,
                    Response(
                        id=rid, kind="", code=INVALID_REQUEST, detail=str(exc)
                    ).as_jsonable(),
                )
                return
            response = server.request(request)
            status = 200 if response.ok else (429 if response.shed else 400)
            self._send(status, response.as_jsonable())

    return Handler


class _HttpFront(ThreadingHTTPServer):
    daemon_threads = True
    # the default listen backlog (5) resets bursts of concurrent clients
    # long before the admission queue gets a say; raise it so backpressure
    # is answered by QUEUE_FULL, not a TCP connection reset
    request_queue_size = 128


def serve_http(
    server: EvaluationServer, host: str = "127.0.0.1", port: int = 8077
) -> ThreadingHTTPServer:
    """Bind the HTTP front to an (already started) evaluation server.

    Returns the bound ``ThreadingHTTPServer``; call ``serve_forever`` (or
    run it from a thread) and ``shutdown`` like any stdlib server.  Port
    0 picks a free port (``httpd.server_address[1]`` has the choice).
    """
    return _HttpFront((host, port), _make_handler(server))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Batched async evaluation service over the repro.api facade.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--max-queue", type=int, default=128)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--tick-ms", type=float, default=2.0)
    parser.add_argument("--deadline-s", type=float, default=30.0)
    parser.add_argument(
        "--cache-entries", type=int, default=4096,
        help="per-shard memo LRU bound (0 = unbounded)",
    )
    parser.add_argument(
        "--no-disk-cache", action="store_true",
        help="disable the shared on-disk memo store tier",
    )
    parser.add_argument(
        "--obs-out", default=None,
        help="write a Chrome trace + metrics dump to this directory on exit",
    )
    args = parser.parse_args(argv)

    config = ServerConfig(
        n_shards=args.shards,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        tick_s=args.tick_ms / 1e3,
        default_deadline_s=args.deadline_s,
        shard_cache_entries=args.cache_entries or None,
        disk_cache=not args.no_disk_cache,
    )
    ctx = (
        obs.session(label="repro-serve", out_dir=args.obs_out)
        if args.obs_out
        else None
    )
    server = EvaluationServer(config)
    try:
        if ctx is not None:
            ctx.__enter__()
        server.start()
        httpd = serve_http(server, args.host, args.port)
        host, port = httpd.server_address[:2]
        print(
            f"repro-serve: {config.n_shards} shard(s) on http://{host}:{port} "
            f"(POST /v1/requests, GET /healthz)",
            flush=True,
        )
        try:
            httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            httpd.shutdown()
            httpd.server_close()
    finally:
        server.stop()
        if ctx is not None:
            ctx.__exit__(None, None, None)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
