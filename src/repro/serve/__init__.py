"""repro.serve — the batched async evaluation service.

The serving layer turns the :mod:`repro.api` facade into a service:
JSON requests (``evaluate`` / ``search`` / ``simulate`` / ``score``) are
admitted into a bounded queue, coalesced per tick into compatible
batches, and routed by content hash to a pool of persistent worker
processes holding warm memo caches.  Backpressure is explicit — a full
queue, an expired deadline, or a draining server answer with a rejection
code, never a silent drop — and a crashed shard never loses an accepted
request (in-flight ledger + bounded retries + deterministic in-process
fallback).  Served results are **bit-identical** to direct library
calls, which the differential oracle enforces in the serve tests.

Layering (each module usable on its own):

* :mod:`~repro.serve.protocol` — request/response schema, rejection
  codes, JSON converters, and the one executor shards and fallbacks share;
* :mod:`~repro.serve.batcher` — bounded admission queue, deadlines,
  batch formation, content-hash routing;
* :mod:`~repro.serve.shards` — the persistent warm-cache worker pool and
  its crash/hang recovery state machine (PR-3 fault plans apply);
* :mod:`~repro.serve.server` — the tick loop tying it together, plus the
  stdlib HTTP front (``repro-serve`` / ``python -m repro.serve.server``);
* :mod:`~repro.serve.client` — :class:`LocalClient` (in-process) and
  :class:`HttpClient` (urllib), same typed surface.

See DESIGN.md §8 and the README "Serving" section.
"""

from __future__ import annotations

from repro.serve.protocol import (
    DEADLINE_EXCEEDED,
    INTERNAL_ERROR,
    INVALID_REQUEST,
    KINDS,
    OK,
    QUEUE_FULL,
    REJECTION_CODES,
    SHUTTING_DOWN,
    ProtocolError,
    Request,
    Response,
    execute_request,
)
from repro.serve.server import EvaluationServer, ServerConfig, serve_http
from repro.serve.client import HttpClient, LocalClient, ServeError

__all__ = [
    "KINDS",
    "OK",
    "QUEUE_FULL",
    "DEADLINE_EXCEEDED",
    "SHUTTING_DOWN",
    "INVALID_REQUEST",
    "INTERNAL_ERROR",
    "REJECTION_CODES",
    "ProtocolError",
    "Request",
    "Response",
    "execute_request",
    "EvaluationServer",
    "ServerConfig",
    "serve_http",
    "LocalClient",
    "HttpClient",
    "ServeError",
]
