"""Admission queue, deadlines, and per-tick batch formation.

The server admits requests into a **bounded** queue (backpressure: a full
queue rejects immediately with ``QUEUE_FULL``), then once per tick drains
whatever arrived and groups *compatible* requests into batches.  Two
requests are compatible when they share a batch key::

    (kind, workload-ish identity, machine geometry)

i.e. work a shard can serve from one warm context: a batch of search
requests over the same (workload, grid) compiles the graph once and hits
the same memo partition; mixed kinds or mixed workloads never share a
batch.  The key is also what routes a batch to its shard —
:func:`route` hashes it with SHA-256, so the same workload always lands
on the same shard and that shard's caches stay hot for it (shard-affinity
caching, the property the C20 bench measures).

Deadlines are enforced at the queue: a request whose deadline passes
before a shard accepts its batch is shed with ``DEADLINE_EXCEEDED`` — an
explicit answer, never a silent drop.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.serve.protocol import Request, Response

__all__ = ["Ticket", "PendingQueue", "Batch", "batch_key", "form_batches", "route"]


@dataclass
class Ticket:
    """One admitted request's journey through the server.

    Created at admission; fulfilled exactly once (with a served result or
    an explicit rejection).  ``accepted_ns``/``dispatch_ns`` are
    ``perf_counter_ns`` stamps used for wait/service attribution and for
    the per-request obs span.
    """

    request: Request
    accepted_ns: int
    deadline_ns: int | None
    response: Response | None = None
    dispatch_ns: int | None = None
    _done: threading.Event = field(default_factory=threading.Event)

    def fulfill(self, response: Response) -> None:
        if self.response is None:  # first answer wins; never double-fulfill
            self.response = response
            self._done.set()

    @property
    def fulfilled(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> Response | None:
        """Block until the ticket resolves; None only on timeout."""
        self._done.wait(timeout)
        return self.response

    def expired(self, now_ns: int) -> bool:
        return self.deadline_ns is not None and now_ns > self.deadline_ns


class PendingQueue:
    """The bounded admission queue (thread-safe).

    ``max_size`` bounds *undispatched* work: requests waiting here count;
    requests already on a shard do not (the shard pool bounds those via
    its per-shard in-flight window).  ``admit`` never blocks — admission
    control must answer instantly for backpressure to mean anything.
    """

    def __init__(self, max_size: int) -> None:
        if max_size < 1:
            raise ValueError(f"queue bound must be positive, got {max_size}")
        self.max_size = max_size
        self._lock = threading.Lock()
        self._items: list[Ticket] = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def admit(self, ticket: Ticket) -> bool:
        """Append if there is room; False means reject with QUEUE_FULL."""
        with self._lock:
            if len(self._items) >= self.max_size:
                return False
            self._items.append(ticket)
            return True

    def putback(self, tickets: list[Ticket]) -> None:
        """Return drained-but-undispatched tickets to the queue head,
        preserving arrival order (used when every shard is saturated)."""
        if tickets:
            with self._lock:
                self._items[:0] = tickets

    def drain(self) -> list[Ticket]:
        with self._lock:
            items, self._items = self._items, []
            return items

    def shed_expired(self, now_ns: int | None = None) -> tuple[list[Ticket], list[Ticket]]:
        """Split the queue into (live, expired); expired leave the queue."""
        now = time.perf_counter_ns() if now_ns is None else now_ns
        with self._lock:
            live = [t for t in self._items if not t.expired(now)]
            expired = [t for t in self._items if t.expired(now)]
            self._items = live
            return live, expired


# ---------------------------------------------------------------------- #
# batch formation


@dataclass
class Batch:
    """Compatible requests served together by one shard in one round trip."""

    id: int
    key: tuple
    tickets: list[Ticket]

    def __len__(self) -> int:
        return len(self.tickets)


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=repr)


def batch_key(request: Request) -> tuple:
    """The compatibility key: kind + the payload fields that pin which
    warm context serves the request.

    ``evaluate``/``search``/``score`` group by (workload, machine);
    ``simulate`` groups by hierarchy configuration.  Everything else in
    the payload (FoM weights, seeds, placements, traces) varies freely
    within a batch.
    """
    p = request.payload
    if request.kind == "simulate":
        return (request.kind, _canonical(p.get("levels")))
    return (
        request.kind,
        _canonical(p.get("workload")),
        _canonical(p.get("machine")),
    )


def form_batches(
    tickets: Iterable[Ticket], max_batch: int, next_id: int
) -> tuple[list[Batch], int]:
    """Group tickets by batch key, splitting groups at ``max_batch``.

    Grouping preserves arrival order within a key, and batch ids are
    assigned in first-arrival order of their key — deterministic given
    the admission order, which the batching-invariance property test
    relies on.  Returns (batches, next unused batch id).
    """
    if max_batch < 1:
        raise ValueError(f"max_batch must be positive, got {max_batch}")
    groups: dict[tuple, list[Ticket]] = {}
    for t in tickets:
        groups.setdefault(batch_key(t.request), []).append(t)
    batches: list[Batch] = []
    for key, group in groups.items():
        for i in range(0, len(group), max_batch):
            batches.append(Batch(next_id, key, group[i : i + max_batch]))
            next_id += 1
    return batches, next_id


def route(key: tuple, n_shards: int) -> int:
    """Stable shard index for a batch key.

    SHA-256 rather than ``hash()``: Python's string hashing is salted per
    process, and routing must agree across restarts so warm state is
    actually reused (and so tests can predict placement).
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    digest = hashlib.sha256(_canonical(list(key)).encode()).digest()
    return int.from_bytes(digest[:8], "big") % n_shards
