"""Differential oracle: the fast search path must equal the reference path.

"Equal" here is strict: the same best mapping (every place, time, and
off-chip flag), and the same :class:`~repro.core.cost.CostReport` down to
float bit-identity.  The fast engine is engineered for that (it re-sums
per-edge energies in the reference accumulation order rather than keeping
running deltas), so any discrepancy at all means a real bug — there is no
tolerance to hide it in.

Failures render a field-by-field diff, because "assert False" with two
40-field reports is how regressions get ignored.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.cost import CostReport
from repro.core.mapping import Mapping

__all__ = [
    "SearchEquivalenceError",
    "cost_report_diff",
    "assert_cost_reports_equal",
    "assert_mappings_equal",
    "assert_search_equivalent",
]


class SearchEquivalenceError(AssertionError):
    """The fast and the reference search disagreed."""


#: CostReport scalar fields compared by the oracle (liveness handled
#: separately).  Derived properties are included on purpose: they are what
#: benches and FoMs actually consume.
_REPORT_FIELDS = (
    "cycles",
    "time_ps",
    "energy_compute_fj",
    "energy_local_fj",
    "energy_onchip_fj",
    "energy_offchip_fj",
    "energy_total_fj",
    "energy_transport_fj",
    "communication_fraction",
    "footprint_words",
    "n_compute",
    "n_edges",
    "places_used",
)


def cost_report_diff(
    a: CostReport, b: CostReport, a_name: str = "fast", b_name: str = "reference"
) -> list[str]:
    """Human-readable lines for every field where ``a`` != ``b``.

    Comparison is exact (``==`` on ints and floats); an empty list means
    the reports are equivalent.
    """
    lines: list[str] = []
    for field_name in _REPORT_FIELDS:
        va, vb = getattr(a, field_name), getattr(b, field_name)
        if va != vb:
            lines.append(f"{field_name}: {a_name}={va!r} {b_name}={vb!r}")
    la, lb = a.liveness, b.liveness
    if la.max_in_flight != lb.max_in_flight:
        lines.append(
            f"liveness.max_in_flight: {a_name}={la.max_in_flight!r} "
            f"{b_name}={lb.max_in_flight!r}"
        )
    if la.max_live_per_place != lb.max_live_per_place:
        places = sorted(
            set(la.max_live_per_place) | set(lb.max_live_per_place)
        )
        for p in places:
            pa = la.max_live_per_place.get(p)
            pb = lb.max_live_per_place.get(p)
            if pa != pb:
                lines.append(
                    f"liveness.max_live_per_place[{p}]: "
                    f"{a_name}={pa!r} {b_name}={pb!r}"
                )
    return lines


def assert_cost_reports_equal(
    a: CostReport,
    b: CostReport,
    a_name: str = "fast",
    b_name: str = "reference",
    context: str = "",
) -> None:
    lines = cost_report_diff(a, b, a_name, b_name)
    if lines:
        where = f" [{context}]" if context else ""
        raise SearchEquivalenceError(
            f"CostReports differ{where} ({len(lines)} fields):\n  "
            + "\n  ".join(lines)
        )


def assert_mappings_equal(
    a: Mapping,
    b: Mapping,
    a_name: str = "fast",
    b_name: str = "reference",
    context: str = "",
) -> None:
    """Node-for-node space-time equality, reporting the first divergences."""
    where = f" [{context}]" if context else ""
    if a.n_nodes != b.n_nodes:
        raise SearchEquivalenceError(
            f"mapping sizes differ{where}: {a_name}={a.n_nodes} {b_name}={b.n_nodes}"
        )
    lines: list[str] = []
    for arr_name in ("x", "y", "time", "offchip"):
        aa, bb = getattr(a, arr_name), getattr(b, arr_name)
        if not np.array_equal(aa, bb):
            for nid in np.nonzero(aa != bb)[0][:5]:
                lines.append(
                    f"{arr_name}[{int(nid)}]: {a_name}={aa[nid]!r} {b_name}={bb[nid]!r}"
                )
    if lines:
        raise SearchEquivalenceError(
            f"mappings differ{where} (first mismatches):\n  " + "\n  ".join(lines)
        )


def _as_rows(result: object) -> Sequence:
    if isinstance(result, (list, tuple)):
        return result
    return (result,)


def assert_search_equivalent(
    fast: object,
    reference: object,
    context: str = "",
) -> None:
    """The differential oracle: ``fast`` and ``reference`` search outputs
    must be indistinguishable.

    Accepts either single :class:`~repro.core.search.SearchResult` rows
    (``exhaustive_search`` / ``anneal``) or whole result lists
    (``sweep_placements``); lists must match row for row — same labels in
    the same order, same FoM floats, same mappings, same reports.
    """
    fast_rows, ref_rows = _as_rows(fast), _as_rows(reference)
    where = f" [{context}]" if context else ""
    if len(fast_rows) != len(ref_rows):
        raise SearchEquivalenceError(
            f"result counts differ{where}: fast={len(fast_rows)} "
            f"reference={len(ref_rows)}"
        )
    for i, (f, r) in enumerate(zip(fast_rows, ref_rows)):
        ctx = f"{context}row {i} ({r.label})" if context == "" else (
            f"{context}: row {i} ({r.label})"
        )
        if f.label != r.label:
            raise SearchEquivalenceError(
                f"labels differ [{ctx}]: fast={f.label!r} reference={r.label!r}"
            )
        if f.fom != r.fom:
            raise SearchEquivalenceError(
                f"figures of merit differ [{ctx}]: fast={f.fom!r} "
                f"reference={r.fom!r}"
            )
        assert_mappings_equal(f.mapping, r.mapping, context=ctx)
        assert_cost_reports_equal(f.cost, r.cost, context=ctx)
