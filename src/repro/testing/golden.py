"""Golden-regression fixtures for the cost model's canonical workloads.

The cost model is the contract every search result rests on, so its
numbers for the paper's own examples are pinned as checked-in JSON:

* ``edit_distance_wavefront`` — the Section-3 worked example: the
  edit-distance recurrence on P processors with the "marching
  anti-diagonals" wavefront mapping.
* ``matmul_broadcast`` / ``matmul_systolic`` — the F&M matmul in both
  dataflows under the output-stationary owner mapping.

``check_golden`` compares a fresh evaluation against the fixture
**exactly** (JSON round-trips Python floats losslessly, so there is no
tolerance to tune) and raises :class:`GoldenMismatch` with a per-field
drift diff.  After an *intentional* model change, regenerate with::

    PYTHONPATH=src python -m repro.testing.golden --regen

and review the fixture diff in git — that diff is the change's measurable
blast radius.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Callable, Iterator

from repro.core.cost import CostReport, evaluate_cost
from repro.core.mapping import GridSpec

__all__ = [
    "GoldenMismatch",
    "cost_report_to_jsonable",
    "check_golden",
    "golden_scenarios",
    "DEFAULT_FIXTURE_DIR",
]

#: Where the checked-in fixtures live, relative to the repo root.
DEFAULT_FIXTURE_DIR = pathlib.Path(__file__).resolve().parents[3] / "tests" / "golden"


class GoldenMismatch(AssertionError):
    """A fresh evaluation drifted from its checked-in golden fixture."""


def cost_report_to_jsonable(report: CostReport) -> dict[str, Any]:
    """A CostReport as a stable, JSON-serializable dict.

    Includes the derived totals (what FoMs consume) and the liveness
    summary with places flattened to ``"x,y"`` keys in sorted order.
    """
    return {
        "cycles": int(report.cycles),
        "time_ps": float(report.time_ps),
        "energy_compute_fj": float(report.energy_compute_fj),
        "energy_local_fj": float(report.energy_local_fj),
        "energy_onchip_fj": float(report.energy_onchip_fj),
        "energy_offchip_fj": float(report.energy_offchip_fj),
        "energy_total_fj": float(report.energy_total_fj),
        "energy_transport_fj": float(report.energy_transport_fj),
        "communication_fraction": float(report.communication_fraction),
        "footprint_words": int(report.footprint_words),
        "n_compute": int(report.n_compute),
        "n_edges": int(report.n_edges),
        "places_used": int(report.places_used),
        "liveness": {
            "max_in_flight": int(report.liveness.max_in_flight),
            "max_live_per_place": {
                f"{x},{y}": int(v)
                for (x, y), v in sorted(report.liveness.max_live_per_place.items())
            },
        },
    }


def _flatten(doc: Any, prefix: str = "") -> Iterator[tuple[str, Any]]:
    if isinstance(doc, dict):
        for k in sorted(doc):
            yield from _flatten(doc[k], f"{prefix}{k}.")
    else:
        yield prefix.rstrip("."), doc


def _diff_jsonable(got: Any, want: Any) -> list[str]:
    """Leaf-by-leaf diff of two jsonable docs, as readable lines."""
    g = dict(_flatten(got))
    w = dict(_flatten(want))
    lines = []
    for key in sorted(set(g) | set(w)):
        gv, wv = g.get(key, "<missing>"), w.get(key, "<missing>")
        if gv != wv:
            lines.append(f"{key}: got {gv!r}, fixture has {wv!r}")
    return lines


def check_golden(
    name: str,
    payload: dict[str, Any],
    fixture_dir: pathlib.Path | str = DEFAULT_FIXTURE_DIR,
) -> None:
    """Compare ``payload`` against fixture ``<fixture_dir>/<name>.json``.

    Raises :class:`GoldenMismatch` with a drift diff on any difference, or
    with regeneration instructions if the fixture is missing.
    """
    path = pathlib.Path(fixture_dir) / f"{name}.json"
    if not path.exists():
        raise GoldenMismatch(
            f"golden fixture {path} does not exist — generate it with\n"
            "  PYTHONPATH=src python -m repro.testing.golden --regen"
        )
    want = json.loads(path.read_text())
    # round-trip the payload so both sides saw the same JSON normalization
    got = json.loads(json.dumps(payload))
    lines = _diff_jsonable(got, want)
    if lines:
        raise GoldenMismatch(
            f"cost model drifted from golden fixture {name!r} "
            f"({len(lines)} fields):\n  "
            + "\n  ".join(lines)
            + "\nIf the change is intentional, regenerate with\n"
            "  PYTHONPATH=src python -m repro.testing.golden --regen\n"
            "and review the fixture diff."
        )


def golden_scenarios() -> dict[str, Callable[[], dict[str, Any]]]:
    """Name -> thunk producing the jsonable payload for each scenario.

    Thunks (not values) so the CLI and the tests build only what they ask
    for, and so import stays cheap.
    """

    def edit_distance_wavefront() -> dict[str, Any]:
        from repro.algorithms.edit_distance import (
            edit_distance_graph,
            min_length_for_wavefront,
            wavefront_mapping,
        )

        p = 4
        grid = GridSpec(p, 1)
        n = max(8, min_length_for_wavefront(p, grid))
        graph = edit_distance_graph(n, cell="paper")
        mapping = wavefront_mapping(graph, n, p, grid)
        payload = cost_report_to_jsonable(evaluate_cost(graph, mapping, grid))
        payload["scenario"] = {"algorithm": "edit_distance", "cell": "paper",
                               "n": n, "p": p, "mapping": "wavefront"}
        return payload

    def _matmul(systolic: bool) -> dict[str, Any]:
        from repro.algorithms.matmul_fm import matmul_graph, owner_mapping

        n = 4
        grid = GridSpec(n, n)
        graph = matmul_graph(n, systolic=systolic)
        mapping = owner_mapping(graph, n, grid)
        payload = cost_report_to_jsonable(evaluate_cost(graph, mapping, grid))
        payload["scenario"] = {"algorithm": "matmul_fm", "n": n,
                               "systolic": systolic, "mapping": "owner"}
        return payload

    return {
        "edit_distance_wavefront": edit_distance_wavefront,
        "matmul_broadcast": lambda: _matmul(False),
        "matmul_systolic": lambda: _matmul(True),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.golden",
        description="Check or regenerate the golden cost-model fixtures.",
    )
    parser.add_argument(
        "--regen", action="store_true",
        help="rewrite the fixtures from the current cost model",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_FIXTURE_DIR,
        help=f"fixture directory (default: {DEFAULT_FIXTURE_DIR})",
    )
    args = parser.parse_args(argv)

    failures = 0
    for name, build in sorted(golden_scenarios().items()):
        payload = build()
        if args.regen:
            args.out.mkdir(parents=True, exist_ok=True)
            path = args.out / f"{name}.json"
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            print(f"wrote {path}")
        else:
            try:
                check_golden(name, payload, args.out)
            except GoldenMismatch as exc:
                failures += 1
                print(f"FAIL {name}:\n{exc}\n", file=sys.stderr)
            else:
                print(f"ok   {name}")
    if failures:
        print(f"{failures} golden scenario(s) drifted", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
