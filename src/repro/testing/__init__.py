"""repro.testing — first-class oracles for the fast/reference split.

The search engine (:mod:`repro.core.search`) ships two implementations of
everything hot: a simple **reference** path and a memoized / incremental /
parallel **fast** path.  That split is only safe if equivalence is checked
mechanically, all the time — so the checkers live here in the library
proper, not in the test tree, where benches, CI smoke steps, and downstream
users can call them too.

* :mod:`repro.testing.oracle` — differential equivalence:
  :func:`assert_search_equivalent` (same best mapping, same
  :class:`~repro.core.cost.CostReport`, field for field), plus the
  mapping/report comparators it is built from.
* :mod:`repro.testing.golden` — golden-regression fixtures: JSON snapshots
  of CostReports for canonical workloads (the paper's edit-distance worked
  example, the F&M matmul), compared exactly and diffed readably when a
  cost field drifts.  ``python -m repro.testing.golden --regen``
  regenerates the checked-in fixtures after an intentional model change.
"""

from repro.testing.golden import (
    GoldenMismatch,
    check_golden,
    cost_report_to_jsonable,
    golden_scenarios,
)
from repro.testing.oracle import (
    SearchEquivalenceError,
    assert_cost_reports_equal,
    assert_mappings_equal,
    assert_search_equivalent,
    cost_report_diff,
)

__all__ = [
    "SearchEquivalenceError",
    "assert_cost_reports_equal",
    "assert_mappings_equal",
    "assert_search_equivalent",
    "cost_report_diff",
    "GoldenMismatch",
    "check_golden",
    "cost_report_to_jsonable",
    "golden_scenarios",
]
