"""Parallel sorting: mergesort (fork-join) and sample sort (distributed).

Sorting is SPAA's drosophila; the panel invokes it implicitly through the
work-depth and communication arguments.  Two formulations:

*  :func:`mergesort_fork_join` — recursive mergesort in the fork-join DSL.
   With the parallel (divide-and-conquer, binary-search) merge the span is
   O(log^3 n)-ish while work stays O(n log n); with serial merges the span
   degrades to O(n) — the merge choice is the classic span ablation and
   both variants are provided.
*  :func:`sample_sort` — the distributed-memory workhorse: sample
   splitters, partition, exchange, local sort.  Returns per-processor
   bucket sizes and the exchanged word count — the communication-volume
   figures Yelick's statement cares about.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.runtime.fork_join import AnalysisResult, ForkJoin, analyze

__all__ = ["mergesort_fork_join", "sample_sort", "SampleSortStats"]


def _merge_serial(fj: ForkJoin, a: list, b: list) -> list:
    out = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] <= b[j]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    fj.work(max(1, len(a) + len(b)))
    return out


def _merge_parallel(fj: ForkJoin, a: list, b: list, grain: int) -> list:
    """Divide-and-conquer merge: split a at its median, binary-search b.

    Work O(n), span O(log^2 n) — the merge that makes mergesort's span
    polylogarithmic.
    """
    if len(a) < len(b):
        a, b = b, a
    if len(a) + len(b) <= grain or not b:
        return _merge_serial(fj, a, b)
    mid = len(a) // 2
    pivot = a[mid]
    cut = bisect.bisect_left(b, pivot)
    fj.work(max(1, int(np.log2(len(b) + 1))))
    left = fj.spawn(lambda f: _merge_parallel(f, a[:mid], b[:cut], grain))
    right = _merge_parallel(fj, a[mid:], b[cut:], grain)
    fj.sync()
    return left.value + right


def mergesort_fork_join(
    values: list, grain: int = 4, parallel_merge: bool = True
) -> AnalysisResult:
    """Fork-join mergesort; returns values + the measured work/span DAG."""

    def rec(fj: ForkJoin, xs: list) -> list:
        if len(xs) <= grain:
            fj.work(max(1, len(xs)))
            return sorted(xs)
        mid = len(xs) // 2
        left = fj.spawn(rec, xs[:mid])
        right = rec(fj, xs[mid:])
        fj.sync()
        if parallel_merge:
            return _merge_parallel(fj, left.value, right, grain)
        return _merge_serial(fj, left.value, right)

    return analyze(rec, list(values))


@dataclass
class SampleSortStats:
    """Communication accounting for one sample-sort run."""

    bucket_sizes: list[int]
    words_exchanged: int
    splitters: list

    @property
    def imbalance(self) -> float:
        """max bucket / ideal bucket — 1.0 is perfect balance."""
        total = sum(self.bucket_sizes)
        if total == 0:
            return 1.0
        ideal = total / len(self.bucket_sizes)
        return max(self.bucket_sizes) / ideal


def sample_sort(
    values: np.ndarray | list,
    p: int,
    oversample: int = 8,
    seed: int = 0,
) -> tuple[np.ndarray, SampleSortStats]:
    """Sample sort over ``p`` virtual processors.

    Each processor owns a contiguous n/p block; ``oversample * p`` samples
    elect p-1 splitters; every element moves to its bucket's processor
    (counted as one word unless it is already home); buckets sort locally.
    Returns (sorted array, stats).
    """
    arr = np.asarray(values)
    n = arr.size
    if p < 1:
        raise ValueError("p must be >= 1")
    if n == 0:
        return arr.copy(), SampleSortStats([0] * p, 0, [])
    rng = np.random.default_rng(seed)
    k = min(n, max(p * oversample, p))
    sample = np.sort(rng.choice(arr, size=k, replace=False))
    # p-1 evenly spaced splitters
    pos = (np.arange(1, p) * k) // p
    splitters = sample[pos]

    bucket_of = np.searchsorted(splitters, arr, side="right")
    home = np.minimum(np.arange(n) // max(1, -(-n // p)), p - 1)
    words_exchanged = int((bucket_of != home).sum())
    bucket_sizes = np.bincount(bucket_of, minlength=p).tolist()

    out = np.concatenate(
        [np.sort(arr[bucket_of == b]) for b in range(p)]
    )
    return out, SampleSortStats(bucket_sizes, words_exchanged, splitters.tolist())
