"""Stencils and systolic dataflows.

Paper, Section 3: "...weight-stationary dataflows for DNN accelerators,
systolic arrays, among others" — the classic examples of mappings that
keep the heavy operand still and march the data past it.

Provided:

*  :func:`stencil_reference` — T timesteps of a 3-point weighted stencil
   (the 1-D heat/convolution kernel) in numpy;
*  :func:`stencil_graph` — the same computation as a dataflow graph with
   ``index=(i, t)``;
*  two mapping builders over a 1-D grid of P PEs:

   -  :func:`owner_computes_mapping` — cell i always at PE owner(i); each
      timestep, edge cells exchange halos with neighbours (communication
      every step, weights implicitly resident — the *weight-stationary*
      layout);
   -  :func:`time_multiplexed_mapping` — the "today's abstraction"
      strawman: everything on one PE (no communication, no parallelism).

   The C14 search bench also runs the generic placement sweep over this
   graph; the owner-computes mapping should be on the Pareto frontier.

*  :func:`halo_words` — analytic halo-exchange volume: P * 2 * T words
   regardless of n, versus the time-multiplexed mapping's zero — the
   surface-to-volume argument in one number.
"""

from __future__ import annotations

import numpy as np

from repro.core.default_mapper import schedule_asap, serial_mapping
from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping

__all__ = [
    "stencil_reference",
    "stencil_graph",
    "owner_computes_mapping",
    "time_multiplexed_mapping",
    "halo_words",
]


def stencil_reference(
    x: np.ndarray, steps: int, w: tuple[float, float, float] = (1, 2, 1)
) -> np.ndarray:
    """T steps of ``y[i] = wl*x[i-1] + wc*x[i] + wr*x[i+1]`` with zero
    boundaries (integer weights keep exact arithmetic for verification)."""
    cur = np.asarray(x).astype(np.int64)
    wl, wc, wr = (int(v) for v in w)
    for _ in range(steps):
        nxt = wc * cur.copy()
        nxt[1:] += wl * cur[:-1]
        nxt[:-1] += wr * cur[1:]
        cur = nxt
    return cur


def stencil_graph(
    n: int, steps: int, w: tuple[int, int, int] = (1, 2, 1)
) -> DataflowGraph:
    """The stencil as a dataflow graph.

    Each cell (i, t) is built from three multiplies and two adds; weight
    constants carry the cell's index so mappings co-locate them (weight-
    stationary by construction).  Outputs: ``("y", i)`` after the last
    step.
    """
    if n < 1 or steps < 0:
        raise ValueError("need n >= 1 and steps >= 0")
    wl, wc, wr = (int(v) for v in w)
    g = DataflowGraph()
    cur = [g.input("x", (i,)) for i in range(n)]
    for t in range(steps):
        nxt: list[int] = []
        for i in range(n):
            idx = (i, t)
            cw = g.const(wc, index=idx)
            acc = g.op("*", cw, cur[i], index=idx, group="st")
            if i > 0:
                lw = g.const(wl, index=idx)
                lt = g.op("*", lw, cur[i - 1], index=idx, group="st")
                acc = g.op("+", acc, lt, index=idx, group="st")
            if i < n - 1:
                rw = g.const(wr, index=idx)
                rt = g.op("*", rw, cur[i + 1], index=idx, group="st")
                acc = g.op("+", acc, rt, index=idx, group="st")
            nxt.append(acc)
        cur = nxt
    for i in range(n):
        g.mark_output(cur[i], ("y", i))
    return g


def owner_computes_mapping(
    graph: DataflowGraph,
    n: int,
    p: int,
    grid: GridSpec,
    *,
    inputs_offchip: bool = True,
) -> Mapping:
    """Block-owner placement: all of cell i's nodes at PE floor(i/(n/p)).

    ASAP-scheduled, so halo transit (one hop per step at block edges) is
    accounted exactly.  With ``inputs_offchip=False`` the initial state is
    pre-staged at its owners, so every timestep (including the first)
    exchanges halos on chip.
    """
    if p < 1 or p > grid.n_places:
        raise ValueError(f"p must be in [1, {grid.n_places}]")
    block = max(1, -(-n // p))

    def place(nid: int) -> tuple[int, int]:
        idx = graph.index[nid]
        if idx is None:
            return (0, 0)
        pe = min(int(idx[0]) // block, p - 1)
        return (pe % grid.width, pe // grid.width)

    return schedule_asap(graph, grid, place, inputs_offchip=inputs_offchip)


def time_multiplexed_mapping(graph: DataflowGraph, grid: GridSpec) -> Mapping:
    """Everything on PE (0, 0): zero communication, zero parallelism."""
    return serial_mapping(graph, grid)


def halo_words(p: int, steps: int) -> int:
    """Words crossing PE boundaries under owner-computes: two per internal
    boundary per step."""
    if p < 1:
        raise ValueError("p must be >= 1")
    return 2 * (p - 1) * steps
