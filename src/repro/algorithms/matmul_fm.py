"""Matrix multiply as Function-and-Mapping: broadcast vs systolic dataflows.

Section 3 names "weight-stationary dataflows for DNN accelerators, systolic
arrays" as prior art the F&M model generalizes.  This module expresses an
n x n matmul as a dataflow graph two ways and maps both onto an n x n PE
grid with PE (j, i) owning C(i, j) (output-stationary):

*  :func:`matmul_graph` (``systolic=False``) — the *broadcast* function:
   each MAC reads A(i, k) and B(k, j) directly.  Under the owner mapping
   every A element travels to all n PEs of its row individually: total
   wire length Theta(n^2) per element — the cost model sees every
   millimetre of it.
*  :func:`matmul_graph` (``systolic=True``) — the *systolic* function:
   explicit forwarding nodes pass A eastward and B southward one hop per
   beat, so each element's total journey is Theta(n).  The forwarding
   copies are free arithmetic (copy has zero compute energy) but occupy
   PE cycles — the classic dataflow trade, now measurable.

Both graphs evaluate to the same product (verified against numpy in the
tests); :func:`owner_mapping` pins every node to its natural PE and ASAP-
schedules, so the schedules are legal by construction.  The systolic
variant's wire energy is asymptotically smaller; the A1 ablation bench
quantifies the crossover.
"""

from __future__ import annotations

import numpy as np

from repro.core.default_mapper import schedule_asap
from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping

__all__ = ["matmul_graph", "owner_mapping", "verify_against"]


def matmul_graph(n: int, systolic: bool = False) -> DataflowGraph:
    """C = A @ B as a dataflow graph.

    Inputs ``("A", (i, k))`` and ``("B", (k, j))``; outputs ``("C", i, j)``.
    Node indices are ``(i, j, k)`` triples (forwarding nodes carry the
    coordinates of the PE that holds them), with groups ``mac``, ``acc``,
    ``fwdA``, ``fwdB``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    g = DataflowGraph()
    a_in = {(i, k): g.input("A", (i, k)) for i in range(n) for k in range(n)}
    b_in = {(k, j): g.input("B", (k, j)) for k in range(n) for j in range(n)}

    if systolic:
        # forwarding chains: a_at[(i, j, k)] is A(i, k) resident at PE (j, i)
        a_at: dict[tuple[int, int, int], int] = {}
        b_at: dict[tuple[int, int, int], int] = {}
        for i in range(n):
            for k in range(n):
                prev = a_in[(i, k)]
                for j in range(n):
                    node = g.op("copy", prev, index=(i, j, k), group="fwdA")
                    a_at[(i, j, k)] = node
                    prev = node
        for k in range(n):
            for j in range(n):
                prev = b_in[(k, j)]
                for i in range(n):
                    node = g.op("copy", prev, index=(i, j, k), group="fwdB")
                    b_at[(i, j, k)] = node
                    prev = node

        def operand_a(i: int, j: int, k: int) -> int:
            return a_at[(i, j, k)]

        def operand_b(i: int, j: int, k: int) -> int:
            return b_at[(i, j, k)]

    else:

        def operand_a(i: int, j: int, k: int) -> int:
            return a_in[(i, k)]

        def operand_b(i: int, j: int, k: int) -> int:
            return b_in[(k, j)]

    for i in range(n):
        for j in range(n):
            acc: int | None = None
            for k in range(n):
                prod = g.op(
                    "*", operand_a(i, j, k), operand_b(i, j, k),
                    index=(i, j, k), group="mac",
                )
                if acc is None:
                    acc = prod
                else:
                    acc = g.op("+", acc, prod, index=(i, j, k), group="acc")
            assert acc is not None
            g.mark_output(acc, ("C", i, j))
    return g


def owner_mapping(
    graph: DataflowGraph, n: int, grid: GridSpec, *, inputs_offchip: bool = False
) -> Mapping:
    """Output-stationary placement: all (i, j, *) nodes at PE (j, i).

    Inputs (when on-chip) sit at their entry edge: A(i, k) at PE (0, i)
    (west edge of row i), B(k, j) at PE (j, 0) (north edge of column j) —
    exactly where a systolic array feeds them in.
    """
    if grid.width < n or grid.height < n:
        raise ValueError(f"grid {grid.width}x{grid.height} too small for n={n}")

    def place(nid: int) -> tuple[int, int]:
        if graph.ops[nid] == "input":
            name, idx = graph.payload[nid]
            if name == "A":
                i, _k = idx
                return (0, int(i))
            _k, j = idx
            return (int(j), 0)
        idx = graph.index[nid]
        if idx is not None and len(idx) == 3:
            i, j, _k = idx
            return (int(j), int(i))
        return (0, 0)

    return schedule_asap(graph, grid, place, inputs_offchip=inputs_offchip)


def verify_against(
    graph: DataflowGraph, a: np.ndarray, b: np.ndarray
) -> bool:
    """Evaluate the graph and compare with numpy's product."""
    n = a.shape[0]
    out = graph.evaluate(
        {
            "A": {(i, k): int(a[i, k]) for i in range(n) for k in range(n)},
            "B": {(k, j): int(b[k, j]) for k in range(n) for j in range(n)},
        }
    )
    want = a @ b
    return all(
        out[("C", i, j)] == want[i, j] for i in range(n) for j in range(n)
    )
