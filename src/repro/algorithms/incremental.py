"""Random-order incremental algorithms: hidden parallelism, measured.

Blelloch's bio in the paper: "His recent work on analyzing the parallelism
in incremental/iterative algorithms has opened a new view to parallel
algorithms — i.e., taking sequential algorithms and understanding that
they are actually parallel when applied to inputs in a random order."

The idea: run the *sequential* greedy algorithm, but record its **iteration
dependence DAG** — iteration v depends on iteration u < v when u's outcome
can affect v's (for the greedy graph algorithms here: u is an earlier
neighbour).  The DAG's depth is the algorithm's inherent parallel time; a
scheduler could run all same-depth iterations at once without changing a
single answer.  The theorem this makes measurable: for random insertion
orders the depth is polylogarithmic w.h.p., while adversarial orders force
Theta(n) — the sequential algorithm *was* parallel all along, the order
was the problem.

Three classics:

*  :func:`greedy_coloring` — first-fit colouring; v waits for all earlier
   neighbours;
*  :func:`greedy_mis` — greedy maximal independent set, same dependence
   structure;
*  :func:`bst_depth` — unbalanced BST insertion; iteration i depends on
   its search path, so the dependence depth is the tree height (O(log n)
   expected for random orders, n for sorted insertion).

All return real results (valid colourings, maximal independent sets,
search trees — tested) *and* the measured depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.graphs import CsrGraph

__all__ = [
    "IncrementalResult",
    "greedy_coloring",
    "greedy_mis",
    "bst_depth",
    "random_order",
]


@dataclass
class IncrementalResult:
    """Output of a sequential run plus its dependence-DAG profile."""

    result: np.ndarray
    depth: int
    work: int

    @property
    def parallelism(self) -> float:
        return self.work / self.depth if self.depth else float("inf")


def random_order(n: int, seed: int = 0) -> np.ndarray:
    """A uniformly random iteration order."""
    return np.random.default_rng(seed).permutation(n).astype(np.int64)


def _check_order(n: int, order: np.ndarray) -> np.ndarray:
    order = np.asarray(order, dtype=np.int64)
    if sorted(order.tolist()) != list(range(n)):
        raise ValueError("order must be a permutation of 0..n-1")
    return order


def greedy_coloring(g: CsrGraph, order: np.ndarray) -> IncrementalResult:
    """First-fit colouring in the given order, with dependence depth.

    Iteration for vertex v depends on every neighbour that appears
    earlier: depth(v) = 1 + max over earlier neighbours u of depth(u).
    The colouring is the classic sequential one (valid by construction,
    checked in the tests); only the bookkeeping is new.
    """
    order = _check_order(g.n, order)
    position = np.empty(g.n, dtype=np.int64)
    position[order] = np.arange(g.n)
    colors = np.full(g.n, -1, dtype=np.int64)
    depth = np.zeros(g.n, dtype=np.int64)
    work = 0
    for v in order:
        nbrs = g.neighbors(int(v))
        work += max(1, nbrs.size)
        used = set()
        d = 0
        for u in nbrs:
            if position[u] < position[v]:
                used.add(int(colors[u]))
                if depth[u] > d:
                    d = int(depth[u])
        c = 0
        while c in used:
            c += 1
        colors[v] = c
        depth[v] = d + 1
    return IncrementalResult(result=colors, depth=int(depth.max(initial=0)),
                             work=work)


def greedy_mis(g: CsrGraph, order: np.ndarray) -> IncrementalResult:
    """Greedy maximal independent set in the given order, with depth.

    v joins the MIS iff no earlier neighbour joined.  Dependence: v waits
    for earlier neighbours' decisions.  Result array: 1 = in MIS.
    """
    order = _check_order(g.n, order)
    position = np.empty(g.n, dtype=np.int64)
    position[order] = np.arange(g.n)
    in_mis = np.zeros(g.n, dtype=np.int64)
    depth = np.zeros(g.n, dtype=np.int64)
    work = 0
    for v in order:
        nbrs = g.neighbors(int(v))
        work += max(1, nbrs.size)
        blocked = False
        d = 0
        for u in nbrs:
            if position[u] < position[v]:
                if in_mis[u]:
                    blocked = True
                if depth[u] > d:
                    d = int(depth[u])
        in_mis[v] = 0 if blocked else 1
        depth[v] = d + 1
    return IncrementalResult(result=in_mis, depth=int(depth.max(initial=0)),
                             work=work)


def bst_depth(keys: np.ndarray) -> IncrementalResult:
    """Insert ``keys`` into an unbalanced BST in the given order.

    The dependence depth of incremental insertion is the final tree
    height; ``result`` is the inorder traversal (== sorted keys iff the
    tree is a valid BST — the correctness check).
    """
    keys = np.asarray(keys, dtype=np.int64)
    n = keys.size
    if n == 0:
        raise ValueError("need at least one key")
    if np.unique(keys).size != n:
        raise ValueError("keys must be distinct")
    left = np.full(n, -1, dtype=np.int64)
    right = np.full(n, -1, dtype=np.int64)
    node_depth = np.zeros(n, dtype=np.int64)
    work = 0
    for i in range(1, n):
        cur = 0
        d = 1
        while True:
            work += 1
            if keys[i] < keys[cur]:
                if left[cur] == -1:
                    left[cur] = i
                    break
                cur = int(left[cur])
            else:
                if right[cur] == -1:
                    right[cur] = i
                    break
                cur = int(right[cur])
            d += 1
        node_depth[i] = d
    # inorder traversal, iterative
    out: list[int] = []
    stack: list[tuple[int, bool]] = [(0, False)]
    while stack:
        node, visited = stack.pop()
        if node == -1:
            continue
        if visited:
            out.append(int(keys[node]))
        else:
            stack.append((int(right[node]), False))
            stack.append((node, True))
            stack.append((int(left[node]), False))
    return IncrementalResult(
        result=np.array(out, dtype=np.int64),
        depth=int(node_depth.max(initial=0)) + 1,
        work=max(1, work),
    )
