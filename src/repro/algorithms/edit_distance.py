"""The paper's worked example: dynamic-programming string alignment.

Paper, Section 3::

    Forall i, j in (0:N-1, 0:N-1)
      H(i,j) = min(H(i-1, j-1) + f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+I, 0);

    Map H(i,j) at i % P  time floor(i/P)*N + j

    "The function is just the recurrence equation for H(i,j).  The mapping
    places this on array of P processors as marching anti-diagonals."

We implement the recurrence **verbatim** (:func:`paper_table`,
:func:`edit_distance_graph` with ``cell="paper"``; unit costs D = I =
f_mismatch = 1, f_match = 0) plus the standard Levenshtein variant
(``cell="lev"``) whose serial DP is the correctness oracle.

About the mapping: the paper's *literal* time formula gives every row of a
band of P rows the same schedule, so vertically-dependent cells land on
the same cycle — the legality checker (correctly) rejects it, a nice
demonstration that the model catches over-eager schedules
(:func:`paper_mapping_literal`, and the C8 bench shows the violation).
The mapping the prose describes — "marching anti-diagonals" — adds the
skew that makes neighbouring rows lag by the inter-PE hop time:

    time = floor(i/P) * N + hop * (i % P) + j

(:func:`wavefront_mapping`), which is legal whenever the band height P and
string length N satisfy N >= 2*hop*(P-1) + 1 (cross-band dependences need
the next band to start late enough; checked and reported).

PRAM formulation: :func:`wavefront_pram` sweeps anti-diagonals of the full
table with one processor per cell of the diagonal — O(N^2) work, O(N)
steps.
"""

from __future__ import annotations

import numpy as np

from repro.core.function import DataflowGraph, OP_ENERGY_FACTOR, OP_TABLE
from repro.core.mapping import GridSpec, Mapping
from repro.models.pram import PRAM, ConcurrencyMode

__all__ = [
    "levenshtein",
    "paper_table",
    "wavefront_pram",
    "edit_distance_graph",
    "paper_mapping_literal",
    "wavefront_mapping",
    "min_length_for_wavefront",
]

# ---------------------------------------------------------------------------
# cell operators, registered into the generic op table.
# Unit costs: D = I = 1, f(r, q) = 0 if r == q else 1.
# ---------------------------------------------------------------------------

OP_TABLE["edcell_paper"] = (
    5,
    lambda hd, hu, hl, r, q: min(hd + (0 if r == q else 1), hu + 1, hl + 1, 0),
)
OP_TABLE["edcell_lev"] = (
    5,
    lambda hd, hu, hl, r, q: min(hd + (0 if r == q else 1), hu + 1, hl + 1),
)
# one compare, three adds, three mins ~ 7 word ops
OP_ENERGY_FACTOR["edcell_paper"] = 7.0
OP_ENERGY_FACTOR["edcell_lev"] = 7.0


def levenshtein(r: str | list[int], q: str | list[int]) -> tuple[int, np.ndarray]:
    """Serial Levenshtein DP (unit costs).  Returns (distance, full table).

    ``table[i, j]`` is the edit distance between ``r[:i+1]`` and
    ``q[:j+1]`` — the correctness oracle for every parallel formulation.
    """
    rs, qs = list(r), list(q)
    n, m = len(rs), len(qs)
    if n == 0 or m == 0:
        raise ValueError("strings must be non-empty")
    h = np.zeros((n, m), dtype=np.int64)
    for i in range(n):
        for j in range(m):
            hd = h[i - 1, j - 1] if (i and j) else max(i, j)
            hu = h[i - 1, j] if i else j + 1
            hl = h[i, j - 1] if j else i + 1
            sub = 0 if rs[i] == qs[j] else 1
            h[i, j] = min(hd + sub, hu + 1, hl + 1)
    return int(h[n - 1, m - 1]), h


def paper_table(r: str | list[int], q: str | list[int]) -> np.ndarray:
    """The paper's recurrence verbatim (min with 0; zero boundaries).

    With non-negative costs the result is everywhere <= 0 — we reproduce
    the formula as printed; the benches report it alongside the standard
    Levenshtein variant.
    """
    rs, qs = list(r), list(q)
    n, m = len(rs), len(qs)
    if n == 0 or m == 0:
        raise ValueError("strings must be non-empty")
    h = np.zeros((n, m), dtype=np.int64)
    for i in range(n):
        for j in range(m):
            hd = h[i - 1, j - 1] if (i and j) else 0
            hu = h[i - 1, j] if i else 0
            hl = h[i, j - 1] if j else 0
            sub = 0 if rs[i] == qs[j] else 1
            h[i, j] = min(hd + sub, hu + 1, hl + 1, 0)
    return h


# ---------------------------------------------------------------------------
# PRAM wavefront
# ---------------------------------------------------------------------------


def wavefront_pram(
    r: str | list[int],
    q: str | list[int],
    mode: ConcurrencyMode = ConcurrencyMode.CREW,
) -> tuple[int, PRAM]:
    """Anti-diagonal Levenshtein on the vectorized PRAM.

    Diagonal d holds cells (i, j) with i + j = d; all are independent given
    diagonals d-1 and d-2, so each diagonal is a constant number of PRAM
    steps.  O(N*M) work, O(N+M) steps — the textbook wavefront.
    """
    rs = np.asarray([ord(c) if isinstance(c, str) else int(c) for c in r])
    qs = np.asarray([ord(c) if isinstance(c, str) else int(c) for c in q])
    n, m = rs.size, qs.size
    if n == 0 or m == 0:
        raise ValueError("strings must be non-empty")
    # shared layout: table at [0, n*m), r at base_r, q at base_q
    base_r, base_q = n * m, n * m + n
    pram = PRAM(max(min(n, m), 1), n * m + n + m, mode=mode)
    pram.memory[base_r : base_r + n] = rs
    pram.memory[base_q : base_q + m] = qs

    def addr(i: np.ndarray, j: np.ndarray) -> np.ndarray:
        return i * m + j

    for d in range(n + m - 1):
        i = np.arange(max(0, d - m + 1), min(n, d + 1), dtype=np.int64)
        j = d - i
        pids = np.arange(i.size) % pram.p
        rv = pram.par_read(pids, base_r + i)
        qv = pram.par_read(pids, base_q + j)
        sub = (rv != qv).astype(np.int64)

        inner = (i > 0) & (j > 0)
        hd_vals = np.maximum(i, j).astype(np.int64)  # boundary value
        if inner.any():
            got = pram.par_read(pids[inner], addr(i[inner] - 1, j[inner] - 1))
            hd_vals[inner] = got
        hu_vals = (j + 1).astype(np.int64)
        up = i > 0
        if up.any():
            hu_vals[up] = pram.par_read(pids[up], addr(i[up] - 1, j[up]))
        hl_vals = (i + 1).astype(np.int64)
        left = j > 0
        if left.any():
            hl_vals[left] = pram.par_read(pids[left], addr(i[left], j[left] - 1))

        pram.par_compute(i.size, amount=4)
        cell = np.minimum(np.minimum(hd_vals + sub, hu_vals + 1), hl_vals + 1)
        pram.par_write(pids, addr(i, j), cell)

    return int(pram.memory[(n - 1) * m + (m - 1)]), pram


# ---------------------------------------------------------------------------
# F&M formulation
# ---------------------------------------------------------------------------


def edit_distance_graph(n: int, m: int | None = None, cell: str = "paper") -> DataflowGraph:
    """The recurrence as a dataflow graph: one ``edcell`` op per (i, j).

    Inputs ``("R", (i,))`` and ``("Q", (j,))`` are integer symbols.
    Outputs: every cell as ``("H", i, j)``.  Cell nodes carry
    ``index=(i, j)``.  Boundary values are constants (0 for the paper
    variant; i+1 / j+1 / max(i,j) for Levenshtein), carrying the consuming
    row in their index so mappings can co-locate them.
    """
    m = n if m is None else m
    if n < 1 or m < 1:
        raise ValueError("table must be at least 1x1")
    if cell == "paper":
        op = "edcell_paper"

        def hd_boundary(i: int, j: int) -> int:
            return 0

        def hu_boundary(j: int) -> int:
            return 0

        def hl_boundary(i: int) -> int:
            return 0

    elif cell == "lev":
        op = "edcell_lev"

        def hd_boundary(i: int, j: int) -> int:
            return max(i, j)

        def hu_boundary(j: int) -> int:
            return j + 1

        def hl_boundary(i: int) -> int:
            return i + 1

    else:
        raise ValueError(f"cell must be 'paper' or 'lev', got {cell!r}")

    g = DataflowGraph()
    r_nodes = [g.input("R", (i,)) for i in range(n)]
    q_nodes = [g.input("Q", (j,)) for j in range(m)]
    h: dict[tuple[int, int], int] = {}
    for i in range(n):
        for j in range(m):
            hd = (
                h[(i - 1, j - 1)]
                if (i and j)
                else g.const(hd_boundary(i, j), index=(i, j))
            )
            hu = h[(i - 1, j)] if i else g.const(hu_boundary(j), index=(i, j))
            hl = h[(i, j - 1)] if j else g.const(hl_boundary(i), index=(i, j))
            node = g.op(op, hd, hu, hl, r_nodes[i], q_nodes[j],
                        index=(i, j), group="H")
            h[(i, j)] = node
            g.mark_output(node, ("H", i, j))
    return g


def _edit_place_time(
    graph: DataflowGraph,
    n: int,
    p: int,
    time_of_cell,
) -> Mapping:
    """Shared builder: cells by formula, R at owner PE, Q at PE 0, t=0."""
    mapping = Mapping(graph.n_nodes)
    for nid in range(graph.n_nodes):
        opn = graph.ops[nid]
        idx = graph.index[nid]
        if opn == "input":
            name, iidx = graph.payload[nid]
            if name == "R":
                mapping.set(nid, (iidx[0] % p, 0), 0)
            else:  # Q: resident at PE 0, streamed rightward by the skew
                mapping.set(nid, (0, 0), 0)
        elif opn == "const":
            i = idx[0] if idx else 0
            mapping.set(nid, (i % p, 0), 0)
        else:
            i, j = idx
            mapping.set(nid, (i % p, 0), time_of_cell(i, j))
    return mapping


def paper_mapping_literal(graph: DataflowGraph, n: int, p: int) -> Mapping:
    """``Map H(i,j) at i % P time floor(i/P)*N + j`` — exactly as printed.

    Illegal under any non-zero inter-row latency (rows of a band share a
    schedule but depend on each other); kept so the benches can show the
    legality checker catching it.
    """
    return _edit_place_time(graph, n, p, lambda i, j: (i // p) * n + j)


def wavefront_mapping(
    graph: DataflowGraph, n: int, p: int, grid: GridSpec
) -> Mapping:
    """The "marching anti-diagonals" mapping the paper's prose describes.

    time = floor(i/P)*N + (hop+1)*(i%P) + j, where ``hop`` is the inter-PE
    transit in cycles (+1 for the producing cell's own compute cycle).
    Legal iff N >= (2*hop+1)*(P-1) + 1 (see
    :func:`min_length_for_wavefront`).
    """
    skew = grid.tech.hop_cycles() + 1
    return _edit_place_time(
        graph, n, p, lambda i, j: (i // p) * n + skew * (i % p) + j
    )


def min_length_for_wavefront(p: int, grid: GridSpec) -> int:
    """Smallest N for which the wavefront mapping is legal on P PEs.

    The binding constraint is the cross-band vertical dependence: row i
    with i % P == 0 reads row i-1 on PE P-1, produced at local offset
    (hop+1)*(P-1) + j, available a cycle later, and needing hop*(P-1)
    transit; the next band starts N cycles later, so
    N >= (2*hop+1)*(P-1) + 1.
    """
    hop = grid.tech.hop_cycles()
    return (2 * hop + 1) * (p - 1) + 1
